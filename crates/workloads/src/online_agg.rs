//! Online aggregation with early approximate answers — the second
//! future-work direction the paper names ("online aggregation with early
//! approximate answers").
//!
//! The query computes a global average (here: the mean page id of all
//! clicks, a stand-in for any per-record numeric measure). Because the
//! stream arrives in effectively random key order, the *running* average
//! is a consistent online-aggregation estimator of the final answer, so
//! the incremental reducer emits refinements on a log-spaced schedule
//! (each time the observed count doubles) and the exact answer at
//! finalization.
//!
//! Output value layout: `[n u64][sum u64]` — the consumer derives the
//! estimate `sum / n` and can compute a confidence interval from `n`.
//!
//! State layout: `[count u64][sum u64][next_emit u64]`.

use crate::clickstream::parse_click;
use opa_core::api::{IncrementalReducer, Job, ReduceCtx, Site};
use opa_core::prelude::{Key, Value};

/// The online-average job. All records share one key, so one reducer owns
/// the aggregate — the natural layout for a global online aggregate.
#[derive(Debug, Clone)]
pub struct OnlineAvgJob {
    /// First refinement is emitted once this many records were absorbed.
    pub first_emit: u64,
}

impl Default for OnlineAvgJob {
    fn default() -> Self {
        OnlineAvgJob { first_emit: 64 }
    }
}

fn encode_state(count: u64, sum: u64, next_emit: u64) -> Value {
    let mut v = Vec::with_capacity(24);
    v.extend_from_slice(&count.to_be_bytes());
    v.extend_from_slice(&sum.to_be_bytes());
    v.extend_from_slice(&next_emit.to_be_bytes());
    Value::new(v)
}

fn decode_state(v: &Value) -> (u64, u64, u64) {
    let b = v.bytes();
    (
        u64::from_be_bytes(b[..8].try_into().expect("count")),
        u64::from_be_bytes(b[8..16].try_into().expect("sum")),
        u64::from_be_bytes(b[16..24].try_into().expect("next_emit")),
    )
}

/// Output value: (count, sum) snapshot.
pub fn estimate_output(count: u64, sum: u64) -> Value {
    let mut v = Vec::with_capacity(16);
    v.extend_from_slice(&count.to_be_bytes());
    v.extend_from_slice(&sum.to_be_bytes());
    Value::new(v)
}

/// Decodes an output snapshot into (count, sum).
pub fn decode_estimate(v: &[u8]) -> (u64, u64) {
    (
        u64::from_be_bytes(v[..8].try_into().expect("count")),
        u64::from_be_bytes(v[8..16].try_into().expect("sum")),
    )
}

impl IncrementalReducer for OnlineAvgJob {
    fn init(&self, _key: &Key, value: Value) -> Value {
        encode_state(1, value.as_u64().unwrap_or(0), self.first_emit)
    }

    fn cb(&self, key: &Key, acc: &mut Value, other: Value, ctx: &mut ReduceCtx) {
        let (c1, s1, next) = decode_state(acc);
        let (c2, s2, _) = decode_state(&other);
        let (count, sum) = (c1 + c2, s1 + s2);
        let mut next_emit = next;
        if ctx.site == Site::Reduce && count >= next_emit {
            // Log-spaced refinement: each emission doubles the sample.
            ctx.emit(key.clone(), estimate_output(count, sum));
            while next_emit <= count {
                next_emit *= 2;
            }
        }
        *acc = encode_state(count, sum, next_emit);
    }

    fn finalize(&self, key: &Key, state: Value, ctx: &mut ReduceCtx) {
        let (count, sum, _) = decode_state(&state);
        if count > 0 {
            ctx.emit(key.clone(), estimate_output(count, sum));
        }
    }
}

impl Job for OnlineAvgJob {
    fn name(&self) -> &str {
        "online average"
    }

    fn map(&self, record: &[u8], emit: &mut dyn FnMut(&[u8], &[u8])) {
        if let Some((_, _, tail)) = parse_click(record) {
            // Measure: the page id embedded in the URL — parsed from a
            // stack array, no per-record Vec or str detour.
            let mut page = 0u64;
            let mut n = 0usize;
            for &b in tail.iter().filter(|b| b.is_ascii_digit()).take(5) {
                page = page * 10 + u64::from(b - b'0');
                n += 1;
            }
            if n > 0 {
                emit(b"avg-page", &page.to_be_bytes());
            }
        }
    }

    fn reduce(&self, key: &Key, values: Vec<Value>, ctx: &mut ReduceCtx) {
        let count = values.len() as u64;
        let sum: u64 = values.iter().filter_map(Value::as_u64).sum();
        if count > 0 {
            ctx.emit(key.clone(), estimate_output(count, sum));
        }
    }

    fn incremental(&self) -> Option<&dyn IncrementalReducer> {
        Some(self)
    }

    fn expected_keys(&self) -> Option<u64> {
        Some(1)
    }

    fn state_size_hint(&self) -> Option<u64> {
        Some(24)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refinements_are_log_spaced_and_converge() {
        let j = OnlineAvgJob { first_emit: 4 };
        let key = Key::from("avg-page");
        let mut ctx = ReduceCtx::new();
        let mut acc = j.init(&key, Value::from_u64(10));
        for i in 1..64u64 {
            j.cb(
                &key,
                &mut acc,
                j.init(&key, Value::from_u64(10 + i % 3)),
                &mut ctx,
            );
        }
        let refinements: Vec<(u64, u64)> = ctx
            .drain()
            .iter()
            .map(|p| decode_estimate(p.value.bytes()))
            .collect();
        // Emitted at counts 4, 8, 16, 32, 64.
        let counts: Vec<u64> = refinements.iter().map(|&(c, _)| c).collect();
        assert_eq!(counts, vec![4, 8, 16, 32, 64]);
        // Estimates hover near the true mean (values are 10, 11, 12 cycle).
        for &(c, s) in &refinements {
            let est = s as f64 / c as f64;
            assert!((est - 11.0).abs() < 1.5, "estimate {est} off at n={c}");
        }
        // Finalize emits the exact aggregate.
        j.finalize(&key, acc, &mut ctx);
        let (c, _s) = decode_estimate(ctx.drain().last().unwrap().value.bytes());
        assert_eq!(c, 64);
    }

    #[test]
    fn map_extracts_page_measure() {
        let j = OnlineAvgJob::default();
        let rec = crate::clickstream::format_click(5, 9, 1234);
        let mut out = Vec::new();
        j.map(&rec, &mut |k, v| {
            out.push((k.to_vec(), Value::from_slice(v)))
        });
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1.as_u64(), Some(1234));
    }

    #[test]
    fn map_site_never_emits_refinements() {
        let j = OnlineAvgJob { first_emit: 1 };
        let key = Key::from("avg-page");
        let mut ctx = ReduceCtx::at_site(Site::Map);
        let mut acc = j.init(&key, Value::from_u64(1));
        for _ in 0..16 {
            j.cb(&key, &mut acc, j.init(&key, Value::from_u64(1)), &mut ctx);
        }
        assert_eq!(ctx.pending(), 0, "partial chunk data must not be reported");
    }
}
