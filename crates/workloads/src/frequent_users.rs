//! Frequent user identification (§6.1): find users with ≥ `threshold`
//! clicks.
//!
//! Built on click counting, but the query *allows early output*: a user can
//! be reported the moment their counter crosses the threshold, which is why
//! INC-hash reduce progress completely keeps up with map progress in
//! Fig 7(c). The incremental state is 9 bytes: a count plus an
//! already-emitted flag, so the threshold crossing is reported exactly once
//! per resident state.
//!
//! Early emission is gated on [`Site::Reduce`]: a map-side partial count
//! crossing the threshold proves global frequency too, but the reducer
//! would re-report it; keeping emission reduce-side makes the common path
//! exactly-once (DINC can still double-report a key whose state was evicted
//! mid-count and re-crossed — membership stays exact, see DESIGN.md).

use crate::clickstream::parse_click;
use opa_core::api::{Combiner, IncrementalReducer, Job, ReduceCtx, Site};
use opa_core::prelude::{Key, Value};

/// The frequent-user job.
#[derive(Debug, Clone)]
pub struct FrequentUsersJob {
    /// Click-count threshold (paper: 50).
    pub threshold: u64,
    /// Expected distinct users (sizing hint).
    pub expected_users: u64,
}

impl Default for FrequentUsersJob {
    fn default() -> Self {
        FrequentUsersJob {
            threshold: 50,
            expected_users: 10_000,
        }
    }
}

// State layout: [count u64][emitted u8].
fn encode_state(count: u64, emitted: bool) -> Value {
    let mut buf = [0u8; 9];
    buf[..8].copy_from_slice(&count.to_be_bytes());
    buf[8] = emitted as u8;
    Value::from_slice(&buf)
}

fn decode_state(v: &Value) -> (u64, bool) {
    let count = v.as_u64().unwrap_or(0);
    let emitted = v.bytes().get(8).copied().unwrap_or(0) != 0;
    (count, emitted)
}

impl Combiner for FrequentUsersJob {
    fn combine(&self, _key: &Key, values: Vec<Value>) -> Vec<Value> {
        let sum: u64 = values.iter().filter_map(Value::as_u64).sum();
        vec![Value::from_u64(sum)]
    }
}

impl IncrementalReducer for FrequentUsersJob {
    fn init(&self, _key: &Key, value: Value) -> Value {
        encode_state(value.as_u64().unwrap_or(0), false)
    }

    fn cb(&self, key: &Key, acc: &mut Value, other: Value, ctx: &mut ReduceCtx) {
        let (a, mut emitted) = decode_state(acc);
        let (b, other_emitted) = decode_state(&other);
        let count = a + b;
        emitted |= other_emitted;
        if !emitted && count >= self.threshold && ctx.site == Site::Reduce {
            ctx.emit(key.clone(), Value::from_u64(count));
            emitted = true;
        }
        *acc = encode_state(count, emitted);
    }

    fn finalize(&self, key: &Key, state: Value, ctx: &mut ReduceCtx) {
        let (count, emitted) = decode_state(&state);
        if !emitted && count >= self.threshold {
            ctx.emit(key.clone(), Value::from_u64(count));
        }
    }
}

impl Job for FrequentUsersJob {
    fn name(&self) -> &str {
        "frequent user identification"
    }

    fn map(&self, record: &[u8], emit: &mut dyn FnMut(&[u8], &[u8])) {
        if let Some((_, user, _)) = parse_click(record) {
            emit(&user.to_be_bytes(), &1u64.to_be_bytes());
        }
    }

    fn reduce(&self, key: &Key, values: Vec<Value>, ctx: &mut ReduceCtx) {
        let sum: u64 = values.iter().filter_map(Value::as_u64).sum();
        if sum >= self.threshold {
            ctx.emit(key.clone(), Value::from_u64(sum));
        }
    }

    fn combiner(&self) -> Option<&dyn Combiner> {
        Some(self)
    }

    fn incremental(&self) -> Option<&dyn IncrementalReducer> {
        Some(self)
    }

    fn expected_keys(&self) -> Option<u64> {
        Some(self.expected_users)
    }

    fn state_size_hint(&self) -> Option<u64> {
        Some(9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_crossing_emits_once() {
        let job = FrequentUsersJob {
            threshold: 3,
            expected_users: 10,
        };
        let key = Key::from_u64(1);
        let mut ctx = ReduceCtx::new();
        let mut acc = job.init(&key, Value::from_u64(1));
        job.cb(&key, &mut acc, job.init(&key, Value::from_u64(1)), &mut ctx);
        assert_eq!(ctx.pending(), 0, "below threshold");
        job.cb(&key, &mut acc, job.init(&key, Value::from_u64(1)), &mut ctx);
        assert_eq!(ctx.pending(), 1, "crossed threshold");
        job.cb(&key, &mut acc, job.init(&key, Value::from_u64(1)), &mut ctx);
        assert_eq!(ctx.pending(), 1, "no re-emission");
        job.finalize(&key, acc, &mut ctx);
        assert_eq!(ctx.pending(), 1, "finalize honours emitted flag");
    }

    #[test]
    fn below_threshold_never_emits() {
        let job = FrequentUsersJob {
            threshold: 100,
            expected_users: 10,
        };
        let key = Key::from_u64(2);
        let mut ctx = ReduceCtx::new();
        let mut acc = job.init(&key, Value::from_u64(1));
        for _ in 0..50 {
            job.cb(&key, &mut acc, job.init(&key, Value::from_u64(1)), &mut ctx);
        }
        job.finalize(&key, acc, &mut ctx);
        assert_eq!(ctx.pending(), 0);
    }

    #[test]
    fn map_site_defers_emission() {
        let job = FrequentUsersJob {
            threshold: 2,
            expected_users: 10,
        };
        let key = Key::from_u64(3);
        let mut ctx = ReduceCtx::at_site(Site::Map);
        let mut acc = job.init(&key, Value::from_u64(1));
        job.cb(&key, &mut acc, job.init(&key, Value::from_u64(1)), &mut ctx);
        assert_eq!(ctx.pending(), 0, "map side must not report");
        // The reducer still reports it (flag not set).
        let mut rctx = ReduceCtx::new();
        job.finalize(&key, acc, &mut rctx);
        assert_eq!(rctx.pending(), 1);
    }

    #[test]
    fn classic_reduce_filters() {
        let job = FrequentUsersJob {
            threshold: 3,
            expected_users: 10,
        };
        let mut ctx = ReduceCtx::new();
        job.reduce(&Key::from_u64(1), vec![Value::from_u64(2)], &mut ctx);
        assert_eq!(ctx.pending(), 0);
        job.reduce(
            &Key::from_u64(2),
            vec![Value::from_u64(2), Value::from_u64(2)],
            &mut ctx,
        );
        assert_eq!(ctx.pending(), 1);
    }
}
