//! Synthetic GOV2-style document corpus.
//!
//! The trigram workload (Fig 7(f)) needs what the paper's 156 GB GOV2
//! sample provided: documents of natural-language-like text whose word
//! trigrams form a *large* key space with a *flatter* frequency
//! distribution than click-stream user ids — flat enough that INC-hash's
//! first-come key residency already captures most hot trigrams, which is
//! why DINC-hash barely beats INC-hash there. A Zipf(~0.9) vocabulary
//! reproduces that regime.

use crate::zipf::Zipf;
use opa_common::rng::SplitMix64;
use opa_core::job::JobInput;

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct DocumentSpec {
    /// Approximate corpus size in bytes.
    pub target_bytes: u64,
    /// Vocabulary size.
    pub vocabulary: usize,
    /// Zipf exponent of word frequency (natural text ≈ 1.0; GOV2-ish
    /// trigram flatness comes from values below 1).
    pub zipf_exponent: f64,
    /// Words per document.
    pub words_per_doc: usize,
}

impl DocumentSpec {
    /// A tiny corpus for unit tests.
    pub fn small() -> Self {
        DocumentSpec {
            target_bytes: 64 * 1024,
            vocabulary: 300,
            zipf_exponent: 0.9,
            words_per_doc: 60,
        }
    }

    /// A paper-scale corpus (1/1024 of 156 GB by default).
    pub fn paper_scaled(target_bytes: u64) -> Self {
        DocumentSpec {
            target_bytes,
            vocabulary: 12_000,
            zipf_exponent: 0.9,
            words_per_doc: 120,
        }
    }

    /// Generates the corpus deterministically from `seed`. Each record is
    /// one document: space-separated words.
    pub fn generate(&self, seed: u64) -> JobInput {
        let mut rng = SplitMix64::new(seed);
        let zipf = Zipf::new(self.vocabulary, self.zipf_exponent);
        let mut records = Vec::new();
        let mut bytes = 0u64;
        while bytes < self.target_bytes {
            let mut doc = String::with_capacity(self.words_per_doc * 8);
            for i in 0..self.words_per_doc {
                if i > 0 {
                    doc.push(' ');
                }
                let w = zipf.sample(&mut rng);
                doc.push_str(&format!("w{w:05}"));
            }
            bytes += doc.len() as u64;
            records.push(doc.into_bytes());
        }
        JobInput::from_records(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn reaches_target_size() {
        let spec = DocumentSpec::small();
        let input = spec.generate(1);
        assert!(input.total_bytes() >= spec.target_bytes);
        assert!(input.total_bytes() < spec.target_bytes + 8 * 1024);
    }

    #[test]
    fn documents_have_expected_word_count() {
        let spec = DocumentSpec::small();
        let input = spec.generate(2);
        for rec in &input.records {
            let words = rec.split(|&b| b == b' ').count();
            assert_eq!(words, spec.words_per_doc);
        }
    }

    #[test]
    fn trigram_distribution_is_flatter_than_clicks() {
        // The top trigram should hold a much smaller share than the top
        // user holds in the click stream — the property Fig 7(f) rests on.
        let input = DocumentSpec::small().generate(3);
        let mut counts: HashMap<Vec<u8>, u64> = HashMap::new();
        let mut total = 0u64;
        for rec in &input.records {
            let words: Vec<&[u8]> = rec.split(|&b| b == b' ').collect();
            for w in words.windows(3) {
                let mut key = w[0].to_vec();
                key.push(b' ');
                key.extend_from_slice(w[1]);
                key.push(b' ');
                key.extend_from_slice(w[2]);
                *counts.entry(key).or_default() += 1;
                total += 1;
            }
        }
        let max = counts.values().copied().max().unwrap_or(0);
        assert!(
            counts.len() > 500,
            "trigram space too small: {}",
            counts.len()
        );
        assert!(
            (max as f64) / (total as f64) < 0.05,
            "top trigram share too high: {}",
            max as f64 / total as f64
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = DocumentSpec::small().generate(9);
        let b = DocumentSpec::small().generate(9);
        assert_eq!(a.records, b.records);
    }
}
