//! Trigram counting (§6.2): report word trigrams appearing at least
//! `threshold` times in the corpus.
//!
//! The large-key-state-space workload: trigram keys vastly outnumber what
//! reduce memory can hold (the paper's run kept only 1/30 of the states
//! resident), so both INC-hash and DINC-hash stage a substantial fraction
//! of tuples — and because trigram frequencies are comparatively flat,
//! DINC's frequency-aware monitoring barely improves on INC's first-come
//! residency (Fig 7(f)). Early output fires when a resident counter
//! crosses the threshold.

use opa_core::api::{Combiner, IncrementalReducer, Job, ReduceCtx, Site};
use opa_core::prelude::{Key, Value};

/// The trigram-counting job.
#[derive(Debug, Clone)]
pub struct TrigramCountJob {
    /// Occurrence threshold (paper: 1000).
    pub threshold: u64,
    /// Expected distinct trigrams (sizing hint).
    pub expected_trigrams: u64,
}

impl Default for TrigramCountJob {
    fn default() -> Self {
        TrigramCountJob {
            threshold: 1000,
            expected_trigrams: 1_000_000,
        }
    }
}

// State layout: [count u64][emitted u8] — same as frequent users.
fn encode_state(count: u64, emitted: bool) -> Value {
    let mut buf = [0u8; 9];
    buf[..8].copy_from_slice(&count.to_be_bytes());
    buf[8] = emitted as u8;
    Value::from_slice(&buf)
}

fn decode_state(v: &Value) -> (u64, bool) {
    (
        v.as_u64().unwrap_or(0),
        v.bytes().get(8).copied().unwrap_or(0) != 0,
    )
}

impl Combiner for TrigramCountJob {
    fn combine(&self, _key: &Key, values: Vec<Value>) -> Vec<Value> {
        let sum: u64 = values.iter().filter_map(Value::as_u64).sum();
        vec![Value::from_u64(sum)]
    }

    fn supports_fold(&self) -> bool {
        true
    }

    fn fold(&self, _key: &Key, acc: &mut Value, value: Value) {
        let sum = acc.as_u64().unwrap_or(0) + value.as_u64().unwrap_or(0);
        *acc = Value::from_u64(sum);
    }
}

impl IncrementalReducer for TrigramCountJob {
    fn init(&self, _key: &Key, value: Value) -> Value {
        encode_state(value.as_u64().unwrap_or(0), false)
    }

    fn cb(&self, key: &Key, acc: &mut Value, other: Value, ctx: &mut ReduceCtx) {
        let (a, mut emitted) = decode_state(acc);
        let (b, other_emitted) = decode_state(&other);
        let count = a + b;
        emitted |= other_emitted;
        if !emitted && count >= self.threshold && ctx.site == Site::Reduce {
            ctx.emit(key.clone(), Value::from_u64(count));
            emitted = true;
        }
        *acc = encode_state(count, emitted);
    }

    fn finalize(&self, key: &Key, state: Value, ctx: &mut ReduceCtx) {
        let (count, emitted) = decode_state(&state);
        if !emitted && count >= self.threshold {
            ctx.emit(key.clone(), Value::from_u64(count));
        }
    }
}

impl Job for TrigramCountJob {
    fn name(&self) -> &str {
        "trigram counting"
    }

    fn map(&self, record: &[u8], emit: &mut dyn FnMut(&[u8], &[u8])) {
        // Slide a 3-word window with one reused scratch buffer: the only
        // allocation is the buffer's initial growth, regardless of how many
        // trigrams the record yields. `tokens` finds word boundaries a
        // machine word (or SIMD vector) at a time and yields exactly the
        // split-on-space/skip-empty sequence, so output is unchanged.
        let mut words = opa_common::scan::tokens(record, b' ');
        let (Some(mut w0), Some(mut w1)) = (words.next(), words.next()) else {
            return;
        };
        let mut scratch: Vec<u8> = Vec::new();
        for w2 in words {
            scratch.clear();
            scratch.extend_from_slice(w0);
            scratch.push(b' ');
            scratch.extend_from_slice(w1);
            scratch.push(b' ');
            scratch.extend_from_slice(w2);
            emit(&scratch, &1u64.to_be_bytes());
            (w0, w1) = (w1, w2);
        }
    }

    fn reduce(&self, key: &Key, values: Vec<Value>, ctx: &mut ReduceCtx) {
        let sum: u64 = values.iter().filter_map(Value::as_u64).sum();
        if sum >= self.threshold {
            ctx.emit(key.clone(), Value::from_u64(sum));
        }
    }

    fn combiner(&self) -> Option<&dyn Combiner> {
        Some(self)
    }

    fn incremental(&self) -> Option<&dyn IncrementalReducer> {
        Some(self)
    }

    fn expected_keys(&self) -> Option<u64> {
        Some(self.expected_trigrams)
    }

    fn state_size_hint(&self) -> Option<u64> {
        Some(32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_emits_sliding_trigrams() {
        let job = TrigramCountJob::default();
        let mut out = Vec::new();
        job.map(b"a b c d", &mut |k, _| out.push(k.to_vec()));
        assert_eq!(out, vec![b"a b c".to_vec(), b"b c d".to_vec()]);
    }

    #[test]
    fn short_documents_emit_nothing() {
        let job = TrigramCountJob::default();
        let mut out = Vec::new();
        job.map(b"a b", &mut |k, _| out.push(k.to_vec()));
        job.map(b"", &mut |k, _| out.push(k.to_vec()));
        assert!(out.is_empty());
    }

    #[test]
    fn threshold_gates_output() {
        let job = TrigramCountJob {
            threshold: 2,
            expected_trigrams: 100,
        };
        let mut ctx = ReduceCtx::new();
        job.reduce(&Key::from("a b c"), vec![Value::from_u64(1)], &mut ctx);
        assert_eq!(ctx.pending(), 0);
        job.reduce(
            &Key::from("d e f"),
            vec![Value::from_u64(1), Value::from_u64(1)],
            &mut ctx,
        );
        assert_eq!(ctx.pending(), 1);
    }

    #[test]
    fn incremental_early_output_once() {
        let job = TrigramCountJob {
            threshold: 3,
            expected_trigrams: 100,
        };
        let key = Key::from("x y z");
        let mut ctx = ReduceCtx::new();
        let mut acc = job.init(&key, Value::from_u64(1));
        for _ in 0..4 {
            job.cb(&key, &mut acc, job.init(&key, Value::from_u64(1)), &mut ctx);
        }
        assert_eq!(ctx.pending(), 1);
        job.finalize(&key, acc, &mut ctx);
        assert_eq!(ctx.pending(), 1, "no duplicate at finalize");
    }
}
