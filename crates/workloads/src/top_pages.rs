//! Top-k pages by combined visit and session score — the dataflow
//! layer's reshuffle-*skip* showcase.
//!
//! Three jobs form the chain:
//!
//! 1. [`PageSessionsJob`] counts distinct visitors per URL, emitting
//!    9-byte `S`-tagged values so they stay distinguishable from plain
//!    8-byte counts.
//! 2. [`TopPagesJoinJob`] consumes the *union* of the page-frequency
//!    output ([`crate::page_freq::PageFreqJob`], plain 8-byte visit
//!    counts) and the page-sessions output, both keyed by URL. Its map is
//!    the identity on keys, so it declares
//!    [`partition_preserving`](opa_core::api::Job::partition_preserving)
//!    — when both upstream jobs ran under the same partition function,
//!    the dataflow layer hands partitions over **in memory with zero
//!    shuffle bytes** (the M3R case the paper's §7 future-work section
//!    gestures at).
//! 3. [`TopKFunnelJob`] funnels every joined row to a single `top` key
//!    and keeps the k best by score — a deliberate repartition, so the
//!    chain ends with an honest reshuffle for contrast.
//!
//! Scores are integer sums and the funnel's selection is totally ordered
//! (score desc, then URL asc), keeping chained output bit-identical to
//! staged runs at any thread count.

use crate::clickstream::parse_click;
use opa_common::decode_kv;
use opa_core::api::{Job, ReduceCtx};
use opa_core::prelude::{Key, Value};

/// Tag byte marking a page-sessions value (vs an 8-byte visit count).
const SESSION_TAG: u8 = b'S';

fn tagged(n: u64) -> Value {
    let mut v = [0u8; 9];
    v[0] = SESSION_TAG;
    v[1..].copy_from_slice(&n.to_be_bytes());
    Value::from_slice(&v)
}

fn untag(v: &Value) -> Option<u64> {
    match v.bytes().split_first() {
        Some((&SESSION_TAG, rest)) => Some(u64::from_be_bytes(rest.try_into().ok()?)),
        _ => None,
    }
}

/// Distinct visitors per URL, emitted as `S`-tagged 9-byte counts.
#[derive(Debug, Clone)]
pub struct PageSessionsJob {
    /// Expected distinct pages (sizing hint).
    pub expected_pages: u64,
}

impl Default for PageSessionsJob {
    fn default() -> Self {
        PageSessionsJob {
            expected_pages: 100_000,
        }
    }
}

impl Job for PageSessionsJob {
    fn name(&self) -> &str {
        "page-sessions"
    }

    /// Emits `(url, S‖user)` per click; the reduce counts distinct users.
    fn map(&self, record: &[u8], emit: &mut dyn FnMut(&[u8], &[u8])) {
        if let Some((_, user, tail)) = parse_click(record) {
            let url = tail.split(|&b| b == b' ').next().unwrap_or(tail);
            let mut v = [0u8; 9];
            v[0] = SESSION_TAG;
            v[1..].copy_from_slice(&user.to_be_bytes());
            emit(url, &v);
        }
    }

    /// Deduplicates visitor ids and emits the tagged distinct count.
    fn reduce(&self, key: &Key, values: Vec<Value>, ctx: &mut ReduceCtx) {
        let mut users: Vec<u64> = values.iter().filter_map(untag).collect();
        users.sort_unstable();
        users.dedup();
        ctx.emit(key.clone(), tagged(users.len() as u64));
    }

    fn expected_keys(&self) -> Option<u64> {
        Some(self.expected_pages)
    }

    fn state_size_hint(&self) -> Option<u64> {
        Some(64)
    }
}

/// Joins per-URL visit counts with per-URL session counts — the
/// partition-preserving stage.
#[derive(Debug, Clone, Default)]
pub struct TopPagesJoinJob;

impl Job for TopPagesJoinJob {
    fn name(&self) -> &str {
        "top-pages-join"
    }

    /// Identity on keys: framed `(url, count)` records pass through
    /// unchanged, whichever side of the union they came from.
    fn map(&self, record: &[u8], emit: &mut dyn FnMut(&[u8], &[u8])) {
        if let Some((key, value)) = decode_kv(record) {
            emit(key, value);
        }
    }

    /// Merges both sides: 8-byte values are visits, `S`-tagged 9-byte
    /// values are sessions. Emits `[visits u64][sessions u64]`.
    fn reduce(&self, key: &Key, values: Vec<Value>, ctx: &mut ReduceCtx) {
        let mut visits = 0u64;
        let mut sessions = 0u64;
        for v in &values {
            if let Some(s) = untag(v) {
                sessions += s;
            } else if let Some(n) = v.as_u64() {
                visits += n;
            }
        }
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&visits.to_be_bytes());
        out[8..].copy_from_slice(&sessions.to_be_bytes());
        ctx.emit(key.clone(), Value::from_slice(&out));
    }

    /// The whole point: keys are unchanged, so a dataset already
    /// partitioned by the chain's hash function needs no reshuffle.
    fn partition_preserving(&self) -> bool {
        true
    }

    fn state_size_hint(&self) -> Option<u64> {
        Some(32)
    }
}

/// Keeps the k best pages by `visits + sessions` score.
#[derive(Debug, Clone)]
pub struct TopKFunnelJob {
    /// How many pages survive the funnel.
    pub k: usize,
}

impl Default for TopKFunnelJob {
    fn default() -> Self {
        TopKFunnelJob { k: 10 }
    }
}

impl Job for TopKFunnelJob {
    fn name(&self) -> &str {
        "topk-funnel"
    }

    /// Funnels every joined row to the single `top` key as
    /// `[score u64][url…]`.
    fn map(&self, record: &[u8], emit: &mut dyn FnMut(&[u8], &[u8])) {
        let Some((url, value)) = decode_kv(record) else {
            return;
        };
        let (Some(va), Some(vb)) = (value.get(..8), value.get(8..16)) else {
            return;
        };
        let visits = u64::from_be_bytes(va.try_into().unwrap());
        let sessions = u64::from_be_bytes(vb.try_into().unwrap());
        let score = visits.saturating_add(sessions);
        let mut v = Vec::with_capacity(8 + url.len());
        v.extend_from_slice(&score.to_be_bytes());
        v.extend_from_slice(url);
        emit(b"top", &v);
    }

    /// Totally ordered selection: score descending, URL ascending.
    fn reduce(&self, _key: &Key, values: Vec<Value>, ctx: &mut ReduceCtx) {
        let mut rows: Vec<(u64, &[u8])> = values
            .iter()
            .filter_map(|v| {
                let score = u64::from_be_bytes(v.bytes().get(..8)?.try_into().ok()?);
                Some((score, v.bytes().get(8..)?))
            })
            .collect();
        rows.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(b.1)));
        rows.truncate(self.k);
        for (score, url) in rows {
            ctx.emit(Key::from_slice(url), Value::from_u64(score));
        }
    }

    fn expected_keys(&self) -> Option<u64> {
        Some(1)
    }

    fn state_size_hint(&self) -> Option<u64> {
        Some(4096)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clickstream::format_click;
    use opa_common::encode_kv;

    #[test]
    fn page_sessions_counts_distinct_visitors() {
        let job = PageSessionsJob::default();
        let mut values = Vec::new();
        // Users 1, 1, 2 hit the same page: 2 distinct visitors.
        for user in [1, 1, 2] {
            job.map(&format_click(0, user, 9), &mut |k, v| {
                assert_eq!(k, b"/en/page00009.html");
                values.push(Value::from_slice(v));
            });
        }
        let mut ctx = ReduceCtx::new();
        job.reduce(&Key::from("/en/page00009.html"), values, &mut ctx);
        assert_eq!(untag(&ctx.drain()[0].value), Some(2));
    }

    #[test]
    fn join_is_identity_on_keys_and_merges_both_sides() {
        let join = TopPagesJoinJob;
        assert!(Job::partition_preserving(&join));
        let mut values = Vec::new();
        // One page_freq row (8-byte visits) and one page-sessions row.
        for rec in [
            encode_kv(b"/a", &7u64.to_be_bytes()),
            encode_kv(b"/a", tagged(3).bytes()),
        ] {
            join.map(&rec, &mut |k, v| {
                assert_eq!(k, b"/a", "key must pass through unchanged");
                values.push(Value::from_slice(v));
            });
        }
        let mut ctx = ReduceCtx::new();
        join.reduce(&Key::from("/a"), values, &mut ctx);
        let out = ctx.drain();
        assert_eq!(out[0].value.bytes()[..8], 7u64.to_be_bytes());
        assert_eq!(out[0].value.bytes()[8..], 3u64.to_be_bytes());
    }

    #[test]
    fn funnel_keeps_k_best_with_total_order() {
        let job = TopKFunnelJob { k: 2 };
        let mut values = Vec::new();
        for (url, visits, sessions) in [(b"/c" as &[u8], 5u64, 0u64), (b"/a", 2, 3), (b"/b", 1, 1)]
        {
            let mut joined = [0u8; 16];
            joined[..8].copy_from_slice(&visits.to_be_bytes());
            joined[8..].copy_from_slice(&sessions.to_be_bytes());
            job.map(&encode_kv(url, &joined), &mut |k, v| {
                assert_eq!(k, b"top");
                values.push(Value::from_slice(v));
            });
        }
        let mut ctx = ReduceCtx::new();
        job.reduce(&Key::from("top"), values, &mut ctx);
        let out = ctx.drain();
        assert_eq!(out.len(), 2);
        // /a and /c tie at score 5: URL ascending breaks the tie.
        assert_eq!(out[0].key.bytes(), b"/a");
        assert_eq!(out[1].key.bytes(), b"/c");
        assert_eq!(out[0].value.as_u64(), Some(5));
    }
}
