//! User click counting (§2.3): count the clicks each user made.
//!
//! The combiner-friendly workload: map emits ⟨user, 1⟩, the combiner and
//! the incremental `cb` both just add counters, and the whole key-state
//! space is 8 bytes per user — it fits in reduce memory, so the hash
//! frameworks run with zero reduce spill (Table 3's 0 GB rows).

use crate::clickstream::parse_click;
use opa_core::api::{Combiner, IncrementalReducer, Job, ReduceCtx};
use opa_core::prelude::{Key, Value};

/// The click-counting job.
#[derive(Debug, Clone)]
pub struct ClickCountJob {
    /// Expected distinct users (sizing hint).
    pub expected_users: u64,
}

impl Default for ClickCountJob {
    fn default() -> Self {
        ClickCountJob {
            expected_users: 10_000,
        }
    }
}

impl Combiner for ClickCountJob {
    fn combine(&self, _key: &Key, values: Vec<Value>) -> Vec<Value> {
        let sum: u64 = values.iter().filter_map(Value::as_u64).sum();
        vec![Value::from_u64(sum)]
    }

    fn supports_fold(&self) -> bool {
        true
    }

    fn fold(&self, _key: &Key, acc: &mut Value, value: Value) {
        let sum = acc.as_u64().unwrap_or(0) + value.as_u64().unwrap_or(0);
        *acc = Value::from_u64(sum);
    }
}

impl IncrementalReducer for ClickCountJob {
    fn init(&self, _key: &Key, value: Value) -> Value {
        value // already a count
    }

    fn cb(&self, _key: &Key, acc: &mut Value, other: Value, _ctx: &mut ReduceCtx) {
        let sum = acc.as_u64().unwrap_or(0) + other.as_u64().unwrap_or(0);
        *acc = Value::from_u64(sum);
    }

    fn finalize(&self, key: &Key, state: Value, ctx: &mut ReduceCtx) {
        ctx.emit(key.clone(), state);
    }
}

impl Job for ClickCountJob {
    fn name(&self) -> &str {
        "user click counting"
    }

    fn map(&self, record: &[u8], emit: &mut dyn FnMut(&[u8], &[u8])) {
        if let Some((_, user, _)) = parse_click(record) {
            emit(&user.to_be_bytes(), &1u64.to_be_bytes());
        }
    }

    fn reduce(&self, key: &Key, values: Vec<Value>, ctx: &mut ReduceCtx) {
        let sum: u64 = values.iter().filter_map(Value::as_u64).sum();
        ctx.emit(key.clone(), Value::from_u64(sum));
    }

    fn combiner(&self) -> Option<&dyn Combiner> {
        Some(self)
    }

    fn incremental(&self) -> Option<&dyn IncrementalReducer> {
        Some(self)
    }

    fn expected_keys(&self) -> Option<u64> {
        Some(self.expected_users)
    }

    fn state_size_hint(&self) -> Option<u64> {
        Some(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clickstream::format_click;

    #[test]
    fn fold_agrees_with_combine() {
        let job = ClickCountJob::default();
        assert!(Combiner::supports_fold(&job));
        let key = Key::from("user");
        let values: Vec<Value> = [3u64, 0, 41, 7].iter().map(|&v| Value::from_u64(v)).collect();
        let combined = job.combine(&key, values.clone());
        let mut acc = values[0].clone();
        for v in &values[1..] {
            Combiner::fold(&job, &key, &mut acc, v.clone());
        }
        assert_eq!(combined, vec![acc]);
    }

    #[test]
    fn map_extracts_user() {
        let job = ClickCountJob::default();
        let rec = format_click(123, 42, 7);
        let mut out = Vec::new();
        job.map(&rec, &mut |k, v| {
            out.push((Key::from_slice(k), Value::from_slice(v)))
        });
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0.as_u64(), Some(42));
        assert_eq!(out[0].1.as_u64(), Some(1));
    }

    #[test]
    fn malformed_records_are_skipped() {
        let job = ClickCountJob::default();
        let mut out: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        job.map(b"garbage", &mut |k, v| out.push((k.to_vec(), v.to_vec())));
        assert!(out.is_empty());
    }

    #[test]
    fn reduce_combiner_and_cb_agree() {
        let job = ClickCountJob::default();
        let key = Key::from_u64(1);
        let values: Vec<Value> = (0..5).map(|_| Value::from_u64(1)).collect();

        let mut ctx = ReduceCtx::new();
        job.reduce(&key, values.clone(), &mut ctx);
        let reduced = ctx.drain()[0].value.as_u64();

        let combined = job.combine(&key, values.clone())[0].as_u64();

        let mut acc = job.init(&key, values[0].clone());
        let mut ictx = ReduceCtx::new();
        for v in &values[1..] {
            job.cb(&key, &mut acc, v.clone(), &mut ictx);
        }
        let mut fctx = ReduceCtx::new();
        job.finalize(&key, acc, &mut fctx);
        let inc = fctx.drain()[0].value.as_u64();

        assert_eq!(reduced, Some(5));
        assert_eq!(combined, Some(5));
        assert_eq!(inc, Some(5));
    }
}
