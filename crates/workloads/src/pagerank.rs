//! PageRank over the click graph — the dataflow layer's iterative
//! workload.
//!
//! Two jobs chain into a k-round pipeline:
//!
//! 1. [`PageRankInitJob`] builds the bipartite user↔page graph from raw
//!    clicks: every click `(user, url)` contributes both edge directions,
//!    and each node's reduce call emits one *node record* — its rank
//!    (fixed-point, [`SCALE`] = 1.0) packed with its deduplicated,
//!    degree-capped adjacency list.
//! 2. [`PageRankRoundJob`] runs one power-iteration round over node
//!    records: the map scatters each node's damped rank share to its
//!    neighbors and forwards the adjacency to the node itself; the reduce
//!    sums contributions and re-emits the node record with the new rank.
//!
//! Because the round's map emits to *neighbor* keys, it is **not**
//! partition-preserving — every round legitimately crosses a reshuffle,
//! which is exactly what makes PageRank the dataflow benchmark's
//! full-shuffle case (contrast [`crate::top_pages`], the skip case).
//!
//! All arithmetic is integer fixed-point and order-insensitive, so
//! chained rounds stay bit-identical at any thread count.

use crate::clickstream::parse_click;
use opa_common::decode_kv;
use opa_core::api::{Job, ReduceCtx};
use opa_core::prelude::{Key, Value};

/// Fixed-point scale: a rank of 1.0.
pub const SCALE: u64 = 1_000_000;
/// Damping factor 0.85 in [`SCALE`] fixed point.
const DAMPING: u64 = 850_000;
/// Per-node adjacency cap: keeps node records bounded on heavy-tailed
/// click graphs (the cap keeps the *hottest-sorted-first* neighbors
/// deterministically: lexicographically smallest after dedup).
const MAX_DEGREE: usize = 32;

/// Packs a node record value: `[rank u64][n u32]` then `n` length-framed
/// neighbor keys.
pub fn encode_node(rank: u64, neighbors: &[&[u8]]) -> Vec<u8> {
    let mut v = Vec::with_capacity(12 + neighbors.iter().map(|n| 4 + n.len()).sum::<usize>());
    v.extend_from_slice(&rank.to_be_bytes());
    v.extend_from_slice(&(neighbors.len() as u32).to_be_bytes());
    for n in neighbors {
        v.extend_from_slice(&(n.len() as u32).to_be_bytes());
        v.extend_from_slice(n);
    }
    v
}

/// Unpacks a node record value into `(rank, neighbors)`.
pub fn decode_node(value: &[u8]) -> Option<(u64, Vec<&[u8]>)> {
    let rank = u64::from_be_bytes(value.get(..8)?.try_into().ok()?);
    let n = u32::from_be_bytes(value.get(8..12)?.try_into().ok()?) as usize;
    let mut neighbors = Vec::with_capacity(n);
    let mut at = 12;
    for _ in 0..n {
        let len = u32::from_be_bytes(value.get(at..at + 4)?.try_into().ok()?) as usize;
        at += 4;
        neighbors.push(value.get(at..at + len)?);
        at += len;
    }
    (at == value.len()).then_some((rank, neighbors))
}

/// Builds the bipartite click graph and assigns every node rank 1.0.
#[derive(Debug, Clone, Default)]
pub struct PageRankInitJob;

impl Job for PageRankInitJob {
    fn name(&self) -> &str {
        "pagerank-init"
    }

    /// Each click `(user, url)` emits both edge directions: node keys are
    /// `u!<user>` for users and the URL itself for pages (URLs start with
    /// `/`, so the namespaces cannot collide).
    fn map(&self, record: &[u8], emit: &mut dyn FnMut(&[u8], &[u8])) {
        if let Some((_, user, tail)) = parse_click(record) {
            let url = tail.split(|&b| b == b' ').next().unwrap_or(tail);
            let mut ukey = *b"u!00000000";
            ukey[2..].copy_from_slice(format!("{user:08}").as_bytes());
            emit(&ukey, url);
            emit(url, &ukey);
        }
    }

    /// Deduplicates and caps the neighbor list, then emits the node
    /// record at rank 1.0.
    fn reduce(&self, key: &Key, values: Vec<Value>, ctx: &mut ReduceCtx) {
        let mut neighbors: Vec<&[u8]> = values.iter().map(Value::bytes).collect();
        neighbors.sort_unstable();
        neighbors.dedup();
        neighbors.truncate(MAX_DEGREE);
        ctx.emit(key.clone(), Value::new(encode_node(SCALE, &neighbors)));
    }

    fn state_size_hint(&self) -> Option<u64> {
        Some(256)
    }
}

/// One PageRank power-iteration round over node records.
#[derive(Debug, Clone, Default)]
pub struct PageRankRoundJob;

impl Job for PageRankRoundJob {
    fn name(&self) -> &str {
        "pagerank-round"
    }

    /// Input records are framed `(node, node-record)` pairs from the
    /// previous round. Scatters `d·rank/degree` to each neighbor (tag
    /// `C`) and forwards the adjacency to the node itself (tag `A`).
    fn map(&self, record: &[u8], emit: &mut dyn FnMut(&[u8], &[u8])) {
        let Some((node, value)) = decode_kv(record) else {
            return;
        };
        let Some((rank, neighbors)) = decode_node(value) else {
            return;
        };
        // Adjacency survives the round attached to its own node.
        let mut adj = Vec::with_capacity(1 + (value.len() - 8));
        adj.push(b'A');
        adj.extend_from_slice(&value[8..]);
        emit(node, &adj);
        if neighbors.is_empty() {
            return;
        }
        let share =
            ((rank as u128 * DAMPING as u128) / SCALE as u128) as u64 / neighbors.len() as u64;
        let mut contrib = [0u8; 9];
        contrib[0] = b'C';
        contrib[1..].copy_from_slice(&share.to_be_bytes());
        for n in neighbors {
            emit(n, &contrib);
        }
    }

    /// `rank' = (1 − d)·1 + Σ contributions` (damping already folded into
    /// the shares), re-packed with the forwarded adjacency.
    fn reduce(&self, key: &Key, values: Vec<Value>, ctx: &mut ReduceCtx) {
        let mut sum = 0u64;
        let mut adjacency: Option<&[u8]> = None;
        for v in &values {
            match v.bytes().split_first() {
                Some((b'C', share)) => {
                    if let Ok(bytes) = <[u8; 8]>::try_from(share) {
                        sum += u64::from_be_bytes(bytes);
                    }
                }
                Some((b'A', adj)) => adjacency = Some(adj),
                _ => {}
            }
        }
        let rank = (SCALE - DAMPING) + sum;
        let mut out = Vec::with_capacity(8 + adjacency.map_or(4, <[u8]>::len));
        out.extend_from_slice(&rank.to_be_bytes());
        // A node no round-input record claimed (dangling) keeps an empty
        // adjacency so later rounds still carry its rank.
        out.extend_from_slice(adjacency.unwrap_or(&0u32.to_be_bytes()));
        ctx.emit(key.clone(), Value::new(out));
    }

    fn state_size_hint(&self) -> Option<u64> {
        Some(256)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clickstream::format_click;
    use opa_common::encode_kv;

    #[test]
    fn node_record_roundtrip() {
        let v = encode_node(SCALE, &[b"/a", b"u!00000001"]);
        let (rank, neighbors) = decode_node(&v).expect("decodes");
        assert_eq!(rank, SCALE);
        assert_eq!(neighbors, vec![b"/a".as_slice(), b"u!00000001".as_slice()]);
        assert!(decode_node(&v[..v.len() - 1]).is_none(), "truncated fails");
    }

    #[test]
    fn init_emits_both_edge_directions_and_dedups() {
        let init = PageRankInitJob;
        let mut pairs = Vec::new();
        // Same user clicks the same page twice.
        for _ in 0..2 {
            init.map(&format_click(10, 42, 7), &mut |k, v| {
                pairs.push((k.to_vec(), Value::from_slice(v)));
            });
        }
        assert_eq!(pairs.len(), 4);
        assert_eq!(pairs[0].0, b"u!00000042");
        assert_eq!(pairs[1].0, b"/en/page00007.html");
        let mut ctx = ReduceCtx::new();
        init.reduce(
            &Key::from("u!00000042"),
            vec![pairs[0].1.clone(), pairs[2].1.clone()],
            &mut ctx,
        );
        let out = ctx.drain();
        let (rank, neighbors) = decode_node(out[0].value.bytes()).expect("node record");
        assert_eq!(rank, SCALE);
        assert_eq!(neighbors.len(), 1, "duplicate edge must dedup");
    }

    #[test]
    fn round_conserves_damped_mass_on_a_2_cycle() {
        // Two nodes pointing at each other: each round every node gets
        // (1−d) + d·1.0 = 1.0 back. Fixed point of the iteration.
        let round = PageRankRoundJob;
        let a = encode_kv(b"/a", &encode_node(SCALE, &[b"/b"]));
        let b = encode_kv(b"/b", &encode_node(SCALE, &[b"/a"]));
        let mut per_key: std::collections::BTreeMap<Vec<u8>, Vec<Value>> = Default::default();
        for rec in [&a, &b] {
            round.map(rec, &mut |k, v| {
                per_key
                    .entry(k.to_vec())
                    .or_default()
                    .push(Value::from_slice(v));
            });
        }
        for (k, values) in per_key {
            let mut ctx = ReduceCtx::new();
            round.reduce(&Key::from_slice(&k), values, &mut ctx);
            let out = ctx.drain();
            let (rank, neighbors) = decode_node(out[0].value.bytes()).expect("node record");
            assert_eq!(rank, SCALE, "2-cycle is a fixed point");
            assert_eq!(neighbors.len(), 1, "adjacency must survive the round");
        }
    }

    #[test]
    fn round_is_not_partition_preserving() {
        assert!(!Job::partition_preserving(&PageRankRoundJob));
        assert!(!Job::partition_preserving(&PageRankInitJob));
    }
}
