//! A small, deterministic Zipf sampler.
//!
//! Both generators need Zipf-distributed popularity (hot users, hot words).
//! The sampler precomputes the CDF once and draws by binary search, using
//! the platform's own [`SplitMix64`] so streams are stable across `rand`
//! versions and platforms.

use opa_common::rng::SplitMix64;

/// Zipf distribution over ranks `0..n` with exponent `s`:
/// `P(rank k) ∝ 1/(k+1)^s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "support size must be positive");
        assert!(
            s.is_finite() && s >= 0.0,
            "exponent must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in cdf.iter_mut() {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Draws a rank in `0..n`.
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        let u = rng.next_f64();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Support size.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_when_exponent_zero() {
        let z = Zipf::new(10, 0.0);
        let mut rng = SplitMix64::new(1);
        let mut hits = [0usize; 10];
        for _ in 0..20_000 {
            hits[z.sample(&mut rng)] += 1;
        }
        for &h in &hits {
            assert!((1600..2400).contains(&h), "not uniform: {hits:?}");
        }
    }

    #[test]
    fn skewed_when_exponent_positive() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = SplitMix64::new(2);
        let mut rank0 = 0usize;
        let n = 50_000;
        for _ in 0..n {
            if z.sample(&mut rng) == 0 {
                rank0 += 1;
            }
        }
        // Under Zipf(1) over 1000 ranks, rank 0 gets ~1/H_1000 ≈ 13.4%.
        let frac = rank0 as f64 / n as f64;
        assert!((0.10..0.17).contains(&frac), "rank-0 share {frac}");
    }

    #[test]
    fn higher_exponent_more_skew() {
        let mut rng = SplitMix64::new(3);
        let share = |s: f64, rng: &mut SplitMix64| {
            let z = Zipf::new(100, s);
            let mut head = 0usize;
            for _ in 0..20_000 {
                if z.sample(rng) < 5 {
                    head += 1;
                }
            }
            head as f64 / 20_000.0
        };
        let mild = share(0.5, &mut rng);
        let steep = share(1.5, &mut rng);
        assert!(steep > mild + 0.2, "mild={mild} steep={steep}");
    }

    #[test]
    fn deterministic_across_runs() {
        let z = Zipf::new(50, 1.2);
        let a: Vec<usize> = {
            let mut r = SplitMix64::new(9);
            (0..32).map(|_| z.sample(&mut r)).collect()
        };
        let b: Vec<usize> = {
            let mut r = SplitMix64::new(9);
            (0..32).map(|_| z.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "support size")]
    fn empty_support_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
