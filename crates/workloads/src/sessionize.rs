//! Sessionization: reorder a click stream into per-user sessions (§2.3).
//!
//! *Map* extracts the user id and re-keys each click (`K_m ≈ 1`, no
//! combiner possible — every record must survive). *Reduce* orders a
//! user's clicks by timestamp and splits them into sessions closed by
//! `gap` (300 s) of inactivity; each output record is the click annotated
//! with its session's start timestamp, so session identity is
//! order-independent and verifiable.
//!
//! ## Incremental state (INC/DINC)
//!
//! The state is a fixed-capacity *reorder buffer* plus an *anchor*:
//!
//! ```text
//! [flags u8][anchor_start u64][anchor_last u64][n u16] n×[ts u64][len u8][tail…]
//! ```
//!
//! Buffered clicks are merged in timestamp order; a click is drained
//! (emitted) once the reducer watermark guarantees no earlier click can
//! still arrive (`ts < watermark − slack`). The anchor remembers the open
//! session of already-drained clicks, so a slightly tardy click that still
//! belongs to the current session is labelled correctly. When the buffer
//! overflows its fixed capacity (the paper's 0.5/1/2 KB state sizes) the
//! oldest click is force-drained — precisely the paper's "a sufficiently
//! large buffer can guarantee the input order" caveat: under-provisioned
//! states may fragment a hot user's sessions but never lose a click.
//!
//! The DINC eviction rule of §6.2 is implemented via [`can_evict`]: a state
//! may leave the monitor only when every buffered click belongs to an
//! expired session, in which case eviction *outputs* the clicks instead of
//! spilling them.
//!
//! [`can_evict`]: opa_core::api::IncrementalReducer::can_evict

use crate::clickstream::parse_click;
use opa_core::api::{IncrementalReducer, Job, ReduceCtx, Site};
use opa_core::prelude::{Key, Value};

/// The sessionization job.
#[derive(Debug, Clone)]
pub struct SessionizeJob {
    /// Inactivity gap closing a session, seconds (paper: 5 minutes).
    pub gap_secs: u64,
    /// Watermark slack: a click is only drained once
    /// `ts < watermark − slack`. Must exceed the stream's total disorder.
    pub slack_secs: u64,
    /// Fixed state capacity in bytes (the paper's 0.5/1/2 KB knob).
    pub state_capacity: usize,
    /// Whether a resident state is charged its full fixed capacity (the
    /// paper's pre-allocated buffers — the default) or its actual encoded
    /// size (useful when `state_capacity` is a generous cap rather than a
    /// pre-allocation).
    pub charge_fixed_footprint: bool,
    /// Expected distinct users (sizing hint).
    pub expected_users: u64,
}

impl Default for SessionizeJob {
    fn default() -> Self {
        SessionizeJob {
            gap_secs: 300,
            slack_secs: 240,
            state_capacity: 512,
            charge_fixed_footprint: true,
            expected_users: 10_000,
        }
    }
}

impl SessionizeJob {
    /// Job with an explicit state capacity.
    pub fn with_state_capacity(capacity: usize) -> Self {
        SessionizeJob {
            state_capacity: capacity,
            ..SessionizeJob::default()
        }
    }
}

// ---------------------------------------------------------------------
// Click value layout: [ts u64][tail…]
// ---------------------------------------------------------------------

fn click_value(ts: u64, tail: &[u8]) -> Value {
    let mut v = Vec::with_capacity(8 + tail.len());
    v.extend_from_slice(&ts.to_be_bytes());
    v.extend_from_slice(tail);
    Value::new(v)
}

fn decode_click(v: &[u8]) -> (u64, &[u8]) {
    let ts = u64::from_be_bytes(v[..8].try_into().expect("click value has ts"));
    (ts, &v[8..])
}

/// Output value layout: [session_start u64][ts u64][tail…].
pub fn session_output(session_start: u64, ts: u64, tail: &[u8]) -> Value {
    let mut v = Vec::with_capacity(16 + tail.len());
    v.extend_from_slice(&session_start.to_be_bytes());
    v.extend_from_slice(&ts.to_be_bytes());
    v.extend_from_slice(tail);
    Value::new(v)
}

/// Decodes an output record into (session_start, ts, tail).
pub fn decode_output(v: &[u8]) -> (u64, u64, &[u8]) {
    let s = u64::from_be_bytes(v[..8].try_into().expect("output has session start"));
    let t = u64::from_be_bytes(v[8..16].try_into().expect("output has ts"));
    (s, t, &v[16..])
}

// ---------------------------------------------------------------------
// Incremental state
// ---------------------------------------------------------------------

/// In-memory view of the serialized state.
#[derive(Debug, Clone, PartialEq)]
struct SessionState {
    /// Open-session context of already-drained clicks:
    /// (session_start, last_drained_ts).
    anchor: Option<(u64, u64)>,
    /// Buffered clicks, sorted by (ts, tail).
    clicks: Vec<(u64, Vec<u8>)>,
}

impl SessionState {
    fn decode(v: &[u8]) -> SessionState {
        let flags = v[0];
        let anchor = if flags & 1 != 0 {
            Some((
                u64::from_be_bytes(v[1..9].try_into().expect("anchor start")),
                u64::from_be_bytes(v[9..17].try_into().expect("anchor last")),
            ))
        } else {
            None
        };
        let n = u16::from_be_bytes(v[17..19].try_into().expect("count")) as usize;
        let mut clicks = Vec::with_capacity(n);
        let mut i = 19;
        for _ in 0..n {
            let ts = u64::from_be_bytes(v[i..i + 8].try_into().expect("click ts"));
            let len = v[i + 8] as usize;
            clicks.push((ts, v[i + 9..i + 9 + len].to_vec()));
            i += 9 + len;
        }
        SessionState { anchor, clicks }
    }

    fn encode(&self) -> Value {
        let mut v = Vec::with_capacity(self.encoded_len());
        let (flags, a, b) = match self.anchor {
            Some((s, l)) => (1u8, s, l),
            None => (0u8, 0, 0),
        };
        v.push(flags);
        v.extend_from_slice(&a.to_be_bytes());
        v.extend_from_slice(&b.to_be_bytes());
        v.extend_from_slice(&(self.clicks.len() as u16).to_be_bytes());
        for (ts, tail) in &self.clicks {
            v.extend_from_slice(&ts.to_be_bytes());
            v.push(tail.len() as u8);
            v.extend_from_slice(tail);
        }
        Value::new(v)
    }

    fn encoded_len(&self) -> usize {
        19 + self
            .clicks
            .iter()
            .map(|(_, tail)| 9 + tail.len())
            .sum::<usize>()
    }

    fn single(ts: u64, tail: &[u8]) -> SessionState {
        SessionState {
            anchor: None,
            clicks: vec![(ts, tail.to_vec())],
        }
    }

    fn merge(&mut self, other: SessionState) {
        // Anchors only collide on DINC respill paths; keep the later one
        // (its drained clicks are the most recent — see module docs).
        self.anchor = match (self.anchor, other.anchor) {
            (Some(a), Some(b)) => Some(if a.1 >= b.1 { a } else { b }),
            (a, b) => a.or(b),
        };
        self.clicks.extend(other.clicks);
        self.clicks.sort();
    }

    /// Latest activity in the state (buffered or drained).
    fn last_activity(&self) -> u64 {
        let buffered = self.clicks.last().map(|&(ts, _)| ts).unwrap_or(0);
        let drained = self.anchor.map(|(_, l)| l).unwrap_or(0);
        buffered.max(drained)
    }

    /// Drains clicks with `ts < close_point`, emitting them with session
    /// labels; then force-drains oldest clicks while over `capacity`.
    fn drain(
        &mut self,
        key: &Key,
        close_point: u64,
        capacity: usize,
        gap: u64,
        ctx: &mut ReduceCtx,
    ) {
        let mut i = 0;
        while i < self.clicks.len() {
            let within_close = self.clicks[i].0 < close_point;
            let over_capacity = self.encoded_len()
                - self.clicks[..i]
                    .iter()
                    .map(|(_, t)| 9 + t.len())
                    .sum::<usize>()
                > capacity;
            if !within_close && !over_capacity {
                break;
            }
            let (ts, ref tail) = self.clicks[i];
            match self.anchor {
                // Within (or extending) the open session.
                Some((s, last)) if ts <= last + gap && ts >= s => {
                    ctx.emit(key.clone(), session_output(s, ts, tail));
                    self.anchor = Some((s, last.max(ts)));
                }
                // Older than the open session's start: only possible on
                // DINC respill merges (the documented approximation).
                // Emit as its own singleton session and leave the anchor
                // alone, so the open session's structure stays valid.
                Some((s, _)) if ts < s => {
                    ctx.emit(key.clone(), session_output(ts, ts, tail));
                }
                // Gap exceeded (or no session yet): a new session opens.
                _ => {
                    ctx.emit(key.clone(), session_output(ts, ts, tail));
                    self.anchor = Some((ts, ts));
                }
            }
            i += 1;
        }
        self.clicks.drain(..i);
    }

    /// Whether every buffered click belongs to an expired session at the
    /// given close point (the §6.2 eviction rule).
    fn expired(&self, close_point: u64, gap: u64) -> bool {
        self.clicks.is_empty() || self.last_activity() + gap < close_point
    }
}

impl IncrementalReducer for SessionizeJob {
    fn init(&self, _key: &Key, value: Value) -> Value {
        let (ts, tail) = decode_click(value.bytes());
        SessionState::single(ts, tail).encode()
    }

    fn cb(&self, key: &Key, acc: &mut Value, other: Value, ctx: &mut ReduceCtx) {
        let mut state = SessionState::decode(acc.bytes());
        state.merge(SessionState::decode(other.bytes()));
        // Only reduce-side processing may emit: map-side chunks see a
        // partial stream (and states there stay tiny anyway).
        if ctx.site == Site::Reduce {
            let close_point = ctx
                .watermark
                .map(|w| w.saturating_sub(self.slack_secs))
                .unwrap_or(0);
            state.drain(key, close_point, self.state_capacity, self.gap_secs, ctx);
        }
        *acc = state.encode();
    }

    fn finalize(&self, key: &Key, state: Value, ctx: &mut ReduceCtx) {
        let mut s = SessionState::decode(state.bytes());
        s.drain(key, u64::MAX, 0, self.gap_secs, ctx);
    }

    fn state_mem_size(&self, state: &Value) -> u64 {
        // States are fixed-size pre-allocated reorder buffers (§6.1): a
        // resident key costs its full capacity regardless of fill (unless
        // configured as a soft cap).
        if self.charge_fixed_footprint {
            self.state_capacity as u64
        } else {
            state.len() as u64
        }
    }

    fn event_time(&self, state: &Value) -> Option<u64> {
        Some(SessionState::decode(state.bytes()).last_activity())
    }

    fn can_evict(&self, _key: &Key, state: &Value, watermark: Option<u64>) -> bool {
        let Some(w) = watermark else { return false };
        let close_point = w.saturating_sub(self.slack_secs);
        SessionState::decode(state.bytes()).expired(close_point, self.gap_secs)
    }

    fn evict(
        &self,
        key: &Key,
        state: Value,
        watermark: Option<u64>,
        ctx: &mut ReduceCtx,
    ) -> Option<Value> {
        let mut s = SessionState::decode(state.bytes());
        let close_point = watermark
            .map(|w| w.saturating_sub(self.slack_secs))
            .unwrap_or(0);
        if s.expired(close_point, self.gap_secs) {
            // Complete: output directly, nothing touches disk.
            s.drain(key, u64::MAX, 0, self.gap_secs, ctx);
            None
        } else {
            Some(state)
        }
    }
}

impl Job for SessionizeJob {
    fn name(&self) -> &str {
        "sessionization"
    }

    fn map(&self, record: &[u8], emit: &mut dyn FnMut(&[u8], &[u8])) {
        if let Some((ts, user, tail)) = parse_click(record) {
            // [ts u64][tail…] assembled in a stack-backed scratch buffer
            // (tails are short click URLs; spill to heap only if not).
            let mut scratch = [0u8; 64];
            if 8 + tail.len() <= scratch.len() {
                scratch[..8].copy_from_slice(&ts.to_be_bytes());
                scratch[8..8 + tail.len()].copy_from_slice(tail);
                emit(&user.to_be_bytes(), &scratch[..8 + tail.len()]);
            } else {
                emit(&user.to_be_bytes(), click_value(ts, tail).bytes());
            }
        }
    }

    fn reduce(&self, key: &Key, values: Vec<Value>, ctx: &mut ReduceCtx) {
        // Classic semantics: full sort by timestamp, then gap splitting —
        // the oracle the incremental path is tested against.
        let mut clicks: Vec<(u64, Vec<u8>)> = values
            .iter()
            .map(|v| {
                let (ts, tail) = decode_click(v.bytes());
                (ts, tail.to_vec())
            })
            .collect();
        clicks.sort();
        let mut session_start = 0u64;
        let mut last = None::<u64>;
        for (ts, tail) in clicks {
            match last {
                Some(l) if ts <= l + self.gap_secs => {}
                _ => session_start = ts,
            }
            ctx.emit(key.clone(), session_output(session_start, ts, &tail));
            last = Some(ts);
        }
    }

    fn incremental(&self) -> Option<&dyn IncrementalReducer> {
        Some(self)
    }

    fn expected_keys(&self) -> Option<u64> {
        Some(self.expected_users)
    }

    fn state_size_hint(&self) -> Option<u64> {
        Some(self.state_capacity as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opa_core::api::Site;

    fn click(ts: u64) -> Value {
        click_value(ts, b"/p")
    }

    #[test]
    fn state_roundtrips_through_bytes() {
        let mut s = SessionState::single(100, b"/a");
        s.merge(SessionState::single(50, b"/b"));
        s.anchor = Some((10, 40));
        let decoded = SessionState::decode(s.encode().bytes());
        assert_eq!(decoded, s);
        assert_eq!(decoded.clicks[0].0, 50, "clicks sorted after merge");
    }

    #[test]
    fn classic_reduce_splits_on_gap() {
        let job = SessionizeJob::default();
        let mut ctx = ReduceCtx::new();
        let key = Key::from_u64(7);
        job.reduce(
            &key,
            vec![click(1000), click(1100), click(2000), click(1050)],
            &mut ctx,
        );
        let out = ctx.drain();
        assert_eq!(out.len(), 4);
        let sessions: Vec<(u64, u64)> = out
            .iter()
            .map(|p| {
                let (s, t, _) = decode_output(p.value.bytes());
                (s, t)
            })
            .collect();
        // 1000, 1050, 1100 share a session; 2000 (gap 900 > 300) starts one.
        assert_eq!(
            sessions,
            vec![(1000, 1000), (1000, 1050), (1000, 1100), (2000, 2000)]
        );
    }

    #[test]
    fn incremental_matches_classic_in_order() {
        let job = SessionizeJob::default();
        let key = Key::from_u64(1);
        // Classic.
        let mut cctx = ReduceCtx::new();
        let ts = [100u64, 160, 220, 900, 950, 2000];
        job.reduce(&key, ts.iter().map(|&t| click(t)).collect(), &mut cctx);
        let mut classic: Vec<(u64, u64)> = cctx
            .drain()
            .iter()
            .map(|p| {
                let (s, t, _) = decode_output(p.value.bytes());
                (s, t)
            })
            .collect();
        classic.sort_unstable();
        // Incremental with watermark advancing.
        let mut ictx = ReduceCtx::new();
        let mut acc = job.init(&key, click(ts[0]));
        for &t in &ts[1..] {
            ictx.advance_watermark(t);
            job.cb(&key, &mut acc, job.init(&key, click(t)), &mut ictx);
        }
        job.finalize(&key, acc, &mut ictx);
        let mut inc: Vec<(u64, u64)> = ictx
            .drain()
            .iter()
            .map(|p| {
                let (s, t, _) = decode_output(p.value.bytes());
                (s, t)
            })
            .collect();
        inc.sort_unstable();
        assert_eq!(inc, classic);
    }

    #[test]
    fn anchor_labels_tardy_click_correctly() {
        let job = SessionizeJob {
            slack_secs: 10,
            ..SessionizeJob::default()
        };
        let key = Key::from_u64(2);
        let mut ctx = ReduceCtx::new();
        let mut acc = job.init(&key, click(100));
        // Watermark at 300 (close point 290): click 100 drains, opening
        // session 100; click 400 stays buffered.
        ctx.advance_watermark(300);
        job.cb(&key, &mut acc, job.init(&key, click(400)), &mut ctx);
        let drained = ctx.drain();
        assert_eq!(drained.len(), 1, "click 100 drained, 400 buffered");
        // A tardy click at 150 still joins session 100 via the anchor.
        job.cb(&key, &mut acc, job.init(&key, click(150)), &mut ctx);
        job.finalize(&key, acc, &mut ctx);
        let rest = ctx.drain();
        let mut labels: Vec<(u64, u64)> = rest
            .iter()
            .map(|p| {
                let (s, t, _) = decode_output(p.value.bytes());
                (s, t)
            })
            .collect();
        labels.sort_unstable();
        assert_eq!(labels, vec![(100, 150), (100, 400)]);
    }

    #[test]
    fn capacity_overflow_force_drains_oldest() {
        let job = SessionizeJob {
            state_capacity: 60, // fits ~3 clicks of this size
            slack_secs: 1_000_000,
            ..SessionizeJob::default()
        };
        let key = Key::from_u64(3);
        let mut ctx = ReduceCtx::new();
        let mut acc = job.init(&key, click(10));
        for t in [20u64, 30, 40, 50, 60] {
            ctx.advance_watermark(t);
            job.cb(&key, &mut acc, job.init(&key, click(t)), &mut ctx);
        }
        // Watermark never clears slack, yet the buffer cannot exceed
        // capacity: some clicks must have been force-drained.
        assert!(!ctx.drain().is_empty(), "force-drain did not happen");
        assert!(SessionState::decode(acc.bytes()).encoded_len() <= 60 + 30);
    }

    #[test]
    fn map_site_never_emits() {
        let job = SessionizeJob::default();
        let key = Key::from_u64(4);
        let mut ctx = ReduceCtx::at_site(Site::Map);
        ctx.advance_watermark(100_000);
        let mut acc = job.init(&key, click(10));
        job.cb(&key, &mut acc, job.init(&key, click(20)), &mut ctx);
        assert_eq!(ctx.pending(), 0);
        assert_eq!(SessionState::decode(acc.bytes()).clicks.len(), 2);
    }

    #[test]
    fn eviction_rule_honours_expiry() {
        let job = SessionizeJob::default();
        let key = Key::from_u64(5);
        let state = job.init(&key, click(100));
        // Watermark close: session may still grow → veto.
        assert!(!job.can_evict(&key, &state, Some(200)));
        // No watermark at all → veto.
        assert!(!job.can_evict(&key, &state, None));
        // Watermark far past gap+slack → expired, evictable.
        assert!(job.can_evict(&key, &state, Some(100 + 300 + 240 + 2)));
        // Eviction of an expired state outputs and returns None.
        let mut ctx = ReduceCtx::new();
        let out = job.evict(&key, state, Some(100_000), &mut ctx);
        assert!(out.is_none());
        assert_eq!(ctx.pending(), 1);
        // Eviction of a live state hands it back for spilling.
        let mut ctx2 = ReduceCtx::new();
        let live = job.init(&key, click(100));
        let out2 = job.evict(&key, live.clone(), Some(150), &mut ctx2);
        assert_eq!(out2, Some(live));
        assert_eq!(ctx2.pending(), 0);
    }

    #[test]
    fn event_time_tracks_latest_click() {
        let job = SessionizeJob::default();
        let key = Key::from_u64(6);
        let mut acc = job.init(&key, click(500));
        assert_eq!(job.event_time(&acc), Some(500));
        let mut ctx = ReduceCtx::new();
        job.cb(&key, &mut acc, job.init(&key, click(300)), &mut ctx);
        assert_eq!(job.event_time(&acc), Some(500), "max, not last-merged");
    }
}
