//! Two-round distinct-sessions count — the dataflow layer's canonical
//! "aggregation of an aggregation" workload.
//!
//! Counting the *distinct* session windows a user touched cannot be done
//! in one MapReduce pass without holding every window id in reduce state;
//! the classic two-job rewrite is:
//!
//! 1. [`SessionMarkJob`] keys each click by `user|window` and collapses
//!    duplicates, emitting exactly one record per `(user, window)` pair.
//! 2. [`SessionCountJob`] re-keys those survivors by user alone and sums,
//!    yielding each user's distinct-window count.
//!
//! The second job changes the key (it strips the window suffix), so it is
//! **not** partition-preserving and the chain legitimately reshuffles
//! between the rounds — the [`crate::top_pages`] chain is the skip-path
//! counterpart.
//!
//! Both rounds use order-insensitive integer ops, so the chained result
//! is bit-identical to the staged one at any thread count.

use crate::clickstream::parse_click;
use opa_common::decode_kv;
use opa_core::api::{Combiner, IncrementalReducer, Job, ReduceCtx};
use opa_core::prelude::{Key, Value};

/// Round 1: one record per distinct `(user, session-window)` pair.
#[derive(Debug, Clone)]
pub struct SessionMarkJob {
    /// Session window width in seconds (clicks in the same window belong
    /// to the same session mark). Default 300 s, matching
    /// [`crate::sessionize::SessionizeJob`]'s inactivity gap.
    pub window_secs: u64,
    /// Expected distinct users (sizing hint).
    pub expected_users: u64,
}

impl Default for SessionMarkJob {
    fn default() -> Self {
        SessionMarkJob {
            window_secs: 300,
            expected_users: 10_000,
        }
    }
}

impl Combiner for SessionMarkJob {
    /// Duplicates collapse map-side: any number of marks is still one mark.
    fn combine(&self, _key: &Key, _values: Vec<Value>) -> Vec<Value> {
        vec![Value::from_u64(1)]
    }
}

impl IncrementalReducer for SessionMarkJob {
    /// Dedup is the textbook incremental reduce: the state is the single
    /// mark, and further arrivals change nothing.
    fn init(&self, _key: &Key, _value: Value) -> Value {
        Value::from_u64(1)
    }
    fn cb(&self, _key: &Key, _acc: &mut Value, _other: Value, _ctx: &mut ReduceCtx) {}
    fn finalize(&self, key: &Key, state: Value, ctx: &mut ReduceCtx) {
        ctx.emit(key.clone(), state);
    }
}

impl Job for SessionMarkJob {
    fn name(&self) -> &str {
        "session-mark"
    }

    /// Keys each click `user|window` where `window = ts / window_secs`.
    fn map(&self, record: &[u8], emit: &mut dyn FnMut(&[u8], &[u8])) {
        if let Some((ts, user, _)) = parse_click(record) {
            let window = ts / self.window_secs.max(1);
            let key = format!("{user:08}|{window:010}");
            emit(key.as_bytes(), &1u64.to_be_bytes());
        }
    }

    /// However many clicks landed in the window, emit the mark once.
    fn reduce(&self, key: &Key, _values: Vec<Value>, ctx: &mut ReduceCtx) {
        ctx.emit(key.clone(), Value::from_u64(1));
    }

    fn combiner(&self) -> Option<&dyn Combiner> {
        Some(self)
    }

    fn incremental(&self) -> Option<&dyn IncrementalReducer> {
        Some(self)
    }

    fn expected_keys(&self) -> Option<u64> {
        // A handful of windows per user on typical stream lengths.
        Some(self.expected_users.saturating_mul(4))
    }

    fn state_size_hint(&self) -> Option<u64> {
        Some(32)
    }
}

/// Round 2: distinct-window marks per user, summed.
#[derive(Debug, Clone)]
pub struct SessionCountJob {
    /// Expected distinct users (sizing hint).
    pub expected_users: u64,
}

impl Default for SessionCountJob {
    fn default() -> Self {
        SessionCountJob {
            expected_users: 10_000,
        }
    }
}

impl Combiner for SessionCountJob {
    fn combine(&self, _key: &Key, values: Vec<Value>) -> Vec<Value> {
        let sum: u64 = values.iter().filter_map(Value::as_u64).sum();
        vec![Value::from_u64(sum)]
    }
}

impl Job for SessionCountJob {
    fn name(&self) -> &str {
        "session-count"
    }

    /// Input records are framed `(user|window, 1)` pairs from round 1;
    /// strips the window suffix and re-keys by user.
    fn map(&self, record: &[u8], emit: &mut dyn FnMut(&[u8], &[u8])) {
        let Some((key, _)) = decode_kv(record) else {
            return;
        };
        let Some(sep) = key.iter().position(|&b| b == b'|') else {
            return;
        };
        emit(&key[..sep], &1u64.to_be_bytes());
    }

    fn reduce(&self, key: &Key, values: Vec<Value>, ctx: &mut ReduceCtx) {
        let sum: u64 = values.iter().filter_map(Value::as_u64).sum();
        ctx.emit(key.clone(), Value::from_u64(sum));
    }

    fn combiner(&self) -> Option<&dyn Combiner> {
        Some(self)
    }

    fn expected_keys(&self) -> Option<u64> {
        Some(self.expected_users)
    }

    fn state_size_hint(&self) -> Option<u64> {
        Some(16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clickstream::format_click;
    use opa_common::encode_kv;

    #[test]
    fn mark_buckets_by_window_and_dedups() {
        let job = SessionMarkJob::default();
        let mut keys = Vec::new();
        // Two clicks in window 0, one in window 2.
        for ts in [10, 250, 700] {
            job.map(&format_click(ts, 5, 1), &mut |k, _| keys.push(k.to_vec()));
        }
        assert_eq!(keys[0], keys[1], "same window, same key");
        assert_ne!(keys[0], keys[2]);
        let mut ctx = ReduceCtx::new();
        job.reduce(
            &Key::from_slice(&keys[0]),
            vec![Value::from_u64(1), Value::from_u64(1)],
            &mut ctx,
        );
        let out = ctx.drain();
        assert_eq!(out.len(), 1, "duplicates collapse to one mark");
        assert_eq!(out[0].value.as_u64(), Some(1));
    }

    #[test]
    fn count_rekeys_by_user_and_sums() {
        let job = SessionCountJob::default();
        let mut pairs = Vec::new();
        for window in ["0000000001", "0000000007"] {
            let rec = encode_kv(format!("00000005|{window}").as_bytes(), &1u64.to_be_bytes());
            job.map(&rec, &mut |k, v| {
                pairs.push((k.to_vec(), Value::from_slice(v)));
            });
        }
        assert_eq!(pairs[0].0, b"00000005");
        assert_eq!(pairs[0].0, pairs[1].0, "window suffix stripped");
        let mut ctx = ReduceCtx::new();
        job.reduce(
            &Key::from_slice(&pairs[0].0),
            pairs.into_iter().map(|(_, v)| v).collect(),
            &mut ctx,
        );
        assert_eq!(ctx.drain()[0].value.as_u64(), Some(2));
    }

    #[test]
    fn count_round_is_not_partition_preserving() {
        assert!(!Job::partition_preserving(&SessionCountJob::default()));
    }
}
