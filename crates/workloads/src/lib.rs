//! # opa-workloads
//!
//! The paper's evaluation workloads (§2.3, §6) rebuilt on synthetic data:
//!
//! - [`clickstream`] — a WorldCup'98-style click log generator: Zipf user
//!   popularity, session-structured timestamps, bounded disorder;
//! - [`documents`] — a GOV2-style document generator with Zipf vocabulary;
//! - [`sessionize`] — **sessionization**: reorder clicks into per-user
//!   sessions closed by 5 minutes of inactivity (the paper's flagship
//!   workload — large intermediate data, no combiner);
//! - [`click_count`] — **user click counting** (combiner-friendly);
//! - [`frequent_users`] — **frequent user identification** (≥ 50 clicks,
//!   early output when the counter crosses the threshold);
//! - [`page_freq`] — **page frequency** (visits per URL, Table 1);
//! - [`trigrams`] — **trigram counting** over documents (≥ 1000
//!   occurrences; the large-key-state-space workload of Fig 7(f));
//! - [`windowed_count`] — **windowed click counting**, the paper's
//!   future-work extension to window-based stream processing;
//! - [`online_agg`] — **online aggregation** with log-spaced early
//!   approximate answers, the paper's other future-work direction.
//!
//! ## Dataflow (multi-job) workloads
//!
//! Three workloads exist specifically to exercise the dataflow layer
//! ([`opa_core::dataflow`]), which chains jobs in memory M3R-style:
//!
//! - [`pagerank`] — **k-round PageRank** over the bipartite user↔page
//!   click graph (every round reshuffles: the full-shuffle case);
//! - [`distinct_sessions`] — **2-round distinct-sessions count**
//!   (re-keys between rounds: a legitimate mid-chain reshuffle);
//! - [`top_pages`] — **top-k pages** joining page-frequency and
//!   page-sessions outputs with an identity-keyed, partition-preserving
//!   join (the reshuffle-*skip* case: zero shuffle bytes).
//!
//! Each job implements [`opa_core::api::Job`] and, where the paper's reduce
//! function permits incremental processing, [`opa_core::api::IncrementalReducer`]
//! with states laid out in byte arrays exactly like the prototype (§5).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod click_count;
pub mod clickstream;
pub mod distinct_sessions;
pub mod documents;
pub mod frequent_users;
pub mod online_agg;
pub mod page_freq;
pub mod pagerank;
pub mod sessionize;
pub mod top_pages;
pub mod trigrams;
pub mod windowed_count;
pub mod zipf;

pub use click_count::ClickCountJob;
pub use clickstream::ClickStreamSpec;
pub use distinct_sessions::{SessionCountJob, SessionMarkJob};
pub use documents::DocumentSpec;
pub use frequent_users::FrequentUsersJob;
pub use online_agg::OnlineAvgJob;
pub use page_freq::PageFreqJob;
pub use pagerank::{PageRankInitJob, PageRankRoundJob};
pub use sessionize::SessionizeJob;
pub use top_pages::{PageSessionsJob, TopKFunnelJob, TopPagesJoinJob};
pub use trigrams::TrigramCountJob;
pub use windowed_count::WindowedCountJob;
