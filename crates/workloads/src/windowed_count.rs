//! Windowed click counting — the paper's future-work extension ("stream
//! query processing with window operations") built on the same
//! `init/cb/fn` interface.
//!
//! The query: clicks per user per tumbling window of `window_secs`. The
//! incremental state is a small table of open windows; a window's count is
//! emitted as soon as the reducer watermark proves the window can no
//! longer grow (`window_end + slack < watermark`) — the windowed analogue
//! of sessionization's early output, and the reason reduce progress tracks
//! map progress under INC/DINC-hash.
//!
//! Output records are `(user, [window_id u32][count u64])`. Counts are
//! additive, so even DINC-hash's monitor-eviction splits stay verifiable:
//! summing emissions per (user, window) always reproduces the exact
//! answer.
//!
//! State layout: `[n u16] n × [window u32][count u32]`, windows sorted.

use crate::clickstream::parse_click;
use opa_core::api::{IncrementalReducer, Job, ReduceCtx, Site};
use opa_core::prelude::{Key, Value};

/// The windowed counting job.
#[derive(Debug, Clone)]
pub struct WindowedCountJob {
    /// Tumbling window width in seconds (default: one hour).
    pub window_secs: u64,
    /// Watermark slack before a window is considered closed.
    pub slack_secs: u64,
    /// Expected distinct users (sizing hint).
    pub expected_users: u64,
}

impl Default for WindowedCountJob {
    fn default() -> Self {
        WindowedCountJob {
            window_secs: 3600,
            slack_secs: 400,
            expected_users: 10_000,
        }
    }
}

/// Output value layout.
pub fn window_output(window: u32, count: u64) -> Value {
    let mut v = Vec::with_capacity(12);
    v.extend_from_slice(&window.to_be_bytes());
    v.extend_from_slice(&count.to_be_bytes());
    Value::new(v)
}

/// Decodes an output value into (window id, count).
pub fn decode_window_output(v: &[u8]) -> (u32, u64) {
    (
        u32::from_be_bytes(v[..4].try_into().expect("window id")),
        u64::from_be_bytes(v[4..12].try_into().expect("count")),
    )
}

#[derive(Debug, Clone, PartialEq)]
struct WindowState {
    /// (window id, count), sorted by window id.
    windows: Vec<(u32, u32)>,
}

impl WindowState {
    fn decode(v: &[u8]) -> WindowState {
        let n = u16::from_be_bytes(v[..2].try_into().expect("count")) as usize;
        let mut windows = Vec::with_capacity(n);
        for i in 0..n {
            let off = 2 + i * 8;
            windows.push((
                u32::from_be_bytes(v[off..off + 4].try_into().expect("window")),
                u32::from_be_bytes(v[off + 4..off + 8].try_into().expect("count")),
            ));
        }
        WindowState { windows }
    }

    fn encode(&self) -> Value {
        let mut v = Vec::with_capacity(2 + self.windows.len() * 8);
        v.extend_from_slice(&(self.windows.len() as u16).to_be_bytes());
        for &(w, c) in &self.windows {
            v.extend_from_slice(&w.to_be_bytes());
            v.extend_from_slice(&c.to_be_bytes());
        }
        Value::new(v)
    }

    fn add(&mut self, window: u32, count: u32) {
        match self.windows.binary_search_by_key(&window, |&(w, _)| w) {
            Ok(i) => self.windows[i].1 += count,
            Err(i) => self.windows.insert(i, (window, count)),
        }
    }

    fn merge(&mut self, other: WindowState) {
        for (w, c) in other.windows {
            self.add(w, c);
        }
    }

    /// Emits and removes every window strictly below `open_from`.
    fn drain_closed(&mut self, key: &Key, open_from: u32, ctx: &mut ReduceCtx) {
        let split = self.windows.partition_point(|&(w, _)| w < open_from);
        for &(w, c) in &self.windows[..split] {
            ctx.emit(key.clone(), window_output(w, c as u64));
        }
        self.windows.drain(..split);
    }
}

impl WindowedCountJob {
    /// First window id that may still receive clicks at `watermark`.
    fn open_from(&self, watermark: u64) -> u32 {
        (watermark.saturating_sub(self.slack_secs) / self.window_secs) as u32
    }
}

impl IncrementalReducer for WindowedCountJob {
    fn init(&self, _key: &Key, value: Value) -> Value {
        let ts = value.as_u64().unwrap_or(0);
        let mut s = WindowState { windows: vec![] };
        s.add((ts / self.window_secs) as u32, 1);
        s.encode()
    }

    fn cb(&self, key: &Key, acc: &mut Value, other: Value, ctx: &mut ReduceCtx) {
        let mut s = WindowState::decode(acc.bytes());
        s.merge(WindowState::decode(other.bytes()));
        if ctx.site == Site::Reduce {
            if let Some(w) = ctx.watermark {
                s.drain_closed(key, self.open_from(w), ctx);
            }
        }
        *acc = s.encode();
    }

    fn finalize(&self, key: &Key, state: Value, ctx: &mut ReduceCtx) {
        let mut s = WindowState::decode(state.bytes());
        s.drain_closed(key, u32::MAX, ctx);
    }

    fn event_time(&self, state: &Value) -> Option<u64> {
        WindowState::decode(state.bytes())
            .windows
            .last()
            .map(|&(w, _)| (w as u64 + 1) * self.window_secs - 1)
    }

    fn can_evict(&self, _key: &Key, state: &Value, watermark: Option<u64>) -> bool {
        let Some(w) = watermark else { return false };
        let open_from = self.open_from(w);
        WindowState::decode(state.bytes())
            .windows
            .iter()
            .all(|&(win, _)| win < open_from)
    }

    fn evict(
        &self,
        key: &Key,
        state: Value,
        watermark: Option<u64>,
        ctx: &mut ReduceCtx,
    ) -> Option<Value> {
        if self.can_evict(key, &state, watermark) || watermark == Some(u64::MAX) {
            let mut s = WindowState::decode(state.bytes());
            s.drain_closed(key, u32::MAX, ctx);
            None
        } else {
            Some(state)
        }
    }
}

impl Job for WindowedCountJob {
    fn name(&self) -> &str {
        "windowed click counting"
    }

    fn map(&self, record: &[u8], emit: &mut dyn FnMut(&[u8], &[u8])) {
        if let Some((ts, user, _)) = parse_click(record) {
            emit(&user.to_be_bytes(), &ts.to_be_bytes());
        }
    }

    fn reduce(&self, key: &Key, values: Vec<Value>, ctx: &mut ReduceCtx) {
        let mut s = WindowState { windows: vec![] };
        for v in values {
            let ts = v.as_u64().unwrap_or(0);
            s.add((ts / self.window_secs) as u32, 1);
        }
        s.drain_closed(key, u32::MAX, ctx);
    }

    fn incremental(&self) -> Option<&dyn IncrementalReducer> {
        Some(self)
    }

    fn expected_keys(&self) -> Option<u64> {
        Some(self.expected_users)
    }

    fn state_size_hint(&self) -> Option<u64> {
        Some(32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> WindowedCountJob {
        WindowedCountJob {
            window_secs: 100,
            slack_secs: 50,
            expected_users: 10,
        }
    }

    #[test]
    fn state_roundtrip() {
        let mut s = WindowState { windows: vec![] };
        s.add(3, 2);
        s.add(1, 5);
        s.add(3, 1);
        let decoded = WindowState::decode(s.encode().bytes());
        assert_eq!(decoded.windows, vec![(1, 5), (3, 3)]);
    }

    #[test]
    fn classic_reduce_counts_per_window() {
        let j = job();
        let mut ctx = ReduceCtx::new();
        j.reduce(
            &Key::from_u64(1),
            vec![
                Value::from_u64(10),
                Value::from_u64(90),
                Value::from_u64(150),
            ],
            &mut ctx,
        );
        let out: Vec<(u32, u64)> = ctx
            .drain()
            .iter()
            .map(|p| decode_window_output(p.value.bytes()))
            .collect();
        assert_eq!(out, vec![(0, 2), (1, 1)]);
    }

    #[test]
    fn windows_close_behind_the_watermark() {
        let j = job();
        let key = Key::from_u64(2);
        let mut ctx = ReduceCtx::new();
        let mut acc = j.init(&key, Value::from_u64(10));
        // Watermark 120: close point 70 → window 0 still open.
        ctx.advance_watermark(120);
        j.cb(&key, &mut acc, j.init(&key, Value::from_u64(50)), &mut ctx);
        assert_eq!(ctx.pending(), 0, "window 0 can still grow");
        // Watermark 260: close point 210 → windows 0 and 1 closed.
        ctx.advance_watermark(260);
        j.cb(&key, &mut acc, j.init(&key, Value::from_u64(130)), &mut ctx);
        let out: Vec<(u32, u64)> = ctx
            .drain()
            .iter()
            .map(|p| decode_window_output(p.value.bytes()))
            .collect();
        assert_eq!(out, vec![(0, 2), (1, 1)]);
        // A click in window 2 stays open (open_from = 2)…
        j.cb(&key, &mut acc, j.init(&key, Value::from_u64(250)), &mut ctx);
        assert_eq!(ctx.pending(), 0);
        // …until finalize flushes it.
        j.finalize(&key, acc, &mut ctx);
        let rest: Vec<(u32, u64)> = ctx
            .drain()
            .iter()
            .map(|p| decode_window_output(p.value.bytes()))
            .collect();
        assert_eq!(rest, vec![(2, 1)]);
    }

    #[test]
    fn eviction_rules_track_window_expiry() {
        let j = job();
        let key = Key::from_u64(3);
        let state = j.init(&key, Value::from_u64(10)); // window 0
        assert!(!j.can_evict(&key, &state, Some(60)));
        assert!(j.can_evict(&key, &state, Some(200)));
        let mut ctx = ReduceCtx::new();
        assert!(j.evict(&key, state.clone(), Some(200), &mut ctx).is_none());
        assert_eq!(ctx.pending(), 1);
        let mut ctx2 = ReduceCtx::new();
        assert_eq!(
            j.evict(&key, state.clone(), Some(60), &mut ctx2),
            Some(state)
        );
    }

    #[test]
    fn event_time_is_last_window_end() {
        let j = job();
        let state = j.init(&Key::from_u64(4), Value::from_u64(250)); // window 2
        assert_eq!(j.event_time(&state), Some(299));
    }
}
