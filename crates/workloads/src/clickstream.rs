//! Synthetic WorldCup'98-style click stream.
//!
//! The paper's click workloads rely on three properties of the real log,
//! all reproduced here and all tunable:
//!
//! 1. **user skew** — a Zipf distribution assigns sessions to users, so a
//!    few hot users contribute many clicks (what DINC-hash exploits);
//! 2. **temporal session structure** — a user's clicks arrive in bursts
//!    separated by > 5 minutes of inactivity (what sessionization splits);
//! 3. **bounded disorder** — the stream is sorted by a timestamp perturbed
//!    by at most `disorder_secs`, so a click appears at most that far from
//!    its in-order position (what makes online sessionization possible
//!    with a fixed reorder buffer).
//!
//! Records are fixed-width text lines (~96 bytes, like the WorldCup log's
//! compact records):
//!
//! ```text
//! t=0000012345 u=00001234 /en/page01234.html xxxxxxxx…
//! ```

use crate::zipf::Zipf;
use opa_common::rng::SplitMix64;
use opa_core::job::JobInput;

/// Fixed serialized record width in bytes.
pub const RECORD_WIDTH: usize = 96;

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct ClickStreamSpec {
    /// Approximate total size of the generated log in bytes.
    pub target_bytes: u64,
    /// Size of the user pool.
    pub users: usize,
    /// Zipf exponent of user popularity (0 = uniform).
    pub zipf_exponent: f64,
    /// Mean clicks per session.
    pub mean_session_clicks: u32,
    /// Uniform intra-session click gap range, seconds (keep max < 300).
    pub click_gap_secs: (u64, u64),
    /// Concurrently active sessions (controls distinct users per chunk).
    pub concurrency: usize,
    /// Maximum timestamp perturbation when ordering the stream, seconds.
    pub disorder_secs: u64,
}

impl ClickStreamSpec {
    /// A tiny stream for unit tests: ~2000 clicks over 100 users.
    pub fn small() -> Self {
        ClickStreamSpec {
            target_bytes: 2000 * RECORD_WIDTH as u64,
            users: 100,
            zipf_exponent: 1.1,
            mean_session_clicks: 8,
            click_gap_secs: (5, 40),
            concurrency: 12,
            disorder_secs: 30,
        }
    }

    /// A paper-scale stream (1/1024 of 256 GB by default) tuned for the
    /// *sessionization* regime of §6.1–6.2: the distinct session states
    /// exceed the scaled reduce memory (so INC-hash spills and the state
    /// size matters — Table 4), while high concurrency keeps each chunk's
    /// event-time span small enough that the bounded-disorder reorder
    /// buffers work.
    pub fn paper_scaled(target_bytes: u64) -> Self {
        let clicks = target_bytes / RECORD_WIDTH as u64;
        ClickStreamSpec {
            target_bytes,
            users: (clicks / 6).max(1000) as usize,
            zipf_exponent: 0.95,
            mean_session_clicks: 10,
            click_gap_secs: (5, 35),
            concurrency: 2000,
            disorder_secs: 60,
        }
    }

    /// A paper-scale stream tuned for the *counting* workloads (user click
    /// counting, frequent users, page frequency): few concurrently active
    /// users and long per-user histories, so map-side combining collapses
    /// each chunk dramatically (the Table 1 regime where 256 GB of input
    /// becomes 2.6 GB of map output) and the whole key-state space fits in
    /// reduce memory.
    pub fn counting_scaled(target_bytes: u64) -> Self {
        let clicks = target_bytes / RECORD_WIDTH as u64;
        ClickStreamSpec {
            target_bytes,
            users: (clicks / 140).max(100) as usize,
            zipf_exponent: 1.05,
            mean_session_clicks: 14,
            click_gap_secs: (5, 35),
            concurrency: 30,
            disorder_secs: 60,
        }
    }

    /// Number of clicks this spec will generate.
    pub fn num_clicks(&self) -> u64 {
        self.target_bytes / RECORD_WIDTH as u64
    }

    /// Generates the log deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> JobInput {
        self.generate_with_stats(seed).0
    }

    /// Like [`ClickStreamSpec::generate`], also reporting stream statistics
    /// (used to size reducer hints honestly: the Zipf sampler touches far
    /// fewer users than the pool holds).
    pub fn generate_with_stats(&self, seed: u64) -> (JobInput, StreamStats) {
        let total_clicks = self.num_clicks();
        let mut rng = SplitMix64::new(seed);
        let zipf = Zipf::new(self.users, self.zipf_exponent);

        // Session starts are staggered so ~`concurrency` sessions overlap:
        // the global click rate is concurrency / mean_gap, so one session's
        // clicks finish in mean_clicks·mean_gap seconds while
        // concurrency·mean_clicks clicks pass globally.
        let mean_gap = (self.click_gap_secs.0 + self.click_gap_secs.1) / 2;
        // Millisecond resolution: at high concurrency the spacing between
        // session starts is well below one second.
        let spacing_ms = (self.mean_session_clicks as u64 * mean_gap * 1000
            / self.concurrency.max(1) as u64)
            .max(1);

        let pages = Zipf::new(10_000, 1.3);
        let mut events: Vec<(u64, u64, u32)> = Vec::with_capacity(total_clicks as usize);
        let mut session_start_ms = 0u64;
        let mut emitted = 0u64;
        while emitted < total_clicks {
            let user = zipf.sample(&mut rng) as u64;
            // Geometric-ish session length around the mean, at least 1.
            let len = 1 + rng.next_below(2 * self.mean_session_clicks as u64);
            let mut ts = (session_start_ms + rng.next_below(spacing_ms)) / 1000;
            for _ in 0..len {
                if emitted >= total_clicks {
                    break;
                }
                let page = pages.sample(&mut rng) as u32;
                events.push((ts, user, page));
                emitted += 1;
                let (lo, hi) = self.click_gap_secs;
                ts += lo + rng.next_below((hi - lo).max(1));
            }
            session_start_ms += spacing_ms;
        }

        // Bounded disorder: order by a perturbed timestamp.
        let disorder = self.disorder_secs;
        let mut keyed: Vec<(u64, usize)> = events
            .iter()
            .enumerate()
            .map(|(i, &(ts, _, _))| (ts + rng.next_below(disorder.max(1)), i))
            .collect();
        keyed.sort_unstable();

        let mut records = Vec::with_capacity(events.len());
        let mut users = std::collections::HashSet::new();
        let mut max_ts = 0u64;
        for &(_, i) in &keyed {
            let (ts, user, page) = events[i];
            users.insert(user);
            max_ts = max_ts.max(ts);
            records.push(format_click(ts, user, page));
        }
        let stats = StreamStats {
            distinct_users: users.len() as u64,
            span_secs: max_ts,
        };
        (JobInput::from_records(records), stats)
    }
}

/// Statistics of one generated stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamStats {
    /// Users that actually appear in the stream (≤ the pool size).
    pub distinct_users: u64,
    /// Event-time span of the stream in seconds.
    pub span_secs: u64,
}

/// Formats one click record at the fixed [`RECORD_WIDTH`].
pub fn format_click(ts: u64, user: u64, page: u32) -> Vec<u8> {
    let mut line = format!("t={ts:010} u={user:08} /en/page{page:05}.html ");
    while line.len() < RECORD_WIDTH {
        line.push('x');
    }
    line.truncate(RECORD_WIDTH);
    line.into_bytes()
}

/// Parses a click record into (timestamp, user id, url-and-padding tail).
/// Returns `None` for malformed records.
pub fn parse_click(rec: &[u8]) -> Option<(u64, u64, &[u8])> {
    let s = rec;
    if s.len() < 24 || &s[..2] != b"t=" {
        return None;
    }
    let ts = std::str::from_utf8(&s[2..12]).ok()?.parse().ok()?;
    if &s[12..15] != b" u=" {
        return None;
    }
    let user = std::str::from_utf8(&s[15..23]).ok()?.parse().ok()?;
    Some((ts, user, &s[24..]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn generates_target_size() {
        let spec = ClickStreamSpec::small();
        let input = spec.generate(1);
        assert_eq!(input.len() as u64, spec.num_clicks());
        assert_eq!(input.total_bytes(), spec.target_bytes);
    }

    #[test]
    fn records_parse_back() {
        let input = ClickStreamSpec::small().generate(2);
        for rec in &input.records {
            let (ts, user, tail) = parse_click(rec).expect("well-formed record");
            assert!(user < 100);
            assert!(ts < 10_000_000_000);
            assert!(tail.starts_with(b"/en/page"));
        }
    }

    #[test]
    fn disorder_is_bounded() {
        let spec = ClickStreamSpec::small();
        let input = spec.generate(3);
        let ts: Vec<u64> = input
            .records
            .iter()
            .map(|r| parse_click(r).unwrap().0)
            .collect();
        // Every record's timestamp is within disorder_secs of the running
        // maximum (bounded disorder definition).
        let mut max_seen = 0u64;
        for &t in &ts {
            assert!(
                t + spec.disorder_secs >= max_seen,
                "displacement beyond bound: t={t}, max={max_seen}"
            );
            max_seen = max_seen.max(t);
        }
    }

    #[test]
    fn user_popularity_is_skewed() {
        let input = ClickStreamSpec::small().generate(4);
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for rec in &input.records {
            let (_, user, _) = parse_click(rec).unwrap();
            *counts.entry(user).or_default() += 1;
        }
        let mut freqs: Vec<u64> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = freqs.iter().sum();
        let top5: u64 = freqs.iter().take(5).sum();
        assert!(
            top5 as f64 / total as f64 > 0.25,
            "top-5 users only {}%",
            100 * top5 / total
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = ClickStreamSpec::small().generate(7);
        let b = ClickStreamSpec::small().generate(7);
        assert_eq!(a.records, b.records);
        let c = ClickStreamSpec::small().generate(8);
        assert_ne!(a.records, c.records);
    }

    #[test]
    fn sessions_have_five_minute_structure() {
        // Within one user's click sequence, intra-session gaps stay below
        // 300 s and session boundaries exceed it for at least some users.
        let input = ClickStreamSpec::small().generate(5);
        let mut per_user: HashMap<u64, Vec<u64>> = HashMap::new();
        for rec in &input.records {
            let (ts, user, _) = parse_click(rec).unwrap();
            per_user.entry(user).or_default().push(ts);
        }
        let mut some_boundary = false;
        for ts in per_user.values_mut() {
            ts.sort_unstable();
            for w in ts.windows(2) {
                if w[1] - w[0] > 300 {
                    some_boundary = true;
                }
            }
        }
        assert!(some_boundary, "no user ever had a session boundary");
    }
}
