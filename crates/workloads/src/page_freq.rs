//! Page frequency (Table 1): count visits to each URL.
//!
//! Identical structure to click counting but keyed on the URL, giving the
//! Table 1 row with 508 GB of input collapsing to 1.8 GB of map output
//! through the combiner.

use crate::clickstream::parse_click;
use opa_core::api::{Combiner, IncrementalReducer, Job, ReduceCtx};
use opa_core::prelude::{Key, Value};

/// The page-frequency job.
#[derive(Debug, Clone)]
pub struct PageFreqJob {
    /// Expected distinct URLs (sizing hint).
    pub expected_pages: u64,
}

impl Default for PageFreqJob {
    fn default() -> Self {
        PageFreqJob {
            expected_pages: 100_000,
        }
    }
}

impl Combiner for PageFreqJob {
    fn combine(&self, _key: &Key, values: Vec<Value>) -> Vec<Value> {
        let sum: u64 = values.iter().filter_map(Value::as_u64).sum();
        vec![Value::from_u64(sum)]
    }

    fn supports_fold(&self) -> bool {
        true
    }

    fn fold(&self, _key: &Key, acc: &mut Value, value: Value) {
        let sum = acc.as_u64().unwrap_or(0) + value.as_u64().unwrap_or(0);
        *acc = Value::from_u64(sum);
    }
}

impl IncrementalReducer for PageFreqJob {
    fn init(&self, _key: &Key, value: Value) -> Value {
        value
    }

    fn cb(&self, _key: &Key, acc: &mut Value, other: Value, _ctx: &mut ReduceCtx) {
        let sum = acc.as_u64().unwrap_or(0) + other.as_u64().unwrap_or(0);
        *acc = Value::from_u64(sum);
    }

    fn finalize(&self, key: &Key, state: Value, ctx: &mut ReduceCtx) {
        ctx.emit(key.clone(), state);
    }
}

impl Job for PageFreqJob {
    fn name(&self) -> &str {
        "page frequency"
    }

    fn map(&self, record: &[u8], emit: &mut dyn FnMut(&[u8], &[u8])) {
        if let Some((_, _, tail)) = parse_click(record) {
            // The URL is the first whitespace-delimited token of the tail.
            let url = tail.split(|&b| b == b' ').next().unwrap_or(tail);
            emit(url, &1u64.to_be_bytes());
        }
    }

    fn reduce(&self, key: &Key, values: Vec<Value>, ctx: &mut ReduceCtx) {
        let sum: u64 = values.iter().filter_map(Value::as_u64).sum();
        ctx.emit(key.clone(), Value::from_u64(sum));
    }

    fn combiner(&self) -> Option<&dyn Combiner> {
        Some(self)
    }

    fn incremental(&self) -> Option<&dyn IncrementalReducer> {
        Some(self)
    }

    fn expected_keys(&self) -> Option<u64> {
        Some(self.expected_pages)
    }

    fn state_size_hint(&self) -> Option<u64> {
        Some(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clickstream::format_click;

    #[test]
    fn map_extracts_url_token() {
        let job = PageFreqJob::default();
        let rec = format_click(5, 9, 123);
        let mut out = Vec::new();
        job.map(&rec, &mut |k, v| {
            out.push((k.to_vec(), Value::from_slice(v)))
        });
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, b"/en/page00123.html");
        assert_eq!(out[0].1.as_u64(), Some(1));
    }

    #[test]
    fn same_page_same_key() {
        let job = PageFreqJob::default();
        let mut keys = Vec::new();
        for user in [1u64, 2, 3] {
            let rec = format_click(user * 10, user, 777);
            job.map(&rec, &mut |k, _| keys.push(k.to_vec()));
        }
        assert!(keys.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn reduce_sums() {
        let job = PageFreqJob::default();
        let mut ctx = ReduceCtx::new();
        job.reduce(
            &Key::from("/a"),
            vec![Value::from_u64(3), Value::from_u64(4)],
            &mut ctx,
        );
        assert_eq!(ctx.drain()[0].value.as_u64(), Some(7));
    }
}
