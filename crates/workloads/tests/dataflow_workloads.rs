//! End-to-end chains for the three dataflow workloads: PageRank rounds
//! (full-shuffle case), 2-round distinct sessions (mid-chain re-key),
//! and the top-k-pages join (partition-stable skip over a dataset
//! union). Each chain is verified against an independent, directly
//! computed answer and for bit-identity across thread counts.

use opa_common::decode_kv;
use opa_core::cluster::{ClusterSpec, Framework};
use opa_core::dataflow::{Dataflow, Dataset, Handoff};
use opa_core::job::JobBuilder;
use opa_workloads::clickstream::{parse_click, ClickStreamSpec};
use opa_workloads::distinct_sessions::{SessionCountJob, SessionMarkJob};
use opa_workloads::page_freq::PageFreqJob;
use opa_workloads::pagerank::{decode_node, PageRankInitJob, PageRankRoundJob, SCALE};
use opa_workloads::top_pages::{PageSessionsJob, TopKFunnelJob, TopPagesJoinJob};
use std::collections::{BTreeMap, BTreeSet};

fn clicks() -> (opa_core::job::JobInput, Vec<Vec<u8>>) {
    let input = ClickStreamSpec::small().generate(41);
    let records: Vec<Vec<u8>> = input.records.iter().map(|r| r.to_vec()).collect();
    (input, records)
}

#[test]
fn pagerank_chain_reshuffles_every_round_and_is_thread_stable() {
    let (input, _) = clicks();
    let run = |threads: usize| {
        let mut chain = Dataflow::new(ClusterSpec::tiny()).then(PageRankInitJob, Framework::MrHash);
        for _ in 0..3 {
            chain = chain.then(PageRankRoundJob, Framework::MrHash);
        }
        chain.threads(threads).run(&input).expect("pagerank chain")
    };
    let base = run(1);
    assert_eq!(base.stages.len(), 4);
    for round in &base.stages[1..] {
        assert_eq!(
            round.handoff,
            Handoff::Reshuffled,
            "a scatter round can never skip its shuffle"
        );
    }
    // Every node keeps a positive rank, and rank mass stays within the
    // damped fixed-point envelope (no node can fall below 1 − d).
    let pairs = base.sorted_output();
    assert!(!pairs.is_empty());
    for p in &pairs {
        let (rank, _) = decode_node(p.value.bytes()).expect("node record");
        assert!(rank >= SCALE - 850_000, "rank below the (1 − d) floor");
    }
    // Bit-identical at any thread count.
    for threads in [2, 4] {
        assert_eq!(run(threads).sorted_output(), pairs);
    }
}

#[test]
fn distinct_sessions_chain_matches_direct_count() {
    let (input, records) = clicks();
    let window = SessionMarkJob::default().window_secs;

    // Independent answer: distinct (user, window) pairs per user.
    let mut expect: BTreeMap<u64, BTreeSet<u64>> = BTreeMap::new();
    for rec in &records {
        let (ts, user, _) = parse_click(rec).expect("well-formed click");
        expect.entry(user).or_default().insert(ts / window);
    }

    let out = Dataflow::new(ClusterSpec::tiny())
        .then(SessionMarkJob::default(), Framework::IncHash)
        .then(SessionCountJob::default(), Framework::MrHash)
        .threads(4)
        .run(&input)
        .expect("distinct-sessions chain");
    assert_eq!(
        out.stages[1].handoff,
        Handoff::Reshuffled,
        "round 2 re-keys by user: a legitimate reshuffle"
    );
    let got: BTreeMap<u64, u64> = out
        .sorted_output()
        .into_iter()
        .map(|p| {
            let user: u64 = std::str::from_utf8(p.key.bytes())
                .expect("utf8 user key")
                .parse()
                .expect("numeric user key");
            (user, p.value.as_u64().expect("count"))
        })
        .collect();
    assert_eq!(got.len(), expect.len());
    for (user, windows) in expect {
        assert_eq!(got[&user], windows.len() as u64, "user {user}");
    }
}

#[test]
fn top_pages_join_skips_the_shuffle_over_a_union() {
    let (input, records) = clicks();
    let spec = ClusterSpec::tiny();

    // Two producer jobs over the same cluster: plain visit counts and
    // tagged distinct-visitor counts, both keyed by URL.
    let freq = JobBuilder::new(PageFreqJob::default())
        .framework(Framework::IncHash)
        .cluster(spec)
        .run(&input)
        .expect("page_freq");
    let sessions = JobBuilder::new(PageSessionsJob::default())
        .framework(Framework::MrHash)
        .cluster(spec)
        .run(&input)
        .expect("page_sessions");
    let union = Dataset::union(&freq.dataset(&spec), &sessions.dataset(&spec))
        .expect("same partition function on both sides");

    let out = Dataflow::new(spec)
        .then(TopPagesJoinJob, Framework::MrHash)
        .then(TopKFunnelJob { k: 5 }, Framework::SortMerge)
        .threads(2)
        .run_from(&union)
        .expect("top-pages chain");
    let join = &out.stages[0];
    assert_eq!(join.handoff, Handoff::InMemory, "identity join must skip");
    assert_eq!(join.metrics.map_output_bytes, 0, "zero shuffle bytes");
    assert!(join.bytes_saved > 0);
    assert_eq!(out.stages[1].handoff, Handoff::Reshuffled, "funnel re-keys");

    // Independent answer: visits + distinct visitors per URL, top 5 by
    // (score desc, url asc).
    let mut visits: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
    let mut users: BTreeMap<Vec<u8>, BTreeSet<u64>> = BTreeMap::new();
    for rec in &records {
        let (_, user, tail) = parse_click(rec).expect("well-formed click");
        let url = tail.split(|&b| b == b' ').next().unwrap_or(tail).to_vec();
        *visits.entry(url.clone()).or_default() += 1;
        users.entry(url).or_default().insert(user);
    }
    let mut rows: Vec<(u64, Vec<u8>)> = visits
        .iter()
        .map(|(url, v)| (v + users[url].len() as u64, url.clone()))
        .collect();
    rows.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    rows.truncate(5);

    let got: Vec<(u64, Vec<u8>)> = {
        let mut g: Vec<(u64, Vec<u8>)> = out
            .sorted_output()
            .iter()
            .map(|p| (p.value.as_u64().expect("score"), p.key.bytes().to_vec()))
            .collect();
        g.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        g
    };
    assert_eq!(got, rows);
}

/// The framed handoff representation is what the chained map consumes —
/// sanity-check it against the workloads' own parsers.
#[test]
fn framed_records_roundtrip_through_a_dataset() {
    let (input, _) = clicks();
    let spec = ClusterSpec::tiny();
    let freq = JobBuilder::new(PageFreqJob::default())
        .framework(Framework::MrHash)
        .cluster(spec)
        .run(&input)
        .expect("page_freq");
    let ds = freq.dataset(&spec);
    let reread = ds.to_input();
    let mut n = 0usize;
    for rec in &reread.records {
        let (k, v) = decode_kv(rec).expect("framed record");
        assert!(k.starts_with(b"/"), "URL key");
        assert_eq!(v.len(), 8, "u64 count value");
        n += 1;
    }
    assert_eq!(n, ds.len());
}
