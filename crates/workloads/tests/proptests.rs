//! Property-based tests of the incremental workload semantics: for
//! arbitrary click sequences and arbitrary bounded-disorder arrival
//! orders, the incremental `init/cb/fn` paths must agree with the classic
//! reduce oracle.

use opa_core::api::{IncrementalReducer, Job, ReduceCtx};
use opa_core::prelude::{Key, Value};
use opa_workloads::sessionize::{decode_output, SessionizeJob};
use opa_workloads::windowed_count::decode_window_output;
use opa_workloads::FrequentUsersJob;
use opa_workloads::WindowedCountJob;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Generates (sorted timestamps, arrival permutation with bounded
/// displacement, the displacement bound).
fn disordered_stream() -> impl Strategy<Value = (Vec<u64>, Vec<usize>, u64)> {
    (
        proptest::collection::vec(0u64..2000, 1..60),
        proptest::collection::vec(0usize..8, 1..60),
    )
        .prop_map(|(mut ts, jitter)| {
            ts.sort_unstable();
            let n = ts.len();
            // Arrival order: sort indices by (ts + jitter displacement).
            let mut order: Vec<usize> = (0..n).collect();
            let perturbed: Vec<u64> = ts
                .iter()
                .enumerate()
                .map(|(i, &t)| t + jitter[i % jitter.len()] as u64 * 10)
                .collect();
            order.sort_by_key(|&i| (perturbed[i], i));
            // The effective disorder bound in seconds.
            let bound = 80u64;
            (ts, order, bound)
        })
}

fn click_value(ts: u64) -> Value {
    let mut v = Vec::with_capacity(10);
    v.extend_from_slice(&ts.to_be_bytes());
    v.extend_from_slice(b"/p");
    Value::new(v)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sessionization: streaming a single key's clicks in any
    /// bounded-disorder order through init/cb/fn, with the watermark
    /// advancing along arrivals and slack ≥ the disorder bound, yields
    /// exactly the classic labels.
    #[test]
    fn sessionize_incremental_equals_classic((ts, order, bound) in disordered_stream()) {
        let job = SessionizeJob {
            gap_secs: 300,
            slack_secs: bound + 1,
            state_capacity: 64 * 1024,
            charge_fixed_footprint: false,
            expected_users: 1,
        };
        let key = Key::from_u64(1);

        // Classic oracle.
        let mut octx = ReduceCtx::new();
        job.reduce(&key, ts.iter().map(|&t| click_value(t)).collect(), &mut octx);
        let mut oracle: Vec<(u64, u64)> = octx
            .drain()
            .iter()
            .map(|p| {
                let (s, t, _) = decode_output(p.value.bytes());
                (s, t)
            })
            .collect();
        oracle.sort_unstable();

        // Incremental path in arrival order.
        let mut ctx = ReduceCtx::new();
        let mut acc: Option<Value> = None;
        for &i in &order {
            let t = ts[i];
            ctx.advance_watermark(t);
            let s = job.init(&key, click_value(t));
            match acc.as_mut() {
                None => acc = Some(s),
                Some(a) => job.cb(&key, a, s, &mut ctx),
            }
        }
        if let Some(a) = acc {
            job.finalize(&key, a, &mut ctx);
        }
        let mut got: Vec<(u64, u64)> = ctx
            .drain()
            .iter()
            .map(|p| {
                let (s, t, _) = decode_output(p.value.bytes());
                (s, t)
            })
            .collect();
        got.sort_unstable();
        prop_assert_eq!(got, oracle);
    }

    /// Windowed counting: per-window sums are exact for ANY arrival order
    /// and ANY slack, because emissions are additive.
    #[test]
    fn windowed_sums_always_exact(
        (ts, order, _bound) in disordered_stream(),
        slack in 0u64..500,
        window in 50u64..400,
    ) {
        let job = WindowedCountJob {
            window_secs: window,
            slack_secs: slack,
            expected_users: 1,
        };
        let key = Key::from_u64(9);
        let mut truth: BTreeMap<u32, u64> = BTreeMap::new();
        for &t in &ts {
            *truth.entry((t / window) as u32).or_default() += 1;
        }
        let mut ctx = ReduceCtx::new();
        let mut acc: Option<Value> = None;
        for &i in &order {
            let t = ts[i];
            ctx.advance_watermark(t);
            let s = job.init(&key, Value::from_u64(t));
            match acc.as_mut() {
                None => acc = Some(s),
                Some(a) => job.cb(&key, a, s, &mut ctx),
            }
        }
        if let Some(a) = acc {
            job.finalize(&key, a, &mut ctx);
        }
        let mut got: BTreeMap<u32, u64> = BTreeMap::new();
        for p in ctx.drain() {
            let (w, c) = decode_window_output(p.value.bytes());
            *got.entry(w).or_default() += c;
        }
        prop_assert_eq!(got, truth);
    }

    /// Frequent-user thresholding: exactly one emission iff the total
    /// crosses the threshold, under arbitrary split of the count into
    /// state merges.
    #[test]
    fn threshold_emits_exactly_once(
        splits in proptest::collection::vec(1u64..20, 1..30),
        threshold in 1u64..120,
    ) {
        let job = FrequentUsersJob {
            threshold,
            expected_users: 1,
        };
        let key = Key::from_u64(5);
        let total: u64 = splits.iter().sum();
        let mut ctx = ReduceCtx::new();
        let mut acc: Option<Value> = None;
        for &c in &splits {
            let s = job.init(&key, Value::from_u64(c));
            match acc.as_mut() {
                None => acc = Some(s),
                Some(a) => job.cb(&key, a, s, &mut ctx),
            }
        }
        if let Some(a) = acc {
            job.finalize(&key, a, &mut ctx);
        }
        let emitted = ctx.drain();
        if total >= threshold {
            prop_assert_eq!(emitted.len(), 1, "total {} threshold {}", total, threshold);
        } else {
            prop_assert!(emitted.is_empty());
        }
    }
}
