//! `opa dataflow` — run a multi-job chain with in-memory handoffs.
//!
//! Three built-in chains exercise the three handoff behaviours:
//!
//! * `pagerank` — init + k scatter rounds; every round re-keys to
//!   neighbors, so every handoff is a real reshuffle.
//! * `distinct-sessions` — mark + count; the second job strips the
//!   window suffix, one legitimate mid-chain reshuffle.
//! * `top-pages` — page-frequency and page-sessions producers feed a
//!   dataset *union* into an identity-keyed join that skips its shuffle
//!   outright (zero shuffle bytes), then a top-k funnel reshuffles.
//!
//! The command prints a per-stage handoff table and, with `--trace-out`,
//! writes the chain-level `stage_*` events alongside engine events.

use crate::args::Args;
use crate::{parse_faults, parse_framework, read_input};
use opa_core::cluster::{ClusterSpec, Framework};
use opa_core::dataflow::{Dataflow, DataflowOutcome, Dataset, HandoffPolicy};
use opa_core::job::JobBuilder;
use opa_workloads::distinct_sessions::{SessionCountJob, SessionMarkJob};
use opa_workloads::pagerank::{PageRankInitJob, PageRankRoundJob};
use opa_workloads::top_pages::{PageSessionsJob, TopKFunnelJob, TopPagesJoinJob};
use opa_workloads::PageFreqJob;

fn parse_policy(args: &Args) -> Result<HandoffPolicy, String> {
    Ok(match args.options.get("policy").map(String::as_str) {
        None | Some("auto") => HandoffPolicy::Auto,
        Some("reshuffle") => HandoffPolicy::Reshuffle,
        Some("materialize") => HandoffPolicy::Materialize,
        Some(other) => return Err(format!("unknown handoff policy '{other}'")),
    })
}

fn parse_exec(args: &Args) -> Result<opa_common::ExecConfig, String> {
    match args.options.get("threads") {
        Some(v) => v
            .parse()
            .map(opa_common::ExecConfig::with_threads)
            .map_err(|_| format!("--threads: cannot parse '{v}' as a thread count")),
        None => Ok(opa_common::ExecConfig::available_parallelism()),
    }
}

/// Applies every chain-level knob shared by the three built-in chains.
fn configure(mut flow: Dataflow, args: &Args) -> Result<Dataflow, String> {
    flow = flow
        .exec(parse_exec(args)?)
        .policy(parse_policy(args)?)
        .faults(parse_faults(args))
        .trace(args.options.contains_key("trace-out"));
    if let Some(dir) = args.options.get("checkpoint-dir") {
        flow = flow.checkpoints(dir);
    }
    if args.has_flag("resume") || args.options.contains_key("resume") {
        flow = flow.resume(true);
    }
    Ok(flow)
}

pub(crate) fn dataflow(chain: &str, args: &Args) -> Result<(), String> {
    let input = read_input(args)?;
    let cluster = ClusterSpec::paper_scaled();
    let framework = parse_framework(
        args.options
            .get("framework")
            .map(String::as_str)
            .unwrap_or("mr-hash"),
    )?;

    let outcome: DataflowOutcome = match chain {
        "pagerank" => {
            let rounds: usize = args.get_or("rounds", 3usize);
            let mut flow = Dataflow::new(cluster).then(PageRankInitJob, framework);
            for _ in 0..rounds {
                flow = flow.then(PageRankRoundJob, framework);
            }
            configure(flow, args)?.run(&input)
        }
        "distinct-sessions" => {
            let flow = Dataflow::new(cluster)
                .then(
                    SessionMarkJob {
                        window_secs: args.get_or("window", 300u64),
                        expected_users: args.get_or("expected-keys", 50_000u64),
                    },
                    framework,
                )
                .then(
                    SessionCountJob {
                        expected_users: args.get_or("expected-keys", 50_000u64),
                    },
                    framework,
                );
            configure(flow, args)?.run(&input)
        }
        "top-pages" => {
            // Two producer jobs over the same cluster, unioned by URL.
            let expected_pages = args.get_or("expected-keys", 100_000u64);
            let exec = parse_exec(args)?;
            let freq = JobBuilder::new(PageFreqJob { expected_pages })
                .framework(Framework::IncHash)
                .cluster(cluster)
                .exec(exec)
                .run(&input)
                .map_err(|e| e.to_string())?;
            let sessions = JobBuilder::new(PageSessionsJob { expected_pages })
                .framework(framework)
                .cluster(cluster)
                .exec(exec)
                .run(&input)
                .map_err(|e| e.to_string())?;
            println!(
                "producers: page-freq {} pages, page-sessions {} pages",
                freq.output.len(),
                sessions.output.len()
            );
            let union = Dataset::union(&freq.dataset(&cluster), &sessions.dataset(&cluster))
                .map_err(|e| e.to_string())?;
            let flow = Dataflow::new(cluster)
                .then(TopPagesJoinJob, framework)
                .then(
                    TopKFunnelJob {
                        k: args.get_or("k", 10usize),
                    },
                    framework,
                );
            configure(flow, args)?.run_from(&union)
        }
        other => return Err(format!("unknown chain '{other}'")),
    }
    .map_err(|e| e.to_string())?;

    if let Some(k) = outcome.resumed_from {
        println!("resumed from stage {k}'s checkpoint");
    }
    println!(
        "{:<3} {:<18} {:<10} {:<12} {:>12} {:>12} {:>14}",
        "#", "stage", "framework", "handoff", "records in", "records out", "shuffle saved"
    );
    for (i, s) in outcome.stages.iter().enumerate() {
        println!(
            "{:<3} {:<18} {:<10} {:<12} {:>12} {:>12} {:>14}",
            i,
            s.name,
            s.framework,
            s.handoff.label(),
            s.records_in,
            s.records_out,
            format!("{} B", s.bytes_saved),
        );
    }
    let saved: u64 = outcome.stages.iter().map(|s| s.bytes_saved).sum();
    println!(
        "chain output: {} records across {} partitions; reshuffles skipped saved {} bytes",
        outcome.output.len(),
        outcome.output.spec().partitions,
        saved
    );

    if let Some(path) = args.options.get("trace-out") {
        let log = outcome
            .trace
            .as_ref()
            .ok_or("trace was requested but the chain returned none")?;
        log.write_jsonl(std::path::Path::new(path))
            .map_err(|e| e.to_string())?;
        println!("chain trace: {path} ({} events)", log.events.len());
    }
    if let Some(out) = args.options.get("output") {
        outcome
            .output
            .write(std::path::Path::new(out))
            .map_err(|e| e.to_string())?;
        println!("output dataset: {out}");
    }
    Ok(())
}
