//! `opa serve` — the interactive command loop over the resident server.
//!
//! Commands arrive one per line, from stdin or a control file, and drive
//! the multi-tenant scheduler synchronously: after every command the
//! fleet is quiescent (all running jobs parked at a wave boundary), so
//! `query` always answers against a live, consistent pause point.
//!
//! ```text
//! submit TENANT JOB --input FILE [--framework FW] [--batches K] [--threads N]
//!        [--oversubscribe] [--poison-rate P] [--fault-rate P] [--fault-seed N]
//!        [--admission off|on|lfu] [--state N] [--threshold N] [--expected-keys N]
//! step [N]        # grant N waves (default 1) to every parked job, admission order
//! run             # step until every admitted job finishes
//! status          # one row per job: phase, waves, progress, DLQ size
//! books           # per-tenant admission books
//! query JOB [--key N] [--top-k N]   # live lookup / top-k / progress
//! dlq JOB         # quarantined records with provenance
//! replay JOB      # re-run with the poison fixed; prints the recovered output size
//! quit
//! ```

use crate::args::Args;
use opa_common::Key;
use opa_core::job::JobInput;
use opa_serve::{JobSpec, ServeAnswer, ServeConfig, ServeQuery, Server, SubmitReceipt};
use opa_workloads::{ClickCountJob, FrequentUsersJob, PageFreqJob, SessionizeJob, TrigramCountJob};
use std::collections::HashMap;
use std::io::BufRead;
use std::sync::Arc;

/// Runs the `opa serve` command loop. Reads commands from `--control
/// FILE` when given, stdin otherwise.
pub fn serve(args: &Args) -> Result<(), String> {
    let cfg = ServeConfig {
        slots_per_tenant: args.get_or("slots", 2usize),
        queue_per_tenant: args.get_or("queue", 4usize),
        queue_total: args.get_or("queue-total", 16usize),
    };
    let mut server = Server::new(cfg);
    if let Some(dir) = args.options.get("dlq-dir") {
        server = server.dlq_dir(dir);
    }

    let mut inputs: HashMap<String, Arc<JobInput>> = HashMap::new();
    let mut process = |server: &mut Server, line: &str| -> Result<bool, String> {
        let words: Vec<String> = line.split_whitespace().map(String::from).collect();
        if words.is_empty() || words[0].starts_with('#') {
            return Ok(true);
        }
        let cmd_args = Args::parse(words.iter().skip(1).cloned());
        match words[0].as_str() {
            "submit" => cmd_submit(server, &cmd_args, &mut inputs),
            "step" => {
                let n: usize = cmd_args
                    .positional
                    .first()
                    .map(|s| s.parse().map_err(|_| format!("step: bad count '{s}'")))
                    .transpose()?
                    .unwrap_or(1);
                for _ in 0..n {
                    if !server.step().map_err(|e| e.to_string())? {
                        break;
                    }
                }
                println!("round {}", server.round());
                Ok(())
            }
            "run" => {
                server.run_to_completion().map_err(|e| e.to_string())?;
                println!("drained at round {}", server.round());
                Ok(())
            }
            "status" => {
                print_status(server);
                Ok(())
            }
            "books" => {
                print_books(server);
                Ok(())
            }
            "query" => cmd_query(server, &cmd_args),
            "dlq" => cmd_dlq(server, &cmd_args),
            "replay" => cmd_replay(server, &cmd_args),
            "quit" | "exit" => return Ok(false),
            other => Err(format!("unknown command '{other}'")),
        }
        .map(|()| true)
    };

    let mut run_loop =
        |server: &mut Server, reader: &mut dyn BufRead, echo: bool| -> Result<(), String> {
            for line in reader.lines() {
                let line = line.map_err(|e| format!("read command: {e}"))?;
                if echo {
                    println!("> {line}");
                }
                match process(server, &line) {
                    Ok(true) => {}
                    Ok(false) => break,
                    // Command errors are reported but don't kill the server.
                    Err(msg) => eprintln!("error: {msg}"),
                }
            }
            Ok(())
        };

    match args.options.get("control") {
        Some(path) => {
            let f = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
            run_loop(&mut server, &mut std::io::BufReader::new(f), true)?;
        }
        None => {
            let stdin = std::io::stdin();
            run_loop(&mut server, &mut stdin.lock(), false)?;
        }
    }

    if let Some(path) = args.options.get("trace-out") {
        let log = opa_trace::TraceLog {
            events: server.trace().to_vec(),
        };
        log.write_jsonl(std::path::Path::new(path))
            .map_err(|e| e.to_string())?;
        println!("serve trace        {path} ({} events)", log.events.len());
    }
    Ok(())
}

fn cmd_submit(
    server: &mut Server,
    args: &Args,
    inputs: &mut HashMap<String, Arc<JobInput>>,
) -> Result<(), String> {
    let tenant: u32 = args
        .positional
        .first()
        .ok_or("submit: TENANT missing")?
        .parse()
        .map_err(|_| "submit: TENANT must be an integer".to_string())?;
    let job_name = args
        .positional
        .get(1)
        .ok_or("submit: JOB missing")?
        .as_str();
    let input_path = args
        .options
        .get("input")
        .ok_or("submit: --input FILE is required")?;
    let input = match inputs.get(input_path) {
        Some(cached) => Arc::clone(cached),
        None => {
            let text = std::fs::read_to_string(input_path)
                .map_err(|e| format!("read {input_path}: {e}"))?;
            let fresh = Arc::new(JobInput::from_text(&text));
            inputs.insert(input_path.clone(), Arc::clone(&fresh));
            fresh
        }
    };

    let faults = crate::parse_faults(args);
    let threads = args.get_or("threads", 1usize);
    let spec = JobSpec {
        framework: crate::parse_framework(
            args.options
                .get("framework")
                .map(String::as_str)
                .unwrap_or("inc-hash"),
        )?,
        cluster: opa_core::cluster::ClusterSpec::tiny(),
        batches: args.get_or("batches", 4usize),
        exec: if args.has_flag("oversubscribe") {
            opa_common::ExecConfig::oversubscribed(threads)
        } else {
            opa_common::ExecConfig::with_threads(threads)
        },
        km_hint: args.get_or("km", 1.0f64),
        admission: crate::parse_admission(args)?,
        faults,
        trace: args.has_flag("trace"),
    };

    let receipt = submit_by_name(server, tenant, job_name, args, input, &spec)?;
    println!(
        "job {} tenant {} {}: {:?}",
        receipt.job, tenant, job_name, receipt.outcome
    );
    Ok(())
}

/// Dispatches the generic `Server::submit` over the workload catalog.
fn submit_by_name(
    server: &mut Server,
    tenant: u32,
    job: &str,
    args: &Args,
    input: Arc<JobInput>,
    spec: &JobSpec,
) -> Result<SubmitReceipt, String> {
    let receipt = match job {
        "sessionize" => server.submit(
            tenant,
            SessionizeJob {
                gap_secs: args.get_or("gap", 300u64),
                slack_secs: args.get_or("slack", 400u64),
                state_capacity: args.get_or("state", 512usize),
                charge_fixed_footprint: true,
                expected_users: args.get_or("expected-keys", 50_000u64),
            },
            input,
            spec,
        ),
        "click-count" => server.submit(
            tenant,
            ClickCountJob {
                expected_users: args.get_or("expected-keys", 50_000u64),
            },
            input,
            spec,
        ),
        "frequent-users" => server.submit(
            tenant,
            FrequentUsersJob {
                threshold: args.get_or("threshold", 50u64),
                expected_users: args.get_or("expected-keys", 50_000u64),
            },
            input,
            spec,
        ),
        "page-freq" => server.submit(
            tenant,
            PageFreqJob {
                expected_pages: args.get_or("expected-keys", 10_000u64),
            },
            input,
            spec,
        ),
        "trigrams" => server.submit(
            tenant,
            TrigramCountJob {
                threshold: args.get_or("threshold", 1000u64),
                expected_trigrams: args.get_or("expected-keys", 1_000_000u64),
            },
            input,
            spec,
        ),
        other => return Err(format!("unknown job '{other}'")),
    };
    receipt.map_err(|e| e.to_string())
}

fn job_id(args: &Args) -> Result<u32, String> {
    args.positional
        .first()
        .ok_or("JOB id missing")?
        .parse()
        .map_err(|_| "JOB id must be an integer".to_string())
}

fn cmd_query(server: &Server, args: &Args) -> Result<(), String> {
    let id = job_id(args)?;
    if let Some(k) = args.get::<u64>("key") {
        match server
            .query(id, &ServeQuery::Lookup(Key::from_u64(k)))
            .map_err(|e| e.to_string())?
        {
            ServeAnswer::Value(Some(v)) => match v.as_u64() {
                Some(n) => println!("job {id} key[{k}] = {n}"),
                None => println!("job {id} key[{k}] = {} bytes", v.len()),
            },
            ServeAnswer::Value(None) => println!("job {id} key[{k}] not resident"),
            _ => unreachable!("lookup answers with Value"),
        }
    }
    if let Some(k) = args.get::<usize>("top-k") {
        match server
            .query(id, &ServeQuery::TopK(k))
            .map_err(|e| e.to_string())?
        {
            ServeAnswer::TopK(Some((entries, gamma))) => {
                println!(
                    "job {id} top-{k} (γ ≥ {gamma:.4}): {}",
                    crate::fmt_top(&entries)
                );
            }
            ServeAnswer::TopK(None) => println!("job {id} top-k unavailable"),
            _ => unreachable!("top-k answers with TopK"),
        }
    }
    if !args.options.contains_key("key") && !args.options.contains_key("top-k") {
        match server
            .query(id, &ServeQuery::Progress)
            .map_err(|e| e.to_string())?
        {
            ServeAnswer::Progress(p) => println!(
                "job {id} batch {}/{} records {}/{} maps {}/{} t={:.1}s",
                p.batches_sealed,
                p.batches,
                p.records_sealed,
                p.total_records,
                p.maps_completed,
                p.maps_total,
                p.sim_time.as_secs_f64()
            ),
            _ => unreachable!("progress answers with Progress"),
        }
    }
    Ok(())
}

fn cmd_dlq(server: &Server, args: &Args) -> Result<(), String> {
    let id = job_id(args)?;
    let dlq = server.dlq(id).map_err(|e| e.to_string())?;
    println!("job {id}: {} quarantined record(s)", dlq.len());
    for p in dlq {
        println!(
            "  offset {:>8}  chunk {:>4}  attempt {}  {} bytes",
            p.offset,
            p.chunk,
            p.attempt,
            p.record.len()
        );
    }
    if let Some(path) = server.dlq_path(id) {
        println!("  quarantine file: {}", path.display());
    }
    Ok(())
}

fn cmd_replay(server: &mut Server, args: &Args) -> Result<(), String> {
    let id = job_id(args)?;
    let entries = server.dlq(id).map_err(|e| e.to_string())?.len();
    let outcome = server.replay_dlq(id).map_err(|e| e.to_string())?;
    println!(
        "job {id} replayed with poison fixed: {entries} quarantined record(s) restored, \
         {} output pairs, {} DLQ entries remain",
        outcome.job.output.len(),
        outcome.job.dlq.len()
    );
    Ok(())
}

fn print_status(server: &Server) {
    println!("job  tenant  phase     waves  progress             dlq  name");
    for s in server.status() {
        let progress = s
            .progress
            .as_ref()
            .map(|p| format!("batch {}/{}", p.batches_sealed, p.batches))
            .unwrap_or_else(|| "-".to_string());
        println!(
            "{:>3}  {:>6}  {:<8}  {:>5}  {:<19}  {:>3}  {}{}",
            s.job,
            s.tenant,
            format!("{:?}", s.phase).to_lowercase(),
            s.waves,
            progress,
            s.dlq_entries,
            s.label,
            s.error
                .as_deref()
                .map(|e| format!("  ({e})"))
                .unwrap_or_default()
        );
    }
}

fn print_books(server: &Server) {
    println!("tenant  submitted  admitted  rej-quota  rej-queue  running  waiting  done  failed");
    for (t, b) in server.books() {
        println!(
            "{:>6}  {:>9}  {:>8}  {:>9}  {:>9}  {:>7}  {:>7}  {:>4}  {:>6}",
            t,
            b.submitted,
            b.admitted,
            b.rejected_quota,
            b.rejected_queue,
            b.running,
            b.waiting,
            b.finished,
            b.failed
        );
    }
}
