//! Tiny dependency-free argument parsing for the `opa` binary.

use std::collections::HashMap;

/// Parsed command line: a subcommand path, positional arguments, and
/// `--key value` / `--flag` options.
#[derive(Debug, Default, PartialEq)]
pub struct Args {
    /// Positional arguments in order (subcommands first).
    pub positional: Vec<String>,
    /// `--key value` options.
    pub options: HashMap<String, String>,
    /// Bare `--flag` switches.
    pub flags: Vec<String>,
}

impl Args {
    /// Parses an iterator of raw arguments (without the program name).
    /// An option consumes the next argument as its value unless that
    /// argument starts with `--`, in which case it is a bare flag.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Args {
        let mut args = Args::default();
        let mut iter = raw.into_iter().peekable();
        while let Some(a) = iter.next() {
            if let Some(name) = a.strip_prefix("--") {
                match iter.peek() {
                    Some(v) if !v.starts_with("--") => {
                        let v = iter.next().expect("peeked");
                        args.options.insert(name.to_string(), v);
                    }
                    _ => args.flags.push(name.to_string()),
                }
            } else {
                args.positional.push(a);
            }
        }
        args
    }

    /// Looks up an option, parsed.
    pub fn get<T: std::str::FromStr>(&self, key: &str) -> Option<T> {
        self.options.get(key).and_then(|v| v.parse().ok())
    }

    /// Looks up an option with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.get(key).unwrap_or(default)
    }

    /// Whether a bare flag was given.
    pub fn has_flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

/// Parses a human byte size: `1024`, `64K`, `16M`, `2G` (binary units).
pub fn parse_bytes(s: &str) -> Option<u64> {
    let s = s.trim();
    let (num, mult) = match s.chars().last()? {
        'k' | 'K' => (&s[..s.len() - 1], 1u64 << 10),
        'm' | 'M' => (&s[..s.len() - 1], 1u64 << 20),
        'g' | 'G' => (&s[..s.len() - 1], 1u64 << 30),
        _ => (s, 1),
    };
    num.trim().parse::<u64>().ok().map(|n| n * mult)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Args {
        Args::parse(words.iter().map(|s| s.to_string()))
    }

    #[test]
    fn positional_and_options_separate() {
        let a = parse(&["run", "sessionize", "--framework", "inc-hash", "--verbose"]);
        assert_eq!(a.positional, vec!["run", "sessionize"]);
        assert_eq!(
            a.options.get("framework").map(String::as_str),
            Some("inc-hash")
        );
        assert!(a.has_flag("verbose"));
    }

    #[test]
    fn option_followed_by_option_is_flag() {
        let a = parse(&["--quick", "--seed", "7"]);
        assert!(a.has_flag("quick"));
        assert_eq!(a.get::<u64>("seed"), Some(7));
    }

    #[test]
    fn typed_getters() {
        let a = parse(&["--n", "42", "--x", "not-a-number"]);
        assert_eq!(a.get::<u64>("n"), Some(42));
        assert_eq!(a.get::<u64>("x"), None);
        assert_eq!(a.get_or("missing", 9u64), 9);
    }

    #[test]
    fn byte_sizes() {
        assert_eq!(parse_bytes("1024"), Some(1024));
        assert_eq!(parse_bytes("64K"), Some(64 << 10));
        assert_eq!(parse_bytes("16M"), Some(16 << 20));
        assert_eq!(parse_bytes("2G"), Some(2 << 30));
        assert_eq!(parse_bytes("2 g"), Some(2 << 30));
        assert_eq!(parse_bytes("x"), None);
        assert_eq!(parse_bytes(""), None);
    }
}
