//! `opa` — command-line interface for the One-Pass Analytics platform.
//!
//! ```text
//! opa generate clickstream --bytes 16M --preset sessionization --seed 42 --out clicks.log
//! opa generate documents   --bytes 8M  --out docs.txt
//! opa run sessionize  --input clicks.log --framework dinc-hash --state 2048
//! opa run click-count --input clicks.log --framework inc-hash
//! opa run trigrams    --input docs.txt   --framework inc-hash --threshold 1000
//! opa model --d 97G --km 1.0 --chunk-mb 64 --merge-factor 10
//! ```
//!
//! `run` prints the job's Table-3-style metrics; `--progress-csv PATH`
//! additionally writes the Definition-1 progress curve and
//! `--output PATH` persists the result in the IFile-style run format.

mod args;
mod dataflow_cmd;
mod serve_cmd;

use args::{parse_bytes, Args};
use opa_common::Key;
use opa_core::cluster::{ClusterSpec, Framework};
use opa_core::job::{JobBuilder, JobInput, JobOutcome};
use opa_model::io_model::ModelInput;
use opa_model::optimizer::Optimizer;
use opa_model::time_model::CostConstants;
use opa_stream::{CheckpointView, StreamJobBuilder};
use opa_workloads::clickstream::ClickStreamSpec;
use opa_workloads::documents::DocumentSpec;
use opa_workloads::{ClickCountJob, FrequentUsersJob, PageFreqJob, SessionizeJob, TrigramCountJob};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage:
  opa generate clickstream --bytes SIZE [--preset sessionization|counting] [--seed N] --out FILE
  opa generate documents   --bytes SIZE [--seed N] --out FILE
  opa run JOB --input FILE [--framework FW] [--state BYTES] [--threshold N]
              [--km RATIO] [--threads N] [--progress-csv FILE] [--output FILE]
              [--admission off|on|lfu] [--combine off|task|node]
              [--fault-rate P] [--fault-seed N]
              [--poison-rate P] [--trace-out FILE] [--drift]
              [--model-keys N --model-zipf S]
      JOB: sessionize | click-count | frequent-users | page-freq | trigrams
      FW:  sort-merge | sort-merge-pipelined | mr-hash | inc-hash | dinc-hash
      --admission lfu (alias: on) turns on frequency-gated admission for
      the incremental frameworks: when reduce-side memory is full, a new
      key may evict a resident key that a deterministic frequency sketch
      judges colder, instead of spilling itself. Default: off.
      --combine selects the pre-shuffle combining scope: 'task' (default)
      combines within each map task, 'node' additionally merges all map
      output of one simulated node in a staging table before any shuffle
      bytes are booked, 'off' ships raw map output. Output is identical
      under all three; only shuffle volume and timing change.
      --fault-rate P injects map/reduce failures, stragglers and spill-disk
      errors, each with probability P in [0, 1); --fault-seed N (default 42)
      makes the failure trace reproducible. Recovery never loses data;
      count-style outputs are bit-identical to the fault-free run.
      --poison-rate P makes the map UDF reject each record with probability
      P; rejected records are quarantined to the dead-letter queue with
      full provenance instead of failing the job.
      --trace-out FILE captures every simulation event as structured JSONL
      (see OBSERVABILITY.md); --drift additionally evaluates the Prop 3.1/3.2
      model for this run's configuration and reports per-term relative error.
      With --model-zipf S (and optionally --model-keys N, default
      --expected-keys), --drift also evaluates the combiner-ratio model:
      predicted post-combine shuffle bytes for the selected --combine
      scope vs. the bytes the run actually booked on the network. The
      parameters describe the input's key distribution (Zipf exponent and
      key-space size, e.g. the values `generate clickstream` used).
  opa stream JOB --input FILE [--batches K] [--framework FW] [--threads N]
              [--checkpoint-every N --checkpoint-dir DIR] [--resume CKPT]
              [--watch-key N] [--top-k N] [--output FILE] [--admission off|on|lfu]
              [--fault-rate P] [--fault-seed N] [--poison-rate P] [--trace-out FILE]
      Feeds the input through the engine in K arrival-ordered micro-batches
      (default 4), printing progress and the live incremental state at each
      sealed batch. The streamed output is bit-identical to `opa run`'s.
      --resume restarts from a checkpoint written by an earlier stream run.
  opa dataflow CHAIN --input FILE [--framework FW] [--threads N]
              [--policy auto|reshuffle|materialize] [--rounds K] [--k N]
              [--window SECS] [--checkpoint-dir DIR] [--resume]
              [--fault-rate P] [--fault-seed N] [--trace-out FILE] [--output FILE]
      CHAIN: pagerank | distinct-sessions | top-pages
      Chains several jobs with M3R-style in-memory handoffs: when a stage
      declares itself partition-preserving and its input dataset was
      bucketed under the same partition function, the reshuffle is skipped
      outright (zero shuffle bytes). --policy reshuffle/materialize forces
      the classic paths for comparison; --checkpoint-dir + --resume restore
      the latest finished stage and continue mid-pipeline.
  opa trace FILE [--format chrome|summary] [--out FILE]
      Post-processes a JSONL trace written by --trace-out: `chrome` exports
      a Chrome/Perfetto trace (load at ui.perfetto.dev), `summary` (default)
      prints per-phase rollups.
  opa serve [--control FILE] [--slots N] [--queue N] [--queue-total N]
            [--dlq-dir DIR] [--trace-out FILE]
      Starts the resident multi-tenant job server and reads line commands
      from --control FILE (or stdin): submit / step / run / status / books /
      query / dlq / replay / quit. Jobs from different tenants interleave
      deterministically in admission order; poisoned records land in the
      dead-letter queue with full provenance instead of failing the job.
  opa query --checkpoint CKPT [--key N] [--top-k N]
      Answers point-lookup / top-k / progress queries offline, straight from
      a stream checkpoint file — no job re-execution.
  opa model --d SIZE [--km R] [--kr R] [--chunk-mb N] [--merge-factor N] [--optimize]
";

fn main() -> ExitCode {
    let args = Args::parse(std::env::args().skip(1));
    let cmd: Vec<&str> = args.positional.iter().map(String::as_str).collect();
    let result = match cmd.as_slice() {
        ["generate", "clickstream"] => generate_clickstream(&args),
        ["generate", "documents"] => generate_documents(&args),
        ["run", job] => run_job(job, &args),
        ["stream", job] => stream_job(job, &args),
        ["dataflow", chain] => dataflow_cmd::dataflow(chain, &args),
        ["trace", file] => trace_file(file, &args),
        ["serve"] => serve_cmd::serve(&args),
        ["query"] => query_checkpoint(&args),
        ["model"] => model(&args),
        _ => {
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn required_bytes(args: &Args, key: &str) -> Result<u64, String> {
    args.options
        .get(key)
        .ok_or(format!("--{key} is required"))
        .and_then(|v| parse_bytes(v).ok_or(format!("--{key}: cannot parse '{v}' as a size")))
}

fn out_path(args: &Args) -> Result<PathBuf, String> {
    args.options
        .get("out")
        .map(PathBuf::from)
        .ok_or_else(|| "--out FILE is required".into())
}

fn generate_clickstream(args: &Args) -> Result<(), String> {
    let bytes = required_bytes(args, "bytes")?;
    let seed = args.get_or("seed", 42u64);
    let preset = args
        .options
        .get("preset")
        .map(String::as_str)
        .unwrap_or("sessionization");
    let spec = match preset {
        "sessionization" => ClickStreamSpec::paper_scaled(bytes),
        "counting" => ClickStreamSpec::counting_scaled(bytes),
        other => return Err(format!("unknown preset '{other}'")),
    };
    let (input, stats) = spec.generate_with_stats(seed);
    let path = out_path(args)?;
    write_lines(&path, &input)?;
    println!(
        "wrote {} clicks ({} users, {} s of event time) to {}",
        input.len(),
        stats.distinct_users,
        stats.span_secs,
        path.display()
    );
    Ok(())
}

fn generate_documents(args: &Args) -> Result<(), String> {
    let bytes = required_bytes(args, "bytes")?;
    let seed = args.get_or("seed", 42u64);
    let input = DocumentSpec::paper_scaled(bytes).generate(seed);
    let path = out_path(args)?;
    write_lines(&path, &input)?;
    println!("wrote {} documents to {}", input.len(), path.display());
    Ok(())
}

fn write_lines(path: &PathBuf, input: &JobInput) -> Result<(), String> {
    use std::io::Write;
    let mut f = std::fs::File::create(path).map_err(|e| format!("create {path:?}: {e}"))?;
    let mut buf = std::io::BufWriter::new(&mut f);
    for rec in &input.records {
        buf.write_all(rec)
            .and_then(|()| buf.write_all(b"\n"))
            .map_err(|e| format!("write {path:?}: {e}"))?;
    }
    Ok(())
}

/// Fault configuration shared by `run`, `stream` and `serve` submits:
/// `--fault-rate` drives the four crash classes uniformly, and
/// `--poison-rate` independently quarantines map records to the DLQ.
pub(crate) fn parse_faults(args: &Args) -> opa_common::fault::FaultConfig {
    let fault_rate = args.get_or("fault-rate", 0.0f64);
    let seed = args.get_or("fault-seed", 42u64);
    let mut faults = if fault_rate > 0.0 {
        opa_common::fault::FaultConfig::uniform(seed, fault_rate)
    } else {
        opa_common::fault::FaultConfig::disabled()
    };
    faults.seed = seed;
    faults.udf_poison_rate = args.get_or("poison-rate", 0.0f64);
    faults
}

pub(crate) fn parse_admission(args: &Args) -> Result<opa_common::AdmissionPolicy, String> {
    match args.options.get("admission") {
        Some(v) => opa_common::AdmissionPolicy::parse(v).map_err(|e| e.to_string()),
        None => Ok(opa_common::AdmissionPolicy::Off),
    }
}

pub(crate) fn parse_combine(args: &Args) -> Result<opa_common::CombineScope, String> {
    match args.options.get("combine") {
        Some(v) => opa_common::CombineScope::parse(v).map_err(|e| e.to_string()),
        None => Ok(opa_common::CombineScope::Task),
    }
}

pub(crate) fn parse_framework(s: &str) -> Result<Framework, String> {
    Ok(match s {
        "sort-merge" | "sm" => Framework::SortMerge,
        "sort-merge-pipelined" | "hop" => Framework::SortMergePipelined,
        "mr-hash" => Framework::MrHash,
        "inc-hash" => Framework::IncHash,
        "dinc-hash" => Framework::DincHash,
        other => return Err(format!("unknown framework '{other}'")),
    })
}

fn run_job(job: &str, args: &Args) -> Result<(), String> {
    let input = read_input(args)?;
    let framework = parse_framework(
        args.options
            .get("framework")
            .map(String::as_str)
            .unwrap_or("inc-hash"),
    )?;
    let km = args.get_or("km", 1.0f64);
    let cluster = ClusterSpec::paper_scaled();
    // Execution-layer threads: default to the machine's parallelism. The
    // outcome is bit-identical at any count; threads only buy wall-clock.
    let exec = match args.options.get("threads") {
        Some(v) => {
            let n: usize = v
                .parse()
                .map_err(|_| format!("--threads: cannot parse '{v}' as a thread count"))?;
            opa_common::ExecConfig::with_threads(n)
        }
        None => opa_common::ExecConfig::available_parallelism(),
    };
    // Deterministic fault injection: one uniform rate across all four
    // fault classes, seeded so a failing run can be replayed exactly;
    // --poison-rate additionally quarantines map records to the DLQ.
    let faults = parse_faults(args);
    let admission = parse_admission(args)?;
    let combine = parse_combine(args)?;
    let want_drift = args.has_flag("drift") || args.options.contains_key("drift");
    let trace_on = args.options.contains_key("trace-out") || want_drift;

    let outcome: JobOutcome = match job {
        "sessionize" => JobBuilder::new(SessionizeJob {
            gap_secs: args.get_or("gap", 300u64),
            slack_secs: args.get_or("slack", 400u64),
            state_capacity: args.get_or("state", 512usize),
            charge_fixed_footprint: true,
            expected_users: args.get_or("expected-keys", 50_000u64),
        })
        .framework(framework)
        .cluster(cluster)
        .km_hint(km)
        .exec(exec)
        .faults(faults)
        .admission(admission)
        .combine(combine)
        .trace(trace_on)
        .run(&input),
        "click-count" => JobBuilder::new(ClickCountJob {
            expected_users: args.get_or("expected-keys", 50_000u64),
        })
        .framework(framework)
        .cluster(cluster)
        .km_hint(km)
        .exec(exec)
        .faults(faults)
        .admission(admission)
        .combine(combine)
        .trace(trace_on)
        .run(&input),
        "frequent-users" => JobBuilder::new(FrequentUsersJob {
            threshold: args.get_or("threshold", 50u64),
            expected_users: args.get_or("expected-keys", 50_000u64),
        })
        .framework(framework)
        .cluster(cluster)
        .km_hint(km)
        .exec(exec)
        .faults(faults)
        .admission(admission)
        .combine(combine)
        .trace(trace_on)
        .run(&input),
        "page-freq" => JobBuilder::new(PageFreqJob {
            expected_pages: args.get_or("expected-keys", 10_000u64),
        })
        .framework(framework)
        .cluster(cluster)
        .km_hint(km)
        .exec(exec)
        .faults(faults)
        .admission(admission)
        .combine(combine)
        .trace(trace_on)
        .run(&input),
        "trigrams" => JobBuilder::new(TrigramCountJob {
            threshold: args.get_or("threshold", 1000u64),
            expected_trigrams: args.get_or("expected-keys", 1_000_000u64),
        })
        .framework(framework)
        .cluster(cluster)
        .km_hint(km)
        .exec(exec)
        .faults(faults)
        .admission(admission)
        .combine(combine)
        .trace(trace_on)
        .run(&input),
        other => return Err(format!("unknown job '{other}'")),
    }
    .map_err(|e| e.to_string())?;

    println!("{}", outcome.metrics);
    println!(
        "  reduce@mapfinish    {:.1}%",
        outcome.progress.reduce_pct_at_map_finish()
    );
    if combine != opa_common::CombineScope::Task {
        println!(
            "  shuffle ({})      {} booked on the network",
            combine.label(),
            opa_common::units::ByteSize(outcome.metrics.shuffle_bytes)
        );
    }
    if admission.is_on() {
        if let Some(s) = &outcome.metrics.admission {
            println!(
                "  admission ({})     γ={:.4}  {} offered / {} absorbed / {} evictions / {} rejected",
                admission.label(),
                s.gamma_measured(),
                s.offered,
                s.absorbed,
                s.admitted_evictions,
                s.rejected
            );
        }
    }
    if let Some(rep) = &outcome.metrics.faults {
        println!(
            "  fault breakdown     {} map / {} straggler / {} reduce / {} spill-io (seed {})",
            rep.map_failures, rep.stragglers, rep.reduce_failures, rep.spill_io_errors, faults.seed
        );
    }
    if !outcome.dlq.is_empty() {
        println!(
            "  dead-letter queue   {} record(s) quarantined (first offset {})",
            outcome.dlq.len(),
            outcome.dlq[0].offset
        );
    }

    if trace_on {
        let log = outcome
            .trace
            .as_ref()
            .ok_or("trace was requested but the engine returned none")?;
        if let Some(path) = args.options.get("trace-out") {
            log.write_jsonl(std::path::Path::new(path))
                .map_err(|e| e.to_string())?;
            println!("  trace               {path} ({} events)", log.events.len());
        }
        if want_drift {
            let rollup = log.rollup();
            // The combiner-ratio term needs the input's key distribution,
            // which only the user knows (it is a property of the generator,
            // not the trace): --model-zipf opts in, --model-keys defaults
            // to the job's --expected-keys hint.
            let combine_model = args.options.get("model-zipf").map(|z| {
                let zipf: f64 = z.parse().unwrap_or(1.0);
                let keys = args.get_or("model-keys", args.get_or("expected-keys", 50_000u64));
                let model = opa_model::CombineModel {
                    pairs: input.records.len() as f64,
                    pair_bytes: 24.0,
                    keys,
                    zipf,
                    maps: rollup.map_tasks as f64,
                    nodes: cluster.hardware.nodes as f64,
                    stage_budget: cluster.node_combine_buffer as f64,
                };
                (combine, model)
            });
            let report = opa_trace::drift::check_with_combine(
                cluster.system,
                cluster.hardware,
                &rollup,
                combine_model,
            )
            .map_err(|e| e.to_string())?;
            println!("model drift (predicted vs measured, first-pass I/O):");
            print!("{}", report.render());
        }
    }
    if let Some(csv) = args.options.get("progress-csv") {
        use std::io::Write;
        let mut f = std::fs::File::create(csv).map_err(|e| format!("create {csv}: {e}"))?;
        writeln!(f, "t_secs,map_pct,reduce_pct").map_err(|e| e.to_string())?;
        for p in &outcome.progress.points {
            writeln!(
                f,
                "{:.1},{:.2},{:.2}",
                p.t.as_secs_f64(),
                p.map_pct,
                p.reduce_pct
            )
            .map_err(|e| e.to_string())?;
        }
        println!("  progress CSV        {csv}");
    }
    if let Some(out) = args.options.get("output") {
        outcome
            .write_output(std::path::Path::new(out))
            .map_err(|e| e.to_string())?;
        println!("  output file         {out}");
    }
    Ok(())
}

pub(crate) fn read_input(args: &Args) -> Result<JobInput, String> {
    let input_path = args
        .options
        .get("input")
        .ok_or("--input FILE is required")?;
    let text =
        std::fs::read_to_string(input_path).map_err(|e| format!("read {input_path}: {e}"))?;
    let input = JobInput::from_text(&text);
    if input.is_empty() {
        return Err(format!("{input_path} holds no records"));
    }
    Ok(input)
}

fn stream_job(job: &str, args: &Args) -> Result<(), String> {
    let input = read_input(args)?;
    match job {
        "sessionize" => stream_with(
            SessionizeJob {
                gap_secs: args.get_or("gap", 300u64),
                slack_secs: args.get_or("slack", 400u64),
                state_capacity: args.get_or("state", 512usize),
                charge_fixed_footprint: true,
                expected_users: args.get_or("expected-keys", 50_000u64),
            },
            args,
            &input,
        ),
        "click-count" => stream_with(
            ClickCountJob {
                expected_users: args.get_or("expected-keys", 50_000u64),
            },
            args,
            &input,
        ),
        "frequent-users" => stream_with(
            FrequentUsersJob {
                threshold: args.get_or("threshold", 50u64),
                expected_users: args.get_or("expected-keys", 50_000u64),
            },
            args,
            &input,
        ),
        "page-freq" => stream_with(
            PageFreqJob {
                expected_pages: args.get_or("expected-keys", 10_000u64),
            },
            args,
            &input,
        ),
        "trigrams" => stream_with(
            TrigramCountJob {
                threshold: args.get_or("threshold", 1000u64),
                expected_trigrams: args.get_or("expected-keys", 1_000_000u64),
            },
            args,
            &input,
        ),
        other => Err(format!("unknown job '{other}'")),
    }
}

fn stream_with<J: opa_core::api::Job>(job: J, args: &Args, input: &JobInput) -> Result<(), String> {
    let framework = parse_framework(
        args.options
            .get("framework")
            .map(String::as_str)
            .unwrap_or("inc-hash"),
    )?;
    let exec = match args.options.get("threads") {
        Some(v) => {
            let n: usize = v
                .parse()
                .map_err(|_| format!("--threads: cannot parse '{v}' as a thread count"))?;
            opa_common::ExecConfig::with_threads(n)
        }
        None => opa_common::ExecConfig::available_parallelism(),
    };
    let faults = parse_faults(args);
    let mut builder = StreamJobBuilder::new(job)
        .framework(framework)
        .cluster(ClusterSpec::paper_scaled())
        .km_hint(args.get_or("km", 1.0f64))
        .exec(exec)
        .faults(faults)
        .admission(parse_admission(args)?)
        .trace(args.options.contains_key("trace-out"))
        .batches(args.get_or("batches", 4usize));
    if let Some(n) = args.get::<usize>("checkpoint-every") {
        builder = builder.checkpoint_every(n);
    }
    if let Some(dir) = args.options.get("checkpoint-dir") {
        builder = builder.checkpoint_dir(dir);
    }

    let watch = args.get::<u64>("watch-key").map(Key::from_u64);
    let top_k = args.get::<usize>("top-k");
    let on_batch = |ctl: &mut opa_stream::BatchCtl<'_, '_>| {
        let p = ctl.progress();
        print!(
            "batch {:>3}/{}  records {:>9}/{}  maps {:>4}/{}  t={:.1}s",
            p.batches_sealed,
            p.batches,
            p.records_sealed,
            p.total_records,
            p.maps_completed,
            p.maps_total,
            p.sim_time.as_secs_f64(),
        );
        if let Some(wm) = p.watermark {
            print!("  watermark={wm}");
        }
        if let Some(key) = &watch {
            match ctl.lookup(key).and_then(|v| v.as_u64()) {
                Some(v) => print!("  key[{}]={v}", key.as_u64().unwrap_or(0)),
                None => print!("  key[{}]=-", key.as_u64().unwrap_or(0)),
            }
        }
        println!();
        if let Some(k) = top_k {
            if let Some((entries, gamma)) = ctl.top_k(k) {
                println!("  top-{k} (γ ≥ {gamma:.4}): {}", fmt_top(&entries));
            }
        }
    };

    let outcome = match args.options.get("resume") {
        Some(ck) => builder.resume_stream(input, std::path::Path::new(ck), on_batch),
        None => builder.run_stream(input, on_batch),
    }
    .map_err(|e| e.to_string())?;

    if let Some(b) = outcome.resumed_from_batch {
        println!("resumed from batch {b}");
    }
    if let Some(ck) = &outcome.last_checkpoint {
        println!(
            "{} checkpoint(s) written, last: {}",
            outcome.checkpoints_written,
            ck.display()
        );
    }
    println!("{}", outcome.job.metrics);
    if let Some(rep) = &outcome.job.metrics.faults {
        println!(
            "  fault breakdown     {} map / {} straggler / {} reduce / {} spill-io",
            rep.map_failures, rep.stragglers, rep.reduce_failures, rep.spill_io_errors
        );
    }
    if !outcome.job.dlq.is_empty() {
        println!(
            "  dead-letter queue   {} record(s) quarantined",
            outcome.job.dlq.len()
        );
    }
    if let Some(path) = args.options.get("trace-out") {
        let log = outcome
            .job
            .trace
            .as_ref()
            .ok_or("trace was requested but the engine returned none")?;
        log.write_jsonl(std::path::Path::new(path))
            .map_err(|e| e.to_string())?;
        println!("  trace               {path} ({} events)", log.events.len());
    }
    if let Some(out) = args.options.get("output") {
        outcome
            .job
            .write_output(std::path::Path::new(out))
            .map_err(|e| e.to_string())?;
        println!("  output file         {out}");
    }
    Ok(())
}

fn trace_file(file: &str, args: &Args) -> Result<(), String> {
    let log =
        opa_trace::TraceLog::read_jsonl(std::path::Path::new(file)).map_err(|e| e.to_string())?;
    let format = args
        .options
        .get("format")
        .map(String::as_str)
        .unwrap_or("summary");
    let rendered = match format {
        "chrome" => log.to_chrome(),
        "summary" => log.rollup().render(),
        other => return Err(format!("unknown format '{other}' (chrome | summary)")),
    };
    match args.options.get("out") {
        Some(path) => {
            std::fs::write(path, rendered).map_err(|e| format!("write {path}: {e}"))?;
            println!(
                "wrote {format} view of {} events to {path}",
                log.events.len()
            );
        }
        None => print!("{rendered}"),
    }
    Ok(())
}

pub(crate) fn fmt_top(entries: &[opa_core::reduce::TopEntry]) -> String {
    entries
        .iter()
        .map(|e| match e.key.as_u64() {
            Some(k) => format!("{k}:{}", e.count),
            None => format!("{:?}:{}", e.key, e.count),
        })
        .collect::<Vec<_>>()
        .join("  ")
}

fn query_checkpoint(args: &Args) -> Result<(), String> {
    let path = args
        .options
        .get("checkpoint")
        .ok_or("--checkpoint FILE is required")?;
    let view = CheckpointView::open(std::path::Path::new(path)).map_err(|e| e.to_string())?;
    let fw = view.framework().map_err(|e| e.to_string())?;
    let p = view.progress();
    println!("checkpoint          {path}");
    println!("framework           {fw:?}");
    println!(
        "batches sealed      {}/{} ({} of {} records)",
        p.batches_sealed, p.batches, p.records_sealed, p.total_records
    );
    println!("maps completed      {}/{}", p.maps_completed, p.maps_total);
    println!("pause point         t={:.1}s", p.sim_time.as_secs_f64());
    if let Some(wm) = p.watermark {
        println!("event-time watermark {wm}");
    }
    if let Some(k) = args.get::<u64>("key") {
        match view.lookup(&Key::from_u64(k)).and_then(|v| v.as_u64()) {
            Some(v) => println!("key[{k}]             {v}"),
            None => println!("key[{k}]             not resident"),
        }
    }
    if let Some(k) = args.get::<usize>("top-k") {
        match view.top_k(k) {
            Some((entries, gamma)) => {
                println!("top-{k} (γ ≥ {gamma:.4})   {}", fmt_top(&entries));
            }
            None => println!("top-k               unavailable (not a DINC-hash checkpoint)"),
        }
    }
    Ok(())
}

fn model(args: &Args) -> Result<(), String> {
    use opa_common::units::MB;
    use opa_common::{HardwareSpec, SystemSettings, WorkloadSpec};
    let d = required_bytes(args, "d")?;
    let workload = WorkloadSpec::new(d, args.get_or("km", 1.0), args.get_or("kr", 1.0));
    let hardware = HardwareSpec::paper_cluster_full();
    let constants = CostConstants::default();

    let system = SystemSettings {
        reducers_per_node: args.get_or("r", 4usize),
        chunk_size: args.get_or("chunk-mb", 64u64) * MB,
        merge_factor: args.get_or("merge-factor", 10usize),
    };
    let input = ModelInput::new(system, workload, hardware).map_err(|e| e.to_string())?;
    let bytes = input.io_bytes();
    let t = input.time_measurement(&constants);
    println!("Eq. 1 per-node bytes:");
    println!("  U1 map input     {:>12.0}", bytes.u1);
    println!("  U2 map spill     {:>12.0}", bytes.u2);
    println!("  U3 map output    {:>12.0}", bytes.u3);
    println!("  U4 reduce spill  {:>12.0}", bytes.u4);
    println!("  U5 reduce output {:>12.0}", bytes.u5);
    println!("  total            {:>12.0}", bytes.total());
    println!("Eq. 3 I/O requests: {:.0}", input.io_requests());
    println!(
        "Eq. 4 time: {:.0} s (bytes {:.0} + seeks {:.0} + startup {:.0})",
        t.total(),
        t.byte_time,
        t.seek_time,
        t.startup_time
    );

    if args.has_flag("optimize") {
        let rec = Optimizer::new(workload, hardware, constants)
            .optimize()
            .map_err(|e| e.to_string())?;
        println!(
            "recommendation: C = {} MB, F = {}, R = {} → T = {:.0} s",
            rec.chunk_size / MB,
            rec.merge_factor,
            rec.reducers_per_node,
            rec.modeled_time
        );
    }
    Ok(())
}
