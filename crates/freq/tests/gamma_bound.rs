//! Property tests for the paper's coverage guarantee (§4.3): under
//! Zipf-distributed streams, the monitor-reported coverage estimate
//! `γ = t/(t + slack)` never exceeds the true coverage, where the slack is
//! the algorithm's frequency-estimation error bound — `M/(s+1)` for
//! Misra-Gries (FREQUENT), `M/s` for SpaceSaving.

use opa_common::rng::SplitMix64;
use opa_freq::{MisraGries, SpaceSaving};
use opa_workloads::zipf::Zipf;
use proptest::prelude::*;
use std::collections::HashMap;

/// Draws a Zipf(exponent) stream of `len` ranks over `n_keys` keys.
fn zipf_stream(seed: u64, n_keys: usize, exponent: f64, len: usize) -> Vec<u64> {
    let zipf = Zipf::new(n_keys, exponent);
    let mut rng = SplitMix64::new(seed);
    (0..len).map(|_| zipf.sample(&mut rng) as u64).collect()
}

fn true_counts(stream: &[u64]) -> HashMap<u64, u64> {
    let mut m = HashMap::new();
    for &k in stream {
        *m.entry(k).or_insert(0u64) += 1;
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Misra-Gries: the frequency estimate under-counts by at most
    /// `M/(s+1)`, and `coverage_lower_bound` is a genuine lower bound on
    /// the true coverage `t/f_k` of every monitored key.
    #[test]
    fn misra_gries_gamma_is_a_lower_bound(
        seed in 0u64..200,
        n_keys in 40usize..300,
        exponent in 0.6f64..1.6,
        capacity in 4usize..40,
        len in 1500usize..5000,
    ) {
        let stream = zipf_stream(seed, n_keys, exponent, len);
        let truth = true_counts(&stream);

        let mut mg: MisraGries<u64, ()> = MisraGries::new(capacity);
        for &k in &stream {
            mg.offer(k, (), |_, _, _| {});
        }
        prop_assert_eq!(mg.offered(), stream.len() as u64);

        let slack = mg.offered() as f64 / (capacity as f64 + 1.0);
        for entry in mg.iter() {
            let f = truth[&entry.key] as f64;
            // Frequency guarantee: f − M/(s+1) ≤ f̂ ≤ f.
            let est = mg.estimate(&entry.key) as f64;
            prop_assert!(est <= f + 1e-9, "MG over-estimated: {est} > {f}");
            prop_assert!(
                est >= f - slack - 1e-9,
                "MG under-estimated beyond slack: {est} < {f} - {slack}"
            );
            // Coverage guarantee: γ = t/(t + M/(s+1)) ≤ t/f.
            let gamma = mg.coverage_lower_bound(&entry.key);
            let true_cov = entry.t as f64 / f;
            prop_assert!(
                gamma <= true_cov + 1e-9,
                "γ={gamma} exceeds true coverage {true_cov} (t={}, f={f}, slack={slack})",
                entry.t
            );
            prop_assert!((0.0..=1.0 + 1e-9).contains(&gamma));
        }
        // Unmonitored keys report zero coverage, never a false promise.
        let absent = n_keys as u64 + 1;
        prop_assert_eq!(mg.coverage_lower_bound(&absent), 0.0);
    }

    /// SpaceSaving: the estimate *over*-counts by at most the per-key
    /// error (itself ≤ M/s), so the guaranteed count `f̂ − err` is a lower
    /// bound on the true frequency and the derived coverage
    /// `γ = g/(g + M/s)` never exceeds `g/f ≤ 1`.
    #[test]
    fn space_saving_gamma_is_a_lower_bound(
        seed in 0u64..200,
        n_keys in 40usize..300,
        exponent in 0.6f64..1.6,
        capacity in 4usize..40,
        len in 1500usize..5000,
    ) {
        let stream = zipf_stream(seed, n_keys, exponent, len);
        let truth = true_counts(&stream);

        let mut ss: SpaceSaving<u64> = SpaceSaving::new(capacity);
        for &k in &stream {
            ss.offer(k);
        }
        prop_assert_eq!(ss.offered(), stream.len() as u64);

        let slack = ss.offered() as f64 / capacity as f64;
        for (key, est, err) in ss.top() {
            let f = truth[&key] as f64;
            // Frequency guarantee: f ≤ f̂ ≤ f + M/s, and err ≤ M/s.
            prop_assert!(est as f64 >= f - 1e-9, "SS under-estimated: {est} < {f}");
            prop_assert!(
                est as f64 <= f + slack + 1e-9,
                "SS over-estimated beyond slack: {est} > {f} + {slack}"
            );
            prop_assert!(err as f64 <= slack + 1e-9);
            // Guaranteed count never exceeds the truth...
            let g = (est - err) as f64;
            prop_assert!(g <= f + 1e-9, "guaranteed {g} exceeds true {f}");
            // ... so γ = g/(g + M/s) lower-bounds the coverage g/f
            // (f ≤ f̂ = g + err ≤ g + M/s).
            let gamma = g / (g + slack);
            prop_assert!(
                gamma <= g / f + 1e-9,
                "γ={gamma} exceeds g/f={} (g={g}, f={f}, slack={slack})",
                g / f
            );
            prop_assert!((0.0..=1.0 + 1e-9).contains(&gamma));
        }
    }

    /// The monitor's coverage estimate and the analytical model agree:
    /// `coverage_lower_bound` computes exactly the paper's first-come
    /// formula `γ = t/(t + M/(s+1))` that `opa_model::gamma` exposes to
    /// the engine's admission battery and the drift checker.
    #[test]
    fn monitor_bound_agrees_with_the_model_formula(
        seed in 0u64..100,
        n_keys in 40usize..300,
        exponent in 0.6f64..1.6,
        capacity in 4usize..40,
        len in 1500usize..4000,
    ) {
        let stream = zipf_stream(seed, n_keys, exponent, len);
        let mut mg: MisraGries<u64, ()> = MisraGries::new(capacity);
        for &k in &stream {
            mg.offer(k, (), |_, _, _| {});
        }
        for entry in mg.iter() {
            let model = opa_model::gamma::first_come_bound(
                entry.t,
                mg.offered(),
                capacity as u64,
            );
            let monitor = mg.coverage_lower_bound(&entry.key);
            prop_assert!(
                (model - monitor).abs() < 1e-12,
                "model γ {model} != monitor γ {monitor} (t={}, M={}, s={capacity})",
                entry.t,
                mg.offered()
            );
        }
    }

    /// The two sketches agree on the head of a heavily skewed stream: the
    /// true top key is monitored by both and both award it the largest
    /// coverage/guarantee in their summaries.
    #[test]
    fn both_sketches_capture_the_zipf_head(
        seed in 0u64..100,
        n_keys in 100usize..300,
        len in 3000usize..6000,
    ) {
        let stream = zipf_stream(seed, n_keys, 1.4, len);
        let truth = true_counts(&stream);
        let top_key = *truth.iter().max_by_key(|&(_, &c)| c).unwrap().0;

        let mut mg: MisraGries<u64, ()> = MisraGries::new(24);
        let mut ss: SpaceSaving<u64> = SpaceSaving::new(24);
        for &k in &stream {
            mg.offer(k, (), |_, _, _| {});
            ss.offer(k);
        }
        prop_assert!(mg.estimate(&top_key) > 0, "MG lost the hottest key");
        prop_assert!(ss.contains(&top_key), "SS lost the hottest key");
        prop_assert!(mg.coverage_lower_bound(&top_key) > 0.0);
    }
}

/// The frequency-gated second chance (`replace_min_guarded` steered by a
/// [`FreqSketch`], exactly the DINC-hash admission wiring) must leave the
/// monitor holding a hotter resident set than plain FREQUENT: summed over
/// seeds the true frequency mass of the final resident keys strictly
/// grows, and no single seed regresses by more than 10% (FREQUENT is
/// already frequency-aware and new installs restart at counter 1, so
/// individual seeds can tie or wobble).
#[test]
fn sketch_gated_second_chance_holds_a_hotter_resident_set() {
    use opa_common::sketch::FreqSketch;
    use opa_freq::MgOutcome;

    let resident_mass = |mg: &MisraGries<u64, ()>, truth: &HashMap<u64, u64>| -> u64 {
        mg.iter().map(|e| truth[&e.key]).sum()
    };

    let (mut plain_total, mut gated_total) = (0u64, 0u64);
    for seed in 0..10u64 {
        let stream = zipf_stream(0xF11E + seed, 400, 1.2, 6000);
        let truth = true_counts(&stream);

        let mut plain: MisraGries<u64, ()> = MisraGries::new(16);
        let mut gated: MisraGries<u64, ()> = MisraGries::new(16);
        let mut sketch = FreqSketch::with_capacity(512);
        for &k in &stream {
            plain.offer(k, (), |_, _, _| {});
            // Mirror the engine: the sketch sees every arrival before the
            // monitor decides, so estimates are pure functions of the
            // stream prefix.
            sketch.touch(k);
            if let MgOutcome::Rejected { key, state } = gated.offer(k, (), |_, _, _| {}) {
                let est_new = sketch.estimate(k);
                gated.replace_min_guarded(key, state, |occupant, ()| {
                    sketch.estimate(*occupant) < est_new
                });
            }
        }

        let p = resident_mass(&plain, &truth);
        let g = resident_mass(&gated, &truth);
        assert!(
            g * 100 >= p * 90,
            "seed {seed}: gated resident mass {g} regressed >10% below plain {p}"
        );
        plain_total += p;
        gated_total += g;
    }
    assert!(
        gated_total > plain_total,
        "second chance never paid off: gated {gated_total} ≤ plain {plain_total}"
    );
}
