//! Property-based tests for the frequency-monitoring substrate: the
//! FREQUENT guarantees must hold for *arbitrary* streams, not just the
//! hand-built ones in the unit tests.

use opa_freq::{MgOutcome, MisraGries, SpaceSaving};
use proptest::prelude::*;
use std::collections::HashMap;

fn true_counts(stream: &[u8]) -> HashMap<u8, u64> {
    let mut m = HashMap::new();
    for &k in stream {
        *m.entry(k).or_default() += 1;
    }
    m
}

proptest! {
    /// Misra-Gries frequency estimates never overestimate and undershoot
    /// by at most M/(s+1).
    #[test]
    fn mg_error_bound(
        stream in proptest::collection::vec(0u8..40, 1..2000),
        s in 1usize..20,
    ) {
        let mut mg: MisraGries<u8, ()> = MisraGries::new(s);
        for &k in &stream {
            let _ = mg.offer(k, (), |_, _, _| {});
        }
        let m = stream.len() as u64;
        for (&k, &f) in &true_counts(&stream) {
            let est = mg.estimate(&k);
            prop_assert!(est <= f, "overestimate: key {k} est {est} > true {f}");
            prop_assert!(
                est + m / (s as u64 + 1) >= f,
                "bound violated: key {k} est {est}, true {f}, slack {}",
                m / (s as u64 + 1)
            );
        }
    }

    /// The monitor never holds more than `s` keys, and every offered tuple
    /// is classified exactly once (combined + installed + rejected = M).
    #[test]
    fn mg_conservation(
        stream in proptest::collection::vec(0u8..60, 1..1500),
        s in 1usize..12,
    ) {
        let mut mg: MisraGries<u8, u64> = MisraGries::new(s);
        let (mut combined, mut installed, mut rejected) = (0u64, 0u64, 0u64);
        for &k in &stream {
            match mg.offer(k, 1, |_, a, b| *a += b) {
                MgOutcome::Combined => combined += 1,
                MgOutcome::Installed { .. } => installed += 1,
                MgOutcome::Rejected { .. } => rejected += 1,
            }
            prop_assert!(mg.len() <= s);
        }
        prop_assert_eq!(combined + installed + rejected, stream.len() as u64);
        prop_assert_eq!(mg.offered(), stream.len() as u64);
    }

    /// Attached states absorb exactly the tuples reported as Combined or
    /// Installed: summing all monitored + evicted + rejected masses
    /// reconstructs the stream length.
    #[test]
    fn mg_state_mass_conservation(
        stream in proptest::collection::vec(0u8..30, 1..1000),
        s in 1usize..10,
    ) {
        let mut mg: MisraGries<u8, u64> = MisraGries::new(s);
        let mut outside = 0u64; // mass spilled via eviction or rejection
        for &k in &stream {
            match mg.offer(k, 1, |_, a, b| *a += b) {
                MgOutcome::Combined | MgOutcome::Installed { evicted: None } => {}
                MgOutcome::Installed { evicted: Some(e) } => outside += e.state,
                MgOutcome::Rejected { state, .. } => outside += state,
            }
        }
        let resident: u64 = mg.drain().into_iter().map(|e| e.state).sum();
        prop_assert_eq!(resident + outside, stream.len() as u64);
    }

    /// A guard that always vetoes means no occupant is ever displaced.
    #[test]
    fn mg_guard_protects_occupants(
        stream in proptest::collection::vec(0u8..50, 1..800),
        s in 1usize..6,
    ) {
        let mut mg: MisraGries<u8, ()> = MisraGries::new(s);
        let mut first_keys: Vec<u8> = Vec::new();
        for &k in &stream {
            let before: Vec<u8> = first_keys.clone();
            let out = mg.offer_guarded(k, (), |_, _, _| {}, |_, _| false);
            if matches!(out, MgOutcome::Installed { .. }) {
                first_keys.push(k);
            }
            // Every previously installed key must still be monitored.
            for fk in &before {
                prop_assert!(mg.get(fk).is_some(), "guarded occupant {fk} was displaced");
            }
        }
        prop_assert!(first_keys.len() <= s);
    }

    /// Coverage lower bound never exceeds the true coverage t/f.
    #[test]
    fn mg_coverage_is_lower_bound(
        stream in proptest::collection::vec(0u8..20, 10..1500),
        s in 2usize..10,
    ) {
        let mut mg: MisraGries<u8, ()> = MisraGries::new(s);
        for &k in &stream {
            let _ = mg.offer(k, (), |_, _, _| {});
        }
        let truth = true_counts(&stream);
        for (&k, &f) in &truth {
            let gamma = mg.coverage_lower_bound(&k);
            if let Some(e) = mg.get(&k) {
                let true_cov = e.t as f64 / f as f64;
                prop_assert!(
                    gamma <= true_cov + 1e-9,
                    "γ {gamma} exceeds true coverage {true_cov} for key {k}"
                );
            } else {
                prop_assert_eq!(gamma, 0.0);
            }
        }
    }

    /// SpaceSaving estimates always dominate true counts, within M/s.
    #[test]
    fn space_saving_bounds(
        stream in proptest::collection::vec(0u8..40, 1..1500),
        s in 1usize..12,
    ) {
        let mut ss = SpaceSaving::new(s);
        for &k in &stream {
            let _ = ss.offer(k);
        }
        let m = stream.len() as u64;
        for (k, est, err) in ss.top() {
            let f = true_counts(&stream)[&k];
            prop_assert!(est >= f);
            prop_assert!(est <= f + m / s as u64);
            prop_assert!(est - err <= f, "count − error must lower-bound truth");
        }
    }
}
