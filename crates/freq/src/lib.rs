//! # opa-freq
//!
//! Stream-frequency algorithms underpinning the DINC-hash technique of the
//! paper (§4.3).
//!
//! DINC-hash decides *which keys deserve the in-memory fast path* using the
//! FREQUENT algorithm (Misra & Gries 1982; Berinde et al. 2009): `s`
//! monitored slots, each holding a key, a counter, the state of the partial
//! reduce computation, and `t` — the number of tuples combined since the key
//! was last installed. [`MisraGries`] implements exactly that, generic over
//! the attached state so it doubles as a plain heavy-hitters sketch
//! (`S = ()`).
//!
//! The paper rejects "sketch-based" frequency estimators (Count-Min and
//! friends) because they do not *explicitly encode* the hot-key set; the
//! counter-based [`SpaceSaving`] algorithm, which does, is provided as a
//! comparator for ablation studies.
//!
//! Guarantees implemented and tested here:
//!
//! - frequency under-estimate: `f_k − M/(s+1) ≤ f̂_k ≤ f_k`;
//! - combine-work bound: at least `M' = Σ_{i≤s} max(0, f_i − M/(s+1))`
//!   combine operations happen in memory;
//! - coverage under-estimate: `γ_k = t/(t + M/(s+1)) ≤ coverage(k)`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod misra_gries;
pub mod space_saving;

pub use misra_gries::{MgEntry, MgOutcome, MisraGries};
pub use space_saving::{SpaceSaving, SpaceSavingMonitor};
