//! The FREQUENT algorithm with attached per-key state.
//!
//! Classic FREQUENT maintains `s` (key, counter) slots: a monitored key's
//! arrival increments its counter; an unmonitored key takes over a
//! zero-counter slot if one exists; otherwise *all* counters are decremented
//! and the item is discarded. DINC-hash (paper §4.3) extends each slot with
//! the reduce state `s[i]` and a coverage counter `t[i]`, and instead of
//! discarding rejected tuples it spills them to a hash bucket.
//!
//! The decrement-all step is O(1) amortized here via a global `base` offset:
//! a slot's effective counter is `stored − base`, so "decrement everything"
//! is `base += 1`. Zero-counter slots are found through a lazy min-heap of
//! `(stored, slot)` entries.

use opa_common::SeededState;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::hash::Hash;

/// One monitored slot, as exposed to callers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MgEntry<K, S> {
    /// The monitored key (`k[i]` in the paper).
    pub key: K,
    /// Effective FREQUENT counter (`c[i]`).
    pub count: u64,
    /// Tuples combined since the key was last installed (`t[i]`), used for
    /// coverage estimation.
    pub t: u64,
    /// Attached state of the partial computation (`s[i]`).
    pub state: S,
}

/// What happened to an offered tuple.
#[derive(Debug, PartialEq, Eq)]
pub enum MgOutcome<K, S> {
    /// The key was already monitored: the combine closure ran, `c` and `t`
    /// were incremented. The tuple is fully absorbed.
    Combined,
    /// The key was not monitored but a zero-counter slot existed: the new
    /// key was installed with `c = 1`, `t = 1`. If the slot previously held
    /// a key, that entry is returned for the caller to spill (or, per
    /// workload policy, output directly).
    Installed {
        /// The displaced occupant, if the slot was not empty.
        evicted: Option<MgEntry<K, S>>,
    },
    /// No slot was available (every counter positive, or every
    /// zero-counter occupant vetoed by the guard): the tuple is handed
    /// back for the caller to stage to disk.
    Rejected {
        /// The offered key, returned unconsumed.
        key: K,
        /// The offered state, returned unconsumed.
        state: S,
    },
}

#[derive(Debug)]
struct Slot<K, S> {
    key: K,
    /// Stored counter; effective value is `stored − base`.
    stored: u64,
    t: u64,
    state: S,
}

/// FREQUENT with `s` slots and attached state.
#[derive(Debug)]
pub struct MisraGries<K, S> {
    slots: Vec<Slot<K, S>>,
    index: HashMap<K, usize, SeededState>,
    /// Lazy min-heap over stored counters for zero-slot discovery.
    heap: BinaryHeap<Reverse<(u64, usize)>>,
    base: u64,
    capacity: usize,
    offered: u64,
}

impl<K: Clone + Eq + Hash, S> MisraGries<K, S> {
    /// Creates a monitor with `s` slots.
    ///
    /// # Panics
    /// Panics if `s == 0`.
    pub fn new(s: usize) -> Self {
        assert!(s > 0, "slot count must be positive");
        MisraGries {
            slots: Vec::with_capacity(s.min(1 << 20)),
            index: HashMap::with_capacity_and_hasher(s.min(1 << 20), SeededState::fixed()),
            heap: BinaryHeap::new(),
            base: 0,
            capacity: s,
            offered: 0,
        }
    }

    /// Capacity `s`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether no key is monitored.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Total tuples offered so far (`M`).
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Offers one tuple. `state` is the tuple's initial state (consumed on
    /// install or rejection-free combine); `cb` merges it into an existing
    /// state when the key is already monitored.
    pub fn offer(&mut self, key: K, state: S, cb: impl FnOnce(&K, &mut S, S)) -> MgOutcome<K, S> {
        self.offer_guarded(key, state, cb, |_, _| true)
    }

    /// Like [`MisraGries::offer`], but `guard(key, state)` can veto the
    /// eviction of a zero-counter occupant (the paper's §6.2 sessionization
    /// rule: evict only when the state's sessions have all expired). When
    /// every zero-counter slot is vetoed the tuple is rejected and the
    /// classic decrement still applies to every *positive* counter (idle
    /// keys keep decaying toward evictability); the vetoed slots are
    /// clamped at zero.
    pub fn offer_guarded(
        &mut self,
        key: K,
        state: S,
        cb: impl FnOnce(&K, &mut S, S),
        mut guard: impl FnMut(&K, &S) -> bool,
    ) -> MgOutcome<K, S> {
        self.offered += 1;
        if let Some(&i) = self.index.get(&key) {
            let slot = &mut self.slots[i];
            cb(&slot.key, &mut slot.state, state);
            slot.stored += 1;
            slot.t += 1;
            self.heap.push(Reverse((slot.stored, i)));
            return MgOutcome::Combined;
        }
        // Unoccupied capacity counts as zero slots.
        if self.slots.len() < self.capacity {
            let i = self.slots.len();
            self.slots.push(Slot {
                key: key.clone(),
                stored: self.base + 1,
                t: 1,
                state,
            });
            self.index.insert(key, i);
            self.heap.push(Reverse((self.base + 1, i)));
            return MgOutcome::Installed { evicted: None };
        }
        // Find a zero-counter slot whose occupant the guard lets us evict.
        // Vetoed slots are set aside and restored afterwards (they keep
        // their zero counters and stay candidates for later offers).
        let mut vetoed: Vec<usize> = Vec::new();
        let mut chosen: Option<usize> = None;
        while let Some(i) = self.pop_zero_slot() {
            if guard(&self.slots[i].key, &self.slots[i].state) {
                chosen = Some(i);
                break;
            }
            vetoed.push(i);
        }
        if chosen.is_none() && !vetoed.is_empty() {
            // Rejection with protected zero-counter occupants: keep the
            // classic decrement pressure on every *positive* counter so
            // idle keys keep decaying toward evictability, while the
            // vetoed slots (exactly the zero-counter ones — the scan above
            // exhausted them) are clamped at zero.
            self.base += 1;
            for i in vetoed {
                self.slots[i].stored += 1;
                self.heap.push(Reverse((self.slots[i].stored, i)));
            }
            return MgOutcome::Rejected { key, state };
        }
        for i in vetoed {
            self.heap.push(Reverse((self.slots[i].stored, i)));
        }
        match chosen {
            Some(i) => {
                let slot = &mut self.slots[i];
                let old_key = std::mem::replace(&mut slot.key, key.clone());
                let old_state = std::mem::replace(&mut slot.state, state);
                let evicted = MgEntry {
                    key: old_key.clone(),
                    count: 0,
                    t: slot.t,
                    state: old_state,
                };
                slot.stored = self.base + 1;
                slot.t = 1;
                self.index.remove(&old_key);
                self.index.insert(key, i);
                self.heap.push(Reverse((slot.stored, i)));
                MgOutcome::Installed {
                    evicted: Some(evicted),
                }
            }
            None => {
                // Decrement every counter: all are ≥ 1, so base + 1 never
                // exceeds any stored value.
                self.base += 1;
                MgOutcome::Rejected { key, state }
            }
        }
    }

    /// Forcibly installs `key` by evicting the occupant with the minimum
    /// effective counter, honoring `guard`'s veto — the admission
    /// override used when a frequency sketch (seeded from the same fixed
    /// family as this monitor's map hasher, see `opa_common::sketch`)
    /// judges the arriving key hotter than the coldest monitored one.
    ///
    /// Unlike [`MisraGries::offer_guarded`] this never decrements
    /// counters and never touches `offered` — callers invoke it *after*
    /// an offer returned [`MgOutcome::Rejected`], handing back the
    /// rejected key/state. A key that is already monitored, or a monitor
    /// whose minimum-counter occupants are all vetoed, rejects the tuple
    /// unchanged.
    pub fn replace_min_guarded(
        &mut self,
        key: K,
        state: S,
        mut guard: impl FnMut(&K, &S) -> bool,
    ) -> MgOutcome<K, S> {
        if self.index.contains_key(&key) {
            return MgOutcome::Rejected { key, state };
        }
        if self.slots.len() < self.capacity {
            let i = self.slots.len();
            self.slots.push(Slot {
                key: key.clone(),
                stored: self.base + 1,
                t: 1,
                state,
            });
            self.index.insert(key, i);
            self.heap.push(Reverse((self.base + 1, i)));
            return MgOutcome::Installed { evicted: None };
        }
        // Walk the heap in increasing counter order, setting vetoed slots
        // aside (restored afterwards) until the guard accepts a victim.
        let mut vetoed: Vec<(u64, usize)> = Vec::new();
        let mut chosen: Option<usize> = None;
        while let Some(&Reverse((stored, i))) = self.heap.peek() {
            if self.slots[i].stored != stored {
                self.heap.pop(); // stale
                continue;
            }
            self.heap.pop();
            if guard(&self.slots[i].key, &self.slots[i].state) {
                chosen = Some(i);
                break;
            }
            vetoed.push((stored, i));
        }
        for (stored, i) in vetoed {
            self.heap.push(Reverse((stored, i)));
        }
        match chosen {
            Some(i) => {
                let base = self.base;
                let slot = &mut self.slots[i];
                let old_key = std::mem::replace(&mut slot.key, key.clone());
                let old_state = std::mem::replace(&mut slot.state, state);
                let evicted = MgEntry {
                    key: old_key.clone(),
                    count: slot.stored - base,
                    t: slot.t,
                    state: old_state,
                };
                slot.stored = base + 1;
                slot.t = 1;
                self.index.remove(&old_key);
                self.index.insert(key, i);
                self.heap.push(Reverse((slot.stored, i)));
                MgOutcome::Installed {
                    evicted: Some(evicted),
                }
            }
            None => MgOutcome::Rejected { key, state },
        }
    }

    /// Finds a slot whose effective counter is zero, discarding stale heap
    /// entries along the way.
    fn pop_zero_slot(&mut self) -> Option<usize> {
        while let Some(&Reverse((stored, i))) = self.heap.peek() {
            if self.slots[i].stored != stored {
                self.heap.pop(); // stale
                continue;
            }
            if stored <= self.base {
                // Effective counter is zero; leave the (still-accurate)
                // entry out of the heap — install will push a fresh one.
                self.heap.pop();
                return Some(i);
            }
            return None; // min effective counter > 0 ⇒ no zero slot
        }
        None
    }

    /// Looks up a monitored key.
    pub fn get(&self, key: &K) -> Option<MgEntry<K, S>>
    where
        S: Clone,
    {
        let &i = self.index.get(key)?;
        let s = &self.slots[i];
        Some(MgEntry {
            key: s.key.clone(),
            count: s.stored - self.base,
            t: s.t,
            state: s.state.clone(),
        })
    }

    /// Estimated frequency of a key: the effective counter if monitored,
    /// zero otherwise. Guaranteed to satisfy
    /// `f_k − M/(s+1) ≤ estimate ≤ f_k`.
    pub fn estimate(&self, key: &K) -> u64 {
        self.index
            .get(key)
            .map(|&i| self.slots[i].stored - self.base)
            .unwrap_or(0)
    }

    /// Lower bound on the coverage of a monitored key:
    /// `γ = t / (t + M/(s+1)) ≤ t/f_k = coverage(k)` (paper §4.3).
    /// Returns 0 for unmonitored keys.
    pub fn coverage_lower_bound(&self, key: &K) -> f64 {
        match self.index.get(key) {
            Some(&i) => {
                let t = self.slots[i].t as f64;
                let slack = self.offered as f64 / (self.capacity as f64 + 1.0);
                t / (t + slack)
            }
            None => 0.0,
        }
    }

    /// Iterates over the monitored entries (arbitrary order), exposing the
    /// effective counters.
    pub fn iter(&self) -> impl Iterator<Item = MgEntry<K, S>> + '_
    where
        S: Clone,
    {
        let base = self.base;
        self.slots.iter().map(move |s| MgEntry {
            key: s.key.clone(),
            count: s.stored - base,
            t: s.t,
            state: s.state.clone(),
        })
    }

    /// Consumes the monitor, returning all monitored entries. This is the
    /// end-of-input step where DINC writes the in-memory key-state pairs to
    /// their bucket files.
    pub fn drain(mut self) -> Vec<MgEntry<K, S>> {
        self.index.clear();
        let base = self.base;
        self.slots
            .drain(..)
            .map(|s| MgEntry {
                key: s.key,
                count: s.stored - base,
                t: s.t,
                state: s.state,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Feeds a stream of u64 keys with `()` state; returns the monitor.
    fn run(stream: &[u64], s: usize) -> MisraGries<u64, u64> {
        let mut mg = MisraGries::new(s);
        for &k in stream {
            let _ = mg.offer(k, 1u64, |_, acc, v| *acc += v);
        }
        mg
    }

    #[test]
    fn single_hot_key_is_retained() {
        let mut stream = vec![];
        for i in 0..1000u64 {
            stream.push(7);
            stream.push(1000 + i); // unique cold keys
        }
        let mg = run(&stream, 4);
        assert!(mg.get(&7).is_some(), "hot key must stay monitored");
        let est = mg.estimate(&7);
        let m = stream.len() as u64;
        assert!(est <= 1000);
        assert!(est + m / 5 >= 1000, "estimate {est} too low");
    }

    #[test]
    fn frequency_error_bound_holds() {
        // Zipf-ish synthetic stream.
        let mut stream = Vec::new();
        for k in 1..=50u64 {
            for _ in 0..(2000 / k) {
                stream.push(k);
            }
        }
        // Deterministic interleave.
        stream.sort_by_key(|&k| k.wrapping_mul(0x9e3779b97f4a7c15).rotate_left(17));
        let s = 10;
        let mg = run(&stream, s);
        let m = stream.len() as u64;
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &k in &stream {
            *truth.entry(k).or_default() += 1;
        }
        for (&k, &f) in &truth {
            let est = mg.estimate(&k);
            assert!(est <= f, "overestimate for {k}: {est} > {f}");
            assert!(
                est + m / (s as u64 + 1) >= f,
                "error bound violated for {k}: {est} + {} < {f}",
                m / (s as u64 + 1)
            );
        }
    }

    #[test]
    fn combine_work_bound() {
        // M' = Σ max(0, f_i − M/(s+1)) combine ops must happen in memory.
        // Combined outcomes are exactly the in-memory combines (installs
        // also absorb a tuple; count them too as "absorbed work").
        let mut stream = Vec::new();
        for rep in 0..500 {
            stream.push(1); // f=1500
            stream.push(2); // f=1000 (every other rep pushes two)
            if rep % 2 == 0 {
                stream.push(1);
            }
            stream.push(100 + rep); // cold
        }
        let s = 3;
        let mut mg = MisraGries::new(s);
        let mut absorbed = 0u64;
        for &k in &stream {
            match mg.offer(k, (), |_, _, _| {}) {
                MgOutcome::Combined | MgOutcome::Installed { .. } => absorbed += 1,
                MgOutcome::Rejected { .. } => {}
            }
        }
        let m = stream.len() as u64;
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &k in &stream {
            *truth.entry(k).or_default() += 1;
        }
        let mut freqs: Vec<u64> = truth.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let m_prime: u64 = freqs
            .iter()
            .take(s)
            .map(|&f| f.saturating_sub(m / (s as u64 + 1)))
            .sum();
        assert!(
            absorbed >= m_prime,
            "absorbed {absorbed} < guaranteed {m_prime}"
        );
    }

    #[test]
    fn states_accumulate_through_combines() {
        let mut mg: MisraGries<&str, Vec<u32>> = MisraGries::new(2);
        let _ = mg.offer("a", vec![1], |_, acc, mut v| acc.append(&mut v));
        let _ = mg.offer("a", vec![2], |_, acc, mut v| acc.append(&mut v));
        let _ = mg.offer("a", vec![3], |_, acc, mut v| acc.append(&mut v));
        let e = mg.get(&"a").unwrap();
        assert_eq!(e.state, vec![1, 2, 3]);
        assert_eq!(e.count, 3);
        assert_eq!(e.t, 3);
    }

    #[test]
    fn eviction_returns_previous_occupant() {
        let mut mg: MisraGries<u64, u64> = MisraGries::new(1);
        assert!(matches!(
            mg.offer(1, 10, |_, a, b| *a += b),
            MgOutcome::Installed { evicted: None }
        ));
        // Key 2 arrives: counter of key 1 is 1 > 0 → reject + decrement.
        assert!(matches!(
            mg.offer(2, 20, |_, a, b| *a += b),
            MgOutcome::Rejected { .. }
        ));
        // Key 2 again: counter of key 1 is now 0 → evict key 1.
        match mg.offer(2, 20, |_, a, b| *a += b) {
            MgOutcome::Installed { evicted: Some(e) } => {
                assert_eq!(e.key, 1);
                assert_eq!(e.state, 10);
                assert_eq!(e.count, 0);
            }
            other => panic!("expected eviction, got {other:?}"),
        }
        assert_eq!(mg.estimate(&2), 1);
        assert_eq!(mg.estimate(&1), 0);
    }

    #[test]
    fn coverage_lower_bound_is_a_lower_bound() {
        let mut stream = Vec::new();
        for i in 0..3000u64 {
            stream.push(42);
            if i % 3 == 0 {
                stream.push(i + 100);
            }
        }
        let s = 8;
        let mut mg: MisraGries<u64, ()> = MisraGries::new(s);
        for &k in &stream {
            let _ = mg.offer(k, (), |_, _, _| {});
        }
        let f42 = stream.iter().filter(|&&k| k == 42).count() as f64;
        let t = mg.get(&42).expect("hot key monitored").t as f64;
        let gamma = mg.coverage_lower_bound(&42);
        assert!(
            gamma > 0.0 && gamma <= t / f42 + 1e-12,
            "γ={gamma}, true={}",
            t / f42
        );
        // Unmonitored keys have zero coverage.
        assert_eq!(mg.coverage_lower_bound(&999_999), 0.0);
    }

    #[test]
    fn drain_returns_every_monitored_entry() {
        let mg = run(&[1, 1, 2, 3, 2, 1], 4);
        let mut entries = mg.drain();
        entries.sort_by_key(|e| e.key);
        let keys: Vec<u64> = entries.iter().map(|e| e.key).collect();
        assert_eq!(keys, vec![1, 2, 3]);
        let counts: Vec<u64> = entries.iter().map(|e| e.count).collect();
        assert_eq!(counts, vec![3, 2, 1]);
    }

    #[test]
    fn guard_vetoes_eviction_and_skips_decrement() {
        let mut mg: MisraGries<u64, u64> = MisraGries::new(1);
        let _ = mg.offer(1, 10, |_, a, b| *a += b);
        // Drive key 1's counter to zero.
        assert!(matches!(
            mg.offer(2, 20, |_, a, b| *a += b),
            MgOutcome::Rejected { .. }
        ));
        assert_eq!(mg.estimate(&1), 0);
        // Guard protects key 1: offer is rejected, no decrement, occupant
        // stays.
        let out = mg.offer_guarded(3, 30, |_, a, b| *a += b, |_, _| false);
        assert!(matches!(out, MgOutcome::Rejected { .. }));
        assert!(mg.get(&1).is_some());
        assert_eq!(mg.estimate(&1), 0, "vetoed slot keeps zero counter");
        // Once the guard allows it, the eviction proceeds.
        let out = mg.offer_guarded(3, 30, |_, a, b| *a += b, |_, _| true);
        match out {
            MgOutcome::Installed { evicted: Some(e) } => assert_eq!(e.key, 1),
            other => panic!("expected eviction, got {other:?}"),
        }
        assert!(mg.get(&3).is_some());
    }

    #[test]
    fn guard_picks_first_evictable_among_zero_slots() {
        // Two slots, both at zero; guard protects one of them.
        let mut mg: MisraGries<u64, u64> = MisraGries::new(2);
        let _ = mg.offer(1, 0, |_, a, b| *a += b);
        let _ = mg.offer(2, 0, |_, a, b| *a += b);
        // Reject once to zero both counters.
        assert!(matches!(
            mg.offer(3, 0, |_, a, b| *a += b),
            MgOutcome::Rejected { .. }
        ));
        assert_eq!(mg.estimate(&1), 0);
        assert_eq!(mg.estimate(&2), 0);
        // Guard only allows evicting key 2.
        let out = mg.offer_guarded(3, 0, |_, a, b| *a += b, |k, _| *k == 2);
        match out {
            MgOutcome::Installed { evicted: Some(e) } => assert_eq!(e.key, 2),
            other => panic!("expected eviction of key 2, got {other:?}"),
        }
        assert!(mg.get(&1).is_some(), "protected key survives");
    }

    #[test]
    fn offered_counts_all_tuples() {
        let mg = run(&[5; 100], 2);
        assert_eq!(mg.offered(), 100);
        assert_eq!(mg.len(), 1);
        assert_eq!(mg.estimate(&5), 100);
    }

    #[test]
    fn replace_min_evicts_the_coldest_occupant() {
        let mut mg: MisraGries<u64, u64> = MisraGries::new(2);
        for _ in 0..5 {
            let _ = mg.offer(1, 1, |_, a, b| *a += b); // hot, c=5
        }
        let _ = mg.offer(2, 1, |_, a, b| *a += b); // cold, c=1
        let offered = mg.offered();
        // A classic offer would be rejected (both counters positive)…
        match mg.replace_min_guarded(3, 7, |_, _| true) {
            MgOutcome::Installed { evicted: Some(e) } => {
                // …but the forced install evicts the minimum-counter key,
                // reporting its effective counter.
                assert_eq!(e.key, 2);
                assert_eq!(e.count, 1);
                assert_eq!(e.state, 1);
            }
            other => panic!("expected forced eviction, got {other:?}"),
        }
        assert!(mg.get(&1).is_some(), "hot key untouched");
        assert_eq!(mg.estimate(&3), 1, "newcomer starts at c=1");
        assert_eq!(mg.offered(), offered, "offered is not re-counted");
        // Guard veto on every occupant rejects the tuple unchanged.
        match mg.replace_min_guarded(4, 9, |_, _| false) {
            MgOutcome::Rejected { key, state } => {
                assert_eq!((key, state), (4, 9));
            }
            other => panic!("expected veto rejection, got {other:?}"),
        }
        // Already-monitored keys are rejected rather than duplicated.
        assert!(matches!(
            mg.replace_min_guarded(1, 0, |_, _| true),
            MgOutcome::Rejected { .. }
        ));
    }

    #[test]
    fn replace_min_uses_spare_capacity_first() {
        let mut mg: MisraGries<u64, u64> = MisraGries::new(2);
        let _ = mg.offer(1, 1, |_, a, b| *a += b);
        assert!(matches!(
            mg.replace_min_guarded(2, 2, |_, _| true),
            MgOutcome::Installed { evicted: None }
        ));
        assert_eq!(mg.len(), 2);
        // The monitor keeps behaving normally afterwards: drive both
        // counters to zero and verify the classic offer path still works.
        assert!(matches!(
            mg.offer(3, 3, |_, a, b| *a += b),
            MgOutcome::Rejected { .. }
        ));
        assert!(matches!(
            mg.offer(3, 3, |_, a, b| *a += b),
            MgOutcome::Installed { evicted: Some(_) }
        ));
    }
}

impl<K: Clone + Eq + Hash, S> MisraGries<K, S> {
    /// Rebuilds a monitor from previously exported entries (the checkpoint
    /// counterpart of [`MisraGries::iter`]). The restored monitor behaves
    /// identically to the original from this point on: entries are
    /// installed in the given order with `base = 0` and `stored = count`
    /// exactly, so zero-count occupants remain immediate eviction
    /// candidates and the `(counter, slot)` tie-break order is preserved.
    ///
    /// # Panics
    /// Panics if `capacity == 0` or more than `capacity` entries are given.
    pub fn restore(capacity: usize, offered: u64, entries: Vec<MgEntry<K, S>>) -> Self {
        assert!(
            entries.len() <= capacity,
            "restore: {} entries exceed capacity {capacity}",
            entries.len()
        );
        let mut mg = MisraGries::new(capacity);
        mg.offered = offered;
        for e in entries {
            let i = mg.slots.len();
            mg.slots.push(Slot {
                key: e.key.clone(),
                stored: e.count,
                t: e.t,
                state: e.state,
            });
            mg.index.insert(e.key, i);
            mg.heap.push(Reverse((e.count, i)));
        }
        mg
    }

    /// Merges two summaries (Agarwal et al., "Mergeable Summaries"):
    /// same-key counters add (states combine through `cb`), then the
    /// result is trimmed back to this summary's capacity by subtracting
    /// the (s+1)-th largest counter from everything kept. Entries trimmed
    /// away are returned for the caller to stage, mirroring DINC's
    /// eviction flow. The merged frequency-error bound is at most the sum
    /// of the inputs' bounds.
    pub fn merge_with(
        self,
        other: MisraGries<K, S>,
        mut cb: impl FnMut(&K, &mut S, S),
    ) -> (MisraGries<K, S>, Vec<MgEntry<K, S>>) {
        let capacity = self.capacity;
        let offered = self.offered + other.offered;
        let mut combined: HashMap<K, MgEntry<K, S>, SeededState> =
            HashMap::with_hasher(SeededState::fixed());
        for e in self.drain().into_iter().chain(other.drain()) {
            match combined.entry(e.key.clone()) {
                std::collections::hash_map::Entry::Occupied(mut o) => {
                    let cur = o.get_mut();
                    cur.count += e.count;
                    cur.t += e.t;
                    cb(&e.key, &mut cur.state, e.state);
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(e);
                }
            }
        }
        let mut entries: Vec<MgEntry<K, S>> = combined.into_values().collect();
        entries.sort_by_key(|e| std::cmp::Reverse(e.count));
        // Subtract the (s+1)-th largest counter from the survivors.
        let cut = entries.get(capacity).map(|e| e.count).unwrap_or(0);
        let spilled = if entries.len() > capacity {
            entries.split_off(capacity)
        } else {
            Vec::new()
        };
        let mut merged = MisraGries::new(capacity);
        merged.offered = offered;
        for e in entries {
            let i = merged.slots.len();
            merged.slots.push(Slot {
                key: e.key.clone(),
                stored: merged.base + (e.count - cut).max(1),
                t: e.t,
                state: e.state,
            });
            merged.index.insert(e.key, i);
            merged.heap.push(Reverse((merged.slots[i].stored, i)));
        }
        (merged, spilled)
    }
}

#[cfg(test)]
mod merge_tests {
    use super::*;
    use std::collections::HashMap;

    fn feed(stream: &[u64], s: usize) -> MisraGries<u64, u64> {
        let mut mg = MisraGries::new(s);
        for &k in stream {
            let _ = mg.offer(k, 1, |_, a, b| *a += b);
        }
        mg
    }

    #[test]
    fn merged_summary_keeps_error_bound() {
        // Two halves of a skewed stream, summarized independently, then
        // merged: the error bound f − f̂ ≤ M1/(s+1) + M2/(s+1) must hold.
        let mut stream = Vec::new();
        for k in 1..=30u64 {
            for _ in 0..(900 / k) {
                stream.push(k);
            }
        }
        stream.sort_by_key(|&k| k.wrapping_mul(0x9e3779b97f4a7c15).rotate_left(23));
        let (a, b) = stream.split_at(stream.len() / 2);
        let s = 8;
        let (merged, _spilled) = feed(a, s).merge_with(feed(b, s), |_, x, y| *x += y);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &k in &stream {
            *truth.entry(k).or_default() += 1;
        }
        let slack = a.len() as u64 / (s as u64 + 1) + b.len() as u64 / (s as u64 + 1) + 2;
        for (&k, &f) in &truth {
            let est = merged.estimate(&k);
            assert!(est <= f + 1, "overestimate for {k}: {est} > {f}");
            assert!(
                est + slack >= f,
                "merged bound violated for {k}: {est} + {slack} < {f}"
            );
        }
        assert!(merged.len() <= s);
        assert_eq!(merged.offered(), stream.len() as u64);
    }

    #[test]
    fn merge_combines_states_and_spills_overflow() {
        let a = feed(&[1, 1, 1, 2, 2], 2);
        let b = feed(&[1, 3, 3, 3, 3], 2);
        let (merged, spilled) = a.merge_with(b, |_, x, y| *x += y);
        // Keys 1 (mass 4) and 3 (mass 4) dominate key 2 (mass 2).
        assert!(merged.get(&1).is_some());
        assert!(merged.get(&3).is_some());
        let spilled_keys: Vec<u64> = spilled.iter().map(|e| e.key).collect();
        assert_eq!(spilled_keys, vec![2]);
        // State mass is conserved across survivors + spills.
        let kept: u64 = merged.iter().map(|e| e.state).sum();
        let lost: u64 = spilled.iter().map(|e| e.state).sum();
        assert_eq!(kept + lost, 10);
    }
}
