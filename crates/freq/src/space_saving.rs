//! SpaceSaving (Metwally, Agrawal, El Abbadi 2005).
//!
//! The other classic counter-based heavy-hitters algorithm: when a new key
//! arrives and all `s` slots are taken, the *minimum-count* slot is evicted
//! and the newcomer inherits `min + 1` with error `min`. Like FREQUENT it
//! explicitly encodes the hot-key set, so it satisfies the paper's
//! requirement for DINC (§4.3); OPA ships it as an ablation comparator
//! (bench `ablation_monitor`).

use opa_common::SeededState;
use std::collections::HashMap;
use std::hash::Hash;

/// A SpaceSaving summary over keys of type `K`.
#[derive(Debug)]
pub struct SpaceSaving<K> {
    /// key → (count, overestimation error). Seeded hasher: the min-scan in
    /// [`SpaceSaving::offer`] iterates this map, so tie-breaks must not
    /// depend on a per-process random hash seed.
    counts: HashMap<K, (u64, u64), SeededState>,
    capacity: usize,
    offered: u64,
}

impl<K: Clone + Eq + Hash> SpaceSaving<K> {
    /// Creates a summary with `s` slots.
    ///
    /// # Panics
    /// Panics if `s == 0`.
    pub fn new(s: usize) -> Self {
        assert!(s > 0, "slot count must be positive");
        SpaceSaving {
            counts: HashMap::with_capacity_and_hasher(s.min(1 << 20), SeededState::fixed()),
            capacity: s,
            offered: 0,
        }
    }

    /// Offers one item. Returns the evicted key, if the offer displaced one.
    pub fn offer(&mut self, key: K) -> Option<K> {
        self.offered += 1;
        if let Some(e) = self.counts.get_mut(&key) {
            e.0 += 1;
            return None;
        }
        if self.counts.len() < self.capacity {
            self.counts.insert(key, (1, 0));
            return None;
        }
        // Evict the minimum-count key. O(s) scan: SpaceSaving is the
        // ablation baseline, not the hot path, and `s` is modest in every
        // experiment that uses it.
        let (min_key, &(min_count, _)) = self
            .counts
            .iter()
            .min_by_key(|(_, &(c, _))| c)
            .expect("capacity > 0, map non-empty");
        let min_key = min_key.clone();
        self.counts.remove(&min_key);
        self.counts.insert(key, (min_count + 1, min_count));
        Some(min_key)
    }

    /// Estimated frequency (an over-estimate: `f ≤ f̂ ≤ f + M/s`).
    pub fn estimate(&self, key: &K) -> u64 {
        self.counts.get(key).map(|&(c, _)| c).unwrap_or(0)
    }

    /// Guaranteed over-estimation error for a monitored key.
    pub fn error(&self, key: &K) -> Option<u64> {
        self.counts.get(key).map(|&(_, e)| e)
    }

    /// Whether the key is currently monitored.
    pub fn contains(&self, key: &K) -> bool {
        self.counts.contains_key(key)
    }

    /// Total items offered (`M`).
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Monitored keys with their (count, error) pairs, highest count first.
    pub fn top(&self) -> Vec<(K, u64, u64)> {
        let mut v: Vec<_> = self
            .counts
            .iter()
            .map(|(k, &(c, e))| (k.clone(), c, e))
            .collect();
        v.sort_by_key(|e| std::cmp::Reverse(e.1));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn hot_key_survives_cold_stream() {
        let mut ss = SpaceSaving::new(4);
        for i in 0..2000u64 {
            let _ = ss.offer(7);
            let _ = ss.offer(1000 + i);
        }
        assert!(ss.contains(&7));
        assert!(ss.estimate(&7) >= 2000);
    }

    #[test]
    fn estimates_are_overestimates_within_bound() {
        let mut stream = Vec::new();
        for k in 1..=40u64 {
            for _ in 0..(1200 / k) {
                stream.push(k);
            }
        }
        stream.sort_by_key(|&k| k.wrapping_mul(0x2545f4914f6cdd1d).rotate_left(9));
        let s = 12;
        let mut ss = SpaceSaving::new(s);
        for &k in &stream {
            let _ = ss.offer(k);
        }
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &k in &stream {
            *truth.entry(k).or_default() += 1;
        }
        let m = stream.len() as u64;
        for (k, est, err) in ss.top() {
            let f = truth[&k];
            assert!(est >= f, "underestimate for {k}");
            assert!(est <= f + m / s as u64, "bound violated for {k}");
            assert!(est - err <= f, "error field not a valid bound for {k}");
        }
    }

    #[test]
    fn eviction_reports_displaced_key() {
        let mut ss = SpaceSaving::new(1);
        assert_eq!(ss.offer("a"), None);
        assert_eq!(ss.offer("b"), Some("a"));
        assert!(ss.contains(&"b"));
        assert_eq!(ss.estimate(&"b"), 2); // min(1) + 1
        assert_eq!(ss.error(&"b"), Some(1));
    }

    #[test]
    fn top_sorted_descending() {
        let mut ss = SpaceSaving::new(8);
        for _ in 0..5 {
            let _ = ss.offer("x");
        }
        for _ in 0..3 {
            let _ = ss.offer("y");
        }
        let _ = ss.offer("z");
        let top = ss.top();
        assert_eq!(top[0].0, "x");
        assert_eq!(top[1].0, "y");
        assert_eq!(top[2].0, "z");
        assert_eq!(ss.offered(), 9);
    }
}

/// SpaceSaving with attached per-key state — the drop-in alternative to
/// [`MisraGries`](crate::MisraGries) for DINC-hash's monitor, used by the
/// `ablation` experiments to test the paper's choice of FREQUENT.
///
/// Differences from FREQUENT: there is no decrement step; an unmonitored
/// arrival displaces the *minimum-count* occupant (inheriting `min + 1`),
/// so installs always succeed unless the eviction guard vetoes every
/// minimal occupant.
#[derive(Debug)]
pub struct SpaceSavingMonitor<K, S> {
    slots: Vec<(K, u64, u64, S)>, // key, count, t, state
    index: std::collections::HashMap<K, usize, SeededState>,
    capacity: usize,
    offered: u64,
}

/// Outcome of offering a tuple to a [`SpaceSavingMonitor`] — mirrors
/// [`MgOutcome`](crate::MgOutcome).
pub type SsOutcome<K, S> = crate::MgOutcome<K, S>;

impl<K: Clone + Eq + std::hash::Hash, S> SpaceSavingMonitor<K, S> {
    /// Creates a monitor with `s` slots.
    ///
    /// # Panics
    /// Panics if `s == 0`.
    pub fn new(s: usize) -> Self {
        assert!(s > 0, "slot count must be positive");
        SpaceSavingMonitor {
            slots: Vec::with_capacity(s.min(1 << 20)),
            index: std::collections::HashMap::with_capacity_and_hasher(
                s.min(1 << 20),
                SeededState::fixed(),
            ),
            capacity: s,
            offered: 0,
        }
    }

    /// Capacity `s`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Occupied slots.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether nothing is monitored.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Total tuples offered (`M`).
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Offers one tuple; `guard` can veto displacing a minimal occupant.
    pub fn offer_guarded(
        &mut self,
        key: K,
        state: S,
        cb: impl FnOnce(&K, &mut S, S),
        mut guard: impl FnMut(&K, &S) -> bool,
    ) -> SsOutcome<K, S> {
        use crate::MgOutcome;
        self.offered += 1;
        if let Some(&i) = self.index.get(&key) {
            let (ref k, ref mut count, ref mut t, ref mut s) = self.slots[i];
            cb(k, s, state);
            *count += 1;
            *t += 1;
            return MgOutcome::Combined;
        }
        if self.slots.len() < self.capacity {
            let i = self.slots.len();
            self.slots.push((key.clone(), 1, 1, state));
            self.index.insert(key, i);
            return MgOutcome::Installed { evicted: None };
        }
        // Scan minima in count order until the guard accepts one.
        let mut order: Vec<usize> = (0..self.slots.len()).collect();
        order.sort_by_key(|&i| self.slots[i].1);
        let chosen = order
            .into_iter()
            .find(|&i| guard(&self.slots[i].0, &self.slots[i].3));
        match chosen {
            Some(i) => {
                let min_count = self.slots[i].1;
                let old_t = self.slots[i].2;
                let (old_key, _, _, old_state) =
                    std::mem::replace(&mut self.slots[i], (key.clone(), min_count + 1, 1, state));
                self.index.remove(&old_key);
                self.index.insert(key, i);
                MgOutcome::Installed {
                    evicted: Some(crate::MgEntry {
                        key: old_key,
                        count: min_count,
                        t: old_t,
                        state: old_state,
                    }),
                }
            }
            None => MgOutcome::Rejected { key, state },
        }
    }

    /// Rebuilds a monitor from previously exported entries (the checkpoint
    /// counterpart of [`SpaceSavingMonitor::iter`]). Entries are installed
    /// in the given order, which preserves the stable minimum-scan
    /// tie-break and therefore the monitor's future eviction choices.
    ///
    /// # Panics
    /// Panics if `capacity == 0` or more than `capacity` entries are given.
    pub fn restore(capacity: usize, offered: u64, entries: Vec<crate::MgEntry<K, S>>) -> Self {
        assert!(
            entries.len() <= capacity,
            "restore: {} entries exceed capacity {capacity}",
            entries.len()
        );
        let mut m = SpaceSavingMonitor::new(capacity);
        m.offered = offered;
        for e in entries {
            let i = m.slots.len();
            m.slots.push((e.key.clone(), e.count, e.t, e.state));
            m.index.insert(e.key, i);
        }
        m
    }

    /// Looks up a monitored key.
    pub fn get(&self, key: &K) -> Option<crate::MgEntry<K, S>>
    where
        S: Clone,
    {
        let &i = self.index.get(key)?;
        let (ref k, count, t, ref state) = self.slots[i];
        Some(crate::MgEntry {
            key: k.clone(),
            count,
            t,
            state: state.clone(),
        })
    }

    /// Iterates over the monitored entries in slot order.
    pub fn iter(&self) -> impl Iterator<Item = crate::MgEntry<K, S>> + '_
    where
        S: Clone,
    {
        self.slots
            .iter()
            .map(|(k, count, t, state)| crate::MgEntry {
                key: k.clone(),
                count: *count,
                t: *t,
                state: state.clone(),
            })
    }

    /// Consumes the monitor, returning its entries.
    pub fn drain(self) -> Vec<crate::MgEntry<K, S>> {
        self.slots
            .into_iter()
            .map(|(key, count, t, state)| crate::MgEntry {
                key,
                count,
                t,
                state,
            })
            .collect()
    }
}

#[cfg(test)]
mod monitor_tests {
    use super::*;
    use crate::MgOutcome;

    #[test]
    fn monitor_combines_and_installs() {
        let mut m: SpaceSavingMonitor<u64, u64> = SpaceSavingMonitor::new(2);
        assert!(matches!(
            m.offer_guarded(1, 1, |_, a, b| *a += b, |_, _| true),
            MgOutcome::Installed { evicted: None }
        ));
        assert!(matches!(
            m.offer_guarded(1, 1, |_, a, b| *a += b, |_, _| true),
            MgOutcome::Combined
        ));
        assert_eq!(m.len(), 1);
        assert_eq!(m.offered(), 2);
    }

    #[test]
    fn monitor_displaces_minimum() {
        let mut m: SpaceSavingMonitor<&str, ()> = SpaceSavingMonitor::new(2);
        for _ in 0..5 {
            let _ = m.offer_guarded("hot", (), |_, _, _| {}, |_, _| true);
        }
        let _ = m.offer_guarded("cold", (), |_, _, _| {}, |_, _| true);
        // Newcomer displaces "cold" (the minimum), never "hot".
        match m.offer_guarded("new", (), |_, _, _| {}, |_, _| true) {
            MgOutcome::Installed { evicted: Some(e) } => assert_eq!(e.key, "cold"),
            other => panic!("expected eviction of the minimum, got {other:?}"),
        }
        assert_eq!(m.drain().len(), 2);
    }

    #[test]
    fn monitor_guard_vetoes() {
        let mut m: SpaceSavingMonitor<u64, ()> = SpaceSavingMonitor::new(1);
        let _ = m.offer_guarded(1, (), |_, _, _| {}, |_, _| true);
        let out = m.offer_guarded(2, (), |_, _, _| {}, |_, _| false);
        assert!(matches!(out, MgOutcome::Rejected { key: 2, .. }));
        // Occupant unharmed.
        let out = m.offer_guarded(1, (), |_, _, _| {}, |_, _| false);
        assert!(matches!(out, MgOutcome::Combined));
    }
}
