//! Stream-job checkpoints: everything needed to resume an interrupted
//! stream run from its last sealed micro-batch.
//!
//! A checkpoint is taken at a *pause point* — the instant between two
//! micro-batches when every shuffle delivery originating from the sealed
//! batch's own chunks has been absorbed. Chunks beyond the watermark may
//! still be mid-shuffle (the map waves pipeline into the reduce side
//! continuously), so the scheduler's event queue holds pending `StartMap`
//! events *and* in-flight deliveries, payloads included; both serialize
//! in pop order as [`QueuedEvent`]s. The rest of the engine state
//! flattens into typed sections ([`opa_simio::ckpt`]): scheduler
//! bookkeeping, per-node disk clocks, the output emitted so far, and one
//! [`ReducerCkpt`] per reducer. The file format inherits the framed
//! layout and CRC-32 trailer of the spill codec, so a torn or corrupted
//! checkpoint is detected on load, never silently resumed from.
//!
//! Resume rebuilds fresh reducers from the *same* job/cluster/sizing
//! configuration, re-imports their state, re-seeds the event queue in
//! saved pop order and replays the remaining input. Because every event
//! is re-pushed in its original relative order (fresh ascending sequence
//! numbers preserve ties) and map plans / fault decisions are pure
//! functions of their inputs, the resumed run's output is bit-identical
//! to the uninterrupted run's for the map/reduce fault classes.

use opa_common::{Error, Pair, RecordBatch, Result, StateBatch, StatePair};
use opa_core::map_phase::Payload;
use opa_core::reduce::ReducerCkpt;
use opa_simio::ckpt::{decode_sections, encode_sections, Section};
use std::path::Path;

/// Stream checkpoint format version (stored in the fingerprint section).
pub const FORMAT_VERSION: u64 = 2;

/// Payload-kind tag used inside deferred-delivery headers.
const PAYLOAD_PAIRS: u64 = 0;
/// Payload-kind tag used inside deferred-delivery headers.
const PAYLOAD_STATES: u64 = 1;

/// Queue-event tag: a pending `StartMap`.
const QEV_START_MAP: u64 = 0;
/// Queue-event tag: an in-flight delivery carrying key/value pairs.
const QEV_DELIVER_PAIRS: u64 = 1;
/// Queue-event tag: an in-flight delivery carrying partial states.
const QEV_DELIVER_STATES: u64 = 2;

/// Identity of the run a checkpoint belongs to. Resume refuses a
/// checkpoint whose fingerprint disagrees with the configured job — a
/// checkpoint only makes sense against the exact same input and cluster
/// shape. Thread count is deliberately absent: resuming at a different
/// thread count is supported and bit-identical.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fingerprint {
    /// Input record count.
    pub records: u64,
    /// Input size in bytes.
    pub total_bytes: u64,
    /// Position of the framework in [`opa_core::cluster::Framework::ALL`].
    pub framework_idx: u64,
    /// Chunk size `C` of the cluster spec.
    pub chunk_size: u64,
    /// Node count.
    pub nodes: u64,
    /// Total reducer count.
    pub reducers: u64,
    /// Micro-batch count `k` of the stream config.
    pub batches: u64,
    /// Hash-family seed.
    pub hash_seed: u64,
}

/// One pending scheduler event, captured in pop order.
#[derive(Debug, Clone)]
pub enum QueuedEvent {
    /// A map task not yet run (or re-queued for retry).
    StartMap {
        /// Scheduled simulation time.
        time: u64,
        /// Input chunk index.
        chunk: u64,
        /// Attempt number (0 is the first run).
        attempt: u64,
    },
    /// An in-flight shuffle delivery from a chunk beyond the sealed
    /// watermark: its map task has completed but the payload has not yet
    /// reached its reducer.
    Deliver {
        /// Arrival simulation time.
        time: u64,
        /// Destination reducer.
        reducer: u64,
        /// Source node.
        from_node: u64,
        /// Source chunk (provenance for batch accounting on resume).
        chunk: u64,
        /// The delivered partition.
        payload: Payload,
    },
}

/// One deferred second-wave delivery: the source node plus its payload.
#[derive(Debug, Clone)]
pub struct DeferredDelivery {
    /// Node whose spill disk holds this map output.
    pub from_node: u64,
    /// The delivered partition.
    pub payload: Payload,
}

/// The complete serializable state of a paused stream job.
#[derive(Debug, Clone)]
pub struct SavedState {
    /// Run identity.
    pub fingerprint: Fingerprint,
    /// Job name (diagnostic, checked on resume).
    pub job_name: String,
    /// First micro-batch not yet sealed when the checkpoint was taken.
    pub next_batch: u64,
    /// Event-queue contents in pop order: pending map starts and
    /// in-flight deliveries from chunks beyond the sealed watermark.
    pub queue: Vec<QueuedEvent>,
    /// Per-node FIFO of chunks not yet handed to a map slot.
    pub pending: Vec<Vec<u64>>,
    /// Per-node `(hdfs, spill)` disk-free clocks.
    pub disk_free: Vec<(u64, u64)>,
    /// Indices of completed map chunks, ascending.
    pub done: Vec<u64>,
    /// Scalar scheduler counters: map output bytes so far.
    pub map_output_bytes: u64,
    /// Map-side spill bytes so far.
    pub spill_written_map: u64,
    /// Latest map-task finish time seen.
    pub map_finish: u64,
    /// Completed map-task count.
    pub maps_completed: u64,
    /// Per-node cumulative map CPU (µs).
    pub map_cpu: Vec<u64>,
    /// Per-reducer ready-at clocks.
    pub ready_at: Vec<u64>,
    /// Per-reducer delivery sequence numbers (fault-plan input).
    pub delivery_seq: Vec<u64>,
    /// Per-reducer crash counters (fault-plan input).
    pub crash_count: Vec<u64>,
    /// Per-reducer cumulative reduce CPU (µs).
    pub reduce_cpu: Vec<u64>,
    /// Per-reducer reduce-side spill bytes.
    pub spill_written_reduce: Vec<u64>,
    /// Output pairs emitted so far. Restoring this (instead of re-running
    /// sealed batches) is what makes resume emit each pair exactly once.
    pub output: Vec<Pair>,
    /// Per-reducer deferred second-wave deliveries.
    pub deferred: Vec<Vec<DeferredDelivery>>,
    /// Per-reducer framework state.
    pub reducers: Vec<ReducerCkpt>,
}

impl SavedState {
    /// Serializes the state into the framed checkpoint format.
    pub fn encode(&self) -> Vec<u8> {
        let fp = &self.fingerprint;
        let mut sections: Vec<Section> = vec![
            Section::Nums(vec![
                FORMAT_VERSION,
                fp.records,
                fp.total_bytes,
                fp.framework_idx,
                fp.chunk_size,
                fp.nodes,
                fp.reducers,
                fp.batches,
                fp.hash_seed,
                self.next_batch,
            ]),
            Section::Bytes(self.job_name.as_bytes().to_vec()),
        ];
        let mut qtags = vec![self.queue.len() as u64];
        for ev in &self.queue {
            qtags.push(match ev {
                QueuedEvent::StartMap { .. } => QEV_START_MAP,
                QueuedEvent::Deliver {
                    payload: Payload::Pairs(_),
                    ..
                } => QEV_DELIVER_PAIRS,
                QueuedEvent::Deliver {
                    payload: Payload::States(_),
                    ..
                } => QEV_DELIVER_STATES,
            });
        }
        sections.push(Section::Nums(qtags));
        for ev in &self.queue {
            match ev {
                QueuedEvent::StartMap {
                    time,
                    chunk,
                    attempt,
                } => sections.push(Section::Nums(vec![*time, *chunk, *attempt])),
                QueuedEvent::Deliver {
                    time,
                    reducer,
                    from_node,
                    chunk,
                    payload,
                } => {
                    sections.push(Section::Nums(vec![*time, *reducer, *from_node, *chunk]));
                    sections.push(match payload {
                        Payload::Pairs(v) => Section::Pairs(v.pairs().to_vec()),
                        Payload::States(v) => Section::States(v.states().to_vec()),
                    });
                }
            }
        }
        sections.extend([
            Section::Nums(
                self.pending
                    .iter()
                    .flat_map(|q| std::iter::once(q.len() as u64).chain(q.iter().copied()))
                    .collect(),
            ),
            Section::Nums(self.disk_free.iter().flat_map(|&(h, s)| [h, s]).collect()),
            Section::Nums(self.done.clone()),
            Section::Nums(vec![
                self.map_output_bytes,
                self.spill_written_map,
                self.map_finish,
                self.maps_completed,
            ]),
            Section::Nums(self.map_cpu.clone()),
            Section::Nums(self.ready_at.clone()),
            Section::Nums(self.delivery_seq.clone()),
            Section::Nums(self.crash_count.clone()),
            Section::Nums(self.reduce_cpu.clone()),
            Section::Nums(self.spill_written_reduce.clone()),
            Section::Pairs(self.output.clone()),
        ]);
        for (defs, ckpt) in self.deferred.iter().zip(&self.reducers) {
            let mut header = vec![defs.len() as u64];
            for d in defs {
                header.push(d.from_node);
                header.push(match d.payload {
                    Payload::Pairs(_) => PAYLOAD_PAIRS,
                    Payload::States(_) => PAYLOAD_STATES,
                });
            }
            sections.push(Section::Nums(header));
            for d in defs {
                sections.push(match &d.payload {
                    Payload::Pairs(v) => Section::Pairs(v.pairs().to_vec()),
                    Payload::States(v) => Section::States(v.states().to_vec()),
                });
            }
            sections.push(Section::Nums(vec![
                u64::from(ckpt.tag),
                ckpt.flags,
                u64::from(ckpt.watermark.is_some()),
                ckpt.watermark.unwrap_or(0),
                ckpt.nums.len() as u64,
                ckpt.pairs.len() as u64,
                ckpt.states.len() as u64,
            ]));
            for n in &ckpt.nums {
                sections.push(Section::Nums(n.clone()));
            }
            for p in &ckpt.pairs {
                sections.push(Section::Pairs(p.clone()));
            }
            for s in &ckpt.states {
                sections.push(Section::States(s.clone()));
            }
        }
        encode_sections(&sections)
    }

    /// Decodes a checkpoint produced by [`SavedState::encode`], verifying
    /// framing, CRC and the structural layout.
    pub fn decode(buf: &[u8]) -> Result<SavedState> {
        let sections = decode_sections(buf)?;
        let mut cur = Cursor {
            sections: sections.into_iter(),
        };

        let fp_nums = cur.nums("fingerprint")?;
        let [version, records, total_bytes, framework_idx, chunk_size, nodes, reducers, batches, hash_seed, next_batch] =
            <[u64; 10]>::try_from(fp_nums)
                .map_err(|_| Error::storage("stream checkpoint fingerprint malformed"))?;
        if version != FORMAT_VERSION {
            return Err(Error::storage(format!(
                "stream checkpoint format version {version} (expected {FORMAT_VERSION})"
            )));
        }
        let fingerprint = Fingerprint {
            records,
            total_bytes,
            framework_idx,
            chunk_size,
            nodes,
            reducers,
            batches,
            hash_seed,
        };
        let job_name = String::from_utf8(cur.bytes("job name")?)
            .map_err(|_| Error::storage("stream checkpoint job name is not UTF-8"))?;

        let qtags = cur.nums("event queue header")?;
        let n_events = *qtags
            .first()
            .ok_or_else(|| Error::storage("stream checkpoint queue header empty"))?
            as usize;
        if qtags.len() != 1 + n_events {
            return Err(Error::storage("stream checkpoint queue header malformed"));
        }
        let mut queue = Vec::with_capacity(n_events);
        for &tag in &qtags[1..] {
            let nums = cur.nums("queue event")?;
            queue.push(match tag {
                QEV_START_MAP => {
                    let [time, chunk, attempt] = <[u64; 3]>::try_from(nums)
                        .map_err(|_| Error::storage("stream checkpoint map event malformed"))?;
                    QueuedEvent::StartMap {
                        time,
                        chunk,
                        attempt,
                    }
                }
                QEV_DELIVER_PAIRS | QEV_DELIVER_STATES => {
                    let [time, reducer, from_node, chunk] =
                        <[u64; 4]>::try_from(nums).map_err(|_| {
                            Error::storage("stream checkpoint delivery event malformed")
                        })?;
                    let payload = if tag == QEV_DELIVER_PAIRS {
                        Payload::Pairs(RecordBatch::from_pairs(cur.pairs("delivery payload")?))
                    } else {
                        Payload::States(StateBatch::from_states(cur.states("delivery payload")?))
                    };
                    QueuedEvent::Deliver {
                        time,
                        reducer,
                        from_node,
                        chunk,
                        payload,
                    }
                }
                other => {
                    return Err(Error::storage(format!(
                        "stream checkpoint queue event kind {other} unknown"
                    )))
                }
            });
        }

        let raw = cur.nums("pending chunks")?;
        let mut pending = Vec::with_capacity(nodes as usize);
        let mut pos = 0usize;
        for _ in 0..nodes {
            let n = *raw
                .get(pos)
                .ok_or_else(|| Error::storage("stream checkpoint pending section truncated"))?
                as usize;
            let items = raw
                .get(pos + 1..pos + 1 + n)
                .ok_or_else(|| Error::storage("stream checkpoint pending section truncated"))?;
            pending.push(items.to_vec());
            pos += 1 + n;
        }
        if pos != raw.len() {
            return Err(Error::storage(
                "stream checkpoint pending section oversized",
            ));
        }

        let raw = cur.nums("disk clocks")?;
        if raw.len() != 2 * nodes as usize {
            return Err(Error::storage(
                "stream checkpoint disk-clock count mismatch",
            ));
        }
        let disk_free = raw.chunks_exact(2).map(|c| (c[0], c[1])).collect();

        let done = cur.nums("done chunks")?;
        let scalars = cur.nums("scheduler counters")?;
        let [map_output_bytes, spill_written_map, map_finish, maps_completed] =
            <[u64; 4]>::try_from(scalars)
                .map_err(|_| Error::storage("stream checkpoint counter section malformed"))?;
        let map_cpu = expect_len(cur.nums("map cpu")?, nodes, "map cpu")?;
        let ready_at = expect_len(cur.nums("ready-at")?, reducers, "ready-at")?;
        let delivery_seq = expect_len(cur.nums("delivery seq")?, reducers, "delivery seq")?;
        let crash_count = expect_len(cur.nums("crash count")?, reducers, "crash count")?;
        let reduce_cpu = expect_len(cur.nums("reduce cpu")?, reducers, "reduce cpu")?;
        let spill_written_reduce = expect_len(cur.nums("reduce spill")?, reducers, "reduce spill")?;
        let output = cur.pairs("output")?;

        let mut deferred = Vec::with_capacity(reducers as usize);
        let mut reducer_ckpts = Vec::with_capacity(reducers as usize);
        for r in 0..reducers {
            let header = cur.nums("deferred header")?;
            let n = *header
                .first()
                .ok_or_else(|| Error::storage(format!("reducer {r} deferred header empty")))?
                as usize;
            if header.len() != 1 + 2 * n {
                return Err(Error::storage(format!(
                    "reducer {r} deferred header malformed"
                )));
            }
            let mut defs = Vec::with_capacity(n);
            for i in 0..n {
                let from_node = header[1 + 2 * i];
                let payload = match header[2 + 2 * i] {
                    PAYLOAD_PAIRS => {
                        Payload::Pairs(RecordBatch::from_pairs(cur.pairs("deferred payload")?))
                    }
                    PAYLOAD_STATES => {
                        Payload::States(StateBatch::from_states(cur.states("deferred payload")?))
                    }
                    other => {
                        return Err(Error::storage(format!(
                            "reducer {r} deferred payload kind {other} unknown"
                        )))
                    }
                };
                defs.push(DeferredDelivery { from_node, payload });
            }
            deferred.push(defs);

            let header = cur.nums("reducer header")?;
            let [tag, flags, wm_present, wm_value, n_nums, n_pairs, n_states] =
                <[u64; 7]>::try_from(header).map_err(|_| {
                    Error::storage(format!("reducer {r} checkpoint header malformed"))
                })?;
            let tag = u8::try_from(tag)
                .map_err(|_| Error::storage(format!("reducer {r} tag out of range")))?;
            let mut nums = Vec::with_capacity(n_nums as usize);
            for _ in 0..n_nums {
                nums.push(cur.nums("reducer nums")?);
            }
            let mut pairs = Vec::with_capacity(n_pairs as usize);
            for _ in 0..n_pairs {
                pairs.push(cur.pairs("reducer pairs")?);
            }
            let mut states = Vec::with_capacity(n_states as usize);
            for _ in 0..n_states {
                states.push(cur.states("reducer states")?);
            }
            reducer_ckpts.push(ReducerCkpt {
                tag,
                flags,
                watermark: (wm_present != 0).then_some(wm_value),
                nums,
                pairs,
                states,
            });
        }
        if cur.sections.next().is_some() {
            return Err(Error::storage("stream checkpoint has trailing sections"));
        }

        Ok(SavedState {
            fingerprint,
            job_name,
            next_batch,
            queue,
            pending,
            disk_free,
            done,
            map_output_bytes,
            spill_written_map,
            map_finish,
            maps_completed,
            map_cpu,
            ready_at,
            delivery_seq,
            crash_count,
            reduce_cpu,
            spill_written_reduce,
            output,
            deferred,
            reducers: reducer_ckpts,
        })
    }

    /// Writes the checkpoint to `path`, creating parent directories.
    pub fn write_to(&self, path: &Path) -> Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)
                    .map_err(|e| Error::storage(format!("mkdir {}: {e}", dir.display())))?;
            }
        }
        std::fs::write(path, self.encode())
            .map_err(|e| Error::storage(format!("write {}: {e}", path.display())))
    }

    /// Reads and decodes a checkpoint file.
    pub fn read_from(path: &Path) -> Result<SavedState> {
        let buf = std::fs::read(path)
            .map_err(|e| Error::storage(format!("read {}: {e}", path.display())))?;
        SavedState::decode(&buf)
    }
}

/// Typed section reader over the decoded section stream.
struct Cursor {
    sections: std::vec::IntoIter<Section>,
}

/// Checks a fixed-width numeric section against its expected length.
fn expect_len(v: Vec<u64>, want: u64, what: &str) -> Result<Vec<u64>> {
    if v.len() as u64 != want {
        return Err(Error::storage(format!(
            "{what}: {} entries, expected {want}",
            v.len()
        )));
    }
    Ok(v)
}

impl Cursor {
    fn next(&mut self, what: &str) -> Result<Section> {
        self.sections
            .next()
            .ok_or_else(|| Error::storage(format!("stream checkpoint truncated at {what}")))
    }

    fn nums(&mut self, what: &str) -> Result<Vec<u64>> {
        match self.next(what)? {
            Section::Nums(v) => Ok(v),
            _ => Err(Error::storage(format!(
                "{what}: expected a numeric section"
            ))),
        }
    }

    fn bytes(&mut self, what: &str) -> Result<Vec<u8>> {
        match self.next(what)? {
            Section::Bytes(v) => Ok(v),
            _ => Err(Error::storage(format!("{what}: expected a byte section"))),
        }
    }

    fn pairs(&mut self, what: &str) -> Result<Vec<Pair>> {
        match self.next(what)? {
            Section::Pairs(v) => Ok(v),
            _ => Err(Error::storage(format!("{what}: expected a pair section"))),
        }
    }

    fn states(&mut self, what: &str) -> Result<Vec<StatePair>> {
        match self.next(what)? {
            Section::States(v) => Ok(v),
            _ => Err(Error::storage(format!("{what}: expected a state section"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opa_common::{Key, Value};

    fn sample() -> SavedState {
        SavedState {
            fingerprint: Fingerprint {
                records: 100,
                total_bytes: 1234,
                framework_idx: 3,
                chunk_size: 4096,
                nodes: 2,
                reducers: 2,
                batches: 4,
                hash_seed: 7,
            },
            job_name: "unit".into(),
            next_batch: 2,
            queue: vec![
                QueuedEvent::StartMap {
                    time: 10,
                    chunk: 3,
                    attempt: 0,
                },
                QueuedEvent::Deliver {
                    time: 12,
                    reducer: 1,
                    from_node: 0,
                    chunk: 4,
                    payload: Payload::Pairs(RecordBatch::from_pairs(vec![Pair::new(
                        Key::from("q"),
                        Value::from_u64(5),
                    )])),
                },
                QueuedEvent::StartMap {
                    time: 14,
                    chunk: 5,
                    attempt: 1,
                },
            ],
            pending: vec![vec![5, 6], vec![]],
            disk_free: vec![(11, 12), (13, 14)],
            done: vec![0, 1, 2],
            map_output_bytes: 999,
            spill_written_map: 17,
            map_finish: 400,
            maps_completed: 3,
            map_cpu: vec![100, 200],
            ready_at: vec![50, 60],
            delivery_seq: vec![4, 5],
            crash_count: vec![0, 1],
            reduce_cpu: vec![70, 80],
            spill_written_reduce: vec![0, 9],
            output: vec![Pair::new(Key::from("k"), Value::from_u64(1))],
            deferred: vec![
                vec![DeferredDelivery {
                    from_node: 1,
                    payload: Payload::Pairs(RecordBatch::from_pairs(vec![Pair::new(
                        Key::from("d"),
                        Value::from_u64(2),
                    )])),
                }],
                vec![],
            ],
            reducers: vec![
                ReducerCkpt {
                    tag: 3,
                    flags: 1,
                    watermark: Some(42),
                    nums: vec![vec![8]],
                    pairs: vec![vec![]],
                    states: vec![vec![StatePair::new(Key::from("s"), Value::from_u64(3))]],
                },
                ReducerCkpt::default(),
            ],
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let st = sample();
        let back = SavedState::decode(&st.encode()).expect("decodes");
        assert_eq!(back.fingerprint, st.fingerprint);
        assert_eq!(back.job_name, st.job_name);
        assert_eq!(back.next_batch, st.next_batch);
        // `Payload` has no `PartialEq`; the debug form pins the queue
        // structurally, payload contents included.
        assert_eq!(format!("{:?}", back.queue), format!("{:?}", st.queue));
        assert_eq!(back.pending, st.pending);
        assert_eq!(back.disk_free, st.disk_free);
        assert_eq!(back.done, st.done);
        assert_eq!(back.output, st.output);
        assert_eq!(back.reducers, st.reducers);
        assert_eq!(back.deferred.len(), 2);
        assert_eq!(back.deferred[0].len(), 1);
        assert!(matches!(back.deferred[0][0].payload, Payload::Pairs(ref v) if v.len() == 1));
    }

    #[test]
    fn corruption_is_detected() {
        let mut buf = sample().encode();
        let mid = buf.len() / 2;
        buf[mid] ^= 0x40;
        assert!(SavedState::decode(&buf).is_err());
    }

    #[test]
    fn truncation_is_detected() {
        let buf = sample().encode();
        assert!(SavedState::decode(&buf[..buf.len() - 5]).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("opa-stream-ckpt-test");
        let path = dir.join("sub").join("c.opac");
        let st = sample();
        st.write_to(&path).expect("writes");
        let back = SavedState::read_from(&path).expect("reads");
        assert_eq!(back.output, st.output);
        std::fs::remove_dir_all(&dir).ok();
    }
}
