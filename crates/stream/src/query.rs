//! The live query surface served between micro-batches, plus the offline
//! variant that answers the same queries straight from a checkpoint file.
//!
//! Both views expose the paper's incremental-state reads: a point lookup
//! of a key's resident partial aggregate (INC/DINC hash tables, the DINC
//! monitor) and the DINC top-k answer with its γ coverage lower bound
//! (Theorem 1). Keys route to reducers with the same `h1` partitioning
//! hash the map side uses, so a lookup lands on exactly the reducer that
//! owns the key.

use crate::checkpoint::{QueuedEvent, SavedState};
use opa_common::units::SimTime;
use opa_common::{Error, HashFamily, HashFn, Key, Result, Value};
use opa_core::cluster::Framework;
use opa_core::reduce::{ReduceSide, ReducerCkpt, TopEntry};
use std::path::{Path, PathBuf};

/// Progress metadata of a paused stream job.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamProgress {
    /// Micro-batches sealed so far (1-based; equals `batches` when done).
    pub batches_sealed: usize,
    /// Total micro-batch count `k`.
    pub batches: usize,
    /// Input records covered by the sealed batches — the stream's
    /// arrival-order watermark position: every record below it has been
    /// absorbed into reducer state (later records may also have been,
    /// opportunistically).
    pub records_sealed: usize,
    /// Total input records.
    pub total_records: usize,
    /// Map tasks completed / total.
    pub maps_completed: usize,
    /// Total map-task count.
    pub maps_total: usize,
    /// Highest event-time watermark across reducers, if the job extracts
    /// event times.
    pub watermark: Option<u64>,
    /// Virtual time of the pause point.
    pub sim_time: SimTime,
}

/// The control handle passed to the per-batch callback of a stream run.
///
/// Queries answer from *resident* reducer state: partial aggregates over
/// everything absorbed so far. Checkpoint requests are recorded here and
/// performed by the driver immediately after the callback returns (the
/// driver owns the full engine state).
pub struct BatchCtl<'c, 'j> {
    pub(crate) batch: usize,
    pub(crate) batches: usize,
    pub(crate) records_sealed: usize,
    pub(crate) total_records: usize,
    pub(crate) maps_completed: usize,
    pub(crate) maps_total: usize,
    pub(crate) sim_time: SimTime,
    pub(crate) h1: HashFn,
    pub(crate) reducers: &'c [Option<Box<dyn ReduceSide + Send + 'j>>],
    pub(crate) checkpoint_request: Option<PathBuf>,
}

impl BatchCtl<'_, '_> {
    /// The just-sealed micro-batch, 1-based.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Point lookup of `key`'s resident partial aggregate. Routes to the
    /// owning reducer via the partitioning hash; `None` when the framework
    /// keeps no queryable state for the key (sort-merge / MR-hash, an
    /// unmonitored key under DINC, or a key spilled to disk).
    pub fn lookup(&self, key: &Key) -> Option<Value> {
        let r = self.h1.bucket(key.bytes(), self.reducers.len());
        self.reducers[r].as_ref()?.query(key)
    }

    /// The top `k` keys by estimated frequency across all reducers, with
    /// the minimum per-reducer coverage bound γ. `None` unless the job
    /// runs DINC-hash (the only framework maintaining a monitor).
    pub fn top_k(&self, k: usize) -> Option<(Vec<TopEntry>, f64)> {
        merge_top_k(
            k,
            self.reducers
                .iter()
                .filter_map(|r| r.as_ref())
                .filter_map(|r| r.top_entries(k)),
        )
    }

    /// Progress and watermark metadata at this pause point.
    pub fn progress(&self) -> StreamProgress {
        StreamProgress {
            batches_sealed: self.batch,
            batches: self.batches,
            records_sealed: self.records_sealed,
            total_records: self.total_records,
            maps_completed: self.maps_completed,
            maps_total: self.maps_total,
            watermark: self
                .reducers
                .iter()
                .filter_map(|r| r.as_ref().and_then(|r| r.watermark()))
                .max(),
            sim_time: self.sim_time,
        }
    }

    /// Requests a checkpoint at this pause point. The driver writes it to
    /// `path` right after the callback returns; a later request in the
    /// same callback replaces an earlier one.
    pub fn checkpoint(&mut self, path: impl Into<PathBuf>) {
        self.checkpoint_request = Some(path.into());
    }
}

/// Merges per-reducer top-k answers into a global one: stable sort by
/// count descending (ties keep reducer order — deterministic), truncate,
/// and take the weakest per-reducer γ as the global bound.
pub(crate) fn merge_top_k(
    k: usize,
    per_reducer: impl Iterator<Item = (Vec<TopEntry>, f64)>,
) -> Option<(Vec<TopEntry>, f64)> {
    let mut all: Vec<TopEntry> = Vec::new();
    let mut gamma = f64::INFINITY;
    let mut any = false;
    for (entries, g) in per_reducer {
        any = true;
        all.extend(entries);
        gamma = gamma.min(g);
    }
    if !any {
        return None;
    }
    all.sort_by_key(|e| std::cmp::Reverse(e.count));
    all.truncate(k);
    Some((all, if gamma.is_finite() { gamma } else { 1.0 }))
}

/// An offline view over a checkpoint file: answers the same point-lookup
/// / top-k / progress queries as [`BatchCtl`], without re-instantiating
/// the job — `opa query` runs entirely from this.
pub struct CheckpointView {
    state: SavedState,
    h1: HashFn,
}

impl CheckpointView {
    /// Loads and verifies a checkpoint file.
    pub fn open(path: &Path) -> Result<CheckpointView> {
        let state = SavedState::read_from(path)?;
        let family = HashFamily::new(state.fingerprint.hash_seed);
        Ok(CheckpointView {
            h1: family.fn_at(0),
            state,
        })
    }

    /// The decoded state (for inspection / tooling).
    pub fn state(&self) -> &SavedState {
        &self.state
    }

    /// The framework the checkpoint was taken under.
    pub fn framework(&self) -> Result<Framework> {
        Framework::ALL
            .get(self.state.fingerprint.framework_idx as usize)
            .copied()
            .ok_or_else(|| Error::storage("checkpoint names an unknown framework"))
    }

    /// Point lookup of `key`'s checkpointed resident aggregate. Interprets
    /// the framework-tagged section layout: INC-hash and DINC-hash store
    /// their queryable table/monitor as the first state section.
    pub fn lookup(&self, key: &Key) -> Option<Value> {
        let r = self.h1.bucket(key.bytes(), self.state.reducers.len());
        let ckpt = &self.state.reducers[r];
        match ckpt.tag {
            ReducerCkpt::TAG_INC_HASH | ReducerCkpt::TAG_DINC_HASH => ckpt
                .states
                .first()?
                .iter()
                .find(|sp| &sp.key == key)
                .map(|sp| sp.state.clone()),
            _ => None,
        }
    }

    /// The checkpointed top-k answer with γ, DINC-hash checkpoints only.
    /// Reconstructs each monitor's entries and slack from its sections:
    /// `states[0]` holds (key, state) in slot order, `nums[0] = [offered]`,
    /// `nums[1]` the per-entry counts, `nums[2]` the per-entry true
    /// frequencies, `nums[3]` the running stats (whose first element is
    /// the monitor slot count `s`).
    pub fn top_k(&self, k: usize) -> Option<(Vec<TopEntry>, f64)> {
        /// Bit 0 of a DINC checkpoint's flags selects SpaceSaving.
        const FLAG_SPACE_SAVING: u64 = 1;
        merge_top_k(
            k,
            self.state.reducers.iter().filter_map(|ckpt| {
                if ckpt.tag != ReducerCkpt::TAG_DINC_HASH {
                    return None;
                }
                let entries = ckpt.states.first()?;
                let offered = *ckpt.nums.first()?.first()? as f64;
                let counts = ckpt.nums.get(1)?;
                let ts = ckpt.nums.get(2)?;
                let slots = *ckpt.nums.get(3)?.first()? as f64;
                if counts.len() != entries.len() || ts.len() != entries.len() {
                    return None;
                }
                let slack = if ckpt.flags & FLAG_SPACE_SAVING != 0 {
                    offered / slots.max(1.0)
                } else {
                    offered / (slots + 1.0)
                };
                let mut top: Vec<(u64, u64, usize)> = counts
                    .iter()
                    .zip(ts)
                    .enumerate()
                    .map(|(i, (&c, &t))| (c, t, i))
                    .collect();
                top.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.2.cmp(&b.2)));
                top.truncate(k);
                let gamma = top
                    .iter()
                    .map(|&(_, t, _)| t as f64 / (t as f64 + slack))
                    .fold(1.0f64, f64::min);
                let out = top
                    .into_iter()
                    .map(|(count, _, i)| TopEntry {
                        key: entries[i].key.clone(),
                        count,
                        state: entries[i].state.clone(),
                    })
                    .collect();
                Some((out, gamma))
            }),
        )
    }

    /// Progress metadata at the checkpointed pause point.
    pub fn progress(&self) -> StreamProgress {
        let fp = &self.state.fingerprint;
        let sealed = self.state.next_batch as usize;
        let k = fp.batches as usize;
        let n = fp.records as usize;
        StreamProgress {
            batches_sealed: sealed,
            batches: k,
            records_sealed: sealed * n / k.max(1),
            total_records: n,
            maps_completed: self.state.maps_completed as usize,
            maps_total: self.state.done.len()
                + self
                    .state
                    .queue
                    .iter()
                    .filter(|e| matches!(e, QueuedEvent::StartMap { .. }))
                    .count()
                + self.state.pending.iter().map(Vec::len).sum::<usize>(),
            watermark: self.state.reducers.iter().filter_map(|c| c.watermark).max(),
            sim_time: SimTime(self.state.map_finish),
        }
    }
}
