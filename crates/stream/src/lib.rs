//! # opa-stream — continuous ingestion over the one-pass engine
//!
//! The paper's motivation is analytics that keep up with data as it
//! *arrives*; this crate turns the batch engine into that long-running
//! service. A stream run feeds the input through the existing map plans
//! and reduce-side frameworks in `k` arrival-ordered **micro-batches**,
//! pausing after each batch once every shuffle delivery from that
//! batch's own chunks has been absorbed (later chunks keep shuffling
//! across the pause — the watermark is a lower bound). At each pause
//! point:
//!
//! - the user callback observes the live incremental state through
//!   [`BatchCtl`] — point lookups of resident partial aggregates, the
//!   DINC top-k answer with its γ coverage bound, and progress /
//!   watermark metadata;
//! - a **checkpoint** of the complete engine state can be written (on a
//!   cadence via [`StreamConfig::checkpoint_every`], or on demand from
//!   the callback), CRC-protected through [`opa_simio::ckpt`];
//! - a crashed run **resumes** from its last checkpoint with
//!   [`StreamJobBuilder::resume_stream`], replaying only the remaining
//!   input and emitting each output pair exactly once.
//!
//! Sealing batches only observes the engine between two events — it
//! never reorders, drops or injects any — so a streamed run's output is
//! **bit-identical** to the one-shot batch run's, at any thread count
//! and any `k` (`tests/stream_equivalence.rs` pins this across all
//! paper workloads and frameworks).
//!
//! ```
//! use opa_stream::StreamJobBuilder;
//! use opa_core::cluster::{ClusterSpec, Framework};
//! use opa_workloads::click_count::ClickCountJob;
//! use opa_workloads::clickstream::ClickStreamSpec;
//!
//! let data = ClickStreamSpec::small().generate(42);
//! let outcome = StreamJobBuilder::new(ClickCountJob::default())
//!     .framework(Framework::IncHash)
//!     .cluster(ClusterSpec::tiny())
//!     .batches(4)
//!     .run_stream(&data, |ctl| {
//!         let p = ctl.progress();
//!         assert!(p.batches_sealed >= 1 && p.batches_sealed <= 4);
//!     })
//!     .expect("stream runs");
//! assert_eq!(outcome.batches, 4);
//! ```

#![warn(missing_docs)]

pub mod checkpoint;
mod driver;
pub mod query;

pub use checkpoint::{Fingerprint, QueuedEvent, SavedState};
pub use driver::StreamOutcome;
pub use query::{BatchCtl, CheckpointView, StreamProgress};

use driver::DriverConfig;
use opa_common::fault::FaultConfig;
use opa_common::{Error, ExecConfig, Result, StreamConfig};
use opa_core::api::Job;
use opa_core::cluster::{ClusterSpec, Framework};
use opa_core::job::JobInput;
use opa_core::reduce::dinc_hash::MonitorKind;
use std::path::{Path, PathBuf};

/// Fluent builder for one stream run — the streaming counterpart of
/// [`opa_core::job::JobBuilder`], sharing its configuration surface and
/// adding the stream dimension: batch count, checkpoint cadence and
/// checkpoint directory.
pub struct StreamJobBuilder<J: Job> {
    job: J,
    framework: Framework,
    spec: ClusterSpec,
    exec: ExecConfig,
    km_hint: f64,
    early_stop_coverage: Option<f64>,
    dinc_monitor: MonitorKind,
    admission: opa_common::AdmissionPolicy,
    faults: FaultConfig,
    stream: StreamConfig,
    checkpoint_dir: Option<PathBuf>,
    trace: bool,
}

impl<J: Job> StreamJobBuilder<J> {
    /// Starts a builder with the sort-merge baseline on the paper cluster
    /// and the default stream shape ([`StreamConfig::default`]).
    pub fn new(job: J) -> Self {
        StreamJobBuilder {
            job,
            framework: Framework::SortMerge,
            spec: ClusterSpec::paper_scaled(),
            exec: ExecConfig::sequential(),
            km_hint: 1.0,
            early_stop_coverage: None,
            dinc_monitor: MonitorKind::Frequent,
            admission: opa_common::AdmissionPolicy::Off,
            faults: FaultConfig::disabled(),
            stream: StreamConfig::default(),
            checkpoint_dir: None,
            trace: false,
        }
    }

    /// Selects the reduce-side framework.
    pub fn framework(mut self, f: Framework) -> Self {
        self.framework = f;
        self
    }

    /// Selects the cluster configuration.
    pub fn cluster(mut self, spec: ClusterSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Sets the execution-layer thread count (see
    /// [`opa_core::job::JobBuilder::threads`]). The outcome is
    /// bit-identical at any value.
    pub fn threads(mut self, threads: usize) -> Self {
        self.exec = ExecConfig::with_threads(threads);
        self
    }

    /// Sets the full execution-layer configuration.
    pub fn exec(mut self, exec: ExecConfig) -> Self {
        self.exec = exec;
        self
    }

    /// Hints the map output/input ratio `K_m` (defaults to 1.0).
    pub fn km_hint(mut self, km: f64) -> Self {
        self.km_hint = km;
        self
    }

    /// Enables DINC's approximate early termination at coverage φ.
    pub fn early_stop_coverage(mut self, phi: f64) -> Self {
        self.early_stop_coverage = Some(phi);
        self
    }

    /// Selects the frequency algorithm behind DINC-hash's monitor.
    pub fn dinc_monitor(mut self, kind: MonitorKind) -> Self {
        self.dinc_monitor = kind;
        self
    }

    /// Selects the reduce-side admission policy (see
    /// [`opa_core::job::JobBuilder::admission`]). Admission composes with
    /// checkpoint/resume: sketch state and admission counters ride on the
    /// checkpoint, so a resumed run reproduces the uninterrupted run's
    /// output bit-for-bit.
    pub fn admission(mut self, policy: opa_common::AdmissionPolicy) -> Self {
        self.admission = policy;
        self
    }

    /// Enables deterministic fault injection (see
    /// [`opa_core::job::JobBuilder::faults`]). Checkpoint/resume
    /// composes with the map- and reduce-failure classes: a resumed run
    /// reproduces the uninterrupted run's output bit-for-bit.
    pub fn faults(mut self, cfg: FaultConfig) -> Self {
        self.faults = cfg;
        self
    }

    /// Sets the full stream configuration.
    pub fn stream(mut self, cfg: StreamConfig) -> Self {
        self.stream = cfg;
        self
    }

    /// Sets the micro-batch count `k`.
    pub fn batches(mut self, k: usize) -> Self {
        self.stream.batches = k;
        self
    }

    /// Writes a checkpoint every `n` sealed batches (requires
    /// [`StreamJobBuilder::checkpoint_dir`]).
    pub fn checkpoint_every(mut self, n: usize) -> Self {
        self.stream.checkpoint_every = Some(n);
        self
    }

    /// Directory periodic checkpoints are written to, as
    /// `stream-ckpt-b<batch>.opac`.
    pub fn checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// Enables structured trace capture (see
    /// [`opa_core::job::JobBuilder::trace`]). The resulting
    /// [`opa_trace::TraceLog`] rides on the outcome's
    /// [`opa_core::job::JobOutcome::trace`] field and additionally carries
    /// `batch_seal`/`checkpoint` events at every pause point. Traces are
    /// bit-identical across thread counts; across different batch counts
    /// `k` they differ only in those seal/checkpoint lines.
    pub fn trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Access to the wrapped job.
    pub fn job(&self) -> &J {
        &self.job
    }

    fn validate(&self, input: &JobInput) -> Result<()> {
        self.spec.validate()?;
        self.exec.validate()?;
        self.faults.validate()?;
        if let Some(phi) = self.early_stop_coverage {
            if !phi.is_finite() || !(0.0..=1.0).contains(&phi) || phi == 0.0 {
                return Err(Error::job(format!(
                    "early-stop coverage φ must be a fraction in (0, 1], got {phi}"
                )));
            }
        }
        if input.is_empty() {
            return Err(Error::job("stream input is empty"));
        }
        self.stream.validate_for(input.len())?;
        if self.stream.checkpoint_every.is_some() && self.checkpoint_dir.is_none() {
            return Err(Error::config(
                "checkpoint cadence set without a checkpoint directory — \
                 call checkpoint_dir(..) (CLI: --checkpoint-dir)",
            ));
        }
        Ok(())
    }

    fn driver_config(&self) -> DriverConfig<'_> {
        DriverConfig {
            framework: self.framework,
            spec: &self.spec,
            exec: self.exec,
            km_hint: self.km_hint,
            early_stop: self.early_stop_coverage,
            dinc_monitor: self.dinc_monitor,
            admission: self.admission,
            faults: &self.faults,
            stream: &self.stream,
            checkpoint_dir: self.checkpoint_dir.as_deref(),
            trace: self.trace,
        }
    }

    /// Runs the stream job over `input`, invoking `on_batch` at each
    /// sealed micro-batch (1-based, in order).
    pub fn run_stream(
        &self,
        input: &JobInput,
        mut on_batch: impl FnMut(&mut BatchCtl<'_, '_>),
    ) -> Result<StreamOutcome> {
        self.validate(input)?;
        driver::drive(&self.job, &self.driver_config(), input, None, &mut on_batch)
    }

    /// Resumes a stream job from a checkpoint file written by a previous
    /// run over the *same* input and configuration. Sealed batches are
    /// not re-run (their callbacks do not fire again); the remaining
    /// batches stream as usual and the final output is bit-identical to
    /// the uninterrupted run's.
    pub fn resume_stream(
        &self,
        input: &JobInput,
        checkpoint: &Path,
        mut on_batch: impl FnMut(&mut BatchCtl<'_, '_>),
    ) -> Result<StreamOutcome> {
        self.validate(input)?;
        let saved = SavedState::read_from(checkpoint)?;
        driver::drive(
            &self.job,
            &self.driver_config(),
            input,
            Some(saved),
            &mut on_batch,
        )
    }
}
