//! The micro-batch stream driver: the engine's discrete-event loop with
//! pause points.
//!
//! The driver replays [`opa_core`]'s job loop event-for-event — same event
//! queue, same mailbox recording on the execution layer, same replay in
//! pop order — and adds *pause points* between micro-batches. The input's
//! arrival order is split into `k` contiguous batches; batch `b` seals at
//! the first instant when every chunk containing a record below the
//! batch boundary has completed its map task **and** every shuffle
//! delivery originating from those chunks has been absorbed. Deliveries
//! from *later* chunks may still be in flight — the map waves pipeline
//! into the reduce side continuously, so demanding full quiescence would
//! push every seal to the end of the run. At a seal the reducer state
//! therefore covers at least the watermark (and possibly some records
//! beyond it), the user callback runs against that live state
//! ([`BatchCtl`]), and a checkpoint can be taken: pending map starts
//! *and* in-flight deliveries both serialize, payloads included.
//!
//! Because sealing never reorders, drops or injects events — it only
//! *observes* between two queue pops — the streamed run's event sequence
//! is literally identical to the one-shot batch run's, so the final
//! output is bit-identical to [`opa_core::job::JobBuilder::run`] at any
//! thread count and any `k`.

use crate::checkpoint::{DeferredDelivery, Fingerprint, QueuedEvent, SavedState};
use crate::query::BatchCtl;
use opa_common::fault::{FaultConfig, FaultEvent, FaultKind, FaultReport};
use opa_common::units::{SimDuration, SimTime};
use opa_common::{Error, ExecConfig, HashFamily, Pair, Result, StreamConfig};
use opa_core::api::Job;
use opa_core::cluster::{ClusterSpec, Framework};
use opa_core::exec::{Gather, Planner, Pool};
use opa_core::fault::{FaultPlan, MapFate};
use opa_core::job::{JobInput, JobOutcome, PoisonedRecord};
use opa_core::map_phase::{
    abort_map_task, compute_map_task, finish_map_task, straggle_map_task, Payload, PoisonGate,
};
use opa_core::metrics::JobMetrics;
use opa_core::progress::ProgressTracker;
use opa_core::reduce::{
    make_reducer, replay, replay_recovery, Effect, ReduceEnv, ReducerSizing, ReplayTarget,
};
use opa_core::sim::{EventQueue, OpKind, Resources};
use opa_simio::{BlockStore, DiskFaultInjector, IoCategory, IoOp};
use opa_trace::TraceEvent;
use std::collections::VecDeque;
use std::path::{Path, PathBuf};

/// Number of points progress curves are resampled to (matches the batch
/// engine).
const PROGRESS_POINTS: usize = 400;

/// Everything a finished stream run yields.
#[derive(Debug)]
pub struct StreamOutcome {
    /// The ordinary job outcome — metrics, progress curves, timeline and
    /// the output itself. Bit-identical to the one-shot batch run's
    /// output for fresh (non-resumed) streams.
    pub job: JobOutcome,
    /// Micro-batches sealed (equals the configured `k`).
    pub batches: usize,
    /// Checkpoint files written during the run.
    pub checkpoints_written: usize,
    /// The last checkpoint path written, if any.
    pub last_checkpoint: Option<PathBuf>,
    /// For resumed runs, the batch index the run restarted from.
    pub resumed_from_batch: Option<usize>,
}

impl StreamOutcome {
    /// Packages the stream's output as a partitioned
    /// [`Dataset`](opa_core::dataflow::Dataset), ready to feed a
    /// [`Dataflow`](opa_core::dataflow::Dataflow) chain via `run_from` —
    /// a stream run is a first-class dataflow source, exactly like a
    /// batch [`JobOutcome`].
    pub fn dataset(&self, spec: &ClusterSpec) -> opa_core::dataflow::Dataset {
        self.job.dataset(spec)
    }
}

/// Immutable driver configuration, bundled to keep call sites readable.
pub(crate) struct DriverConfig<'a> {
    pub framework: Framework,
    pub spec: &'a ClusterSpec,
    pub exec: ExecConfig,
    pub km_hint: f64,
    pub early_stop: Option<f64>,
    pub dinc_monitor: opa_core::reduce::dinc_hash::MonitorKind,
    pub admission: opa_common::AdmissionPolicy,
    pub faults: &'a FaultConfig,
    pub stream: &'a StreamConfig,
    pub checkpoint_dir: Option<&'a Path>,
    pub trace: bool,
}

enum Ev {
    StartMap {
        chunk: usize,
        attempt: u32,
    },
    Deliver {
        reducer: usize,
        from_node: usize,
        /// Source chunk — provenance for batch-scoped in-flight
        /// accounting (a batch seals when *its* chunks' deliveries are
        /// absorbed, regardless of later chunks still shuffling).
        chunk: usize,
        payload: Payload,
    },
}

/// A reducer's recorded mailbox result (see the batch engine).
type MailboxLogs = VecDeque<Vec<Effect>>;

/// Records one reducer's mailbox — a run of consecutive deliveries — into
/// effect logs. Pure data work: runs on any execution-layer thread. The
/// stream driver takes no snapshots, so unlike the batch engine each
/// delivery yields exactly one log.
fn record_mailbox<'j>(
    mut rec: Box<dyn opa_core::reduce::ReduceSide + Send + 'j>,
    items: Vec<Payload>,
    est: SimTime,
    spec: &ClusterSpec,
) -> (
    Box<dyn opa_core::reduce::ReduceSide + Send + 'j>,
    MailboxLogs,
) {
    let mut logs: MailboxLogs = VecDeque::with_capacity(items.len());
    let mut te = est;
    for payload in items {
        let mut env = ReduceEnv::new(spec);
        te = rec.on_delivery(te, payload, &mut env);
        logs.push_back(env.into_log());
    }
    (rec, logs)
}

/// Runs (or resumes) a stream job. `on_batch` fires once per sealed
/// micro-batch, in order, against the paused live state.
#[allow(clippy::too_many_lines)]
pub(crate) fn drive<'j>(
    job: &'j dyn Job,
    cfg: &DriverConfig<'_>,
    input: &JobInput,
    resume: Option<SavedState>,
    on_batch: &mut dyn FnMut(&mut BatchCtl<'_, 'j>),
) -> Result<StreamOutcome> {
    let spec = cfg.spec;
    let faults = cfg.faults;
    let hw = &spec.hardware;
    let n_nodes = hw.nodes;
    let n_reducers = spec.total_reducers();
    let family = HashFamily::new(spec.hash_seed);
    let h1 = family.fn_at(0);
    let k = cfg.stream.batches;
    let n_records = input.len();

    let store = BlockStore::split(
        input.records.iter().map(|r| r.len() as u64),
        spec.system.chunk_size,
        n_nodes,
    );
    let num_chunks = store.num_chunks();

    // Arrival-order batch boundaries: batch `b` covers records
    // `[boundary[b-1], boundary[b])`; the quota is the number of leading
    // chunks that must be mapped before batch `b` can seal (a chunk
    // straddling the boundary belongs to the earlier batch's quota).
    let boundaries: Vec<usize> = (1..=k).map(|b| b * n_records / k).collect();
    let quota: Vec<usize> = boundaries
        .iter()
        .map(|&bd| store.chunks().partition_point(|c| c.range.start < bd))
        .collect();

    let fingerprint = Fingerprint {
        records: n_records as u64,
        total_bytes: input.total_bytes(),
        framework_idx: Framework::ALL
            .iter()
            .position(|&f| f == cfg.framework)
            .expect("framework is in ALL") as u64,
        chunk_size: spec.system.chunk_size,
        nodes: n_nodes as u64,
        reducers: n_reducers as u64,
        batches: k as u64,
        hash_seed: spec.hash_seed,
    };
    if let Some(saved) = &resume {
        if saved.fingerprint != fingerprint {
            return Err(Error::job(
                "checkpoint fingerprint mismatch — resume requires the same \
                 input, framework, cluster spec and batch count as the \
                 checkpointed run (thread count may differ)",
            ));
        }
        if saved.job_name != job.name() {
            return Err(Error::job(format!(
                "checkpoint belongs to job '{}', not '{}'",
                saved.job_name,
                job.name()
            )));
        }
        if saved.next_batch as usize >= k {
            return Err(Error::job(
                "checkpoint is already past the final micro-batch",
            ));
        }
    }
    let resumed_from_batch = resume.as_ref().map(|s| s.next_batch as usize);

    // Poison quarantine drops records from the mapped set, which would
    // break the checkpoint invariant that a resumed run replays to the
    // same output as the uninterrupted one (the saved state has no DLQ
    // section). Reject the combination rather than silently losing
    // provenance across a resume.
    let poison_on = faults.poison_enabled();
    if poison_on && (resume.is_some() || cfg.checkpoint_dir.is_some()) {
        return Err(Error::job(
            "udf poison injection cannot be combined with checkpointing or \
             resume — quarantined records are not part of the checkpoint \
             format",
        ));
    }

    // Completed-chunk bitmap, seeded from the checkpoint on resume. Lives
    // outside the execution scope because the speculative planner's
    // closures (which outlive this stack frame's inner locals) index the
    // remaining chunks through it.
    let mut done_init: Vec<bool> = vec![false; num_chunks];
    if let Some(saved) = &resume {
        for &c in &saved.done {
            let c = c as usize;
            if c >= num_chunks {
                return Err(Error::storage("checkpoint marks an unknown chunk done"));
            }
            done_init[c] = true;
        }
    }
    // The planner indexes *remaining* chunks (its slots are dense
    // positions), so take() goes through a position remap.
    let plan_chunks: Vec<usize> = (0..num_chunks).filter(|&c| !done_init[c]).collect();
    let mut plan_pos: Vec<Option<usize>> = vec![None; num_chunks];
    for (pos, &c) in plan_chunks.iter().enumerate() {
        plan_pos[c] = Some(pos);
    }
    let compute_plan = |chunk: usize| {
        let c = &store.chunks()[chunk];
        compute_map_task(
            job,
            cfg.framework,
            &input.records[c.range.clone()],
            c.bytes,
            spec,
            h1,
            cfg.admission,
            opa_common::CombineScope::Task,
            poison_on.then_some(PoisonGate {
                faults: *faults,
                base: c.range.start as u64,
            }),
        )
    };
    let compute_plan_at = |pos: usize| compute_plan(plan_chunks[pos]);

    let workers = cfg.exec.threads.saturating_sub(1);

    std::thread::scope(|scope| -> Result<StreamOutcome> {
        let pool = Pool::new(scope, workers);

        let separate_spill = spec.cost.spill_disk != spec.cost.hdfs_disk;
        let mut res = Resources::new(n_nodes, hw.map_slots.max(hw.reduce_slots), separate_spill);
        if cfg.trace {
            res.enable_trace();
        }
        let mut progress = ProgressTracker::new(num_chunks as u64);

        let fault_on = faults.enabled();
        let fplan = if fault_on {
            Some(FaultPlan::new(*faults))
        } else {
            None
        };
        let mut freport = FaultReport::default();
        if faults.spill_error_rate > 0.0 {
            // Note: the injector's pseudo-random sequence restarts on
            // resume — spill-error timing (never output correctness) can
            // then differ from the uninterrupted run.
            res.set_disk_faults(DiskFaultInjector::new(
                faults.seed,
                faults.spill_error_rate,
                faults.max_retries,
            ));
        }
        let mut plan_stash: Vec<Option<opa_core::map_phase::MapTaskPlan>> =
            (0..num_chunks).map(|_| None).collect();
        let track_history = faults.reduce_failure_rate > 0.0;
        let mut delivery_seq: Vec<u64> = vec![0; n_reducers];
        let mut crash_count: Vec<u32> = vec![0; n_reducers];
        let mut history: Vec<Vec<Effect>> = vec![Vec::new(); n_reducers];

        let expected_input =
            ((input.total_bytes() as f64 * cfg.km_hint) / n_reducers as f64).ceil() as u64;
        let expected_keys = job
            .expected_keys()
            .map(|keys| (keys / n_reducers as u64).max(1))
            .unwrap_or(expected_input / 64);
        let sizing = ReducerSizing {
            expected_input,
            expected_keys,
            state_size: job.state_size_hint().unwrap_or(64),
            early_stop_coverage: cfg.early_stop,
            monitor: cfg.dinc_monitor,
            admission: cfg.admission,
        };
        let mut reducers = Vec::with_capacity(n_reducers);
        for _ in 0..n_reducers {
            reducers.push(Some(make_reducer(
                cfg.framework,
                job,
                spec,
                sizing,
                &family,
            )?));
        }
        let reducer_node = |r: usize| r % n_nodes;
        let wave1_per_node = hw.reduce_slots;
        let started: Vec<bool> = (0..n_reducers)
            .map(|r| (r / n_nodes) < wave1_per_node)
            .collect();

        // Scheduler state: either seeded fresh (exactly like the batch
        // engine) or rebuilt from the checkpoint.
        let mut queue: EventQueue<Ev> = EventQueue::new();
        let mut pending: Vec<VecDeque<usize>> = vec![VecDeque::new(); n_nodes];
        let mut done: Vec<bool> = done_init;
        let mut done_prefix = 0usize;
        while done_prefix < num_chunks && done[done_prefix] {
            done_prefix += 1;
        }
        let mut next_batch = 0usize;
        // In-flight shuffle deliveries by source chunk, plus the count
        // attributable to the batch currently being sealed (source chunk
        // below `quota[next_batch]`). Only the latter gates sealing:
        // later chunks' deliveries ride across pause points.
        let mut inflight_by_chunk: Vec<u32> = vec![0; num_chunks];
        let mut inflight_sealing = 0usize;
        let mut map_cpu = vec![SimDuration::ZERO; n_nodes];
        let mut reduce_cpu = vec![SimDuration::ZERO; n_reducers];
        let mut ready_at = vec![SimTime::ZERO; n_reducers];
        let mut deferred: Vec<Vec<(usize, Payload)>> = vec![Vec::new(); n_reducers];
        let mut spill_written_map = 0u64;
        let mut spill_written_reduce = vec![0u64; n_reducers];
        let mut maps_completed = 0usize;
        let mut map_output_bytes = 0u64;
        let mut map_finish = SimTime::ZERO;
        let mut output: Vec<Pair> = Vec::new();
        let mut dlq: Vec<PoisonedRecord> = Vec::new();
        let mut now = SimTime::ZERO;

        match resume {
            None => {
                for (i, c) in store.chunks().iter().enumerate() {
                    pending[c.node].push_back(i);
                }
                for node_pending in pending.iter_mut() {
                    for _ in 0..hw.map_slots {
                        if let Some(chunk) = node_pending.pop_front() {
                            queue.push(SimTime::ZERO, Ev::StartMap { chunk, attempt: 0 });
                        }
                    }
                }
            }
            Some(saved) => {
                next_batch = saved.next_batch as usize;
                for qe in saved.queue {
                    match qe {
                        QueuedEvent::StartMap {
                            time,
                            chunk,
                            attempt,
                        } => {
                            let chunk = chunk as usize;
                            if chunk >= num_chunks {
                                return Err(Error::storage(
                                    "checkpoint queue names an unknown chunk",
                                ));
                            }
                            queue.push(
                                SimTime(time),
                                Ev::StartMap {
                                    chunk,
                                    attempt: attempt as u32,
                                },
                            );
                        }
                        QueuedEvent::Deliver {
                            time,
                            reducer,
                            from_node,
                            chunk,
                            payload,
                        } => {
                            let (reducer, chunk) = (reducer as usize, chunk as usize);
                            if reducer >= n_reducers || chunk >= num_chunks {
                                return Err(Error::storage(
                                    "checkpoint delivery names an unknown reducer or chunk",
                                ));
                            }
                            inflight_by_chunk[chunk] += 1;
                            if next_batch < k && chunk < quota[next_batch] {
                                inflight_sealing += 1;
                            }
                            queue.push(
                                SimTime(time),
                                Ev::Deliver {
                                    reducer,
                                    from_node: from_node as usize,
                                    chunk,
                                    payload,
                                },
                            );
                        }
                    }
                }
                for (node, chunks) in saved.pending.iter().enumerate() {
                    for &c in chunks {
                        pending[node].push_back(c as usize);
                    }
                }
                res.restore_disk_free(&saved.disk_free);
                // Progress accounting restarts at the resume instant;
                // pre-seeding completed maps keeps the map curve's
                // end-state (100 %) truthful.
                for _ in 0..saved.done.len() {
                    progress.map_done(SimTime::ZERO);
                }
                map_output_bytes = saved.map_output_bytes;
                spill_written_map = saved.spill_written_map;
                map_finish = SimTime(saved.map_finish);
                now = map_finish;
                maps_completed = saved.maps_completed as usize;
                map_cpu = saved.map_cpu.iter().map(|&c| SimDuration(c)).collect();
                ready_at = saved.ready_at.iter().map(|&t| SimTime(t)).collect();
                delivery_seq.clone_from(&saved.delivery_seq);
                crash_count = saved.crash_count.iter().map(|&c| c as u32).collect();
                reduce_cpu = saved.reduce_cpu.iter().map(|&c| SimDuration(c)).collect();
                spill_written_reduce.clone_from(&saved.spill_written_reduce);
                output = saved.output;
                for (r, defs) in saved.deferred.into_iter().enumerate() {
                    deferred[r] = defs
                        .into_iter()
                        .map(|d| (d.from_node as usize, d.payload))
                        .collect();
                }
                for (r, ckpt) in saved.reducers.into_iter().enumerate() {
                    reducers[r]
                        .as_mut()
                        .expect("reducer in place")
                        .import_state(ckpt)?;
                }
            }
        }

        // Speculative map-task planning over the chunks still to run.
        let planner: Planner<opa_core::map_phase::MapTaskPlan> =
            Planner::new(plan_chunks.len(), workers * 2 + 2);
        planner.prime(&pool, compute_plan_at);

        let mut checkpoints_written = 0usize;
        let mut last_checkpoint: Option<PathBuf> = None;

        // Burst scratch, reused across iterations.
        let mut mail_of: Vec<Option<usize>> = vec![None; n_reducers];
        let mut log_q: Vec<MailboxLogs> = (0..n_reducers).map(|_| VecDeque::new()).collect();
        let mut snapshot_bytes = vec![0u64; n_reducers];

        macro_rules! target {
            ($r:expr) => {
                ReplayTarget {
                    node: reducer_node($r),
                    res: &mut res,
                    progress: &mut progress,
                    output: &mut output,
                    reduce_cpu: &mut reduce_cpu[$r],
                    spill_written: &mut spill_written_reduce[$r],
                    snapshot_bytes: &mut snapshot_bytes[$r],
                }
            };
        }

        // Main event loop with pause points. Sealing runs before each pop,
        // so it observes the state *between* events and never perturbs the
        // event sequence; once the queue drains, the final batches seal on
        // the next iteration and the loop exits.
        loop {
            while next_batch < k && inflight_sealing == 0 && done_prefix >= quota[next_batch] {
                let sealed = next_batch + 1;
                res.emit(TraceEvent::BatchSeal {
                    t: now.0,
                    batch: sealed as u32,
                    batches: k as u32,
                    records: boundaries[next_batch] as u64,
                });
                let mut ctl = BatchCtl {
                    batch: sealed,
                    batches: k,
                    records_sealed: boundaries[next_batch],
                    total_records: n_records,
                    maps_completed,
                    maps_total: num_chunks,
                    sim_time: now,
                    h1,
                    reducers: &reducers,
                    checkpoint_request: None,
                };
                on_batch(&mut ctl);
                let requested = ctl.checkpoint_request.take();
                next_batch = sealed;
                if next_batch < k {
                    // The sealing window advanced: deliveries from chunks
                    // newly below the boundary now gate the next seal.
                    // (`inflight_sealing` was zero by the seal condition.)
                    inflight_sealing = (quota[sealed - 1]..quota[sealed])
                        .map(|c| inflight_by_chunk[c] as usize)
                        .sum();
                }

                let mut paths: Vec<PathBuf> = Vec::new();
                if let Some(p) = requested {
                    paths.push(p);
                }
                if let Some(dir) = cfg.checkpoint_dir {
                    if cfg.stream.checkpoint_due(sealed) && sealed < k {
                        paths.push(dir.join(format!("stream-ckpt-b{sealed}.opac")));
                    }
                }
                if !paths.is_empty() && poison_on {
                    return Err(Error::job(
                        "checkpoint requested during a poison-injected run — \
                         quarantined records are not part of the checkpoint \
                         format",
                    ));
                }
                if !paths.is_empty() {
                    // Read the queue by draining and re-pushing in pop
                    // order: fresh ascending sequence numbers preserve
                    // every relative ordering, so the run is unaffected.
                    let mut events = Vec::with_capacity(queue.len());
                    let mut stash = Vec::with_capacity(queue.len());
                    while let Some((t, ev)) = queue.pop() {
                        events.push(match &ev {
                            Ev::StartMap { chunk, attempt } => QueuedEvent::StartMap {
                                time: t.0,
                                chunk: *chunk as u64,
                                attempt: u64::from(*attempt),
                            },
                            Ev::Deliver {
                                reducer,
                                from_node,
                                chunk,
                                payload,
                            } => QueuedEvent::Deliver {
                                time: t.0,
                                reducer: *reducer as u64,
                                from_node: *from_node as u64,
                                chunk: *chunk as u64,
                                payload: payload.clone(),
                            },
                        });
                        stash.push((t, ev));
                    }
                    for (t, ev) in stash {
                        queue.push(t, ev);
                    }
                    let mut reducer_ckpts = Vec::with_capacity(n_reducers);
                    for rec in &reducers {
                        reducer_ckpts.push(rec.as_ref().expect("reducer in place").export_state()?);
                    }
                    let saved = SavedState {
                        fingerprint: fingerprint.clone(),
                        job_name: job.name().to_string(),
                        next_batch: next_batch as u64,
                        queue: events,
                        pending: pending
                            .iter()
                            .map(|q| q.iter().map(|&c| c as u64).collect())
                            .collect(),
                        disk_free: res.export_disk_free(),
                        done: (0..num_chunks)
                            .filter(|&c| done[c])
                            .map(|c| c as u64)
                            .collect(),
                        map_output_bytes,
                        spill_written_map,
                        map_finish: map_finish.0,
                        maps_completed: maps_completed as u64,
                        map_cpu: map_cpu.iter().map(|d| d.0).collect(),
                        ready_at: ready_at.iter().map(|t| t.0).collect(),
                        delivery_seq: delivery_seq.clone(),
                        crash_count: crash_count.iter().map(|&c| u64::from(c)).collect(),
                        reduce_cpu: reduce_cpu.iter().map(|d| d.0).collect(),
                        spill_written_reduce: spill_written_reduce.clone(),
                        output: output.clone(),
                        deferred: deferred
                            .iter()
                            .map(|defs| {
                                defs.iter()
                                    .map(|(from, p)| DeferredDelivery {
                                        from_node: *from as u64,
                                        payload: p.clone(),
                                    })
                                    .collect()
                            })
                            .collect(),
                        reducers: reducer_ckpts,
                    };
                    for p in &paths {
                        saved.write_to(p)?;
                        checkpoints_written += 1;
                        if res.trace_enabled() {
                            let bytes = std::fs::metadata(p).map(|m| m.len()).unwrap_or(0);
                            res.emit(TraceEvent::Checkpoint {
                                t: now.0,
                                batch: sealed as u32,
                                bytes,
                            });
                        }
                    }
                    last_checkpoint = paths.pop();
                }
            }

            let Some((t, ev)) = queue.pop() else { break };
            now = t;
            match ev {
                Ev::StartMap { chunk, attempt } => {
                    let node = store.chunks()[chunk].node;
                    res.emit(TraceEvent::MapStart {
                        t: t.0,
                        chunk: chunk as u32,
                        attempt,
                        node: node as u32,
                    });
                    let plan = if attempt == 0 {
                        let pos = plan_pos[chunk].expect("first attempt of an undone chunk");
                        planner.take(pos, &pool, compute_plan_at)
                    } else {
                        plan_stash[chunk]
                            .take()
                            .unwrap_or_else(|| compute_plan(chunk))
                    };
                    match fplan
                        .as_ref()
                        .map_or(MapFate::Ok, |p| p.map_fate(chunk, attempt))
                    {
                        MapFate::Fail { frac } => {
                            let waste = abort_map_task(&plan, frac, node, t, spec, &mut res);
                            let backoff = faults.backoff(attempt + 1);
                            freport.map_failures += 1;
                            freport.map_retries += 1;
                            freport.wasted_cpu += waste.wasted_cpu;
                            freport.wasted_bytes += waste.wasted_bytes;
                            freport.recovery_time += (waste.fail_time - t) + backoff;
                            freport.trace.push(FaultEvent {
                                time: waste.fail_time,
                                kind: FaultKind::MapFailure,
                                target: chunk as u64,
                                attempt,
                            });
                            res.emit(TraceEvent::Fault {
                                t: waste.fail_time.0,
                                kind: FaultKind::MapFailure,
                                target: chunk as u64,
                                attempt,
                            });
                            res.emit(TraceEvent::Retry {
                                t: (waste.fail_time + backoff).0,
                                kind: FaultKind::MapFailure,
                                target: chunk as u64,
                                attempt: attempt + 1,
                            });
                            plan_stash[chunk] = Some(plan);
                            queue.push(
                                waste.fail_time + backoff,
                                Ev::StartMap {
                                    chunk,
                                    attempt: attempt + 1,
                                },
                            );
                            continue;
                        }
                        MapFate::Straggle { factor } => {
                            let nominal = plan.nominal_duration(spec);
                            let waste = straggle_map_task(&plan, factor, node, t, spec, &mut res);
                            let detect = t + nominal;
                            freport.stragglers += 1;
                            freport.speculative_wins += 1;
                            freport.wasted_cpu += waste.wasted_cpu;
                            freport.wasted_bytes += waste.wasted_bytes;
                            freport.recovery_time += waste.fail_time.saturating_since(detect);
                            freport.trace.push(FaultEvent {
                                time: detect,
                                kind: FaultKind::Straggler,
                                target: chunk as u64,
                                attempt,
                            });
                            res.emit(TraceEvent::Fault {
                                t: detect.0,
                                kind: FaultKind::Straggler,
                                target: chunk as u64,
                                attempt,
                            });
                            res.emit(TraceEvent::Retry {
                                t: detect.0,
                                kind: FaultKind::Straggler,
                                target: chunk as u64,
                                attempt: attempt + 1,
                            });
                            plan_stash[chunk] = Some(plan);
                            queue.push(
                                detect,
                                Ev::StartMap {
                                    chunk,
                                    attempt: attempt + 1,
                                },
                            );
                            continue;
                        }
                        MapFate::Ok => {}
                    }
                    let result = finish_map_task(plan, node, t, spec, &mut res);
                    res.emit(TraceEvent::MapFinish {
                        t0: t.0,
                        t: result.finish.0,
                        chunk: chunk as u32,
                        node: node as u32,
                        cpu: result.cpu.0,
                        output_bytes: result.output_bytes,
                        spill_bytes: result.spill_bytes,
                    });
                    for &(offset, ref record) in &result.poisoned {
                        freport.udf_poisoned += 1;
                        freport.trace.push(FaultEvent {
                            time: result.finish,
                            kind: FaultKind::UdfPoison,
                            target: offset,
                            attempt,
                        });
                        res.emit(TraceEvent::Poison {
                            t: result.finish.0,
                            chunk: chunk as u32,
                            offset,
                            attempt,
                        });
                        dlq.push(PoisonedRecord {
                            chunk: chunk as u32,
                            attempt,
                            offset,
                            record: record.clone(),
                        });
                    }
                    map_cpu[node] += result.cpu;
                    spill_written_map += result.spill_bytes;
                    map_output_bytes += result.output_bytes;
                    map_finish = map_finish.max(result.finish);
                    progress.map_done(result.finish);
                    maps_completed += 1;
                    done[chunk] = true;
                    while done_prefix < num_chunks && done[done_prefix] {
                        done_prefix += 1;
                    }
                    if !result.early_output.is_empty() {
                        let bytes: u64 = result.early_output.iter().map(Pair::size).sum();
                        progress.emitted(result.finish, bytes);
                        output.extend(result.early_output);
                    }
                    for granule in result.granules {
                        for (r, payload) in granule.partitions.into_iter().enumerate() {
                            if payload.is_empty() {
                                continue;
                            }
                            let arrival = granule.time + spec.cost.net_time(payload.bytes());
                            res.span(node, OpKind::Shuffle, granule.time, arrival);
                            res.emit(TraceEvent::Shuffle {
                                t0: granule.time.0,
                                t: arrival.0,
                                from_node: node as u32,
                                reducer: r as u32,
                                bytes: payload.bytes(),
                            });
                            inflight_by_chunk[chunk] += 1;
                            if next_batch < k && chunk < quota[next_batch] {
                                inflight_sealing += 1;
                            }
                            queue.push(
                                arrival,
                                Ev::Deliver {
                                    reducer: r,
                                    from_node: node,
                                    chunk,
                                    payload,
                                },
                            );
                        }
                    }
                    if let Some(next) = pending[node].pop_front() {
                        queue.push(
                            result.finish,
                            Ev::StartMap {
                                chunk: next,
                                attempt: 0,
                            },
                        );
                    }
                }
                Ev::Deliver {
                    reducer,
                    from_node,
                    chunk,
                    payload,
                } => {
                    // Drain the maximal run of consecutive deliveries, as
                    // in the batch engine. Deferred (second-wave)
                    // deliveries count as absorbed: they are parked in
                    // scheduler state, not in flight.
                    inflight_by_chunk[chunk] -= 1;
                    if next_batch < k && chunk < quota[next_batch] {
                        inflight_sealing -= 1;
                    }
                    let mut burst: Vec<(SimTime, usize, usize, Payload)> =
                        vec![(t, reducer, from_node, payload)];
                    // Stop extending the burst as soon as a seal becomes
                    // possible, so the loop top observes the pause point.
                    // Grouping deliveries differently is output- and
                    // metric-transparent: effect logs carry durations and
                    // ops, never absolute times, and replay still runs in
                    // pop order.
                    while !(next_batch < k
                        && inflight_sealing == 0
                        && done_prefix >= quota[next_batch])
                        && matches!(queue.peek(), Some((_, Ev::Deliver { .. })))
                    {
                        let Some((
                            t2,
                            Ev::Deliver {
                                reducer,
                                from_node,
                                chunk,
                                payload,
                            },
                        )) = queue.pop()
                        else {
                            unreachable!("peeked a delivery");
                        };
                        inflight_by_chunk[chunk] -= 1;
                        if next_batch < k && chunk < quota[next_batch] {
                            inflight_sealing -= 1;
                        }
                        burst.push((t2, reducer, from_node, payload));
                    }

                    let mut order: Vec<(usize, SimTime)> = Vec::with_capacity(burst.len());
                    let mut mailboxes: Vec<(usize, Vec<Payload>)> = Vec::new();
                    for (t_ev, r, from, payload) in burst {
                        if !started[r] {
                            deferred[r].push((from, payload));
                            continue;
                        }
                        order.push((r, t_ev));
                        let slot = match mail_of[r] {
                            Some(s) => s,
                            None => {
                                mail_of[r] = Some(mailboxes.len());
                                mailboxes.push((r, Vec::new()));
                                mailboxes.len() - 1
                            }
                        };
                        mailboxes[slot].1.push(payload);
                    }
                    if mailboxes.is_empty() {
                        continue;
                    }

                    let n_mail = mailboxes.len();
                    let gather = Gather::new(n_mail);
                    let mut mail_reducers: Vec<usize> = Vec::with_capacity(n_mail);
                    for (slot, (r, items)) in mailboxes.into_iter().enumerate() {
                        mail_reducers.push(r);
                        mail_of[r] = None;
                        let rec = reducers[r].take().expect("reducer in place");
                        let est = ready_at[r];
                        let g = gather.clone();
                        if slot + 1 == n_mail {
                            g.put(slot, record_mailbox(rec, items, est, spec));
                        } else {
                            pool.submit(move || {
                                g.put(slot, record_mailbox(rec, items, est, spec));
                            });
                        }
                    }
                    for ((rec, logs), &r) in gather.wait(&pool).into_iter().zip(&mail_reducers) {
                        reducers[r] = Some(rec);
                        log_q[r] = logs;
                    }
                    for (r, t_ev) in order {
                        let dlog = log_q[r].pop_front().expect("one log per delivery");
                        let mut t0 = ready_at[r].max(t_ev);
                        if let Some(fp) = &fplan {
                            if fp.reduce_crashes(r, delivery_seq[r], crash_count[r]) {
                                crash_count[r] += 1;
                                freport.reduce_failures += 1;
                                freport.trace.push(FaultEvent {
                                    time: t0,
                                    kind: FaultKind::ReduceFailure,
                                    target: r as u64,
                                    attempt: crash_count[r] - 1,
                                });
                                let backoff = faults.backoff(crash_count[r]);
                                res.emit(TraceEvent::Fault {
                                    t: t0.0,
                                    kind: FaultKind::ReduceFailure,
                                    target: r as u64,
                                    attempt: crash_count[r] - 1,
                                });
                                res.emit(TraceEvent::Retry {
                                    t: (t0 + backoff).0,
                                    kind: FaultKind::ReduceFailure,
                                    target: r as u64,
                                    attempt: crash_count[r],
                                });
                                let recov = replay_recovery(
                                    &history[r],
                                    t0 + backoff,
                                    spec,
                                    reducer_node(r),
                                    &mut res,
                                );
                                freport.wasted_bytes += recov.wasted_bytes;
                                freport.wasted_cpu += recov.wasted_cpu;
                                freport.recovery_time += recov.ready_at.saturating_since(t0);
                                t0 = recov.ready_at;
                            }
                            delivery_seq[r] += 1;
                        }
                        if track_history {
                            history[r].extend(dlog.iter().cloned());
                        }
                        ready_at[r] = replay(dlog, t0, spec, target!(r));
                    }
                }
            }
        }

        // Finish phase: identical to the batch engine — wave-one reducers
        // recorded in parallel and replayed in reducer order, then the
        // second wave sequentially.
        let mut dinc_total: Option<opa_core::metrics::DincStats> = None;
        let mut merge_dinc = |stats: Option<opa_core::metrics::DincStats>| {
            if let Some(st) = stats {
                let acc = dinc_total.get_or_insert_with(Default::default);
                acc.slots_per_reducer = st.slots_per_reducer;
                acc.offered += st.offered;
                acc.rejected += st.rejected;
                acc.evict_output += st.evict_output;
                acc.evict_spilled += st.evict_spilled;
            }
        };
        let mut admission_total: Option<opa_core::metrics::AdmissionStats> = None;
        let mut merge_admission = |stats: Option<opa_core::metrics::AdmissionStats>| {
            if let Some(st) = stats {
                admission_total
                    .get_or_insert_with(Default::default)
                    .merge(&st);
            }
        };
        let mut end = map_finish;
        let mut node_wave1_finish: Vec<Vec<SimTime>> = vec![Vec::new(); n_nodes];
        let wave1: Vec<usize> = (0..n_reducers).filter(|&r| started[r]).collect();
        let gather = Gather::new(wave1.len());
        for (slot, &r) in wave1.iter().enumerate() {
            let mut rec = reducers[r].take().expect("reducer in place");
            let est = ready_at[r].max(map_finish);
            let g = gather.clone();
            let record = move || {
                let mut env = ReduceEnv::new(spec);
                rec.finish(est, &mut env);
                g.put(slot, (rec, env.into_log()));
            };
            if slot + 1 == wave1.len() {
                record();
            } else {
                pool.submit(record);
            }
        }
        for ((rec, log), &r) in gather.wait(&pool).into_iter().zip(&wave1) {
            let t0 = ready_at[r].max(map_finish);
            let done_at = replay(log, t0, spec, target!(r));
            merge_dinc(rec.dinc_stats());
            let adm = rec.admission_stats();
            merge_admission(adm);
            node_wave1_finish[reducer_node(r)].push(done_at);
            end = end.max(done_at);
            reducers[r] = Some(rec);
            res.emit(TraceEvent::ReduceFinish {
                t: done_at.0,
                reducer: r as u32,
                node: reducer_node(r) as u32,
            });
            if cfg.admission.is_on() {
                if let Some(st) = adm {
                    res.emit(TraceEvent::Admission {
                        t: done_at.0,
                        reducer: r as u32,
                        offered: st.offered,
                        absorbed: st.absorbed,
                        evictions: st.admitted_evictions,
                        rejected: st.rejected,
                    });
                }
            }
        }

        for node_times in node_wave1_finish.iter_mut() {
            node_times.sort_unstable();
        }
        let mut wave_cursor = vec![0usize; n_nodes];
        for r in 0..n_reducers {
            if started[r] {
                continue;
            }
            let node = reducer_node(r);
            let slot_times = &node_wave1_finish[node];
            let start = if slot_times.is_empty() {
                map_finish
            } else {
                let i = wave_cursor[node].min(slot_times.len() - 1);
                wave_cursor[node] += 1;
                slot_times[i]
            };
            res.emit(TraceEvent::ReduceStart {
                t: start.0,
                reducer: r as u32,
                node: node as u32,
            });
            let mut t = start;
            let deliveries = std::mem::take(&mut deferred[r]);
            let mut arrivals: Vec<(SimTime, Payload)> = deliveries
                .into_iter()
                .map(|(from_node, payload)| {
                    let op = IoOp::read(payload.bytes());
                    let read_done =
                        res.spill_io(from_node, start, IoCategory::MapOutput, op, &spec.cost);
                    (read_done + spec.cost.net_time(payload.bytes()), payload)
                })
                .collect();
            arrivals.sort_by_key(|&(at, _)| at);
            let mut rec = reducers[r].take().expect("reducer in place");
            for (arrival, payload) in arrivals {
                let mut t0 = t.max(arrival);
                if let Some(fp) = &fplan {
                    if fp.reduce_crashes(r, delivery_seq[r], crash_count[r]) {
                        crash_count[r] += 1;
                        freport.reduce_failures += 1;
                        freport.trace.push(FaultEvent {
                            time: t0,
                            kind: FaultKind::ReduceFailure,
                            target: r as u64,
                            attempt: crash_count[r] - 1,
                        });
                        let backoff = faults.backoff(crash_count[r]);
                        res.emit(TraceEvent::Fault {
                            t: t0.0,
                            kind: FaultKind::ReduceFailure,
                            target: r as u64,
                            attempt: crash_count[r] - 1,
                        });
                        res.emit(TraceEvent::Retry {
                            t: (t0 + backoff).0,
                            kind: FaultKind::ReduceFailure,
                            target: r as u64,
                            attempt: crash_count[r],
                        });
                        let recov =
                            replay_recovery(&history[r], t0 + backoff, spec, node, &mut res);
                        freport.wasted_bytes += recov.wasted_bytes;
                        freport.wasted_cpu += recov.wasted_cpu;
                        freport.recovery_time += recov.ready_at.saturating_since(t0);
                        t0 = recov.ready_at;
                    }
                    delivery_seq[r] += 1;
                }
                let mut env = ReduceEnv::new(spec);
                rec.on_delivery(t0, payload, &mut env);
                let dlog = env.into_log();
                if track_history {
                    history[r].extend(dlog.iter().cloned());
                }
                t = replay(dlog, t0, spec, target!(r));
            }
            let mut env = ReduceEnv::new(spec);
            rec.finish(t, &mut env);
            let done_at = replay(env.into_log(), t, spec, target!(r));
            res.emit(TraceEvent::ReduceFinish {
                t: done_at.0,
                reducer: r as u32,
                node: node as u32,
            });
            merge_dinc(rec.dinc_stats());
            let adm = rec.admission_stats();
            merge_admission(adm);
            if cfg.admission.is_on() {
                if let Some(st) = adm {
                    res.emit(TraceEvent::Admission {
                        t: done_at.0,
                        reducer: r as u32,
                        offered: st.offered,
                        absorbed: st.absorbed,
                        evictions: st.admitted_evictions,
                        rejected: st.rejected,
                    });
                }
            }
            reducers[r] = Some(rec);
            end = end.max(done_at);
        }

        let fault_report = if fault_on || poison_on {
            if let Some(inj) = res.take_disk_faults() {
                freport.spill_io_errors = inj.errors();
                freport.wasted_bytes += inj.wasted_bytes();
                freport.trace.extend(inj.into_trace());
            }
            freport.sort_trace();
            Some(freport)
        } else {
            None
        };
        let output_bytes: u64 = output.iter().map(Pair::size).sum();
        let total_reduce_cpu: SimDuration = reduce_cpu.iter().copied().sum();
        let total_map_cpu: SimDuration = map_cpu.iter().copied().sum();
        let metrics = JobMetrics {
            framework: cfg.framework.label().to_string(),
            job: job.name().to_string(),
            running_time: end,
            map_finish,
            input_bytes: input.total_bytes(),
            map_output_bytes,
            map_spill_bytes: spill_written_map,
            reduce_spill_bytes: spill_written_reduce.iter().sum(),
            output_bytes,
            snapshot_bytes: 0,
            output_records: output.len() as u64,
            map_cpu_per_node: SimDuration(total_map_cpu.0 / n_nodes as u64),
            reduce_cpu_per_node: SimDuration(total_reduce_cpu.0 / n_nodes as u64),
            io: res.io.clone(),
            io_recovery: res.io_recovery.clone(),
            dinc: dinc_total,
            admission: admission_total,
            faults: fault_report,
            shuffle_bytes: map_output_bytes,
            node_combine: None,
        };
        let trace_log = res.take_trace();
        Ok(StreamOutcome {
            job: JobOutcome {
                metrics,
                progress: progress.finish(end, PROGRESS_POINTS),
                timeline: std::mem::take(&mut res.timeline),
                usage: res.usage,
                output,
                dlq,
                trace: trace_log,
            },
            batches: k,
            checkpoints_written,
            last_checkpoint,
            resumed_from_batch,
        })
    })
}
