//! The live query surface ([`BatchCtl`]) and its offline twin
//! ([`CheckpointView`]): point lookups route to the owning reducer, the
//! DINC top-k answer carries its γ coverage bound, watermarks advance,
//! and a checkpoint answers exactly what the live state answered at the
//! pause point it was taken.

use opa_common::Key;
use opa_core::cluster::{ClusterSpec, Framework};
use opa_stream::{CheckpointView, StreamJobBuilder};
use opa_workloads::click_count::ClickCountJob;
use opa_workloads::clickstream::ClickStreamSpec;
use opa_workloads::sessionize::SessionizeJob;

fn click_job() -> ClickCountJob {
    ClickCountJob {
        expected_users: 100,
    }
}

#[test]
fn final_batch_lookups_match_the_job_output() {
    // INC-hash keeps every (small) key resident, so at the last pause
    // point — all deliveries absorbed, finish not yet run — a point
    // lookup must already return each key's final aggregate.
    let data = ClickStreamSpec::small().generate(101);
    let mut looked_up: Vec<(Key, Option<u64>)> = Vec::new();
    let outcome = StreamJobBuilder::new(click_job())
        .framework(Framework::IncHash)
        .cluster(ClusterSpec::tiny())
        .batches(4)
        .run_stream(&data, |ctl| {
            if ctl.batch() == 4 {
                looked_up = (0..100)
                    .map(Key::from_u64)
                    .map(|k| {
                        let v = ctl.lookup(&k).and_then(|v| v.as_u64());
                        (k, v)
                    })
                    .collect();
            }
        })
        .expect("stream runs");
    assert!(!looked_up.is_empty(), "final batch sealed");
    let mut hits = 0;
    for (key, live) in looked_up {
        let final_count = outcome
            .job
            .output
            .iter()
            .find(|p| p.key == key)
            .and_then(|p| p.value.as_u64());
        assert_eq!(
            live, final_count,
            "lookup({key:?}) at the last pause point must equal the final output"
        );
        hits += usize::from(live.is_some());
    }
    assert!(hits > 50, "most of the keyspace should be resident");
}

#[test]
fn lookups_grow_monotonically_across_batches() {
    // A count can only grow as batches seal: each pause point's lookup is
    // a partial aggregate over a prefix (at least) of the stream.
    let data = ClickStreamSpec::small().generate(101);
    let probe = Key::from_u64(7);
    let mut seen: Vec<u64> = Vec::new();
    StreamJobBuilder::new(click_job())
        .framework(Framework::IncHash)
        .cluster(ClusterSpec::tiny())
        .batches(5)
        .run_stream(&data, |ctl| {
            if let Some(v) = ctl.lookup(&probe).and_then(|v| v.as_u64()) {
                seen.push(v);
            }
        })
        .expect("stream runs");
    assert!(!seen.is_empty(), "probe key becomes resident");
    assert!(
        seen.windows(2).all(|w| w[0] <= w[1]),
        "partial counts must be monotone: {seen:?}"
    );
}

#[test]
fn dinc_top_k_reports_entries_and_gamma() {
    let data = ClickStreamSpec::small().generate(101);
    let mut answer = None;
    StreamJobBuilder::new(click_job())
        .framework(Framework::DincHash)
        .cluster(ClusterSpec::tiny())
        .batches(4)
        .run_stream(&data, |ctl| {
            if ctl.batch() == 4 {
                answer = ctl.top_k(5);
            }
        })
        .expect("stream runs");
    let (entries, gamma) = answer.expect("DINC maintains a monitor");
    assert!(!entries.is_empty() && entries.len() <= 5);
    assert!(
        entries.windows(2).all(|w| w[0].count >= w[1].count),
        "top-k is sorted by estimated frequency"
    );
    assert!(
        gamma > 0.0 && gamma <= 1.0,
        "γ is a coverage fraction, got {gamma}"
    );

    // Non-DINC frameworks keep no monitor: no top-k answer.
    let mut none_answer = Some((vec![], 0.0));
    StreamJobBuilder::new(click_job())
        .framework(Framework::IncHash)
        .cluster(ClusterSpec::tiny())
        .batches(4)
        .run_stream(&data, |ctl| {
            if ctl.batch() == 4 {
                none_answer = ctl.top_k(5);
            }
        })
        .expect("stream runs");
    assert!(none_answer.is_none(), "INC-hash keeps no frequency monitor");
}

#[test]
fn checkpoint_view_answers_what_the_live_state_answered() {
    // Take a checkpoint at batch 2 and replay the same queries offline:
    // lookups, top-k (entries, counts and γ) and the watermark must all
    // agree with what `BatchCtl` said at that pause point.
    let data = ClickStreamSpec::small().generate(101);
    let dir = std::env::temp_dir().join("opa-stream-query-parity");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let ck = dir.join("b2.opac");
    let ckp = ck.clone();
    let probes: Vec<Key> = (0..20).map(Key::from_u64).collect();
    let mut live_lookups: Vec<Option<u64>> = Vec::new();
    let mut live_top = None;
    let mut live_progress = None;
    StreamJobBuilder::new(click_job())
        .framework(Framework::DincHash)
        .cluster(ClusterSpec::tiny())
        .batches(4)
        .run_stream(&data, |ctl| {
            if ctl.batch() == 2 {
                live_lookups = probes
                    .iter()
                    .map(|k| ctl.lookup(k).and_then(|v| v.as_u64()))
                    .collect();
                live_top = ctl.top_k(5);
                live_progress = Some(ctl.progress());
                ctl.checkpoint(ckp.clone());
            }
        })
        .expect("stream runs");

    let view = CheckpointView::open(&ck).expect("view opens");
    for (key, live) in probes.iter().zip(&live_lookups) {
        let offline = view.lookup(key).and_then(|v| v.as_u64());
        assert_eq!(&offline, live, "lookup({key:?}) parity");
    }
    let (live_entries, live_gamma) = live_top.expect("live top-k");
    let (off_entries, off_gamma) = view.top_k(5).expect("offline top-k");
    assert_eq!(live_entries.len(), off_entries.len(), "top-k length parity");
    for (l, o) in live_entries.iter().zip(&off_entries) {
        assert_eq!(l.key, o.key, "top-k key parity");
        assert_eq!(l.count, o.count, "top-k count parity");
    }
    assert!(
        (live_gamma - off_gamma).abs() < 1e-9,
        "γ parity: live {live_gamma} vs offline {off_gamma}"
    );
    let live_p = live_progress.expect("live progress");
    let off_p = view.progress();
    assert_eq!(off_p.batches_sealed, live_p.batches_sealed);
    assert_eq!(off_p.batches, live_p.batches);
    assert_eq!(off_p.records_sealed, live_p.records_sealed);
    assert_eq!(off_p.total_records, live_p.total_records);
    assert_eq!(off_p.maps_completed, live_p.maps_completed);
    assert_eq!(off_p.maps_total, live_p.maps_total);
    assert_eq!(off_p.watermark, live_p.watermark);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn watermarks_advance_with_the_stream() {
    // Sessionization extracts event times, so each pause point reports
    // the highest click timestamp absorbed — a nondecreasing watermark.
    let data = ClickStreamSpec::small().generate(33);
    let job = SessionizeJob {
        gap_secs: 300,
        slack_secs: 400,
        state_capacity: 16384,
        charge_fixed_footprint: false,
        expected_users: 100,
    };
    let mut wms: Vec<Option<u64>> = Vec::new();
    StreamJobBuilder::new(job)
        .framework(Framework::IncHash)
        .cluster(ClusterSpec::tiny())
        .batches(5)
        .run_stream(&data, |ctl| wms.push(ctl.progress().watermark))
        .expect("stream runs");
    assert_eq!(wms.len(), 5);
    assert!(
        wms.iter().any(Option::is_some),
        "event-time watermark surfaces"
    );
    let present: Vec<u64> = wms.iter().filter_map(|w| *w).collect();
    assert!(
        present.windows(2).all(|w| w[0] <= w[1]),
        "watermark never regresses: {wms:?}"
    );
}
