//! A stream run is a first-class dataflow source: its output dataset
//! carries the partition function it was produced under, so a
//! downstream partition-preserving chain starts with an in-memory
//! handoff — zero shuffle bytes — exactly like a batch-produced dataset.

use opa_common::{decode_kv, Key, Value};
use opa_core::api::{Job, ReduceCtx};
use opa_core::cluster::{ClusterSpec, Framework};
use opa_core::dataflow::{Dataflow, Handoff, PartitionSpec};
use opa_core::job::JobBuilder;
use opa_stream::StreamJobBuilder;
use opa_workloads::click_count::ClickCountJob;
use opa_workloads::clickstream::ClickStreamSpec;

/// Key-identity stage over framed count records.
struct Scale;

impl Job for Scale {
    fn name(&self) -> &str {
        "scale"
    }
    fn map(&self, record: &[u8], emit: &mut dyn FnMut(&[u8], &[u8])) {
        let (k, v) = decode_kv(record).expect("framed dataflow record");
        let n = u64::from_be_bytes(v.try_into().expect("u64 count"));
        emit(k, &(10 * n).to_be_bytes());
    }
    fn reduce(&self, key: &Key, values: Vec<Value>, ctx: &mut ReduceCtx) {
        let sum: u64 = values.iter().filter_map(Value::as_u64).sum();
        ctx.emit(key.clone(), Value::from_u64(sum));
    }
    fn partition_preserving(&self) -> bool {
        true
    }
}

#[test]
fn stream_output_feeds_a_dataflow_with_an_in_memory_handoff() {
    let data = ClickStreamSpec::small().generate(77);
    let spec = ClusterSpec::tiny();
    let job = ClickCountJob {
        expected_users: 100,
    };

    let stream = StreamJobBuilder::new(job.clone())
        .framework(Framework::IncHash)
        .cluster(spec)
        .batches(4)
        .run_stream(&data, |_| {})
        .expect("stream runs");
    let ds = stream.dataset(&spec);
    assert_eq!(ds.spec(), PartitionSpec::of(&spec));
    assert!(ds.verify_placement());

    let out = Dataflow::new(spec)
        .then(Scale, Framework::MrHash)
        .run_from(&ds)
        .expect("chain from stream dataset");
    assert_eq!(out.stages[0].handoff, Handoff::InMemory);
    assert_eq!(out.stages[0].metrics.map_output_bytes, 0);

    // Same answer as chaining from the equivalent batch run's dataset.
    let batch = JobBuilder::new(job)
        .framework(Framework::IncHash)
        .cluster(spec)
        .run(&data)
        .expect("batch runs");
    let from_batch = Dataflow::new(spec)
        .then(Scale, Framework::MrHash)
        .run_from(&batch.dataset(&spec))
        .expect("chain from batch dataset");
    assert_eq!(out.sorted_output(), from_batch.sorted_output());
}
