//! Checkpoint / crash / resume semantics: a resumed run reproduces the
//! uninterrupted run's output bit-for-bit, sealed batches never re-fire
//! their callbacks, and every malformed input is rejected loudly before
//! any state is touched.

use opa_common::fault::FaultConfig;
use opa_common::ExecConfig;
use opa_core::cluster::{ClusterSpec, Framework};
use opa_stream::{CheckpointView, StreamJobBuilder};
use opa_workloads::click_count::ClickCountJob;
use opa_workloads::clickstream::ClickStreamSpec;
use opa_workloads::frequent_users::FrequentUsersJob;

fn click_job() -> ClickCountJob {
    ClickCountJob {
        expected_users: 100,
    }
}

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(name);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

#[test]
fn resume_matches_uninterrupted_for_every_framework() {
    let data = ClickStreamSpec::small().generate(101);
    let dir = tmp_dir("opa-stream-resume");
    for fw in Framework::ALL {
        let ck = dir.join(format!("{fw:?}.opac"));
        let build = || {
            StreamJobBuilder::new(click_job())
                .framework(fw)
                .cluster(ClusterSpec::tiny())
                .batches(4)
        };
        let full = build().run_stream(&data, |_| {}).expect("full run");
        let ckp = ck.clone();
        build()
            .run_stream(&data, |ctl| {
                if ctl.batch() == 2 {
                    ctl.checkpoint(ckp.clone());
                }
            })
            .expect("checkpointed run");
        let view = CheckpointView::open(&ck).expect("view opens");
        assert_eq!(view.progress().batches_sealed, 2, "{fw:?}");
        assert_eq!(view.framework().expect("framework"), fw);

        let mut batches_seen = vec![];
        let resumed = build()
            .resume_stream(&data, &ck, |ctl| batches_seen.push(ctl.batch()))
            .expect("resume runs");
        assert_eq!(
            batches_seen,
            vec![3, 4],
            "{fw:?}: sealed batches don't re-fire"
        );
        assert_eq!(resumed.resumed_from_batch, Some(2), "{fw:?}");
        assert_eq!(
            full.job.output, resumed.job.output,
            "{fw:?}: resumed output must be bit-identical"
        );
        // Thread-count invariance extends across the crash/restore divide.
        let resumed8 = build()
            .exec(ExecConfig::oversubscribed(8))
            .resume_stream(&data, &ck, |_| {})
            .expect("resume at 8 threads");
        assert_eq!(
            full.job.output, resumed8.job.output,
            "{fw:?}: resume at a different thread count must be bit-identical"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn periodic_checkpoints_follow_the_cadence() {
    let data = ClickStreamSpec::small().generate(101);
    let dir = tmp_dir("opa-stream-cadence");
    let out = StreamJobBuilder::new(click_job())
        .framework(Framework::IncHash)
        .cluster(ClusterSpec::tiny())
        .batches(6)
        .checkpoint_every(2)
        .checkpoint_dir(&dir)
        .run_stream(&data, |_| {})
        .expect("stream runs");
    // Cadence 2 over 6 batches → b2 and b4 (the final batch never
    // auto-checkpoints: there is nothing left to resume).
    assert_eq!(out.checkpoints_written, 2);
    assert!(dir.join("stream-ckpt-b2.opac").is_file());
    assert!(dir.join("stream-ckpt-b4.opac").is_file());
    assert!(!dir.join("stream-ckpt-b6.opac").exists());
    assert_eq!(out.last_checkpoint, Some(dir.join("stream-ckpt-b4.opac")));

    let resumed = StreamJobBuilder::new(click_job())
        .framework(Framework::IncHash)
        .cluster(ClusterSpec::tiny())
        .batches(6)
        .resume_stream(&data, &dir.join("stream-ckpt-b4.opac"), |_| {})
        .expect("resume from periodic checkpoint");
    assert_eq!(resumed.resumed_from_batch, Some(4));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mismatched_checkpoints_are_rejected() {
    let data = ClickStreamSpec::small().generate(101);
    let dir = tmp_dir("opa-stream-mismatch");
    let ck = dir.join("inc.opac");
    let ckp = ck.clone();
    StreamJobBuilder::new(click_job())
        .framework(Framework::IncHash)
        .cluster(ClusterSpec::tiny())
        .batches(4)
        .run_stream(&data, |ctl| {
            if ctl.batch() == 2 {
                ctl.checkpoint(ckp.clone());
            }
        })
        .expect("checkpointed run");

    // Different framework → fingerprint mismatch.
    let err = StreamJobBuilder::new(click_job())
        .framework(Framework::DincHash)
        .cluster(ClusterSpec::tiny())
        .batches(4)
        .resume_stream(&data, &ck, |_| {})
        .expect_err("framework mismatch must be rejected");
    assert!(
        err.to_string().contains("fingerprint"),
        "unexpected error: {err}"
    );

    // Different job (same framework, same input) → job-name mismatch.
    let err = StreamJobBuilder::new(FrequentUsersJob {
        threshold: 20,
        expected_users: 100,
    })
    .framework(Framework::IncHash)
    .cluster(ClusterSpec::tiny())
    .batches(4)
    .resume_stream(&data, &ck, |_| {})
    .expect_err("job mismatch must be rejected");
    assert!(
        err.to_string().contains("belongs to job"),
        "unexpected error: {err}"
    );

    // Corrupted file → CRC failure, never a silent resume.
    let mut bytes = std::fs::read(&ck).expect("read checkpoint");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    let bad = dir.join("corrupt.opac");
    std::fs::write(&bad, &bytes).expect("write corrupted");
    assert!(StreamJobBuilder::new(click_job())
        .framework(Framework::IncHash)
        .cluster(ClusterSpec::tiny())
        .batches(4)
        .resume_stream(&data, &bad, |_| {})
        .is_err());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn invalid_stream_configurations_are_rejected_up_front() {
    let data = ClickStreamSpec::small().generate(101);
    let build = || {
        StreamJobBuilder::new(click_job())
            .framework(Framework::IncHash)
            .cluster(ClusterSpec::tiny())
    };
    assert!(build().batches(0).run_stream(&data, |_| {}).is_err());
    // More batches than records: some batch would be empty.
    assert!(build()
        .batches(data.len() + 1)
        .run_stream(&data, |_| {})
        .is_err());
    // A cadence with nowhere to write.
    let err = build()
        .batches(4)
        .checkpoint_every(2)
        .run_stream(&data, |_| {})
        .expect_err("cadence without a directory must be rejected");
    assert!(
        err.to_string().contains("checkpoint"),
        "unexpected error: {err}"
    );
    // Empty input.
    let empty = opa_core::job::JobInput { records: vec![] };
    assert!(build().batches(1).run_stream(&empty, |_| {}).is_err());
}

/// Long-haul soak: many batches, periodic checkpoints, injected reduce
/// crashes, resume from the middle at two thread counts. Gated behind
/// `OPA_SOAK=1` (CI runs it in the stream-soak job; it is too slow for
/// the default `cargo test`).
#[test]
fn soak_stream_checkpoint_crash_resume() {
    if std::env::var("OPA_SOAK").is_err() {
        return;
    }
    let data = ClickStreamSpec::counting_scaled(3_000_000).generate(5);
    // CI points OPA_SOAK_DIR somewhere uploadable, so the checkpoints of
    // a failing soak land in the build artifacts (the cleanup below only
    // runs when every assertion held).
    let dir = match std::env::var_os("OPA_SOAK_DIR") {
        Some(d) => {
            let d = std::path::PathBuf::from(d);
            std::fs::create_dir_all(&d).expect("mkdir");
            d
        }
        None => tmp_dir("opa-stream-soak"),
    };
    let faults = FaultConfig {
        seed: 11,
        reduce_failure_rate: 0.1,
        max_retries: 50,
        ..FaultConfig::disabled()
    };
    for fw in [Framework::IncHash, Framework::DincHash] {
        let sub = dir.join(format!("{fw:?}"));
        std::fs::create_dir_all(&sub).expect("mkdir");
        let build = || {
            StreamJobBuilder::new(ClickCountJob {
                expected_users: 1000,
            })
            .framework(fw)
            .cluster(ClusterSpec::paper_scaled())
            .faults(faults)
            .batches(16)
        };
        let full = build().run_stream(&data, |_| {}).expect("full soak run");
        assert!(
            full.job
                .metrics
                .faults
                .as_ref()
                .expect("report")
                .reduce_failures
                > 0,
            "{fw:?}: soak must exercise crash recovery"
        );
        let ckpt = build()
            .checkpoint_every(8)
            .checkpoint_dir(&sub)
            .run_stream(&data, |_| {})
            .expect("checkpointing soak run");
        assert_eq!(ckpt.checkpoints_written, 1, "{fw:?}: b8 only");
        let ck = sub.join("stream-ckpt-b8.opac");
        for threads in [1, 8] {
            let resumed = build()
                .exec(ExecConfig::oversubscribed(threads))
                .resume_stream(&data, &ck, |_| {})
                .expect("soak resume");
            assert_eq!(resumed.resumed_from_batch, Some(8));
            assert_eq!(
                full.job.output, resumed.job.output,
                "{fw:?}@{threads}: soak resume must be bit-identical"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
