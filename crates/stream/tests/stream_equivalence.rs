//! The stream runtime's core contract: a streamed run is *bit-identical*
//! to the one-shot batch run — output and metrics — for every reduce-side
//! framework, at any micro-batch count and any thread count. Sealing only
//! observes the engine between two events; these tests pin that it never
//! perturbs one.

use opa_common::ExecConfig;
use opa_core::cluster::{ClusterSpec, Framework};
use opa_core::job::JobBuilder;
use opa_stream::StreamJobBuilder;
use opa_workloads::click_count::ClickCountJob;
use opa_workloads::clickstream::ClickStreamSpec;
use opa_workloads::sessionize::SessionizeJob;

fn click_job() -> ClickCountJob {
    ClickCountJob {
        expected_users: 100,
    }
}

fn sessionize_job() -> SessionizeJob {
    SessionizeJob {
        gap_secs: 300,
        slack_secs: 400,
        state_capacity: 16384,
        charge_fixed_footprint: false,
        expected_users: 100,
    }
}

#[test]
fn streamed_run_is_bit_identical_to_batch() {
    let data = ClickStreamSpec::small().generate(101);
    for fw in Framework::ALL {
        let batch = JobBuilder::new(click_job())
            .framework(fw)
            .cluster(ClusterSpec::tiny())
            .run(&data)
            .expect("batch runs");
        for k in [1, 4, 7] {
            let mut sealed = 0;
            let stream = StreamJobBuilder::new(click_job())
                .framework(fw)
                .cluster(ClusterSpec::tiny())
                .batches(k)
                .run_stream(&data, |ctl| sealed = ctl.batch())
                .expect("stream runs");
            assert_eq!(sealed, k, "{fw:?}/k={k}: every batch seals, in order");
            assert_eq!(stream.batches, k, "{fw:?}/k={k}");
            assert_eq!(
                batch.output, stream.job.output,
                "{fw:?}/k={k}: streamed output must be bit-identical"
            );
            assert_eq!(
                format!("{:?}", batch.metrics),
                format!("{:?}", stream.job.metrics),
                "{fw:?}/k={k}: streamed metrics must be bit-identical"
            );
        }
    }
}

#[test]
fn streamed_run_is_thread_invariant() {
    // An order-sensitive workload (sessionization emits from a reorder
    // buffer) on the multi-node paper cluster: the strongest determinism
    // check the repo has, extended to the stream runtime.
    let data = ClickStreamSpec::small().generate(44);
    for fw in [Framework::IncHash, Framework::DincHash] {
        let run = |threads: usize| {
            StreamJobBuilder::new(sessionize_job())
                .framework(fw)
                .cluster(ClusterSpec::paper_scaled())
                .exec(ExecConfig::oversubscribed(threads))
                .batches(5)
                .run_stream(&data, |_| {})
                .expect("stream runs")
        };
        let t1 = run(1);
        let t8 = run(8);
        assert_eq!(
            t1.job.output, t8.job.output,
            "{fw:?}: stream output must not depend on thread count"
        );
        assert_eq!(
            format!("{:?}", t1.job.metrics),
            format!("{:?}", t8.job.metrics),
            "{fw:?}: stream metrics must not depend on thread count"
        );
    }
}

#[test]
fn batch_callbacks_see_monotone_progress() {
    let data = ClickStreamSpec::small().generate(101);
    let mut last_records = 0;
    let mut last_batch = 0;
    StreamJobBuilder::new(click_job())
        .framework(Framework::IncHash)
        .cluster(ClusterSpec::tiny())
        .batches(6)
        .run_stream(&data, |ctl| {
            let p = ctl.progress();
            assert_eq!(p.batches_sealed, last_batch + 1, "batches seal in order");
            assert!(
                p.records_sealed > last_records || p.batches_sealed == p.batches,
                "watermark advances with every seal"
            );
            assert!(p.records_sealed <= p.total_records);
            assert!(p.maps_completed <= p.maps_total);
            last_batch = p.batches_sealed;
            last_records = p.records_sealed;
        })
        .expect("stream runs");
    assert_eq!(last_batch, 6);
    assert_eq!(last_records, data.len());
}
