//! Trace determinism for the stream driver: byte-identical JSONL across
//! thread counts, and — once the stream-only `batch_seal`/`checkpoint`
//! lines are filtered out — identical to any other batch count `k` of the
//! same run (the underlying event sequence is literally the batch
//! engine's; pause points only add observations).

use opa_common::ExecConfig;
use opa_core::cluster::{ClusterSpec, Framework};
use opa_stream::StreamJobBuilder;
use opa_trace::{TraceEvent, TraceLog};
use opa_workloads::click_count::ClickCountJob;
use opa_workloads::clickstream::ClickStreamSpec;

fn job() -> ClickCountJob {
    ClickCountJob {
        expected_users: 100,
    }
}

fn traced(k: usize, threads: usize) -> TraceLog {
    let data = ClickStreamSpec::small().generate(101);
    let out = StreamJobBuilder::new(job())
        .framework(Framework::IncHash)
        .cluster(ClusterSpec::tiny())
        .exec(ExecConfig::oversubscribed(threads))
        .batches(k)
        .trace(true)
        .run_stream(&data, |_| {})
        .expect("stream runs");
    out.job.trace.expect("trace enabled")
}

/// A trace with the stream-only pause-point events removed: what remains
/// is the engine's event sequence, which must not depend on `k`.
fn engine_only(log: &TraceLog) -> String {
    let filtered: Vec<_> = log
        .events
        .iter()
        .filter(|e| {
            !matches!(
                e,
                TraceEvent::BatchSeal { .. } | TraceEvent::Checkpoint { .. }
            )
        })
        .cloned()
        .collect();
    TraceLog { events: filtered }.to_jsonl()
}

#[test]
fn stream_traces_are_byte_identical_across_thread_counts() {
    for k in [1, 4] {
        let seq = traced(k, 1).to_jsonl();
        for threads in [2, 8] {
            assert_eq!(
                seq,
                traced(k, threads).to_jsonl(),
                "k={k}: stream trace diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn engine_events_are_identical_across_batch_counts() {
    let one = traced(1, 2);
    let four = traced(4, 2);
    let seven = traced(7, 2);
    assert_eq!(engine_only(&one), engine_only(&four));
    assert_eq!(engine_only(&one), engine_only(&seven));
}

#[test]
fn every_seal_is_traced_in_order() {
    let log = traced(5, 1);
    let seals: Vec<(u32, u32)> = log
        .events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::BatchSeal { batch, batches, .. } => Some((*batch, *batches)),
            _ => None,
        })
        .collect();
    assert_eq!(
        seals,
        (1..=5).map(|b| (b, 5)).collect::<Vec<_>>(),
        "one batch_seal per sealed batch, in order"
    );
    let rollup = log.rollup();
    assert_eq!(rollup.batch_seals, 5);
    assert_eq!(rollup.checkpoints, 0);
}

#[test]
fn checkpoints_are_traced_with_their_file_size() {
    let data = ClickStreamSpec::small().generate(101);
    let dir = std::env::temp_dir().join("opa-stream-trace-ckpt");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let out = StreamJobBuilder::new(job())
        .framework(Framework::IncHash)
        .cluster(ClusterSpec::tiny())
        .batches(4)
        .checkpoint_every(2)
        .checkpoint_dir(&dir)
        .trace(true)
        .run_stream(&data, |_| {})
        .expect("stream runs");
    let log = out.job.trace.expect("trace enabled");
    let ckpts: Vec<u64> = log
        .events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Checkpoint { bytes, .. } => Some(*bytes),
            _ => None,
        })
        .collect();
    assert_eq!(
        ckpts.len(),
        out.checkpoints_written,
        "one checkpoint event per file written"
    );
    assert!(!ckpts.is_empty() && ckpts.iter().all(|&b| b > 0));
    std::fs::remove_dir_all(&dir).ok();
}
