//! End-to-end engine benchmarks: wall-clock cost of simulating one full
//! job per framework on a 4 MB click stream. This measures the *harness*
//! (how fast OPA replays the paper's experiments), complementing the
//! virtual-time numbers the `repro` binary reports.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use opa_common::units::MB;
use opa_core::cluster::{ClusterSpec, Framework};
use opa_core::job::JobBuilder;
use opa_workloads::clickstream::ClickStreamSpec;
use opa_workloads::sessionize::SessionizeJob;
use opa_workloads::ClickCountJob;

fn bench_frameworks(c: &mut Criterion) {
    let spec = ClickStreamSpec::paper_scaled(4 * MB);
    let input = spec.generate(5);
    let mut g = c.benchmark_group("engine_end_to_end");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(input.total_bytes()));

    for fw in Framework::ALL {
        g.bench_with_input(
            BenchmarkId::new("sessionization", fw.label()),
            &input,
            |b, input| {
                let job = SessionizeJob {
                    gap_secs: 300,
                    slack_secs: 600,
                    state_capacity: 512,
                    charge_fixed_footprint: true,
                    expected_users: spec.users as u64,
                };
                b.iter(|| {
                    JobBuilder::new(job.clone())
                        .framework(fw)
                        .cluster(ClusterSpec::paper_scaled())
                        .run(input)
                        .expect("job runs")
                        .metrics
                        .output_records
                })
            },
        );
    }

    let cspec = ClickStreamSpec::counting_scaled(4 * MB);
    let cinput = cspec.generate(6);
    for fw in [Framework::SortMerge, Framework::IncHash] {
        g.bench_with_input(
            BenchmarkId::new("click_count", fw.label()),
            &cinput,
            |b, input| {
                b.iter(|| {
                    JobBuilder::new(ClickCountJob {
                        expected_users: cspec.users as u64,
                    })
                    .framework(fw)
                    .cluster(ClusterSpec::paper_scaled())
                    .km_hint(0.05)
                    .run(input)
                    .expect("job runs")
                    .metrics
                    .output_records
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_frameworks);
criterion_main!(benches);
