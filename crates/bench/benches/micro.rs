//! Micro-benchmarks of the platform's building blocks.
//!
//! The headline comparison is the paper's core claim in miniature:
//! collecting map output by **sorting** (the Hadoop baseline) versus by
//! **hashing** (the OPA frameworks) — the hash path should win clearly.
//! The rest measure the hot inner loops: FREQUENT offers, bucket-manager
//! pushes, the universal hash family, and the closed-form model.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use opa_common::rng::SplitMix64;
use opa_common::{HashFamily, Key, Pair, Value};
use opa_freq::MisraGries;
use opa_model::lambda::lambda_f;
use opa_simio::BucketManager;
use std::collections::HashMap;

fn make_pairs(n: usize, keys: u64) -> Vec<Pair> {
    let mut rng = SplitMix64::new(7);
    (0..n)
        .map(|_| Pair::new(Key::from_u64(rng.next_below(keys)), Value::from_u64(1)))
        .collect()
}

/// Sort-based vs hash-based map-output collection (the §4 argument).
fn bench_collect(c: &mut Criterion) {
    let mut g = c.benchmark_group("map_output_collect");
    for &n in &[1_000usize, 10_000, 100_000] {
        let pairs = make_pairs(n, n as u64 / 10);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("sort", n), &pairs, |b, pairs| {
            b.iter(|| {
                let mut v = pairs.clone();
                v.sort_by(|a, b| a.key.cmp(&b.key));
                black_box(v.len())
            })
        });
        g.bench_with_input(BenchmarkId::new("hash", n), &pairs, |b, pairs| {
            b.iter(|| {
                let mut table: HashMap<&Key, u64> = HashMap::with_capacity(pairs.len());
                for p in pairs {
                    *table.entry(&p.key).or_default() += 1;
                }
                black_box(table.len())
            })
        });
    }
    g.finish();
}

/// FREQUENT monitor throughput across slot counts.
fn bench_misra_gries(c: &mut Criterion) {
    let mut g = c.benchmark_group("misra_gries_offer");
    let stream: Vec<u64> = {
        let mut rng = SplitMix64::new(3);
        (0..100_000).map(|_| rng.next_below(5_000)).collect()
    };
    g.throughput(Throughput::Elements(stream.len() as u64));
    for &s in &[64usize, 1024, 16_384] {
        g.bench_with_input(BenchmarkId::from_parameter(s), &stream, |b, stream| {
            b.iter(|| {
                let mut mg: MisraGries<u64, u64> = MisraGries::new(s);
                for &k in stream {
                    let _ = mg.offer(k, 1, |_, a, b| *a += b);
                }
                black_box(mg.len())
            })
        });
    }
    g.finish();
}

/// Bucket-manager staging throughput.
fn bench_bucket_manager(c: &mut Criterion) {
    let pairs = make_pairs(50_000, 5_000);
    let fam = HashFamily::new(1);
    let h3 = fam.fn_at(2);
    let mut g = c.benchmark_group("bucket_manager");
    g.throughput(Throughput::Elements(pairs.len() as u64));
    for &h in &[4usize, 32] {
        g.bench_with_input(BenchmarkId::new("push", h), &pairs, |b, pairs| {
            b.iter(|| {
                let mut m = BucketManager::new(h, 8 * 1024);
                for p in pairs {
                    let _ = m.push(h3.bucket(p.key.bytes(), h), p.clone());
                }
                black_box(m.seal().written)
            })
        });
    }
    g.finish();
}

/// Universal hash family throughput on short keys.
fn bench_hash_family(c: &mut Criterion) {
    let h = HashFamily::new(9).fn_at(0);
    let keys: Vec<[u8; 8]> = (0..10_000u64).map(|k| k.to_be_bytes()).collect();
    let mut g = c.benchmark_group("hash_family");
    g.throughput(Throughput::Elements(keys.len() as u64));
    g.bench_function("hash_8B_keys", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for k in &keys {
                acc ^= h.hash(k);
            }
            black_box(acc)
        })
    });
    g.finish();
}

/// Closed-form model evaluation (used inside grid searches).
fn bench_lambda(c: &mut Criterion) {
    c.bench_function("lambda_f_eval", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for n in 1..200 {
                acc += lambda_f(black_box(n as f64), 1024.0, 10);
            }
            black_box(acc)
        })
    });
}

criterion_group!(
    benches,
    bench_collect,
    bench_misra_gries,
    bench_bucket_manager,
    bench_hash_family,
    bench_lambda
);
criterion_main!(benches);
