//! Aligned-table printing and CSV emission for the repro harness.

use opa_core::progress::ProgressCurve;
use std::fmt::Display;
use std::fs;
use std::io::Write;
use std::path::Path;

/// A simple aligned text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row<S: Display>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(|c| c.to_string()).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
        self
    }

    /// Renders with padded columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Writes the table as CSV.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        let mut f = fs::File::create(path)?;
        writeln!(f, "{}", self.header.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(())
    }
}

/// Writes one or more labelled progress curves as a long-format CSV:
/// `series,t_secs,map_pct,reduce_pct`.
pub fn write_progress_csv(path: &Path, curves: &[(&str, &ProgressCurve)]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    let mut f = fs::File::create(path)?;
    writeln!(f, "series,t_secs,map_pct,reduce_pct")?;
    for (label, curve) in curves {
        for p in &curve.points {
            writeln!(
                f,
                "{label},{:.1},{:.2},{:.2}",
                p.t.as_secs_f64(),
                p.map_pct,
                p.reduce_pct
            )?;
        }
    }
    Ok(())
}

/// Renders a compact ASCII plot of progress curves: one row per series per
/// metric, sampled at fixed columns.
pub fn ascii_progress(curves: &[(&str, &ProgressCurve)], cols: usize) -> String {
    let end = curves
        .iter()
        .map(|(_, c)| c.end_time().as_secs_f64())
        .fold(0.0f64, f64::max);
    let mut out = String::new();
    out.push_str(&format!(
        "progress 0s → {end:.0}s ({cols} columns; each char = {:.0}s)\n",
        end / cols as f64
    ));
    for (label, curve) in curves {
        for (kind, pick) in [("map", true), ("red", false)] {
            let mut line = String::with_capacity(cols);
            for c in 0..cols {
                let t = end * (c as f64 + 0.5) / cols as f64;
                let pct = curve
                    .points
                    .iter()
                    .take_while(|p| p.t.as_secs_f64() <= t)
                    .last()
                    .map(|p| if pick { p.map_pct } else { p.reduce_pct })
                    .unwrap_or(0.0);
                line.push(gauge_char(pct));
            }
            out.push_str(&format!("{label:>14} {kind} |{line}|\n"));
        }
    }
    out
}

fn gauge_char(pct: f64) -> char {
    match pct {
        p if p >= 99.5 => '#',
        p if p >= 87.5 => '8',
        p if p >= 75.0 => '7',
        p if p >= 62.5 => '6',
        p if p >= 50.0 => '5',
        p if p >= 37.5 => '4',
        p if p >= 25.0 => '3',
        p if p >= 12.5 => '2',
        p if p >= 1.0 => '1',
        _ => '.',
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["metric", "value"]);
        t.row(["running time", "4860 s"]);
        t.row(["spill", "370 GB"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("metric"));
        assert!(lines[2].contains("4860"));
        // Columns align: "value" column starts at the same offset.
        let off = lines[0].find("value").unwrap();
        assert_eq!(lines[2].find("4860"), Some(off));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn csv_written() {
        let dir = std::env::temp_dir().join("opa-bench-test");
        let path = dir.join("t.csv");
        let mut t = Table::new(["a", "b"]);
        t.row(["1", "2"]);
        t.write_csv(&path).unwrap();
        let s = std::fs::read_to_string(&path).unwrap();
        assert_eq!(s, "a,b\n1,2\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gauge_is_monotone() {
        let chars: Vec<char> = [0.0, 5.0, 20.0, 30.0, 45.0, 55.0, 70.0, 80.0, 90.0, 100.0]
            .iter()
            .map(|&p| gauge_char(p))
            .collect();
        assert_eq!(chars.first(), Some(&'.'));
        assert_eq!(chars.last(), Some(&'#'));
        assert_eq!(chars.len(), 10);
    }
}
