//! # opa-bench
//!
//! The reproduction harness: one experiment module per table and figure of
//! the paper's evaluation, all reachable through the `repro` binary:
//!
//! ```text
//! cargo run -p opa-bench --release --bin repro -- all
//! cargo run -p opa-bench --release --bin repro -- table3 fig7a
//! cargo run -p opa-bench --release --bin repro -- --quick all
//! ```
//!
//! Every experiment prints the paper's reference numbers next to the
//! numbers measured on the OPA engine (absolute values are *scaled*:
//! data sizes by 1/1024, times by the calibrated cost model — the
//! comparison is about shape: who wins, by what factor, where curves
//! diverge) and writes CSV series into `results/`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod report;

use std::path::PathBuf;

/// Shared experiment configuration.
#[derive(Debug, Clone)]
pub struct ExpConfig {
    /// Data scale denominator relative to the paper (default 1024:
    /// 256 GB → 256 MB).
    pub scale: u64,
    /// Output directory for CSV artifacts.
    pub outdir: PathBuf,
    /// Quick mode: shrink inputs a further 8× for smoke runs.
    pub quick: bool,
    /// Master seed for all generators.
    pub seed: u64,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            scale: 1024,
            outdir: PathBuf::from("results"),
            quick: false,
            seed: 42,
        }
    }
}

impl ExpConfig {
    /// Scales a paper-reported size (in bytes at full scale) to this
    /// configuration's run size.
    pub fn size(&self, full_scale_bytes: u64) -> u64 {
        let scaled = full_scale_bytes / self.scale;
        if self.quick {
            scaled / 8
        } else {
            scaled
        }
    }

    /// Scale factor from run bytes back to paper-comparable gigabytes.
    pub fn to_paper_gb(&self, run_bytes: u64) -> f64 {
        (run_bytes * self.scale) as f64 / (1u64 << 30) as f64
    }
}
