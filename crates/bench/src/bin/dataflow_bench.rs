//! Wall-clock benchmark of the dataflow layer: per-stage chain
//! throughput, the skip-vs-materialize handoff comparison on the
//! top-k-pages join, and PageRank round rate. Results land in
//! `BENCH_dataflow.json` so later changes have a perf trajectory to
//! regress against, and the skip-beats-materialize claim is *asserted*,
//! not just charted.
//!
//! ```text
//! cargo run -p opa-bench --release --bin dataflow_bench [-- OUT.json]
//! ```

use opa_core::cluster::{ClusterSpec, Framework};
use opa_core::dataflow::{Dataflow, Dataset, Handoff, HandoffPolicy};
use opa_core::job::JobBuilder;
use opa_workloads::clickstream::ClickStreamSpec;
use opa_workloads::pagerank::{PageRankInitJob, PageRankRoundJob};
use opa_workloads::top_pages::{PageSessionsJob, TopKFunnelJob, TopPagesJoinJob};
use opa_workloads::PageFreqJob;
use std::time::Instant;

const PAGERANK_ROUNDS: usize = 5;
const TOPK: usize = 20;

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_dataflow.json".to_string());
    let cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let spec = ClusterSpec::tiny();
    let data = ClickStreamSpec::counting_scaled(8 << 20).generate(42);
    let records = data.len();
    println!("dataflow_bench: {records} clicks ({cpus} host CPUs)");

    // --- Leg 1: top-pages chain, skip vs forced paths. ---
    // Producers run once; the measured section is the chain over the
    // union, where the join either skips its shuffle (Auto) or is forced
    // through the classic reshuffle / materialize-to-file handoffs.
    let freq = JobBuilder::new(PageFreqJob {
        expected_pages: 100_000,
    })
    .framework(Framework::IncHash)
    .cluster(spec)
    .run(&data)
    .expect("page_freq producer");
    let sessions = JobBuilder::new(PageSessionsJob {
        expected_pages: 100_000,
    })
    .framework(Framework::MrHash)
    .cluster(spec)
    .run(&data)
    .expect("page_sessions producer");
    let union = Dataset::union(&freq.dataset(&spec), &sessions.dataset(&spec))
        .expect("compatible producers");

    let chain = |policy: HandoffPolicy| {
        Dataflow::new(spec)
            .then(TopPagesJoinJob, Framework::MrHash)
            .then(TopKFunnelJob { k: TOPK }, Framework::MrHash)
            .policy(policy)
            .run_from(&union)
            .expect("top-pages chain")
    };
    let time = |policy: HandoffPolicy| {
        // Warm-up run, then the timed one.
        chain(policy);
        let t0 = Instant::now();
        let outcome = chain(policy);
        (t0.elapsed().as_secs_f64(), outcome)
    };
    let (skip_secs, skip) = time(HandoffPolicy::Auto);
    let (reshuffle_secs, reshuffle) = time(HandoffPolicy::Reshuffle);
    let (materialize_secs, materialize) = time(HandoffPolicy::Materialize);

    assert_eq!(skip.stages[0].handoff, Handoff::InMemory);
    assert_eq!(skip.stages[0].metrics.map_output_bytes, 0);
    assert_eq!(
        skip.sorted_output(),
        reshuffle.sorted_output(),
        "policies must agree bit-for-bit"
    );
    assert_eq!(skip.sorted_output(), materialize.sorted_output());
    assert!(
        skip_secs < materialize_secs,
        "reshuffle skip ({skip_secs:.3}s) must beat the materialized handoff \
         ({materialize_secs:.3}s)"
    );
    let bytes_saved = skip.stages[0].bytes_saved;
    println!(
        "  top-pages handoff  skip {skip_secs:.3}s / reshuffle {reshuffle_secs:.3}s / \
         materialize {materialize_secs:.3}s  ({bytes_saved} shuffle B saved)"
    );

    // Per-stage records/s on the skip-path run.
    let stage_rates: Vec<String> = skip
        .stages
        .iter()
        .map(|s| {
            format!(
                "{{\"stage\": \"{}\", \"handoff\": \"{}\", \"records_in\": {}, \"records_out\": {}}}",
                s.name,
                s.handoff.label(),
                s.records_in,
                s.records_out
            )
        })
        .collect();

    // --- Leg 2: PageRank rounds/s. ---
    let mut flow = Dataflow::new(spec).then(PageRankInitJob, Framework::MrHash);
    for _ in 0..PAGERANK_ROUNDS {
        flow = flow.then(PageRankRoundJob, Framework::MrHash);
    }
    let t0 = Instant::now();
    let pr = flow.run(&data).expect("pagerank chain");
    let pagerank_secs = t0.elapsed().as_secs_f64();
    let rounds_per_sec = PAGERANK_ROUNDS as f64 / pagerank_secs;
    let graph_nodes = pr.output.len();
    println!(
        "  pagerank           {pagerank_secs:>8.3}s  ({PAGERANK_ROUNDS} rounds, \
         {rounds_per_sec:.2} rounds/s, {graph_nodes} nodes)"
    );

    let json = format!(
        "{{\n  \"host_cpus\": {cpus},\n  \"records\": {records},\n  \"topk\": {TOPK},\n  \"skip_secs\": {skip_secs:.4},\n  \"reshuffle_secs\": {reshuffle_secs:.4},\n  \"materialize_secs\": {materialize_secs:.4},\n  \"skip_shuffle_bytes_saved\": {bytes_saved},\n  \"skip_speedup_vs_materialize\": {:.3},\n  \"stages\": [{}],\n  \"pagerank_rounds\": {PAGERANK_ROUNDS},\n  \"pagerank_secs\": {pagerank_secs:.4},\n  \"pagerank_rounds_per_sec\": {rounds_per_sec:.3},\n  \"pagerank_nodes\": {graph_nodes}\n}}\n",
        materialize_secs / skip_secs,
        stage_rates.join(", "),
    );
    std::fs::write(&out, json).expect("write benchmark json");
    println!("wrote {out}");
}
