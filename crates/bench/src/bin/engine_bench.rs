//! Wall-clock benchmark of the engine's execution layer: sequential
//! (`threads = 1`) versus parallel (machine parallelism) on the trigram
//! and sessionization workloads. Results — host-records-per-second and
//! the parallel speedup — land in `BENCH_engine.json` so later changes
//! have a perf trajectory to regress against.
//!
//! ```text
//! cargo run -p opa-bench --release --bin engine_bench [-- OUT.json]
//! ```

use opa_core::cluster::{ClusterSpec, Framework};
use opa_core::job::{JobBuilder, JobInput};
use opa_workloads::clickstream::ClickStreamSpec;
use opa_workloads::documents::DocumentSpec;
use opa_workloads::{SessionizeJob, TrigramCountJob};
use std::time::Instant;

/// Best-of-N timing of one engine run; returns (seconds, outcome digest).
fn time_run(runs: usize, f: impl Fn() -> opa_core::job::JobOutcome) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut digest = 0u64;
    for _ in 0..runs {
        let start = Instant::now();
        let outcome = f();
        let secs = start.elapsed().as_secs_f64();
        best = best.min(secs);
        // Cheap run-to-run sanity digest: outputs must never vary.
        digest = outcome.metrics.output_records ^ outcome.metrics.running_time.0;
    }
    (best, digest)
}

struct Row {
    workload: &'static str,
    records: usize,
    seq_secs: f64,
    par_secs: f64,
    par_threads: usize,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.seq_secs / self.par_secs
    }
}

fn bench_workload(
    name: &'static str,
    input: &JobInput,
    threads: usize,
    run: impl Fn(usize) -> opa_core::job::JobOutcome,
) -> Row {
    let runs = 3;
    let (seq_secs, seq_digest) = time_run(runs, || run(1));
    let (par_secs, par_digest) = time_run(runs, || run(threads));
    assert_eq!(
        seq_digest, par_digest,
        "{name}: parallel outcome diverged from sequential"
    );
    Row {
        workload: name,
        records: input.len(),
        seq_secs,
        par_secs,
        par_threads: threads,
    }
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_engine.json".to_string());
    let cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    // The parallel run uses exactly the host's cores — never more. A
    // 1-CPU host still runs 2 workers to exercise the scheduling
    // machinery, but its threads just time-slice, so the result is
    // flagged `oversubscribed` and the speedup reported as null rather
    // than as a misleading ~1.0x.
    let threads = if cpus >= 2 { cpus } else { 2 };
    let oversubscribed = threads > cpus;
    let mut spec = ClusterSpec::paper_scaled();
    spec.system.chunk_size = 64 * 1024; // many map tasks to schedule

    println!("engine_bench: {threads} threads vs sequential ({cpus} host CPUs)");

    let docs = DocumentSpec::paper_scaled(12 << 20).generate(42);
    let trigram = bench_workload("trigram", &docs, threads, |t| {
        JobBuilder::new(TrigramCountJob {
            threshold: 1000,
            expected_trigrams: 1 << 20,
        })
        .framework(Framework::IncHash)
        .cluster(spec)
        .km_hint(8.0)
        .threads(t)
        .run(&docs)
        .expect("trigram job runs")
    });

    let clicks = ClickStreamSpec::paper_scaled(12 << 20).generate(42);
    let sessionize = bench_workload("sessionization", &clicks, threads, |t| {
        JobBuilder::new(SessionizeJob {
            gap_secs: 300,
            slack_secs: 400,
            state_capacity: 512,
            charge_fixed_footprint: true,
            expected_users: 50_000,
        })
        .framework(Framework::DincHash)
        .cluster(spec)
        .threads(t)
        .run(&clicks)
        .expect("sessionize job runs")
    });

    let rows = [trigram, sessionize];
    let mut json = format!(
        "{{\n  \"host_cpus\": {cpus},\n  \"oversubscribed\": {oversubscribed},\n  \"benchmarks\": [\n"
    );
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 < rows.len() { "," } else { "" };
        // An oversubscribed "speedup" is scheduling noise, not a
        // measurement — report null so downstream tooling can't chart it.
        let speedup = if oversubscribed {
            "null".to_string()
        } else {
            format!("{:.2}", r.speedup())
        };
        json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"records\": {}, \"seq_secs\": {:.4}, \"par_secs\": {:.4}, \"par_threads\": {}, \"seq_records_per_sec\": {:.0}, \"par_records_per_sec\": {:.0}, \"speedup\": {speedup}}}{sep}\n",
            r.workload,
            r.records,
            r.seq_secs,
            r.par_secs,
            r.par_threads,
            r.records as f64 / r.seq_secs,
            r.records as f64 / r.par_secs,
        ));
        println!(
            "  {:<14} {:>8} records  seq {:>7.3}s  par {:>7.3}s  speedup {}",
            r.workload,
            r.records,
            r.seq_secs,
            r.par_secs,
            if oversubscribed {
                "n/a (oversubscribed)".to_string()
            } else {
                format!("{:.2}x", r.speedup())
            }
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out, json).expect("write benchmark json");
    println!("wrote {out}");
}
