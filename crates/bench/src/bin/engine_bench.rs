//! Wall-clock benchmark of the engine's execution layer: sequential
//! (`threads = 1`) versus parallel (`min(host CPUs, 8)` threads) on all
//! five canonical workloads (§2.3/§6 of the paper). Results —
//! host-records-per-second, the parallel speedup, a per-phase busy-time
//! breakdown from the `opa-trace` rollup and (with
//! `--features alloc-stats`) heap allocations per record — land in
//! `BENCH_engine.json` so later changes have a perf trajectory to regress
//! against.
//!
//! ```text
//! cargo run -p opa-bench --release --bin engine_bench [-- OUT.json]
//! cargo run -p opa-bench --release --features alloc-stats --bin engine_bench
//! ```

use opa_common::rng::SplitMix64;
use opa_common::units::KB;
use opa_common::{AdmissionPolicy, CombineScope, ExecConfig};
use opa_core::cluster::{ClusterSpec, Framework};
use opa_core::job::{JobBuilder, JobInput};
use opa_trace::SpanKind;
use opa_workloads::clickstream::{format_click, ClickStreamSpec};
use opa_workloads::documents::DocumentSpec;
use opa_workloads::zipf::Zipf;
use opa_workloads::{ClickCountJob, FrequentUsersJob, PageFreqJob, SessionizeJob, TrigramCountJob};
use std::time::Instant;

/// Counting global allocator: every heap allocation (and reallocation) on
/// any thread bumps two relaxed counters. Zero-cost when the feature is
/// off — the default system allocator is used untouched.
#[cfg(feature = "alloc-stats")]
mod alloc_stats {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);
    static BYTES: AtomicU64 = AtomicU64::new(0);

    struct Counting;

    // SAFETY: defers every operation to `System`; the counters are plain
    // relaxed atomics with no allocation of their own.
    unsafe impl GlobalAlloc for Counting {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            unsafe { System.alloc(layout) }
        }
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }

    #[global_allocator]
    static COUNTING: Counting = Counting;

    /// Current (allocation count, bytes requested) totals.
    pub fn snapshot() -> (u64, u64) {
        (
            ALLOCS.load(Ordering::Relaxed),
            BYTES.load(Ordering::Relaxed),
        )
    }
}

/// Allocation deltas of one closure invocation, when counting is compiled
/// in.
fn count_allocs(f: impl Fn() -> opa_core::job::JobOutcome) -> Option<(u64, u64)> {
    #[cfg(feature = "alloc-stats")]
    {
        let (a0, b0) = alloc_stats::snapshot();
        let _ = f();
        let (a1, b1) = alloc_stats::snapshot();
        return Some((a1 - a0, b1 - b0));
    }
    #[cfg(not(feature = "alloc-stats"))]
    {
        let _ = &f;
        None
    }
}

/// Best-of-N timing of one engine run; returns (seconds, outcome digest).
fn time_run(runs: usize, f: impl Fn() -> opa_core::job::JobOutcome) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut digest = 0u64;
    for _ in 0..runs {
        let start = Instant::now();
        let outcome = f();
        let secs = start.elapsed().as_secs_f64();
        best = best.min(secs);
        // Cheap run-to-run sanity digest: outputs must never vary.
        digest = outcome.metrics.output_records ^ outcome.metrics.running_time.0;
    }
    (best, digest)
}

struct Row {
    workload: &'static str,
    framework: &'static str,
    records: usize,
    seq_secs: f64,
    par_secs: f64,
    par_threads: usize,
    /// Virtual-time busy microseconds per phase, from the trace rollup:
    /// `[map, shuffle, merge, reduce]`. Thread-count invariant, so one
    /// traced run outside the timed loop describes both columns.
    phase_busy: [u64; 4],
    /// (allocations, bytes) of one sequential run, with `alloc-stats`.
    allocs: Option<(u64, u64)>,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.seq_secs / self.par_secs
    }
}

fn bench_workload(
    name: &'static str,
    framework: &'static str,
    input: &JobInput,
    threads: usize,
    run: impl Fn(usize, bool) -> opa_core::job::JobOutcome,
) -> Row {
    let runs = 3;
    let (seq_secs, seq_digest) = time_run(runs, || run(1, false));
    let (par_secs, par_digest) = time_run(runs, || run(threads, false));
    assert_eq!(
        seq_digest, par_digest,
        "{name}: parallel outcome diverged from sequential"
    );
    // The traced run sits outside the timed loop: event recording has its
    // own cost, and the rollup is bit-identical at any thread count anyway.
    let rollup = run(1, true)
        .trace
        .expect("traced run carries a trace log")
        .rollup();
    let phase_busy = [
        rollup.span_time_of(SpanKind::Map),
        rollup.span_time_of(SpanKind::Shuffle),
        rollup.span_time_of(SpanKind::Merge),
        rollup.span_time_of(SpanKind::Reduce),
    ];
    // Allocation accounting also runs outside the timed loop so the atomic
    // bumps never skew the wall-clock numbers.
    let allocs = count_allocs(|| run(1, false));
    Row {
        workload: name,
        framework,
        records: input.len(),
        seq_secs,
        par_secs,
        par_threads: threads,
        phase_busy,
        allocs,
    }
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_engine.json".to_string());
    let cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    // The parallel run uses min(host CPUs, 8) threads — the speedup
    // column should measure scheduling quality, not NUMA topology on big
    // boxes. A 1-CPU host still runs 2 workers to exercise the scheduling
    // machinery (hence the explicit oversubscribed exec below, which
    // lifts the engine's host-core cap), but its threads just time-slice,
    // so the result is flagged `oversubscribed` and the speedup reported
    // as null rather than as a misleading ~1.0x.
    let threads = cpus.clamp(2, 8);
    let oversubscribed = threads > cpus;
    // The null-speedup escape hatch exists solely for the 1-CPU case. On
    // a multi-core host an oversubscribed row means the thread-selection
    // logic above regressed — fail loudly instead of silently publishing
    // `speedup: null` rows that downstream dashboards drop on the floor.
    if oversubscribed && cpus > 1 {
        eprintln!(
            "engine_bench: internal error: host reports {cpus} CPUs but the \
             parallel run would use {threads} oversubscribed threads; a null \
             speedup is only legitimate on a 1-CPU host"
        );
        std::process::exit(1);
    }
    let mut spec = ClusterSpec::paper_scaled();
    spec.system.chunk_size = 64 * 1024; // many map tasks to schedule

    println!("engine_bench: {threads} threads vs sequential ({cpus} host CPUs)");

    let docs = DocumentSpec::paper_scaled(12 << 20).generate(42);
    let clicks = ClickStreamSpec::paper_scaled(12 << 20).generate(42);

    // All five workloads of §2.3, spread across the frameworks so the
    // sort-merge, MR-hash, INC-hash and DINC-hash data paths all get a
    // trajectory: trigram is the headline large-key-space run.
    let rows = [
        bench_workload("trigram", "inc_hash", &docs, threads, |t, tr| {
            JobBuilder::new(TrigramCountJob {
                threshold: 1000,
                expected_trigrams: 1 << 20,
            })
            .framework(Framework::IncHash)
            .cluster(spec)
            .km_hint(8.0)
            .exec(ExecConfig::oversubscribed(t))
            .trace(tr)
            .run(&docs)
            .expect("trigram job runs")
        }),
        bench_workload("sessionization", "dinc_hash", &clicks, threads, |t, tr| {
            JobBuilder::new(SessionizeJob {
                gap_secs: 300,
                slack_secs: 400,
                state_capacity: 512,
                charge_fixed_footprint: true,
                expected_users: 50_000,
            })
            .framework(Framework::DincHash)
            .cluster(spec)
            .exec(ExecConfig::oversubscribed(t))
            .trace(tr)
            .run(&clicks)
            .expect("sessionize job runs")
        }),
        bench_workload("click_count", "inc_hash", &clicks, threads, |t, tr| {
            JobBuilder::new(ClickCountJob {
                expected_users: 50_000,
            })
            .framework(Framework::IncHash)
            .cluster(spec)
            .exec(ExecConfig::oversubscribed(t))
            .trace(tr)
            .run(&clicks)
            .expect("click count job runs")
        }),
        bench_workload("frequent_users", "dinc_hash", &clicks, threads, |t, tr| {
            JobBuilder::new(FrequentUsersJob {
                threshold: 50,
                expected_users: 50_000,
            })
            .framework(Framework::DincHash)
            .cluster(spec)
            .exec(ExecConfig::oversubscribed(t))
            .trace(tr)
            .run(&clicks)
            .expect("frequent users job runs")
        }),
        bench_workload("page_freq", "mr_hash", &clicks, threads, |t, tr| {
            JobBuilder::new(PageFreqJob {
                expected_pages: 100_000,
            })
            .framework(Framework::MrHash)
            .cluster(spec)
            .exec(ExecConfig::oversubscribed(t))
            .trace(tr)
            .run(&clicks)
            .expect("page frequency job runs")
        }),
    ];

    // Frequency-gated admission sweep: Zipf skew × {off, lfu} at fixed
    // reduce memory (4 KB against ~450 distinct users, so the table
    // always overflows). γ, spill attribution and `U_4` are virtual-time
    // quantities of the deterministic simulation — identical on every
    // host — so the sweep doubles as an acceptance check: at skew ≥ 1.0
    // the gate must raise measured coverage and cut reduce-spill bytes.
    let adm_rows = admission_sweep();

    // In-node combining sweep: Zipf skew × {off, task, node} on i.i.d.
    // draws, where the model's expected-distinct math is exact. Doubles
    // as the tentpole acceptance check: node scope must ship strictly
    // fewer shuffle bytes than task scope at skew ≥ 1.0, and the
    // combiner-ratio model must track the measurement within 10% for
    // every scope.
    let cmb_rows = combine_sweep();

    let mut json = format!(
        "{{\n  \"host_cpus\": {cpus},\n  \"oversubscribed\": {oversubscribed},\n  \"benchmarks\": [\n"
    );
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 < rows.len() { "," } else { "" };
        // An oversubscribed "speedup" is scheduling noise, not a
        // measurement — report null so downstream tooling can't chart it.
        let speedup = if oversubscribed {
            "null".to_string()
        } else {
            format!("{:.2}", r.speedup())
        };
        let (apr, bpr) = match r.allocs {
            Some((a, b)) => (
                format!("{:.2}", a as f64 / r.records as f64),
                format!("{:.1}", b as f64 / r.records as f64),
            ),
            None => ("null".to_string(), "null".to_string()),
        };
        let [map_us, shuffle_us, merge_us, reduce_us] = r.phase_busy;
        json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"framework\": \"{}\", \"records\": {}, \"seq_secs\": {:.4}, \"par_secs\": {:.4}, \"par_threads\": {}, \"seq_records_per_sec\": {:.0}, \"par_records_per_sec\": {:.0}, \"speedup\": {speedup}, \"phase_busy_usecs\": {{\"map\": {map_us}, \"shuffle\": {shuffle_us}, \"merge\": {merge_us}, \"reduce\": {reduce_us}}}, \"allocs_per_record\": {apr}, \"alloc_bytes_per_record\": {bpr}}}{sep}\n",
            r.workload,
            r.framework,
            r.records,
            r.seq_secs,
            r.par_secs,
            r.par_threads,
            r.records as f64 / r.seq_secs,
            r.records as f64 / r.par_secs,
        ));
        let alloc_note = match r.allocs {
            Some((a, _)) => format!("  allocs/rec {:.2}", a as f64 / r.records as f64),
            None => String::new(),
        };
        println!(
            "  {:<14} {:>8} records  seq {:>7.3}s  par {:>7.3}s  speedup {}{alloc_note}",
            r.workload,
            r.records,
            r.seq_secs,
            r.par_secs,
            if oversubscribed {
                "n/a (oversubscribed)".to_string()
            } else {
                format!("{:.2}x", r.speedup())
            }
        );
    }
    json.push_str("  ],\n  \"admission_sweep\": [\n");
    for (i, r) in adm_rows.iter().enumerate() {
        let sep = if i + 1 < adm_rows.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"zipf\": {:.1}, \"admission\": \"{}\", \"gamma_measured\": {:.4}, \"spill_bytes_admitted\": {}, \"spill_bytes_rejected\": {}, \"reduce_spill_bytes\": {}, \"resident_keys\": {}, \"resident_frequency\": {}}}{sep}\n",
            r.zipf,
            r.policy,
            r.gamma,
            r.spill_admitted,
            r.spill_rejected,
            r.reduce_spill_bytes,
            r.resident_keys,
            r.resident_frequency,
        ));
        println!(
            "  admission zipf {:.1} {:<4} γ {:.4}  U4 {:>8}  split {:>7}/{:<7}  resident {}",
            r.zipf,
            r.policy,
            r.gamma,
            r.reduce_spill_bytes,
            r.spill_admitted,
            r.spill_rejected,
            r.resident_keys
        );
    }
    json.push_str("  ],\n  \"combine_sweep\": [\n");
    for (i, r) in cmb_rows.iter().enumerate() {
        let sep = if i + 1 < cmb_rows.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"zipf\": {:.1}, \"combine\": \"{}\", \"shuffle_bytes\": {}, \"map_output_bytes\": {}, \"combine_ratio\": {:.4}, \"node_flushes\": {}, \"merged_rows\": {}, \"model_shuffle_bytes\": {:.0}, \"model_rel_err\": {:.4}}}{sep}\n",
            r.zipf,
            r.scope,
            r.shuffle_bytes,
            r.map_output_bytes,
            r.ratio,
            r.flushes,
            r.merged_rows,
            r.model_bytes,
            r.model_rel_err,
        ));
        println!(
            "  combine zipf {:.1} {:<4} shuffle {:>8}  ratio {:.4}  model {:>8.0} (err {:>5.2}%)",
            r.zipf,
            r.scope,
            r.shuffle_bytes,
            r.ratio,
            r.model_bytes,
            r.model_rel_err * 100.0
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out, json).expect("write benchmark json");
    println!("wrote {out}");
}

struct CombineRow {
    zipf: f64,
    scope: &'static str,
    shuffle_bytes: u64,
    map_output_bytes: u64,
    ratio: f64,
    flushes: u64,
    merged_rows: u64,
    model_bytes: f64,
    model_rel_err: f64,
}

/// Runs the Zipf × combine-scope grid on MR-hash over *i.i.d.* Zipf
/// clicks (one pair per record, so the model's draw count is exact) and
/// asserts the tentpole acceptance: node < task shuffle bytes at skew
/// ≥ 1.0, and combiner-term drift ≤ 10% for all three scopes.
fn combine_sweep() -> Vec<CombineRow> {
    const USERS: usize = 1500;
    const RECORDS: usize = 24_000;
    let mut cluster = ClusterSpec::tiny();
    // A roomy staging budget: each node flushes once, the regime where
    // the model's ν = 1 flush-count prediction is exact.
    cluster.node_combine_buffer = 1 << 20;
    let mut rows = Vec::new();
    for zipf in [0.8f64, 1.0, 1.2] {
        // i.i.d. Zipf clicks — deliberately NOT the sessionized generator,
        // whose per-user click *runs* violate the model's independence
        // assumption.
        let mut rng = SplitMix64::new(0xC0B1 + (zipf * 10.0) as u64);
        let sampler = Zipf::new(USERS, zipf);
        let input = JobInput::from_records(
            (0..RECORDS)
                .map(|i| format_click(i as u64, sampler.sample(&mut rng) as u64, 0))
                .collect(),
        );
        let mut booked = [0u64; 3];
        for (slot, scope) in [CombineScope::Off, CombineScope::Task, CombineScope::Node]
            .into_iter()
            .enumerate()
        {
            let outcome = JobBuilder::new(ClickCountJob {
                expected_users: USERS as u64,
            })
            .framework(Framework::MrHash)
            .cluster(cluster)
            .combine(scope)
            .trace(true)
            .run(&input)
            .expect("combine sweep job runs");
            let rollup = outcome
                .trace
                .as_ref()
                .expect("traced run carries a trace log")
                .rollup();
            let model = opa_model::CombineModel {
                pairs: RECORDS as f64,
                pair_bytes: 24.0, // 8-byte user key + 8-byte count + record overhead
                keys: USERS as u64,
                zipf,
                maps: rollup.map_tasks as f64,
                nodes: cluster.hardware.nodes as f64,
                stage_budget: cluster.node_combine_buffer as f64,
            };
            let report = opa_trace::drift::check_with_combine(
                cluster.system,
                cluster.hardware,
                &rollup,
                Some((scope, model)),
            )
            .expect("drift check runs");
            let term = report.combine.expect("combiner term present");
            let nc = outcome.metrics.node_combine;
            booked[slot] = outcome.metrics.shuffle_bytes;
            rows.push(CombineRow {
                zipf,
                scope: scope.label(),
                shuffle_bytes: outcome.metrics.shuffle_bytes,
                map_output_bytes: outcome.metrics.map_output_bytes,
                ratio: outcome.metrics.shuffle_bytes as f64
                    / (RECORDS as f64 * model.pair_bytes),
                flushes: nc.map_or(0, |s| s.flushes),
                merged_rows: nc.map_or(0, |s| s.merged_rows),
                model_bytes: model.shuffle_bytes(scope),
                model_rel_err: term.rel_err(),
            });
            assert!(
                term.rel_err() <= 0.10,
                "zipf {zipf} {}: combiner-term drift {:.2}% exceeds 10% \
                 (predicted {:.0}, measured {:.0} per node)",
                scope.label(),
                term.rel_err() * 100.0,
                term.predicted,
                term.measured
            );
        }
        let [off, task, node] = booked;
        assert!(
            task < off,
            "zipf {zipf}: task combining did not shrink the shuffle ({task} vs {off})"
        );
        if zipf >= 1.0 {
            assert!(
                node < task,
                "zipf {zipf}: node scope did not beat task scope ({node} vs {task})"
            );
        }
    }
    rows
}

struct AdmRow {
    zipf: f64,
    policy: &'static str,
    gamma: f64,
    spill_admitted: u64,
    spill_rejected: u64,
    reduce_spill_bytes: u64,
    resident_keys: u64,
    resident_frequency: u64,
}

/// Runs the Zipf × policy grid on INC-hash at fixed reduce memory and
/// asserts the tentpole acceptance at skew ≥ 1.0: measured γ strictly
/// beats first-come's and `U_4` strictly drops.
fn admission_sweep() -> Vec<AdmRow> {
    let mut cluster = ClusterSpec::tiny();
    cluster.hardware.reduce_buffer = 4 * KB;
    let mut rows = Vec::new();
    for zipf in [0.8f64, 1.0, 1.2] {
        let mut spec = ClickStreamSpec::counting_scaled(6 << 20);
        spec.zipf_exponent = zipf;
        // A wide user pool against 4 KB of state: the resident set can
        // hold only a few percent of the keys, so admission quality —
        // not raw capacity — decides γ.
        spec.users = 4000;
        let input = spec.generate(42);
        let mut gamma = [0.0f64; 2];
        let mut u4 = [0u64; 2];
        for (slot, policy) in [AdmissionPolicy::Off, AdmissionPolicy::Lfu]
            .into_iter()
            .enumerate()
        {
            let outcome = JobBuilder::new(ClickCountJob {
                expected_users: 1000,
            })
            .framework(Framework::IncHash)
            .cluster(cluster)
            .admission(policy)
            .run(&input)
            .expect("admission sweep job runs");
            let s = outcome
                .metrics
                .admission
                .expect("incremental run reports admission stats");
            gamma[slot] = s.gamma_measured();
            u4[slot] = outcome.metrics.reduce_spill_bytes;
            rows.push(AdmRow {
                zipf,
                policy: policy.label(),
                gamma: s.gamma_measured(),
                spill_admitted: s.spill.admitted_evict,
                spill_rejected: s.spill.rejected_arrival,
                reduce_spill_bytes: outcome.metrics.reduce_spill_bytes,
                resident_keys: s.resident_keys,
                resident_frequency: s.resident_frequency,
            });
        }
        if zipf >= 1.0 {
            assert!(
                gamma[1] > gamma[0],
                "zipf {zipf}: γ_lfu {:.4} does not beat first-come {:.4}",
                gamma[1],
                gamma[0]
            );
            assert!(
                u4[1] < u4[0],
                "zipf {zipf}: U4 did not drop ({} lfu vs {} off)",
                u4[1],
                u4[0]
            );
        }
    }
    rows
}
