//! Wall-clock benchmark of the stream runtime: sustained ingest
//! throughput versus the one-shot batch run, a {1,2,4,8}-thread ingest
//! sweep, the cost of periodic checkpoints, and live query latency at
//! the pause points. Results land in `BENCH_stream.json` so later
//! changes have a perf trajectory to regress against.
//!
//! ```text
//! cargo run -p opa-bench --release --bin stream_bench [-- OUT.json]
//! ```

use opa_common::units::KB;
use opa_common::{AdmissionPolicy, ExecConfig, Key};
use opa_core::cluster::{ClusterSpec, Framework};
use opa_core::job::JobBuilder;
use opa_stream::StreamJobBuilder;
use opa_workloads::clickstream::ClickStreamSpec;
use opa_workloads::ClickCountJob;
use std::time::Instant;

const BATCHES: usize = 16;
const CKPT_EVERY: usize = 4;
const RUNS: usize = 3;

/// Best-of-N wall time of `f`, plus a digest of the last outcome so
/// run-to-run divergence is caught instead of averaged away.
fn best_of<T>(f: impl Fn() -> (T, u64)) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut digest = 0u64;
    for _ in 0..RUNS {
        let start = Instant::now();
        let (_, d) = f();
        best = best.min(start.elapsed().as_secs_f64());
        digest = d;
    }
    (best, digest)
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_stream.json".to_string());
    let cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    // Same policy as engine_bench: min(host CPUs, 8), floor 2 so the
    // parallel machinery always runs; the explicit oversubscribed exec
    // below lifts the engine's host-core cap on a 1-CPU host.
    let threads = cpus.clamp(2, 8);
    let dir = std::env::temp_dir().join("opa-stream-bench");
    std::fs::create_dir_all(&dir).expect("checkpoint dir");

    let job = || ClickCountJob {
        expected_users: 50_000,
    };
    let data = ClickStreamSpec::counting_scaled(48 << 20).generate(42);
    let records = data.len();
    println!("stream_bench: {records} records, {BATCHES} batches, {threads} threads");

    let mut spec = ClusterSpec::paper_scaled();
    spec.system.chunk_size = 64 * 1024; // many map tasks per batch

    let stream_builder = || {
        StreamJobBuilder::new(job())
            .framework(Framework::IncHash)
            .cluster(spec)
            .exec(ExecConfig::oversubscribed(threads))
            .batches(BATCHES)
    };

    // Baseline: the one-shot batch run of the same job.
    let (batch_secs, batch_digest) = best_of(|| {
        let o = JobBuilder::new(job())
            .framework(Framework::IncHash)
            .cluster(spec)
            .exec(ExecConfig::oversubscribed(threads))
            .run(&data)
            .expect("batch run");
        (0, o.metrics.output_records ^ o.metrics.running_time.0)
    });

    // Streamed ingest, no checkpoints: the runtime's intrinsic overhead.
    let (stream_secs, stream_digest) = best_of(|| {
        let o = stream_builder()
            .run_stream(&data, |_| {})
            .expect("stream run");
        (
            0,
            o.job.metrics.output_records ^ o.job.metrics.running_time.0,
        )
    });
    assert_eq!(
        batch_digest, stream_digest,
        "streamed outcome diverged from the batch run"
    );

    // Ingest throughput across the thread matrix. `oversubscribed` lifts
    // the engine's host-core cap so every row runs its nominal thread
    // count even on small hosts; rows where that exceeds the host's CPUs
    // are flagged — their threads only time-slice, so the numbers chart
    // scheduling overhead, not scaling.
    let mut sweep_rows = Vec::new();
    for t in [1usize, 2, 4, 8] {
        let (secs, digest) = best_of(|| {
            let o = stream_builder()
                .exec(ExecConfig::oversubscribed(t))
                .run_stream(&data, |_| {})
                .expect("sweep run");
            (
                0,
                o.job.metrics.output_records ^ o.job.metrics.running_time.0,
            )
        });
        assert_eq!(batch_digest, digest, "sweep at {t} threads diverged");
        let rps = records as f64 / secs;
        let over = t > cpus;
        println!(
            "  sweep {t:>2} threads    {secs:>8.3}s  ({rps:.0} records/s{})",
            if over { ", oversubscribed" } else { "" }
        );
        sweep_rows.push(format!(
            "    {{\"threads\": {t}, \"oversubscribed\": {over}, \"secs\": {secs:.4}, \"records_per_sec\": {rps:.0}}}"
        ));
    }

    // Streamed ingest with periodic checkpoints: the durability tax.
    let n_ckpts = (BATCHES - 1) / CKPT_EVERY;
    let (ckpt_secs, ckpt_digest) = best_of(|| {
        let o = stream_builder()
            .checkpoint_every(CKPT_EVERY)
            .checkpoint_dir(&dir)
            .run_stream(&data, |_| {})
            .expect("checkpointing stream run");
        assert_eq!(o.checkpoints_written, n_ckpts);
        (
            0,
            o.job.metrics.output_records ^ o.job.metrics.running_time.0,
        )
    });
    assert_eq!(
        stream_digest, ckpt_digest,
        "checkpointing perturbed the streamed outcome"
    );
    let ckpt_bytes = std::fs::read_dir(&dir)
        .expect("read checkpoint dir")
        .filter_map(|e| e.ok()?.metadata().ok())
        .map(|m| m.len())
        .max()
        .unwrap_or(0);

    // Live query latency: point lookups and top-k at every pause point.
    let mut lookup_ns = Vec::new();
    let mut progress_ns = Vec::new();
    stream_builder()
        .run_stream(&data, |ctl| {
            for probe in 0..64u64 {
                let key = Key::from_u64(probe);
                let start = Instant::now();
                std::hint::black_box(ctl.lookup(&key));
                lookup_ns.push(start.elapsed().as_nanos() as f64);
            }
            let start = Instant::now();
            std::hint::black_box(ctl.progress());
            progress_ns.push(start.elapsed().as_nanos() as f64);
        })
        .expect("query-latency run");
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;

    // Admission composes with the stream runtime: with the LFU gate on,
    // the batch run, the streamed run, and a run resumed from a mid-stream
    // checkpoint must agree bit-for-bit on output and admission counters.
    // A tiny reduce buffer against a wide key pool forces rejections so
    // the leg exercises the gate rather than vacuously passing.
    let mut adm_spec = ClusterSpec::tiny();
    adm_spec.hardware.reduce_buffer = 4 * KB;
    let adm_data = ClickStreamSpec::counting_scaled(6 << 20).generate(42);
    let adm_job = || ClickCountJob {
        expected_users: 1000,
    };
    let adm_stream = || {
        StreamJobBuilder::new(adm_job())
            .framework(Framework::IncHash)
            .cluster(adm_spec)
            .exec(ExecConfig::oversubscribed(threads))
            .admission(AdmissionPolicy::Lfu)
            .batches(BATCHES)
    };
    let adm_batch = JobBuilder::new(adm_job())
        .framework(Framework::IncHash)
        .cluster(adm_spec)
        .exec(ExecConfig::oversubscribed(threads))
        .admission(AdmissionPolicy::Lfu)
        .run(&adm_data)
        .expect("admission batch run");
    let adm_stats = adm_batch
        .metrics
        .admission
        .expect("incremental run reports admission stats");
    assert!(
        adm_stats.rejected > 0,
        "admission leg is vacuous: the gate never fired"
    );
    let ckpt_path = dir.join("admission-resume.opac");
    let adm_streamed = adm_stream()
        .run_stream(&adm_data, |ctl| {
            if ctl.batch() == BATCHES / 2 {
                ctl.checkpoint(&ckpt_path);
            }
        })
        .expect("admission streamed run");
    assert_eq!(
        adm_streamed.job.sorted_output(),
        adm_batch.sorted_output(),
        "admission-on streamed output diverged from the batch run"
    );
    assert_eq!(
        adm_streamed.job.metrics.admission, adm_batch.metrics.admission,
        "streaming perturbed the admission counters"
    );
    let adm_resumed = adm_stream()
        .resume_stream(&adm_data, &ckpt_path, |_| {})
        .expect("admission resumed run");
    assert_eq!(
        adm_resumed.job.sorted_output(),
        adm_batch.sorted_output(),
        "admission-on resumed output diverged from the batch run"
    );
    assert_eq!(
        adm_resumed.job.metrics.admission, adm_streamed.job.metrics.admission,
        "checkpoint/resume perturbed the admission counters"
    );
    let adm_gamma = adm_stats.gamma_measured();
    println!(
        "  admission (lfu)    γ={adm_gamma:.4}  {} offered / {} rejected — batch ≡ stream ≡ resume",
        adm_stats.offered, adm_stats.rejected
    );

    let ingest_rps = records as f64 / stream_secs;
    let stream_overhead_pct = (stream_secs / batch_secs - 1.0) * 100.0;
    let ckpt_overhead_pct = (ckpt_secs / stream_secs - 1.0) * 100.0;
    let per_ckpt_ms = (ckpt_secs - stream_secs).max(0.0) * 1e3 / n_ckpts as f64;

    println!("  batch run          {batch_secs:>8.3}s");
    println!(
        "  streamed ({BATCHES:>2} b)    {stream_secs:>8.3}s  ({ingest_rps:.0} records/s, {stream_overhead_pct:+.1}% vs batch)"
    );
    println!(
        "  + {n_ckpts} checkpoints     {ckpt_secs:>8.3}s  ({ckpt_overhead_pct:+.1}%, ~{per_ckpt_ms:.1} ms each, {ckpt_bytes} B file)"
    );
    println!(
        "  query latency      lookup {:.0} ns, progress {:.0} ns",
        mean(&lookup_ns),
        mean(&progress_ns)
    );

    let sweep_json = sweep_rows.join(",\n");
    let json = format!(
        "{{\n  \"host_cpus\": {cpus},\n  \"threads\": {threads},\n  \"records\": {records},\n  \"batches\": {BATCHES},\n  \"batch_secs\": {batch_secs:.4},\n  \"stream_secs\": {stream_secs:.4},\n  \"stream_records_per_sec\": {ingest_rps:.0},\n  \"stream_overhead_pct\": {stream_overhead_pct:.2},\n  \"threads_sweep\": [\n{sweep_json}\n  ],\n  \"checkpoints\": {n_ckpts},\n  \"checkpointed_secs\": {ckpt_secs:.4},\n  \"checkpoint_overhead_pct\": {ckpt_overhead_pct:.2},\n  \"checkpoint_cost_ms\": {per_ckpt_ms:.2},\n  \"checkpoint_file_bytes\": {ckpt_bytes},\n  \"lookup_ns\": {:.0},\n  \"progress_ns\": {:.0},\n  \"admission_gamma\": {adm_gamma:.4},\n  \"admission_offered\": {},\n  \"admission_rejected\": {}\n}}\n",
        mean(&lookup_ns),
        mean(&progress_ns),
        adm_stats.offered,
        adm_stats.rejected,
    );
    std::fs::write(&out, json).expect("write benchmark json");
    println!("wrote {out}");
    std::fs::remove_dir_all(&dir).ok();
}
