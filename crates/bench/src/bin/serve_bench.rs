//! Wall-clock benchmark of the `opa-serve` job server: sustained job
//! throughput through the admission queue, mean admission wait, live
//! query latency while concurrent jobs occupy the scheduler, and the
//! cost of a dead-letter-queue replay relative to the poisoned run it
//! repairs. Results land in `BENCH_serve.json` so later changes have a
//! perf trajectory to regress against.
//!
//! ```text
//! cargo run -p opa-bench --release --bin serve_bench [-- OUT.json]
//! ```

use opa_common::{ExecConfig, FaultConfig, Key};
use opa_core::cluster::{ClusterSpec, Framework};
use opa_serve::{JobSpec, ServeConfig, ServeQuery, Server};
use opa_workloads::clickstream::ClickStreamSpec;
use opa_workloads::ClickCountJob;
use std::sync::Arc;
use std::time::Instant;

const TENANTS: u32 = 4;
const JOBS_PER_TENANT: u32 = 3;
const BATCHES: usize = 6;
const QUERY_PROBES: usize = 64;

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    let cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    // Each job's engine is sequential here — serve_bench charts the
    // *server's* scheduling overhead (admission, wave barriers, query
    // plumbing), and per-job thread scaling is engine_bench's column.
    let data = Arc::new(ClickStreamSpec::counting_scaled(4 << 20).generate(42));
    let records = data.len();
    let total_jobs = TENANTS * JOBS_PER_TENANT;
    println!(
        "serve_bench: {total_jobs} jobs ({TENANTS} tenants), {records} records each, \
         {BATCHES} batches ({cpus} host CPUs)"
    );

    let job = || ClickCountJob {
        expected_users: 50_000,
    };
    let spec = JobSpec {
        framework: Framework::IncHash,
        cluster: ClusterSpec::tiny(),
        batches: BATCHES,
        exec: ExecConfig::sequential(),
        ..JobSpec::default()
    };
    // One slot per tenant and a deep shared queue: every tenant's 2nd
    // and 3rd submissions must wait, so the throughput leg also produces
    // a non-vacuous admission-wait figure.
    let cfg = ServeConfig {
        slots_per_tenant: 1,
        queue_per_tenant: JOBS_PER_TENANT as usize,
        queue_total: total_jobs as usize,
    };

    // --- Leg 1: job throughput through the admission queue. ---
    let start = Instant::now();
    let mut server = Server::new(cfg);
    for j in 0..JOBS_PER_TENANT {
        for tenant in 0..TENANTS {
            let receipt = server
                .submit(tenant, job(), Arc::clone(&data), &spec)
                .expect("submission accepted");
            assert!(
                !matches!(
                    receipt.outcome,
                    opa_serve::AdmissionOutcome::RejectedQuota
                        | opa_serve::AdmissionOutcome::RejectedQueue
                ),
                "tenant {tenant} job {j} rejected — quota sizing is wrong"
            );
        }
    }
    server.run_to_completion().expect("server drains");
    let drain_secs = start.elapsed().as_secs_f64();
    let jobs_per_sec = f64::from(total_jobs) / drain_secs;

    let books = server.books();
    let (mut started, mut wait_rounds) = (0u64, 0u64);
    for (_, book) in &books {
        assert!(book.reconciles(), "tenant book does not reconcile");
        started += book.started;
        wait_rounds += book.wait_rounds;
    }
    assert_eq!(started, u64::from(total_jobs));
    let mean_wait_rounds = wait_rounds as f64 / started as f64;
    println!(
        "  throughput         {drain_secs:>8.3}s  ({jobs_per_sec:.2} jobs/s, \
         mean admission wait {mean_wait_rounds:.2} rounds)"
    );

    // --- Leg 2: live query latency under concurrent load. ---
    // Three tenants' jobs run (parked at wave boundaries) while we probe
    // one of them — the latency includes the server's channel round-trip
    // to the job thread, which is the serving path a client pays.
    let mut qserver = Server::new(ServeConfig::default());
    for tenant in 0..3 {
        qserver
            .submit(tenant, job(), Arc::clone(&data), &spec)
            .expect("query-leg submission");
    }
    let mut lookup_ns = Vec::new();
    let mut batch_ns = Vec::new();
    let mut progress_ns = Vec::new();
    for _ in 0..2 {
        for probe in 0..QUERY_PROBES as u64 {
            let q = ServeQuery::Lookup(Key::from_u64(probe));
            let t0 = Instant::now();
            std::hint::black_box(qserver.query(0, &q).expect("lookup"));
            lookup_ns.push(t0.elapsed().as_nanos() as f64);
        }
        // Batched leg: the same probes in ONE channel round-trip. The
        // answer must agree with the per-key lookups element-wise (same
        // parked snapshot — the server steps only between legs).
        let keys: Vec<Key> = (0..QUERY_PROBES as u64).map(Key::from_u64).collect();
        let t0 = Instant::now();
        let batched = qserver
            .query(0, &ServeQuery::LookupBatch(keys.clone()))
            .expect("batch lookup");
        batch_ns.push(t0.elapsed().as_nanos() as f64);
        let opa_serve::ServeAnswer::Values(vals) = &batched else {
            panic!("LookupBatch answered with a non-Values variant");
        };
        assert_eq!(vals.len(), QUERY_PROBES, "batch answer count mismatch");
        for (key, val) in keys.iter().zip(vals) {
            let single = qserver
                .query(0, &ServeQuery::Lookup(key.clone()))
                .expect("recheck lookup");
            let opa_serve::ServeAnswer::Value(v) = single else {
                panic!("Lookup answered with a non-Value variant");
            };
            assert_eq!(&v, val, "batch and single lookup disagree");
        }
        let t0 = Instant::now();
        std::hint::black_box(qserver.query(0, &ServeQuery::Progress).expect("progress"));
        progress_ns.push(t0.elapsed().as_nanos() as f64);
        qserver.step().expect("wave step");
    }
    qserver.run_to_completion().expect("query-leg drains");
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let batch_per_key_ns = mean(&batch_ns) / QUERY_PROBES as f64;
    println!(
        "  query latency      lookup {:.0} ns, batched {:.0} ns/key ({} keys/trip), progress {:.0} ns (3 concurrent jobs)",
        mean(&lookup_ns),
        batch_per_key_ns,
        QUERY_PROBES,
        mean(&progress_ns)
    );

    // --- Leg 3: DLQ replay cost. ---
    // A poisoned run quarantines records; the replay re-runs the job with
    // the poison cleared. Replay cost ≈ one solo run — charted here so a
    // regression in the stored-runner path shows up.
    let mut pspec = spec.clone();
    pspec.faults = FaultConfig::poison(7, 0.001);
    let mut pserver = Server::new(ServeConfig::default());
    pserver
        .submit(0, job(), Arc::clone(&data), &pspec)
        .expect("poisoned submission");
    let t0 = Instant::now();
    pserver.run_to_completion().expect("poisoned run drains");
    let poisoned_secs = t0.elapsed().as_secs_f64();
    let dlq_entries = pserver.dlq(0).expect("dlq").len();
    assert!(
        dlq_entries > 0,
        "poison leg is vacuous: nothing quarantined"
    );
    let t0 = Instant::now();
    let replayed = pserver.replay_dlq(0).expect("replay");
    let replay_secs = t0.elapsed().as_secs_f64();
    assert!(
        replayed.job.dlq.is_empty(),
        "replay left DLQ entries behind"
    );
    println!(
        "  dlq replay         {replay_secs:>8.3}s  ({dlq_entries} quarantined, \
         poisoned run {poisoned_secs:.3}s)"
    );

    let json = format!(
        "{{\n  \"host_cpus\": {cpus},\n  \"jobs\": {total_jobs},\n  \"tenants\": {TENANTS},\n  \"records_per_job\": {records},\n  \"batches\": {BATCHES},\n  \"drain_secs\": {drain_secs:.4},\n  \"jobs_per_sec\": {jobs_per_sec:.3},\n  \"mean_admission_wait_rounds\": {mean_wait_rounds:.3},\n  \"lookup_ns\": {:.0},\n  \"batch_lookup_keys\": {QUERY_PROBES},\n  \"batch_lookup_trip_ns\": {:.0},\n  \"batch_lookup_ns_per_key\": {batch_per_key_ns:.0},\n  \"progress_ns\": {:.0},\n  \"dlq_entries\": {dlq_entries},\n  \"poisoned_run_secs\": {poisoned_secs:.4},\n  \"dlq_replay_secs\": {replay_secs:.4}\n}}\n",
        mean(&lookup_ns),
        mean(&batch_ns),
        mean(&progress_ns),
    );
    std::fs::write(&out, json).expect("write benchmark json");
    println!("wrote {out}");
}
