//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro [--quick] [--scale N] [--outdir DIR] [--seed S] <experiment>…
//!
//! experiments:
//!   table1 table3 table4
//!   fig2 fig4ab fig4c fig4f fig7a fig7b fig7c fig7d fig7e fig7f
//!   modelcheck
//!   all          (everything above)
//! ```

use opa_bench::experiments;
use opa_bench::ExpConfig;
use std::process::ExitCode;

const ALL: [&str; 14] = [
    "table1", "fig2", "fig4ab", "fig4c", "fig4f", "table3", "fig7a", "fig7b", "fig7c", "fig7d",
    "fig7e", "table4", "fig7f", "ablation",
];

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro [--quick] [--scale N] [--outdir DIR] [--seed S] <experiment>…\n\
         experiments: {} modelcheck all",
        ALL.join(" ")
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut cfg = ExpConfig::default();
    let mut wanted: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => cfg.quick = true,
            "--scale" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => cfg.scale = v,
                _ => return usage(),
            },
            "--outdir" => match args.next() {
                Some(v) => cfg.outdir = v.into(),
                None => return usage(),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => cfg.seed = v,
                None => return usage(),
            },
            "-h" | "--help" => {
                let _ = usage();
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => return usage(),
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() {
        return usage();
    }
    if wanted.iter().any(|w| w == "all") {
        wanted = ALL.iter().map(|s| s.to_string()).collect();
        wanted.push("modelcheck".into());
    }

    let started = std::time::Instant::now();
    for w in &wanted {
        match w.as_str() {
            "table1" => experiments::table1::run(&cfg),
            "table3" => experiments::table3::run(&cfg),
            "table4" => experiments::table4::run(&cfg),
            "fig2" => experiments::fig2::run(&cfg),
            "fig4ab" | "fig4a" | "fig4b" => experiments::fig4::run_grid(&cfg),
            "fig4c" | "fig4de" => experiments::fig4::run_progress(&cfg),
            "fig4f" => experiments::fig4::run_pipelining(&cfg),
            "fig7a" => experiments::fig7::run_a(&cfg),
            "fig7b" => experiments::fig7::run_b(&cfg),
            "fig7c" => experiments::fig7::run_c(&cfg),
            "fig7d" => experiments::fig7::run_d(&cfg),
            "fig7e" => experiments::fig7::run_e(&cfg),
            "fig7f" => experiments::fig7::run_f(&cfg),
            "ablation" => experiments::ablation::run(&cfg),
            "modelcheck" => experiments::modelcheck::run(&cfg),
            other => {
                eprintln!("unknown experiment: {other}");
                return usage();
            }
        }
    }
    eprintln!("repro finished in {:.1?}", started.elapsed());
    ExitCode::SUCCESS
}
