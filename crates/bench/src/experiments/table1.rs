//! Table 1 — workloads in click analysis under stock Hadoop (sort-merge,
//! default settings): input / map output / reduce spill / reduce output
//! sizes and running time for sessionization, page frequency, and clicks
//! per user.

use super::*;
use crate::report::Table;
use crate::ExpConfig;
use opa_workloads::{ClickCountJob, PageFreqJob};

/// Paper reference rows (GB / GB / GB / GB / seconds).
const PAPER: [(&str, f64, f64, f64, f64, f64); 3] = [
    ("sessionization", 256.0, 269.0, 370.0, 256.0, 4860.0),
    ("page frequency", 508.0, 1.8, 0.2, 0.02, 2400.0),
    ("clicks per user", 256.0, 2.6, 1.4, 0.6, 1440.0),
];

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) {
    println!("== Table 1: click-analysis workloads under stock Hadoop (sort-merge) ==");
    println!(
        "   (measured values reported at paper scale: run bytes × {})\n",
        cfg.scale
    );

    let mut table = Table::new([
        "metric",
        "sess (paper)",
        "sess (OPA)",
        "pagefreq (paper)",
        "pagefreq (OPA)",
        "clicks (paper)",
        "clicks (OPA)",
    ]);

    // Sessionization — 256 GB, stock settings.
    let (input, info) = session_input(cfg, WORLDCUP_TABLE1);
    let sess = run_job(
        "table1/sessionization",
        session_job(&info, 512),
        Framework::SortMerge,
        stock_cluster(cfg),
        &input,
        1.0,
    );

    // Page frequency — 508 GB, combiner-friendly.
    let (input, info) = counting_input(cfg, PAGEFREQ_INPUT);
    let page = run_job(
        "table1/page-frequency",
        PageFreqJob {
            expected_pages: 100_000,
        },
        Framework::SortMerge,
        stock_cluster(cfg),
        &input,
        0.05,
    );
    let _ = &info;

    // Clicks per user — 256 GB.
    let (input, info) = counting_input(cfg, WORLDCUP_TABLE1);
    let clicks = run_job(
        "table1/clicks-per-user",
        ClickCountJob {
            expected_users: info.stats.distinct_users,
        },
        Framework::SortMerge,
        stock_cluster(cfg),
        &input,
        0.05,
    );

    type Getter = fn(&opa_core::metrics::JobMetrics) -> u64;
    let measured = [&sess.metrics, &page.metrics, &clicks.metrics];
    let rows: [(&str, Getter); 4] = [
        ("input (GB)", |m| m.input_bytes),
        ("map output (GB)", |m| m.map_output_bytes),
        ("reduce spill (GB)", |m| m.reduce_spill_bytes),
        ("reduce output (GB)", |m| m.output_bytes),
    ];
    for (i, (label, getter)) in rows.iter().enumerate() {
        let paper_vals = [PAPER[0].1, PAPER[1].1, PAPER[2].1]; // placeholder; replaced below
        let _ = paper_vals;
        let pick = |j: usize| match i {
            0 => PAPER[j].1,
            1 => PAPER[j].2,
            2 => PAPER[j].3,
            _ => PAPER[j].4,
        };
        table.row([
            label.to_string(),
            format!("{:.2}", pick(0)),
            gb(cfg, getter(measured[0])),
            format!("{:.2}", pick(1)),
            gb(cfg, getter(measured[1])),
            format!("{:.2}", pick(2)),
            gb(cfg, getter(measured[2])),
        ]);
    }
    table.row([
        "running time (s)".to_string(),
        format!("{:.0}", PAPER[0].5),
        secs(measured[0]),
        format!("{:.0}", PAPER[1].5),
        secs(measured[1]),
        format!("{:.0}", PAPER[2].5),
        secs(measured[2]),
    ]);

    println!("{}", table.render());
    let path = cfg.outdir.join("table1.csv");
    table.write_csv(&path).expect("write table1.csv");
    println!("wrote {}\n", path.display());
}
