//! One module per paper artifact, plus shared runners.

pub mod ablation;
pub mod fig2;
pub mod fig4;
pub mod fig7;
pub mod modelcheck;
pub mod table1;
pub mod table3;
pub mod table4;

use crate::ExpConfig;
use opa_common::units::{GB, KB};
use opa_core::cluster::{ClusterSpec, Framework};
use opa_core::job::{JobBuilder, JobInput, JobOutcome};
use opa_core::metrics::JobMetrics;
use opa_model::optimizer::recommended_merge_factor;
use opa_workloads::clickstream::{ClickStreamSpec, StreamStats};
use opa_workloads::documents::DocumentSpec;
use opa_workloads::sessionize::SessionizeJob;

/// Paper sizes (full scale, bytes) for the evaluation datasets.
pub const WORLDCUP_TABLE1: u64 = 256 * GB;
/// §6 evaluation click stream: 236 GB.
pub const WORLDCUP_EVAL: u64 = 236 * GB;
/// Page-frequency input: 508 GB.
pub const PAGEFREQ_INPUT: u64 = 508 * GB;
/// GOV2 sample: 156 GB. The trigram run uses half of it by default (the
/// map output is ~5× the input at any scale; halving keeps the single-core
/// harness run in seconds while preserving the states ≫ memory regime).
pub const GOV2_INPUT: u64 = 156 * GB;
/// §3.2 model-validation workload: 97 GB.
pub const FIG4_INPUT: u64 = 97 * GB;
/// §3.2 "optimized Hadoop" rerun: 240 GB.
pub const FIG4C_INPUT: u64 = 240 * GB;

/// A generated click stream together with what the harness needs to size
/// jobs honestly (the Zipf sampler touches far fewer users than the pool).
#[derive(Debug, Clone)]
pub struct StreamInfo {
    /// Generator parameters used.
    pub spec: ClickStreamSpec,
    /// Measured stream statistics.
    pub stats: StreamStats,
}

/// Generates the sessionization-regime click stream at `bytes`.
pub fn session_input(cfg: &ExpConfig, full_bytes: u64) -> (JobInput, StreamInfo) {
    let spec = ClickStreamSpec::paper_scaled(cfg.size(full_bytes));
    let (input, stats) = spec.generate_with_stats(cfg.seed);
    (input, StreamInfo { spec, stats })
}

/// Generates the counting-regime click stream at `bytes`.
pub fn counting_input(cfg: &ExpConfig, full_bytes: u64) -> (JobInput, StreamInfo) {
    let spec = ClickStreamSpec::counting_scaled(cfg.size(full_bytes));
    let (input, stats) = spec.generate_with_stats(cfg.seed);
    (input, StreamInfo { spec, stats })
}

/// Generates the GOV2-style corpus.
pub fn document_input(cfg: &ExpConfig, full_bytes: u64) -> (JobInput, DocumentSpec) {
    let spec = DocumentSpec::paper_scaled(cfg.size(full_bytes));
    let input = spec.generate(cfg.seed);
    (input, spec)
}

/// The paper's sessionization job at a given state capacity.
pub fn session_job(info: &StreamInfo, state_capacity: usize) -> SessionizeJob {
    SessionizeJob {
        gap_secs: 300,
        // The reducer-side disorder is dominated by the map wave span
        // (N × map_slots chunks ≈ 270 s of event time at this scale).
        slack_secs: 400,
        state_capacity,
        charge_fixed_footprint: true,
        expected_users: info.stats.distinct_users,
    }
}

/// Stock Hadoop configuration at the experiment's data scale
/// (C = 64 MB/scale, F = 10, R = 4).
pub fn stock_cluster(cfg: &ExpConfig) -> ClusterSpec {
    ClusterSpec::paper_scaled_at(cfg.scale)
}

/// Model-optimized "1-pass SM" configuration: merge factor raised to the
/// one-pass point for the given workload (§3.2), with 4× headroom so even
/// reducers inflated by key skew (hot users concentrate on one partition)
/// stay single-pass.
pub fn one_pass_cluster(cfg: &ExpConfig, input_bytes: u64, km: f64) -> ClusterSpec {
    let mut spec = stock_cluster(cfg);
    let workload = opa_common::WorkloadSpec::new(input_bytes, km, 1.0);
    let one_pass =
        recommended_merge_factor(&workload, &spec.hardware, spec.system.reducers_per_node);
    spec.system.merge_factor = (one_pass * 4).max(10);
    spec
}

/// Runs one job and prints a one-line summary.
pub fn run_job(
    label: &str,
    job: impl opa_core::api::Job + 'static,
    framework: Framework,
    cluster: ClusterSpec,
    input: &JobInput,
    km_hint: f64,
) -> JobOutcome {
    let wall = std::time::Instant::now();
    let outcome = JobBuilder::new(job)
        .framework(framework)
        .cluster(cluster)
        .km_hint(km_hint)
        .run(input)
        .expect("experiment job must run");
    eprintln!(
        "  [{label}] virtual {:.0}s, wall {:.1?}",
        outcome.metrics.running_time.as_secs_f64(),
        wall.elapsed()
    );
    outcome
}

/// Runs one job with structured tracing on and writes the trace alongside
/// the experiment's CSVs: `<outdir>/traces/<label>.jsonl` (the JSONL
/// vocabulary of `OBSERVABILITY.md`) plus a ready-to-load Perfetto view
/// `<label>.chrome.json`. Timeline figures regenerate from these files via
/// `opa trace --format chrome` without re-running the experiment.
pub fn run_job_traced(
    cfg: &ExpConfig,
    label: &str,
    job: impl opa_core::api::Job + 'static,
    framework: Framework,
    cluster: ClusterSpec,
    input: &JobInput,
    km_hint: f64,
) -> JobOutcome {
    let wall = std::time::Instant::now();
    let outcome = JobBuilder::new(job)
        .framework(framework)
        .cluster(cluster)
        .km_hint(km_hint)
        .trace(true)
        .run(input)
        .expect("experiment job must run");
    let dir = cfg.outdir.join("traces");
    std::fs::create_dir_all(&dir).expect("mkdir traces");
    let stem = label.replace('/', "-");
    let log = outcome.trace.as_ref().expect("trace was enabled");
    log.write_jsonl(&dir.join(format!("{stem}.jsonl")))
        .expect("write trace jsonl");
    std::fs::write(dir.join(format!("{stem}.chrome.json")), log.to_chrome())
        .expect("write chrome trace");
    eprintln!(
        "  [{label}] virtual {:.0}s, wall {:.1?}, trace {} events → {}",
        outcome.metrics.running_time.as_secs_f64(),
        wall.elapsed(),
        log.events.len(),
        dir.join(format!("{stem}.jsonl")).display()
    );
    outcome
}

/// Formats run bytes as paper-scale gigabytes.
pub fn gb(cfg: &ExpConfig, run_bytes: u64) -> String {
    format!("{:.1}", cfg.to_paper_gb(run_bytes))
}

/// Formats a virtual time in seconds.
pub fn secs(m: &JobMetrics) -> String {
    format!("{:.0}", m.running_time.as_secs_f64())
}

/// Small-buffer variant of the fig-4 cluster (the paper's §3.2 setup used
/// B_r = 260 MB).
pub fn fig4_cluster(cfg: &ExpConfig, chunk_kb: u64, merge_factor: usize) -> ClusterSpec {
    let mut spec = stock_cluster(cfg);
    spec.system.chunk_size = chunk_kb * KB * 1024 / cfg.scale;
    spec.system.merge_factor = merge_factor;
    spec.hardware.reduce_buffer = 260 * opa_common::units::MB / cfg.scale;
    spec
}
