//! Fig 4 — optimizing Hadoop with the analytical model:
//!
//! - (a) model-vs-actual time over a `(C, F)` grid;
//! - (b) time vs chunk size for three merge factors, actual and predicted;
//! - (c) progress of stock vs model-optimized Hadoop vs the optimal line;
//! - (d,e) CPU utilization / iowait of optimized Hadoop;
//! - (f) pipelining (HOP) vs stock progress.

use super::*;
use crate::report::{ascii_progress, write_progress_csv, Table};
use crate::ExpConfig;
use opa_common::units::KB;
use opa_common::WorkloadSpec;
use opa_model::io_model::ModelInput;
use opa_model::time_model::CostConstants;
use std::fs;
use std::io::Write;

/// Pearson correlation between two equal-length series.
fn correlation(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len() as f64;
    let (ma, mb) = (a.iter().sum::<f64>() / n, b.iter().sum::<f64>() / n);
    let cov: f64 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
    let (va, vb): (f64, f64) = (
        a.iter().map(|x| (x - ma).powi(2)).sum(),
        b.iter().map(|y| (y - mb).powi(2)).sum(),
    );
    cov / (va.sqrt() * vb.sqrt()).max(f64::MIN_POSITIVE)
}

/// Fig 4(a,b): the (C, F) grid.
pub fn run_grid(cfg: &ExpConfig) {
    println!("== Fig 4(a,b): model vs actual over the (C, F) grid ==\n");
    let (input, info) = session_input(cfg, FIG4_INPUT);
    let d = input.total_bytes();

    let chunks_kb: Vec<u64> = if cfg.quick {
        vec![16, 64, 192]
    } else {
        vec![8, 16, 32, 64, 96, 128, 140, 192, 256]
    };
    let factors: Vec<usize> = vec![4, 16, 64];

    let constants = CostConstants::scaled(cfg.scale as f64);
    let mut rows = Vec::new();
    let (mut actuals, mut modeled) = (Vec::new(), Vec::new());
    for &ckb in &chunks_kb {
        for &f in &factors {
            let cluster = fig4_cluster(cfg, ckb, f);
            let outcome = run_job(
                &format!("fig4/C={ckb}KB,F={f}"),
                session_job(&info, 512),
                Framework::SortMerge,
                cluster,
                &input,
                1.0,
            );
            let model = ModelInput::new(cluster.system, WorkloadSpec::new(d, 1.0, 1.0), {
                let mut hw = cluster.hardware;
                hw.reduce_buffer = 260 * KB;
                hw
            })
            .expect("valid model input")
            .time_measurement(&constants)
            .total();
            // The model predicts a per-node I/O+startup measurement; the
            // simulator reports end-to-end time. Only trends are compared.
            let actual = outcome.metrics.running_time.as_secs_f64();
            actuals.push(actual);
            modeled.push(model);
            rows.push((ckb, f, actual, model));
        }
    }

    fs::create_dir_all(&cfg.outdir).expect("mkdir results");
    let path = cfg.outdir.join("fig4ab_grid.csv");
    let mut fcsv = fs::File::create(&path).expect("create fig4 grid csv");
    writeln!(fcsv, "chunk_kb,merge_factor,actual_secs,model_secs").unwrap();
    for (c, f, a, m) in &rows {
        writeln!(fcsv, "{c},{f},{a:.0},{m:.0}").unwrap();
    }
    println!("wrote {}", path.display());

    let corr = correlation(&actuals, &modeled);
    println!("model/actual trend correlation over the grid: r = {corr:.3} (paper: \"very similar trends\")\n");

    // Fig 4(b) view: per-F best chunk and the F ordering at C = 64 KB.
    let mut t = Table::new([
        "F",
        "best C (KB)",
        "time at best C (s)",
        "time at C=64KB (s)",
    ]);
    for &f in &factors {
        let best = rows
            .iter()
            .filter(|r| r.1 == f)
            .min_by(|a, b| a.2.partial_cmp(&b.2).unwrap())
            .unwrap();
        let at64 = rows
            .iter()
            .find(|r| r.1 == f && r.0 == 64)
            .map(|r| r.2)
            .unwrap_or(f64::NAN);
        t.row([
            f.to_string(),
            best.0.to_string(),
            format!("{:.0}", best.2),
            format!("{:.0}", at64),
        ]);
    }
    println!("{}", t.render());
    t.write_csv(&cfg.outdir.join("fig4b_summary.csv"))
        .expect("write fig4b csv");
    println!();
}

/// Fig 4(c,d,e): stock vs optimized progress and optimized utilization.
pub fn run_progress(cfg: &ExpConfig) {
    println!("== Fig 4(c,d,e): stock vs model-optimized Hadoop ==\n");
    let (input, info) = session_input(cfg, FIG4C_INPUT);

    let stock = run_job(
        "fig4c/stock",
        session_job(&info, 512),
        Framework::SortMerge,
        stock_cluster(cfg),
        &input,
        1.0,
    );
    let optimized = run_job(
        "fig4c/optimized",
        session_job(&info, 512),
        Framework::SortMerge,
        one_pass_cluster(cfg, input.total_bytes(), 1.0),
        &input,
        1.0,
    );

    let gain = 100.0
        * (stock.metrics.running_time.as_secs_f64() - optimized.metrics.running_time.as_secs_f64())
        / stock.metrics.running_time.as_secs_f64();
    println!(
        "running time: stock {}s → optimized {}s ({gain:.0}% reduction; paper: 4860 → 4187, 14%)",
        secs(&stock.metrics),
        secs(&optimized.metrics)
    );
    println!(
        "optimized reduce progress at map finish: {:.0}% (paper: ~33%, far from the optimal line)\n",
        optimized.progress.reduce_pct_at_map_finish()
    );

    println!(
        "{}",
        ascii_progress(
            &[
                ("stock", &stock.progress),
                ("optimized", &optimized.progress),
            ],
            72
        )
    );

    write_progress_csv(
        &cfg.outdir.join("fig4c_progress.csv"),
        &[
            ("stock", &stock.progress),
            ("optimized", &optimized.progress),
        ],
    )
    .expect("write fig4c csv");

    // (d,e): optimized utilization series.
    let path = cfg.outdir.join("fig4de_optimized_utilization.csv");
    let mut f = fs::File::create(&path).expect("create fig4de csv");
    writeln!(f, "t_secs,cpu_util_pct,disk_busy_pct").unwrap();
    let cpu = optimized.usage.cpu_utilization();
    let disk = optimized.usage.disk_busy();
    for (i, (c, d)) in cpu.iter().zip(&disk).enumerate() {
        writeln!(
            f,
            "{:.0},{:.1},{:.1}",
            (i as f64 + 0.5) * optimized.usage.bucket_secs,
            c,
            d
        )
        .unwrap();
    }
    println!("wrote {} and fig4de CSV\n", path.display());
}

/// Fig 4(f): pipelining vs stock.
pub fn run_pipelining(cfg: &ExpConfig) {
    println!("== Fig 4(f): MapReduce-Online-style pipelining vs stock ==\n");
    let (input, info) = session_input(cfg, WORLDCUP_EVAL);

    let stock = run_job(
        "fig4f/stock",
        session_job(&info, 512),
        Framework::SortMerge,
        stock_cluster(cfg),
        &input,
        1.0,
    );
    let hop = run_job(
        "fig4f/pipelined",
        session_job(&info, 512),
        Framework::SortMergePipelined,
        stock_cluster(cfg),
        &input,
        1.0,
    );

    let gain = 100.0
        * (stock.metrics.running_time.as_secs_f64() - hop.metrics.running_time.as_secs_f64())
        / stock.metrics.running_time.as_secs_f64();
    println!(
        "pipelining gain: {gain:.1}% (paper: ~5%); reduce@mapfinish: stock {:.0}%, pipelined {:.0}% (paper: both lag far behind map)\n",
        stock.progress.reduce_pct_at_map_finish(),
        hop.progress.reduce_pct_at_map_finish()
    );
    write_progress_csv(
        &cfg.outdir.join("fig4f_progress.csv"),
        &[("stock", &stock.progress), ("pipelined", &hop.progress)],
    )
    .expect("write fig4f csv");
    println!(
        "{}",
        ascii_progress(
            &[("stock", &stock.progress), ("pipelined", &hop.progress)],
            72
        )
    );
}
