//! Fig 7 — progress reports of the hash frameworks:
//!
//! - (a) sessionization: SM vs MR-hash vs INC-hash;
//! - (b) user click counting (66% ceiling without early output);
//! - (c) frequent user identification (INC keeps up via early output);
//! - (d) INC-hash sessionization vs state size (0.5/1/2 KB);
//! - (e) DINC-hash vs INC-hash at 2 KB states;
//! - (f) trigram counting: INC ≈ DINC, both far ahead of SM.

use super::*;
use crate::report::{ascii_progress, write_progress_csv, Table};
use crate::ExpConfig;
use opa_core::progress::ProgressCurve;
use opa_workloads::{ClickCountJob, FrequentUsersJob, TrigramCountJob};

fn emit(cfg: &ExpConfig, name: &str, curves: &[(&str, &ProgressCurve)]) {
    println!("{}", ascii_progress(curves, 72));
    let path = cfg.outdir.join(format!("{name}_progress.csv"));
    write_progress_csv(&path, curves).expect("write progress csv");
    println!("wrote {}\n", path.display());
}

fn keeps_up(c: &ProgressCurve) -> String {
    format!(
        "reduce@mapfinish {:.0}%, mean gap {:.1}pp",
        c.reduce_pct_at_map_finish(),
        c.mean_map_reduce_gap()
    )
}

/// Fig 7(a): sessionization progress across SM, MR-hash, INC-hash.
pub fn run_a(cfg: &ExpConfig) {
    println!("== Fig 7(a): sessionization progress (SM vs MR-hash vs INC-hash) ==\n");
    let (input, info) = session_input(cfg, WORLDCUP_EVAL);
    let cluster = one_pass_cluster(cfg, input.total_bytes(), 1.0);
    let job = || session_job(&info, 512);
    let sm = run_job_traced(
        cfg,
        "fig7a/SM",
        job(),
        Framework::SortMerge,
        cluster,
        &input,
        1.0,
    );
    let mr = run_job_traced(
        cfg,
        "fig7a/MR",
        job(),
        Framework::MrHash,
        cluster,
        &input,
        1.0,
    );
    let inc = run_job_traced(
        cfg,
        "fig7a/INC",
        job(),
        Framework::IncHash,
        cluster,
        &input,
        1.0,
    );
    for (l, o) in [("SM", &sm), ("MR-hash", &mr), ("INC-hash", &inc)] {
        println!(
            "  {l}: {} (paper: SM/MR blocked at 33%, INC keeps up until memory fills)",
            keeps_up(&o.progress)
        );
    }
    emit(
        cfg,
        "fig7a",
        &[
            ("SM", &sm.progress),
            ("MR-hash", &mr.progress),
            ("INC-hash", &inc.progress),
        ],
    );
}

/// Fig 7(b): user click counting progress.
pub fn run_b(cfg: &ExpConfig) {
    println!("== Fig 7(b): click counting progress ==\n");
    let (input, info) = counting_input(cfg, WORLDCUP_EVAL);
    let cluster = one_pass_cluster(cfg, input.total_bytes(), 0.05);
    let job = || ClickCountJob {
        expected_users: info.stats.distinct_users,
    };
    let sm = run_job(
        "fig7b/SM",
        job(),
        Framework::SortMerge,
        cluster,
        &input,
        0.05,
    );
    let mr = run_job("fig7b/MR", job(), Framework::MrHash, cluster, &input, 0.05);
    let inc = run_job(
        "fig7b/INC",
        job(),
        Framework::IncHash,
        cluster,
        &input,
        0.05,
    );
    println!(
        "  INC ceiling during map phase (no early output possible): {:.0}% (paper: 66%)",
        inc.progress.reduce_pct_before_map_finish()
    );
    println!(
        "  MR-hash ceiling: {:.0}% | SM ceiling: {:.0}% (paper: 33% / combine steps)\n",
        mr.progress.reduce_pct_before_map_finish(),
        sm.progress.reduce_pct_before_map_finish()
    );
    emit(
        cfg,
        "fig7b",
        &[
            ("SM", &sm.progress),
            ("MR-hash", &mr.progress),
            ("INC-hash", &inc.progress),
        ],
    );
}

/// Fig 7(c): frequent-user identification progress.
pub fn run_c(cfg: &ExpConfig) {
    println!("== Fig 7(c): frequent user identification progress ==\n");
    let (input, info) = counting_input(cfg, WORLDCUP_EVAL);
    let cluster = one_pass_cluster(cfg, input.total_bytes(), 0.05);
    let job = || FrequentUsersJob {
        threshold: 50,
        expected_users: info.stats.distinct_users,
    };
    let sm = run_job(
        "fig7c/SM",
        job(),
        Framework::SortMerge,
        cluster,
        &input,
        0.05,
    );
    let mr = run_job("fig7c/MR", job(), Framework::MrHash, cluster, &input, 0.05);
    let inc = run_job(
        "fig7c/INC",
        job(),
        Framework::IncHash,
        cluster,
        &input,
        0.05,
    );
    println!(
        "  INC early output lets reduce keep up completely: {} (paper: 'completely keeps up')\n",
        keeps_up(&inc.progress)
    );
    emit(
        cfg,
        "fig7c",
        &[
            ("SM", &sm.progress),
            ("MR-hash", &mr.progress),
            ("INC-hash", &inc.progress),
        ],
    );
}

/// Fig 7(d): INC-hash sessionization with state sizes 0.5/1/2 KB.
pub fn run_d(cfg: &ExpConfig) {
    println!("== Fig 7(d): INC-hash sessionization vs state size ==\n");
    let (input, info) = session_input(cfg, WORLDCUP_EVAL);
    let cluster = one_pass_cluster(cfg, input.total_bytes(), 1.0);
    let half = run_job(
        "fig7d/0.5KB",
        session_job(&info, 512),
        Framework::IncHash,
        cluster,
        &input,
        1.0,
    );
    let one = run_job(
        "fig7d/1KB",
        session_job(&info, 1024),
        Framework::IncHash,
        cluster,
        &input,
        1.0,
    );
    let two = run_job(
        "fig7d/2KB",
        session_job(&info, 2048),
        Framework::IncHash,
        cluster,
        &input,
        1.0,
    );
    let mut t = Table::new([
        "state size",
        "reduce spill GB",
        "reduce@mapfinish %",
        "running time s",
    ]);
    for (l, o) in [("0.5KB", &half), ("1KB", &one), ("2KB", &two)] {
        t.row([
            l.to_string(),
            gb(cfg, o.metrics.reduce_spill_bytes),
            format!("{:.0}", o.progress.reduce_pct_at_map_finish()),
            secs(&o.metrics),
        ]);
    }
    println!("{}", t.render());
    println!("(paper: larger states diverge earlier from map progress and spill more)\n");
    t.write_csv(&cfg.outdir.join("fig7d_summary.csv"))
        .expect("write fig7d csv");
    emit(
        cfg,
        "fig7d",
        &[
            ("INC 0.5KB", &half.progress),
            ("INC 1KB", &one.progress),
            ("INC 2KB", &two.progress),
        ],
    );
}

/// Fig 7(e): DINC-hash vs INC-hash at 2 KB states.
pub fn run_e(cfg: &ExpConfig) {
    println!("== Fig 7(e): DINC-hash vs INC-hash, 2 KB states ==\n");
    let (input, info) = session_input(cfg, WORLDCUP_EVAL);
    let cluster = one_pass_cluster(cfg, input.total_bytes(), 1.0);
    let inc = run_job(
        "fig7e/INC-2KB",
        session_job(&info, 2048),
        Framework::IncHash,
        cluster,
        &input,
        1.0,
    );
    let dinc = run_job(
        "fig7e/DINC-2KB",
        session_job(&info, 2048),
        Framework::DincHash,
        cluster,
        &input,
        1.0,
    );
    println!("  INC:  {}", keeps_up(&inc.progress));
    println!(
        "  DINC: {} (paper: closely follows map, little post-map work)\n",
        keeps_up(&dinc.progress)
    );
    emit(
        cfg,
        "fig7e",
        &[("INC 2KB", &inc.progress), ("DINC 2KB", &dinc.progress)],
    );
}

/// Fig 7(f): trigram counting progress.
pub fn run_f(cfg: &ExpConfig) {
    println!("== Fig 7(f): trigram counting (large key-state space) ==\n");
    // Half of GOV2 by default: the trigram map output is ~5× the input, so
    // this keeps the single-core harness run snappy while the states
    // remain ≫ reduce memory (the regime the figure is about).
    let (input, _spec) = document_input(cfg, GOV2_INPUT / 2);
    let cluster = one_pass_cluster(cfg, input.total_bytes(), 5.0);
    let job = || TrigramCountJob {
        threshold: 1000,
        expected_trigrams: 2_000_000,
    };
    let inc = run_job("fig7f/INC", job(), Framework::IncHash, cluster, &input, 5.0);
    let dinc = run_job(
        "fig7f/DINC",
        job(),
        Framework::DincHash,
        cluster,
        &input,
        5.0,
    );
    let sm = run_job(
        "fig7f/SM",
        job(),
        Framework::SortMerge,
        cluster,
        &input,
        5.0,
    );

    let mut t = Table::new([
        "framework",
        "running time s",
        "reduce spill GB",
        "reduce@mapfinish %",
    ]);
    for (l, o) in [("INC-hash", &inc), ("DINC-hash", &dinc), ("SM", &sm)] {
        t.row([
            l.to_string(),
            secs(&o.metrics),
            gb(cfg, o.metrics.reduce_spill_bytes),
            format!("{:.0}", o.progress.reduce_pct_at_map_finish()),
        ]);
    }
    println!("{}", t.render());
    let ratio = sm.metrics.running_time.as_secs_f64() / inc.metrics.running_time.as_secs_f64();
    println!(
        "  SM/INC time ratio: {ratio:.2}× (paper: 9023s vs 4100–4400s ≈ 2.1×); INC ≈ DINC expected on flat trigram skew\n"
    );
    t.write_csv(&cfg.outdir.join("fig7f_summary.csv"))
        .expect("write fig7f csv");
    emit(
        cfg,
        "fig7f",
        &[
            ("INC-hash", &inc.progress),
            ("DINC-hash", &dinc.progress),
            ("SM", &sm.progress),
        ],
    );
}
