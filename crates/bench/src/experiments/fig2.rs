//! Fig 2 — behavior of stock Hadoop and MapReduce Online on
//! sessionization: (a) task timeline, (b) CPU utilization, (c) CPU iowait,
//! (d) intermediate data on SSD, (e,f) the pipelined (HOP) variant.
//!
//! The engine's disk-busy series stands in for the paper's CPU-iowait
//! curves: both measure the same phenomenon (the CPU blocked on the disk
//! during multi-pass merge).

use super::*;
use crate::report::Table;
use crate::ExpConfig;
use opa_core::cost::CostModel;
use opa_core::sim::OpKind;
use std::fs;
use std::io::Write;

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) {
    println!("== Fig 2: stock Hadoop & HOP behavior on sessionization ==\n");
    let (input, info) = session_input(cfg, WORLDCUP_TABLE1);

    // (a,b,c) stock sort-merge on a single shared disk.
    let stock = run_job_traced(
        cfg,
        "fig2/stock-SM",
        session_job(&info, 512),
        Framework::SortMerge,
        stock_cluster(cfg),
        &input,
        1.0,
    );

    // (d) intermediate data on SSD.
    let mut ssd_cluster = stock_cluster(cfg);
    ssd_cluster.cost = CostModel::paper_scaled_ssd_spill();
    let ssd = run_job_traced(
        cfg,
        "fig2/stock-SM-ssd-spill",
        session_job(&info, 512),
        Framework::SortMerge,
        ssd_cluster,
        &input,
        1.0,
    );

    // (e,f) pipelining (HOP-style).
    let hop = run_job_traced(
        cfg,
        "fig2/pipelined-SM",
        session_job(&info, 512),
        Framework::SortMergePipelined,
        stock_cluster(cfg),
        &input,
        1.0,
    );

    // --- (a) task timeline: active tasks per op class over time ---------
    let buckets = 120usize;
    let end = stock.metrics.running_time.as_secs_f64();
    let width = end / buckets as f64;
    let mut counts = vec![[0u32; 4]; buckets];
    for span in &stock.timeline {
        let (s, e) = (span.start.as_secs_f64(), span.end.as_secs_f64());
        let idx = |k: OpKind| match k {
            OpKind::Map => 0,
            OpKind::Shuffle => 1,
            OpKind::Merge => 2,
            OpKind::Reduce => 3,
        };
        let first = (s / width) as usize;
        let last = ((e / width) as usize).min(buckets - 1);
        for bucket in counts.iter_mut().take(last + 1).skip(first) {
            bucket[idx(span.kind)] += 1;
        }
    }
    let path = cfg.outdir.join("fig2a_task_timeline.csv");
    fs::create_dir_all(&cfg.outdir).expect("mkdir results");
    let mut f = fs::File::create(&path).expect("create fig2a csv");
    writeln!(f, "t_secs,map,shuffle,merge,reduce").unwrap();
    for (b, c) in counts.iter().enumerate() {
        writeln!(
            f,
            "{:.0},{},{},{},{}",
            (b as f64 + 0.5) * width,
            c[0],
            c[1],
            c[2],
            c[3]
        )
        .unwrap();
    }
    println!("fig 2(a): task timeline → {}", path.display());

    // --- (b,c,e,f) utilization series -----------------------------------
    for (name, outcome) in [("stock", &stock), ("hop", &hop)] {
        let cpu = outcome.usage.cpu_utilization();
        let disk = outcome.usage.disk_busy();
        let path = cfg.outdir.join(format!("fig2_{name}_utilization.csv"));
        let mut f = fs::File::create(&path).expect("create util csv");
        writeln!(f, "t_secs,cpu_util_pct,disk_busy_pct").unwrap();
        for (i, (c, d)) in cpu.iter().zip(&disk).enumerate() {
            writeln!(
                f,
                "{:.0},{:.1},{:.1}",
                (i as f64 + 0.5) * outcome.usage.bucket_secs,
                c,
                d
            )
            .unwrap();
        }
        println!("fig 2(b/c for {name}): utilization → {}", path.display());
    }

    // --- summary: the claims the figure supports ------------------------
    let mid_disk = |o: &opa_core::job::JobOutcome| {
        // Mean disk-busy in the window right after map finish (the
        // multi-pass-merge region that Fig 2(c) highlights).
        let disk = o.usage.disk_busy();
        let per = o.usage.bucket_secs;
        let from = (o.metrics.map_finish.as_secs_f64() / per) as usize;
        let to = ((o.metrics.running_time.as_secs_f64() / per) as usize).min(disk.len());
        if from >= to {
            return 0.0;
        }
        disk[from..to].iter().sum::<f64>() / (to - from) as f64
    };

    let mut t = Table::new(["claim", "paper", "OPA"]);
    t.row([
        "SM running time (s)".into(),
        "4860".to_string(),
        secs(&stock.metrics),
    ]);
    t.row([
        "SSD spill shortens job but keeps merge blocking".into(),
        "yes".to_string(),
        format!(
            "{} ({}s vs {}s, post-map disk still {:.0}% busy)",
            if ssd.metrics.running_time < stock.metrics.running_time && mid_disk(&ssd) > 20.0 {
                "yes"
            } else {
                "NO"
            },
            secs(&ssd.metrics),
            secs(&stock.metrics),
            mid_disk(&ssd)
        ),
    ]);
    t.row([
        "post-map disk-busy spike (iowait proxy, %)".into(),
        "spike present".to_string(),
        format!("{:.0}% busy", mid_disk(&stock)),
    ]);
    t.row([
        "HOP pipelining leaves blocking + I/O".into(),
        "yes".to_string(),
        format!(
            "{} (HOP {}s, reduce@mapfinish {:.0}%, post-map disk {:.0}%)",
            if mid_disk(&hop) > 20.0 { "yes" } else { "NO" },
            secs(&hop.metrics),
            hop.progress.reduce_pct_at_map_finish(),
            mid_disk(&hop)
        ),
    ]);
    println!("{}", t.render());
    t.write_csv(&cfg.outdir.join("fig2_summary.csv"))
        .expect("write fig2 summary");
    println!();
}
