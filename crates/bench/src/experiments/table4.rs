//! Table 4 — sessionization with growing state sizes: INC-hash 0.5 KB,
//! INC-hash 2 KB, DINC-hash 2 KB. Larger states mean fewer resident keys
//! and more spill for INC; DINC's expired-session eviction rule keeps the
//! spill three orders of magnitude below stock Hadoop's.

use super::*;
use crate::report::Table;
use crate::ExpConfig;

/// Paper values: (label, running time s, reduce spill GB).
const PAPER: [(&str, f64, f64); 3] = [
    ("INC-hash 0.5KB", 2258.0, 51.0),
    ("INC-hash 2KB", 3271.0, 203.0),
    ("DINC-hash 2KB", 2067.0, 0.1),
];

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) {
    println!("== Table 4: sessionization vs state size (INC vs DINC) ==\n");
    let (input, info) = session_input(cfg, WORLDCUP_EVAL);
    let cluster = one_pass_cluster(cfg, input.total_bytes(), 1.0);

    let runs = [
        ("INC-hash 0.5KB", Framework::IncHash, 512usize),
        ("INC-hash 2KB", Framework::IncHash, 2048),
        ("DINC-hash 2KB", Framework::DincHash, 2048),
    ];
    let mut table = Table::new([
        "configuration",
        "running time s (paper)",
        "running time s (OPA)",
        "reduce spill GB (paper)",
        "reduce spill GB (OPA)",
    ]);
    let mut dinc_spill = None;
    for (i, (label, fw, state)) in runs.iter().enumerate() {
        let outcome = run_job(
            &format!("table4/{label}"),
            session_job(&info, *state),
            *fw,
            cluster,
            &input,
            1.0,
        );
        if *fw == Framework::DincHash {
            dinc_spill = Some(outcome.metrics.reduce_spill_bytes);
        }
        table.row([
            label.to_string(),
            format!("{:.0}", PAPER[i].1),
            secs(&outcome.metrics),
            format!("{:.1}", PAPER[i].2),
            gb(cfg, outcome.metrics.reduce_spill_bytes),
        ]);
    }
    println!("{}", table.render());

    // The headline: stock Hadoop's 370 GB vs DINC's 0.1 GB.
    let stock = run_job(
        "table4/stock-SM-reference",
        session_job(&info, 512),
        Framework::SortMerge,
        stock_cluster(cfg),
        &input,
        1.0,
    );
    if let Some(dinc) = dinc_spill {
        let factor = stock.metrics.reduce_spill_bytes as f64 / dinc.max(1) as f64;
        println!(
            "headline: stock-SM spill {} GB vs DINC {} GB → {:.0}× reduction (paper: 370 GB vs 0.1 GB ≈ 3700×)\n",
            gb(cfg, stock.metrics.reduce_spill_bytes),
            gb(cfg, dinc),
            factor
        );
    }

    let path = cfg.outdir.join("table4.csv");
    table.write_csv(&path).expect("write table4.csv");
    println!("wrote {}\n", path.display());
}
