//! Table 3 — optimized Hadoop (1-pass SM) vs MR-hash vs INC-hash across
//! sessionization, user click counting, and frequent user identification:
//! running time, per-node map/reduce CPU time, shuffle volume, reduce
//! spill.

use super::*;
use crate::report::Table;
use crate::ExpConfig;
use opa_core::metrics::JobMetrics;
use opa_workloads::{ClickCountJob, FrequentUsersJob};

/// Paper reference values per workload:
/// (running time, map CPU/node, reduce CPU/node, shuffle GB, spill GB)
/// for (1-pass SM, MR-hash, INC-hash).
const PAPER: [(&str, [[f64; 5]; 3]); 3] = [
    (
        "sessionization",
        [
            [4424.0, 936.0, 1104.0, 245.0, 250.0],
            [3577.0, 566.0, 1033.0, 245.0, 256.0],
            [2258.0, 571.0, 565.0, 245.0, 51.0],
        ],
    ),
    (
        "user click counting",
        [
            [1430.0, 853.0, 39.0, 2.5, 1.1],
            [1100.0, 444.0, 41.0, 2.5, 0.0],
            [1113.0, 443.0, 35.0, 2.5, 0.0],
        ],
    ),
    (
        "frequent user identification",
        [
            [1435.0, 855.0, 38.0, 2.5, 1.1],
            [1153.0, 442.0, 38.0, 2.5, 0.0],
            [1135.0, 441.0, 34.0, 2.5, 0.0],
        ],
    ),
];

const FRAMEWORKS: [Framework; 3] = [Framework::SortMerge, Framework::MrHash, Framework::IncHash];

fn metrics_cells(cfg: &ExpConfig, m: &JobMetrics) -> [String; 5] {
    [
        format!("{:.0}", m.running_time.as_secs_f64()),
        format!("{:.0}", m.map_cpu_per_node.as_secs_f64()),
        format!("{:.0}", m.reduce_cpu_per_node.as_secs_f64()),
        gb(cfg, m.map_output_bytes),
        gb(cfg, m.reduce_spill_bytes),
    ]
}

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) {
    println!("== Table 3: 1-pass SM vs MR-hash vs INC-hash ==\n");
    let mut table = Table::new([
        "workload",
        "framework",
        "time s (paper/OPA)",
        "map cpu (paper/OPA)",
        "red cpu (paper/OPA)",
        "shuffle GB (paper/OPA)",
        "spill GB (paper/OPA)",
    ]);

    for (wi, (wname, paper)) in PAPER.iter().enumerate() {
        let outcomes: Vec<JobMetrics> = match wi {
            0 => {
                let (input, info) = session_input(cfg, WORLDCUP_EVAL);
                let cluster = one_pass_cluster(cfg, input.total_bytes(), 1.0);
                FRAMEWORKS
                    .iter()
                    .map(|&fw| {
                        run_job(
                            &format!("table3/sessionization/{}", fw.label()),
                            session_job(&info, 512),
                            fw,
                            cluster,
                            &input,
                            1.0,
                        )
                        .metrics
                    })
                    .collect()
            }
            1 => {
                let (input, info) = counting_input(cfg, WORLDCUP_EVAL);
                let cluster = one_pass_cluster(cfg, input.total_bytes(), 0.05);
                FRAMEWORKS
                    .iter()
                    .map(|&fw| {
                        run_job(
                            &format!("table3/click-counting/{}", fw.label()),
                            ClickCountJob {
                                expected_users: info.stats.distinct_users,
                            },
                            fw,
                            cluster,
                            &input,
                            0.05,
                        )
                        .metrics
                    })
                    .collect()
            }
            _ => {
                let (input, info) = counting_input(cfg, WORLDCUP_EVAL);
                let cluster = one_pass_cluster(cfg, input.total_bytes(), 0.05);
                FRAMEWORKS
                    .iter()
                    .map(|&fw| {
                        run_job(
                            &format!("table3/frequent-users/{}", fw.label()),
                            FrequentUsersJob {
                                threshold: 50,
                                expected_users: info.stats.distinct_users,
                            },
                            fw,
                            cluster,
                            &input,
                            0.05,
                        )
                        .metrics
                    })
                    .collect()
            }
        };

        for (fi, m) in outcomes.iter().enumerate() {
            let p = paper[fi];
            let c = metrics_cells(cfg, m);
            table.row([
                wname.to_string(),
                FRAMEWORKS[fi].label().to_string(),
                format!("{:.0} / {}", p[0], c[0]),
                format!("{:.0} / {}", p[1], c[1]),
                format!("{:.0} / {}", p[2], c[2]),
                format!("{:.1} / {}", p[3], c[3]),
                format!("{:.1} / {}", p[4], c[4]),
            ]);
        }
    }

    println!("{}", table.render());
    let path = cfg.outdir.join("table3.csv");
    table.write_csv(&path).expect("write table3.csv");
    println!("wrote {}\n", path.display());
}
