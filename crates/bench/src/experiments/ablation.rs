//! Ablations of design decisions the paper discusses in passing:
//!
//! - **HOP snapshots** (§3.3(4)): MapReduce Online can emit periodic
//!   snapshots "by repeating the merge operation for each snapshot, not by
//!   incremental processing. It can incur high I/O overhead and
//!   significantly increased running time." OPA implements the snapshot
//!   mode and measures exactly that — and contrasts it with INC-hash,
//!   which gets continuous output for free.
//! - **Reducers per node** (§3.2(3)): with `R` above the reduce-slot
//!   count, second-wave reducers re-read map output from disk; the paper
//!   measured R=8 at 4723 s vs R=4 at 4187 s.

use super::*;
use crate::report::Table;
use crate::ExpConfig;
use opa_core::job::JobBuilder;

/// Runs all three ablations.
pub fn run(cfg: &ExpConfig) {
    snapshots(cfg);
    reducer_waves(cfg);
    monitor_choice(cfg);
}

/// §4.3 rejects "sketch-based" estimators but both FREQUENT and
/// SpaceSaving qualify as counter-based monitors that explicitly encode
/// the hot-key set; this ablation measures whether the paper's pick
/// matters in practice.
fn monitor_choice(cfg: &ExpConfig) {
    use opa_core::reduce::dinc_hash::MonitorKind;
    println!("== Ablation: DINC monitor algorithm (FREQUENT vs SpaceSaving) ==\n");
    let (input, info) = session_input(cfg, WORLDCUP_EVAL / 2);
    let cluster = one_pass_cluster(cfg, input.total_bytes(), 1.0);
    let mut t = Table::new([
        "monitor",
        "running time s",
        "reduce spill GB",
        "reduce@mapfinish %",
    ]);
    for (label, kind) in [
        ("FREQUENT (paper)", MonitorKind::Frequent),
        ("SpaceSaving", MonitorKind::SpaceSaving),
    ] {
        let wall = std::time::Instant::now();
        let outcome = JobBuilder::new(session_job(&info, 2048))
            .framework(Framework::DincHash)
            .cluster(cluster)
            .dinc_monitor(kind)
            .run(&input)
            .expect("dinc job runs");
        eprintln!(
            "  [ablation/monitor={label}] virtual {:.0}s, wall {:.1?}",
            outcome.metrics.running_time.as_secs_f64(),
            wall.elapsed()
        );
        t.row([
            label.to_string(),
            secs(&outcome.metrics),
            gb(cfg, outcome.metrics.reduce_spill_bytes),
            format!("{:.0}", outcome.progress.reduce_pct_at_map_finish()),
        ]);
    }
    println!("{}", t.render());
    println!("(both explicitly encode the hot-key set — the paper's requirement;\n the expiry-guarded eviction dominates the choice of counter algorithm)\n");
    t.write_csv(&cfg.outdir.join("ablation_monitor.csv"))
        .expect("write ablation csv");
}

fn snapshots(cfg: &ExpConfig) {
    println!("== Ablation: HOP snapshots vs incremental output (§3.3(4)) ==\n");
    let (input, info) = session_input(cfg, WORLDCUP_EVAL / 2);
    let cluster = stock_cluster(cfg);

    let plain = run_job(
        "ablation/pipelined-no-snapshots",
        session_job(&info, 512),
        Framework::SortMergePipelined,
        cluster,
        &input,
        1.0,
    );
    let wall = std::time::Instant::now();
    let snap = JobBuilder::new(session_job(&info, 512))
        .framework(Framework::SortMergePipelined)
        .cluster(cluster)
        .snapshot_points(&[0.25, 0.5, 0.75])
        .run(&input)
        .expect("snapshot job runs");
    eprintln!(
        "  [ablation/pipelined-snapshots] virtual {:.0}s, wall {:.1?}",
        snap.metrics.running_time.as_secs_f64(),
        wall.elapsed()
    );
    let inc = run_job(
        "ablation/INC-hash-reference",
        session_job(&info, 512),
        Framework::IncHash,
        cluster,
        &input,
        1.0,
    );

    let mut t = Table::new([
        "configuration",
        "running time s",
        "total I/O GB",
        "snapshot output GB",
        "reduce@mapfinish %",
    ]);
    for (label, o) in [
        ("pipelined SM", &plain),
        ("pipelined SM + 3 snapshots", &snap),
        ("INC-hash (continuous output)", &inc),
    ] {
        t.row([
            label.to_string(),
            secs(&o.metrics),
            gb(cfg, o.metrics.io.total_bytes()),
            gb(cfg, o.metrics.snapshot_bytes),
            format!("{:.0}", o.progress.reduce_pct_at_map_finish()),
        ]);
    }
    println!("{}", t.render());
    let overhead = 100.0
        * (snap.metrics.running_time.as_secs_f64() - plain.metrics.running_time.as_secs_f64())
        / plain.metrics.running_time.as_secs_f64();
    println!(
        "snapshot overhead: +{overhead:.0}% running time (paper: \"significantly increased running time\");\n\
         INC-hash reaches the same early visibility with no repeated merges.\n"
    );
    t.write_csv(&cfg.outdir.join("ablation_snapshots.csv"))
        .expect("write ablation csv");
}

fn reducer_waves(cfg: &ExpConfig) {
    println!("== Ablation: reducers per node, R = 4 vs R = 8 (§3.2(3)) ==\n");
    let (input, info) = session_input(cfg, WORLDCUP_EVAL / 2);
    let mut t = Table::new(["R", "waves", "running time s", "paper"]);
    let mut times = Vec::new();
    for r in [4usize, 8] {
        let mut cluster = one_pass_cluster(cfg, input.total_bytes(), 1.0);
        cluster.system.reducers_per_node = r;
        let outcome = run_job(
            &format!("ablation/R={r}"),
            session_job(&info, 512),
            Framework::SortMerge,
            cluster,
            &input,
            1.0,
        );
        times.push(outcome.metrics.running_time.as_secs_f64());
        t.row([
            r.to_string(),
            if r <= 4 { "1" } else { "2" }.to_string(),
            secs(&outcome.metrics),
            if r == 4 { "4187 s" } else { "4723 s" }.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "second-wave penalty: +{:.0}% (paper: +13%). Direction matches — two waves lose the\n\
         memory-resident shuffle; the magnitude is overstated here because the simulator's\n\
         task-granular disk queue serializes wave-2 fetches behind wave-1 final merges.\n",
        100.0 * (times[1] - times[0]) / times[0]
    );
    t.write_csv(&cfg.outdir.join("ablation_reducer_waves.csv"))
        .expect("write ablation csv");
}
