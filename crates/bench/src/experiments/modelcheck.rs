//! Model validation beyond the figures:
//!
//! - `λ_F` closed form (Eq. 2) against an exact replay of the merge-tree
//!   policy;
//! - Proposition 3.1's predicted I/O bytes against the engine's measured
//!   five-category `IoStats` (the paper reports < 10% difference).

use super::*;
use crate::report::Table;
use crate::ExpConfig;
use opa_common::units::KB;
use opa_common::WorkloadSpec;
use opa_model::io_model::ModelInput;
use opa_model::lambda::{exact_merge_cost, lambda_f};
#[allow(unused_imports)]
use opa_model::time_model::CostConstants;

/// Runs the validation.
pub fn run(cfg: &ExpConfig) {
    println!("== Model check: λ_F closed form and Prop 3.1 vs the engine ==\n");

    // --- λ_F vs exact merge-tree replay ---------------------------------
    let mut t = Table::new([
        "F",
        "n runs",
        "2λ_F (closed form)",
        "exact replay",
        "rel err",
    ]);
    let mut worst: f64 = 0.0;
    for f in [4usize, 10, 16] {
        for n in [8usize, 20, 50, 120, 300] {
            let lam = 2.0 * lambda_f(n as f64, 1.0, f);
            let exact = exact_merge_cost(n, 1.0, f).total();
            let rel = (lam - exact).abs() / exact;
            worst = worst.max(rel);
            t.row([
                f.to_string(),
                n.to_string(),
                format!("{lam:.0}"),
                format!("{exact:.0}"),
                format!("{:.1}%", rel * 100.0),
            ]);
        }
    }
    println!("{}", t.render());
    println!(
        "worst λ_F deviation: {:.1}% (closed form vs exact policy replay)\n",
        worst * 100.0
    );
    t.write_csv(&cfg.outdir.join("modelcheck_lambda.csv"))
        .expect("write lambda csv");

    // --- Prop 3.1 vs engine-measured bytes ------------------------------
    let (input, info) = session_input(cfg, FIG4_INPUT);
    let d = input.total_bytes();
    let mut t = Table::new([
        "C (KB)",
        "F",
        "U predicted (GB, paper scale)",
        "U measured (GB, paper scale)",
        "rel err",
    ]);
    let mut errs = Vec::new();
    for (ckb, f) in [(64u64, 10usize), (64, 16), (32, 16), (140, 16)] {
        let cluster = fig4_cluster(cfg, ckb, f);
        let outcome = run_job(
            &format!("modelcheck/C={ckb}KB,F={f}"),
            session_job(&info, 512),
            Framework::SortMerge,
            cluster,
            &input,
            1.0,
        );
        let mut hw = cluster.hardware;
        hw.reduce_buffer = 260 * KB;
        let model = ModelInput::new(cluster.system, WorkloadSpec::new(d, 1.0, 1.0), hw)
            .expect("valid model input");
        // Per-node bytes → cluster bytes.
        let predicted = model.io_bytes().total() * cluster.hardware.nodes as f64;
        let measured = outcome.metrics.io.total_bytes() as f64;
        let rel = (predicted - measured).abs() / measured;
        errs.push(rel);
        t.row([
            ckb.to_string(),
            f.to_string(),
            format!("{:.1}", cfg.to_paper_gb(predicted as u64)),
            format!("{:.1}", cfg.to_paper_gb(measured as u64)),
            format!("{:.1}%", rel * 100.0),
        ]);
    }
    println!("{}", t.render());
    let mean = errs.iter().sum::<f64>() / errs.len() as f64;
    println!(
        "mean Prop 3.1 error: {:.1}% (paper: predicted within 10% of observed)\n",
        mean * 100.0
    );
    t.write_csv(&cfg.outdir.join("modelcheck_prop31.csv"))
        .expect("write prop31 csv");

    // --- Prop 3.2 vs engine-measured I/O requests ------------------------
    let mut t = Table::new(["C (KB)", "F", "S predicted", "S measured", "ratio"]);
    for (ckb, f) in [(64u64, 10usize), (32, 16)] {
        let cluster = fig4_cluster(cfg, ckb, f);
        let outcome = run_job(
            &format!("modelcheck32/C={ckb}KB,F={f}"),
            session_job(&info, 512),
            Framework::SortMerge,
            cluster,
            &input,
            1.0,
        );
        let mut hw = cluster.hardware;
        hw.reduce_buffer = 260 * KB;
        let model = ModelInput::new(cluster.system, WorkloadSpec::new(d, 1.0, 1.0), hw)
            .expect("valid model input");
        let predicted = model.io_requests() * cluster.hardware.nodes as f64;
        let measured = outcome.metrics.io.total_seeks() as f64;
        t.row([
            ckb.to_string(),
            f.to_string(),
            format!("{predicted:.0}"),
            format!("{measured:.0}"),
            format!("{:.2}", predicted / measured),
        ]);
    }
    println!("{}", t.render());
    println!("(Prop 3.2 counts model-idealized requests; the engine batches differently — order-of-magnitude agreement is the paper's own bar)\n");
    t.write_csv(&cfg.outdir.join("modelcheck_prop32.csv"))
        .expect("write prop32 csv");

    // --- §4 hash-framework I/O model vs engine spill ---------------------
    use opa_model::hash_model::mr_hash_staged_bytes;
    let cluster = one_pass_cluster(cfg, d, 1.0);
    let mr = run_job(
        "modelcheck/MR-hash",
        session_job(&info, 512),
        Framework::MrHash,
        cluster,
        &input,
        1.0,
    );
    let reducers = cluster.total_reducers() as u64;
    let predicted_staged: u64 = (0..reducers)
        .map(|_| {
            mr_hash_staged_bytes(
                mr.metrics.map_output_bytes / reducers,
                cluster.hardware.reduce_buffer,
                cluster.bucket_write_buffer,
            )
        })
        .sum();
    // staged = written + read; the spill metric counts written only.
    let measured_staged = 2 * mr.metrics.reduce_spill_bytes;
    println!(
        "hybrid-hash staging (§4.1): predicted {} GB vs measured {} GB (uniform-reducer formula vs Zipf-skewed engine)\n",
        gb(cfg, predicted_staged),
        gb(cfg, measured_staged)
    );
}
