//! Canonical ⟨key, value⟩ record framing for multi-job dataflows.
//!
//! When job N's reduce output becomes job N+1's map input, each output
//! pair must cross the boundary as one *input record*. This module fixes
//! the byte layout of that record so every path that stages a dataset —
//! the in-memory handoff, the reshuffle fallback, a checkpoint restored
//! from disk, or a test that materializes the intermediate to a file —
//! feeds byte-identical records to the downstream map function:
//!
//! ```text
//! [key_len: u32 BE][key bytes][value bytes]
//! ```
//!
//! The value length is implicit (record length − 4 − key length), which
//! keeps the frame minimal; records never embed record separators, so
//! they are safe to carry as raw `Vec<u8>` entries of a `JobInput`.

/// Encodes one pair as a framed dataflow record.
pub fn encode_kv(key: &[u8], value: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + key.len() + value.len());
    encode_kv_into(&mut out, key, value);
    out
}

/// Encodes one pair into a caller-owned buffer (cleared first), for
/// encoders that recycle scratch allocations.
pub fn encode_kv_into(buf: &mut Vec<u8>, key: &[u8], value: &[u8]) {
    buf.clear();
    buf.reserve(4 + key.len() + value.len());
    buf.extend_from_slice(&(key.len() as u32).to_be_bytes());
    buf.extend_from_slice(key);
    buf.extend_from_slice(value);
}

/// Decodes a framed dataflow record into `(key, value)` slices. Returns
/// `None` if the record is shorter than its header claims — a dataflow
/// map function should skip (not panic on) such records, mirroring how
/// the click/document parsers treat malformed lines.
pub fn decode_kv(record: &[u8]) -> Option<(&[u8], &[u8])> {
    let len_bytes = record.get(..4)?;
    let key_len = u32::from_be_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
    let key = record.get(4..4 + key_len)?;
    let value = &record[4 + key_len..];
    Some((key, value))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        for (k, v) in [
            (&b""[..], &b""[..]),
            (b"url", b""),
            (b"", b"value"),
            (b"/en/page00001.html", b"\x00\x00\x00\x00\x00\x00\x00\x2a"),
        ] {
            let rec = encode_kv(k, v);
            assert_eq!(decode_kv(&rec), Some((k, v)));
        }
    }

    #[test]
    fn truncated_records_rejected() {
        assert_eq!(decode_kv(b""), None);
        assert_eq!(decode_kv(b"\x00\x00"), None);
        // Header claims a 10-byte key; only 3 bytes follow.
        let mut rec = 10u32.to_be_bytes().to_vec();
        rec.extend_from_slice(b"abc");
        assert_eq!(decode_kv(&rec), None);
    }

    #[test]
    fn into_variant_clears_scratch() {
        let mut buf = vec![9u8; 32];
        encode_kv_into(&mut buf, b"k", b"v");
        assert_eq!(decode_kv(&buf), Some((&b"k"[..], &b"v"[..])));
    }
}
