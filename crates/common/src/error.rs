//! Error handling for the OPA platform.
//!
//! A single workspace-wide error enum keeps the public API surface small and
//! lets cross-crate call chains propagate failures with `?` without
//! conversion boilerplate.

use std::fmt;

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// The error type for all OPA operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A configuration value was invalid (empty cluster, zero-sized buffer,
    /// merge factor below 2, …). The payload explains which one and why.
    InvalidConfig(String),
    /// A job was submitted whose pieces are inconsistent (e.g. an
    /// incremental framework chosen for a reducer that does not implement
    /// `init/cb/fn`).
    InvalidJob(String),
    /// A simulated storage operation failed (reading an unknown spill file,
    /// double-sealing a bucket, exceeding a fixed-capacity device…).
    Storage(String),
    /// The engine detected an internal invariant violation. Seeing this is
    /// always a bug in OPA itself, never a user error.
    Internal(String),
}

impl Error {
    /// Shorthand constructor for [`Error::InvalidConfig`].
    pub fn config(msg: impl Into<String>) -> Self {
        Error::InvalidConfig(msg.into())
    }

    /// Shorthand constructor for [`Error::InvalidJob`].
    pub fn job(msg: impl Into<String>) -> Self {
        Error::InvalidJob(msg.into())
    }

    /// Shorthand constructor for [`Error::Storage`].
    pub fn storage(msg: impl Into<String>) -> Self {
        Error::Storage(msg.into())
    }

    /// Shorthand constructor for [`Error::Internal`].
    pub fn internal(msg: impl Into<String>) -> Self {
        Error::Internal(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            Error::InvalidJob(m) => write!(f, "invalid job: {m}"),
            Error::Storage(m) => write!(f, "storage error: {m}"),
            Error::Internal(m) => write!(f, "internal invariant violated: {m}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_message() {
        let e = Error::config("merge factor must be >= 2");
        assert_eq!(
            e.to_string(),
            "invalid configuration: merge factor must be >= 2"
        );
        let e = Error::internal("negative buffer fill");
        assert!(e.to_string().contains("internal invariant"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(Error::storage("x"), Error::storage("x"));
        assert_ne!(Error::storage("x"), Error::internal("x"));
    }

    #[test]
    fn error_implements_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::job("bad"));
    }
}
