//! Configuration structs mirroring the paper's Table 2.
//!
//! The same three structs parameterize both the analytical model
//! (`opa-model`) and the execution engine (`opa-core`), which is what lets
//! the `fig4a` experiment compare model predictions against simulated runs
//! under identical settings.
//!
//! | Table 2 symbol | Field |
//! |---|---|
//! | `R` | [`SystemSettings::reducers_per_node`] |
//! | `C` | [`SystemSettings::chunk_size`] |
//! | `F` | [`SystemSettings::merge_factor`] |
//! | `D` | [`WorkloadSpec::input_size`] |
//! | `K_m` | [`WorkloadSpec::km`] |
//! | `K_r` | [`WorkloadSpec::kr`] |
//! | `N` | [`HardwareSpec::nodes`] |
//! | `B_m` | [`HardwareSpec::map_buffer`] |
//! | `B_r` | [`HardwareSpec::reduce_buffer`] |

use crate::error::{Error, Result};
use crate::units::{KB, MB};
use serde::{Deserialize, Serialize};

/// Part (1) of Table 2: tunable system settings.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemSettings {
    /// `R` — number of reduce tasks per node.
    pub reducers_per_node: usize,
    /// `C` — map input chunk size in bytes (the HDFS block size).
    pub chunk_size: u64,
    /// `F` — merge factor: a background merge of the smallest `F` on-disk
    /// files fires whenever the file count reaches `2F − 1`.
    pub merge_factor: usize,
}

impl SystemSettings {
    /// Hadoop 0.20 defaults at the paper's 1/1024 evaluation scale:
    /// 64 KB chunks (64 MB full-scale), merge factor 10, 4 reducers/node.
    pub fn stock_scaled() -> Self {
        SystemSettings {
            reducers_per_node: 4,
            chunk_size: 64 * KB,
            merge_factor: 10,
        }
    }

    /// Validates the settings.
    pub fn validate(&self) -> Result<()> {
        if self.reducers_per_node == 0 {
            return Err(Error::config("R (reducers per node) must be >= 1"));
        }
        if self.chunk_size == 0 {
            return Err(Error::config("C (chunk size) must be positive"));
        }
        if self.merge_factor < 2 {
            return Err(Error::config("F (merge factor) must be >= 2"));
        }
        Ok(())
    }
}

/// Part (2) of Table 2: the workload, as the model sees it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// `D` — total job input size in bytes.
    pub input_size: u64,
    /// `K_m` — map output bytes per input byte.
    pub km: f64,
    /// `K_r` — reduce output bytes per reduce-input byte.
    pub kr: f64,
}

impl WorkloadSpec {
    /// Builds a workload description.
    pub fn new(input_size: u64, km: f64, kr: f64) -> Self {
        WorkloadSpec { input_size, km, kr }
    }

    /// Validates the description.
    pub fn validate(&self) -> Result<()> {
        if self.input_size == 0 {
            return Err(Error::config("D (input size) must be positive"));
        }
        if self.km <= 0.0 || !self.km.is_finite() {
            return Err(Error::config("K_m must be finite and positive"));
        }
        if self.kr < 0.0 || !self.kr.is_finite() {
            return Err(Error::config("K_r must be finite and non-negative"));
        }
        Ok(())
    }

    /// Total map output bytes across the job (`D · K_m`).
    pub fn map_output_bytes(&self) -> u64 {
        (self.input_size as f64 * self.km).round() as u64
    }
}

/// Part (3) of Table 2: hardware resources.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HardwareSpec {
    /// `N` — number of compute nodes in the cluster.
    pub nodes: usize,
    /// `B_m` — map-output buffer size per map task, in bytes.
    pub map_buffer: u64,
    /// `B_r` — shuffle buffer size per reduce task, in bytes.
    pub reduce_buffer: u64,
    /// Map task slots per node (4 in the paper's cluster: one per core).
    pub map_slots: usize,
    /// Reduce task slots per node (4 in the paper's cluster).
    pub reduce_slots: usize,
}

impl HardwareSpec {
    /// The paper's 10-node cluster at 1/1024 scale: `B_m`=140 KB,
    /// `B_r`=500 KB, 4 map and 4 reduce slots per node.
    pub fn paper_cluster_scaled() -> Self {
        HardwareSpec {
            nodes: 10,
            map_buffer: 140 * KB,
            reduce_buffer: 500 * KB,
            map_slots: 4,
            reduce_slots: 4,
        }
    }

    /// The same cluster at full (paper) scale, for model-only computations
    /// where nothing is executed: `B_m`=140 MB, `B_r`=500 MB.
    pub fn paper_cluster_full() -> Self {
        HardwareSpec {
            nodes: 10,
            map_buffer: 140 * MB,
            reduce_buffer: 500 * MB,
            map_slots: 4,
            reduce_slots: 4,
        }
    }

    /// Validates the resources.
    pub fn validate(&self) -> Result<()> {
        if self.nodes == 0 {
            return Err(Error::config("N (nodes) must be >= 1"));
        }
        if self.map_buffer == 0 || self.reduce_buffer == 0 {
            return Err(Error::config("B_m and B_r must be positive"));
        }
        if self.map_slots == 0 || self.reduce_slots == 0 {
            return Err(Error::config("map/reduce slots per node must be >= 1"));
        }
        Ok(())
    }
}

/// Execution-layer configuration: how much host parallelism the engine
/// may use. This is *host* concurrency (worker threads executing map
/// tasks and recording reducer work), entirely separate from the
/// simulated cluster's slots — results are bit-identical at any setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecConfig {
    /// Total threads the engine may occupy, including the caller's
    /// thread. `1` means fully sequential execution.
    pub threads: usize,
    /// Allow more threads than the host has cores. Off by default:
    /// oversubscribed workers only time-slice against each other, so the
    /// engine silently degrades toward sequential execution instead of
    /// context-thrashing (results are bit-identical either way). Tests
    /// exercising the parallel machinery on small hosts turn this on via
    /// [`ExecConfig::oversubscribed`].
    pub oversubscribe: bool,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig::sequential()
    }
}

impl ExecConfig {
    /// Single-threaded execution (the default).
    pub fn sequential() -> Self {
        ExecConfig {
            threads: 1,
            oversubscribe: false,
        }
    }

    /// One thread per available hardware core (falls back to sequential
    /// when the host refuses to say).
    pub fn available_parallelism() -> Self {
        ExecConfig {
            threads: host_parallelism(),
            oversubscribe: false,
        }
    }

    /// Explicit thread count, capped at the host's core count when the
    /// job actually runs (see [`ExecConfig::effective_threads`]).
    pub fn with_threads(threads: usize) -> Self {
        ExecConfig {
            threads,
            oversubscribe: false,
        }
    }

    /// Explicit thread count with the host-core cap disabled: exactly
    /// `threads` threads run even on a smaller host. Determinism tests
    /// use this so a 1-CPU CI runner still drives the real work-stealing
    /// machinery.
    pub fn oversubscribed(threads: usize) -> Self {
        ExecConfig {
            threads,
            oversubscribe: true,
        }
    }

    /// The thread count the engine will actually use: `threads`, capped
    /// at the host's available parallelism unless oversubscription was
    /// requested explicitly. Never below 1.
    pub fn effective_threads(&self) -> usize {
        let t = self.threads.max(1);
        if self.oversubscribe {
            t
        } else {
            t.min(host_parallelism())
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.threads == 0 {
            return Err(Error::config("threads must be >= 1"));
        }
        Ok(())
    }
}

/// Reduce-side admission policy for the INC/DINC in-memory key→state
/// tables: what happens when a key arrives and the table is full.
///
/// - [`AdmissionPolicy::Off`] is the paper's behavior (first-come
///   occupancy): the first keys to arrive keep their slots forever and
///   every later key spills. This is the default, and with it the engine
///   is byte-identical to an engine built without the admission manager.
/// - [`AdmissionPolicy::Lfu`] gates occupancy by estimated frequency: a
///   TinyLFU-style [`crate::sketch::FreqSketch`] tracks arrival counts,
///   and a newly arriving key may evict a colder resident key (the
///   victim's state is routed through the existing spill path) instead
///   of spilling itself. Decisions are pure functions of the delivered
///   data order, so the engine's bit-identical determinism across thread
///   counts is preserved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum AdmissionPolicy {
    /// First-come occupancy (the paper's behavior; default).
    #[default]
    Off,
    /// Frequency-gated admission with sketch-chosen evictions.
    Lfu,
}

impl AdmissionPolicy {
    /// Whether frequency-gated admission is active.
    pub fn is_on(&self) -> bool {
        matches!(self, AdmissionPolicy::Lfu)
    }

    /// Parses a CLI spelling: `off`, `on` (alias for `lfu`) or `lfu`.
    ///
    /// # Errors
    /// Fails on any other spelling.
    pub fn parse(s: &str) -> Result<Self> {
        match s {
            "off" => Ok(AdmissionPolicy::Off),
            "on" | "lfu" => Ok(AdmissionPolicy::Lfu),
            other => Err(Error::config(format!(
                "unknown admission policy '{other}' (expected off, on or lfu)"
            ))),
        }
    }

    /// Stable wire/CLI label (`off` / `lfu`).
    pub fn label(&self) -> &'static str {
        match self {
            AdmissionPolicy::Off => "off",
            AdmissionPolicy::Lfu => "lfu",
        }
    }
}

/// Where map-output combining happens before shuffle bytes are booked.
///
/// - [`CombineScope::Task`] is the engine's historical behavior (default):
///   each map task runs the job's [`Combiner`](../../opa_core/api/trait.Combiner.html)
///   over its own output before emitting shuffle granules. Cross-task
///   redundancy on a node is left intact.
/// - [`CombineScope::Node`] layers a node-level staging table on top:
///   granules from *all map tasks scheduled on the same simulated node*
///   are merged through the combiner in a per-node hash-indexed table and
///   flushed at deterministic scheduler-side points (node drained, or the
///   staging-byte budget exceeded), so the same key emitted by many tasks
///   of one node crosses the network once per flush instead of once per
///   task.
/// - [`CombineScope::Off`] disables even the per-task combiner for the
///   materializing frameworks (sort-merge / MR-hash), shipping raw map
///   output. The incremental frameworks fold on arrival by construction,
///   so for them `Off` behaves like `Task`.
///
/// Flush decisions are pure functions of the scheduler's event order, so
/// output and `JobOutcome` stay bit-identical at any thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CombineScope {
    /// No combining anywhere: raw map output is shuffled.
    Off,
    /// Per-map-task combining (the engine's historical behavior; default).
    #[default]
    Task,
    /// Per-task combining plus a node-level pre-shuffle staging table.
    Node,
}

impl CombineScope {
    /// Whether the per-task combiner should run inside map tasks.
    pub fn task_combining(&self) -> bool {
        !matches!(self, CombineScope::Off)
    }

    /// Whether the scheduler stages granules in the per-node table.
    pub fn is_node(&self) -> bool {
        matches!(self, CombineScope::Node)
    }

    /// Parses a CLI spelling: `off`, `task` or `node`.
    ///
    /// # Errors
    /// Fails on any other spelling.
    pub fn parse(s: &str) -> Result<Self> {
        match s {
            "off" => Ok(CombineScope::Off),
            "task" => Ok(CombineScope::Task),
            "node" => Ok(CombineScope::Node),
            other => Err(Error::config(format!(
                "unknown combine scope '{other}' (expected off, task or node)"
            ))),
        }
    }

    /// Stable wire/CLI label (`off` / `task` / `node`).
    pub fn label(&self) -> &'static str {
        match self {
            CombineScope::Off => "off",
            CombineScope::Task => "task",
            CombineScope::Node => "node",
        }
    }
}

/// The host's core count as reported by the OS (1 when unknown).
fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_config_defaults_and_validation() {
        assert_eq!(ExecConfig::default().threads, 1);
        assert!(ExecConfig::sequential().validate().is_ok());
        assert!(ExecConfig::available_parallelism().threads >= 1);
        assert!(ExecConfig::with_threads(8).validate().is_ok());
        assert!(matches!(
            ExecConfig {
                threads: 0,
                oversubscribe: false
            }
            .validate(),
            Err(Error::InvalidConfig(_))
        ));
    }

    #[test]
    fn effective_threads_caps_to_host_unless_oversubscribed() {
        let host = host_parallelism();
        // An absurd request degrades to the host's real parallelism…
        assert_eq!(
            ExecConfig::with_threads(4096).effective_threads(),
            host,
            "capped request must land on the host core count"
        );
        // …unless oversubscription is explicit.
        assert_eq!(ExecConfig::oversubscribed(4096).effective_threads(), 4096);
        // Requests at or below the host pass through untouched.
        assert_eq!(ExecConfig::with_threads(1).effective_threads(), 1);
        assert_eq!(
            ExecConfig::with_threads(host).effective_threads(),
            host.min(host_parallelism())
        );
    }

    #[test]
    fn stock_settings_validate() {
        assert!(SystemSettings::stock_scaled().validate().is_ok());
        assert!(HardwareSpec::paper_cluster_scaled().validate().is_ok());
        assert!(WorkloadSpec::new(MB, 1.0, 1.0).validate().is_ok());
    }

    #[test]
    fn invalid_merge_factor_rejected() {
        let mut s = SystemSettings::stock_scaled();
        s.merge_factor = 1;
        assert!(matches!(s.validate(), Err(Error::InvalidConfig(_))));
    }

    #[test]
    fn zero_everything_rejected() {
        let s = SystemSettings {
            reducers_per_node: 0,
            chunk_size: 0,
            merge_factor: 10,
        };
        assert!(s.validate().is_err());
        let h = HardwareSpec {
            nodes: 0,
            ..HardwareSpec::paper_cluster_scaled()
        };
        assert!(h.validate().is_err());
        assert!(WorkloadSpec::new(0, 1.0, 1.0).validate().is_err());
    }

    #[test]
    fn nan_ratios_rejected() {
        assert!(WorkloadSpec::new(MB, f64::NAN, 1.0).validate().is_err());
        assert!(WorkloadSpec::new(MB, 1.0, f64::INFINITY)
            .validate()
            .is_err());
        assert!(WorkloadSpec::new(MB, -1.0, 1.0).validate().is_err());
    }

    #[test]
    fn combine_scope_parse_and_labels() {
        assert_eq!(CombineScope::parse("off").unwrap(), CombineScope::Off);
        assert_eq!(CombineScope::parse("task").unwrap(), CombineScope::Task);
        assert_eq!(CombineScope::parse("node").unwrap(), CombineScope::Node);
        assert!(CombineScope::parse("cluster").is_err());
        assert_eq!(CombineScope::default(), CombineScope::Task);
        assert!(CombineScope::Task.task_combining());
        assert!(!CombineScope::Off.task_combining());
        assert!(CombineScope::Node.is_node());
        assert!(!CombineScope::Task.is_node());
        for s in [CombineScope::Off, CombineScope::Task, CombineScope::Node] {
            assert_eq!(CombineScope::parse(s.label()).unwrap(), s);
        }
    }

    #[test]
    fn map_output_bytes_scales_by_km() {
        let w = WorkloadSpec::new(100 * MB, 0.5, 1.0);
        assert_eq!(w.map_output_bytes(), 50 * MB);
    }

    #[test]
    fn serde_roundtrip() {
        let s = SystemSettings::stock_scaled();
        let j = serde_json_like(&s);
        assert!(j.contains("chunk_size"));
    }

    // Tiny helper: serialize via serde to a debug-ish string using the
    // `serde` Serialize impl through `serde::ser` without pulling in
    // serde_json (not in the sanctioned dependency set).
    fn serde_json_like<T: serde::Serialize>(_v: &T) -> String {
        // We only assert the type implements Serialize; field presence is
        // checked via Debug formatting.
        format!("{:?}", SystemSettings::stock_scaled())
    }
}
