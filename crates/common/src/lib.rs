//! # opa-common
//!
//! Foundation types shared by every crate in the One-Pass Analytics (OPA)
//! platform, a reproduction of *"A Platform for Scalable One-Pass Analytics
//! using MapReduce"* (SIGMOD 2011).
//!
//! This crate provides:
//!
//! - byte-oriented [`Key`]/[`Value`] record types ([`types`]),
//! - a family of pairwise-independent universal hash functions used for the
//!   recursive hash partitioning `h1, h2, h3, …` of the paper's §4
//!   ([`hash`]),
//! - configuration structs mirroring the symbols of the paper's Table 2
//!   ([`config`]),
//! - virtual-time and byte-size units ([`units`]),
//! - deterministic seeded RNG helpers ([`rng`]),
//! - SWAR/SIMD byte scanning for tokenizer hot loops ([`scan`]),
//! - the TinyLFU-style frequency sketch and membership filter behind
//!   frequency-gated admission ([`sketch`]),
//! - the canonical ⟨key, value⟩ record framing that carries one job's
//!   output into the next job's map in a dataflow ([`record`]),
//! - streaming-run shape and checkpoint cadence ([`stream`]),
//! - the fault-injection vocabulary shared by the engine and the storage
//!   substrate ([`fault`]),
//! - the shared error type ([`error`]).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod error;
pub mod fault;
pub mod hash;
pub mod record;
pub mod rng;
pub mod scan;
pub mod sketch;
pub mod stream;
pub mod types;
pub mod units;

pub use config::{
    AdmissionPolicy, CombineScope, ExecConfig, HardwareSpec, SystemSettings, WorkloadSpec,
};
pub use error::{Error, Result};
pub use fault::{FaultConfig, FaultEvent, FaultKind, FaultReport};
pub use hash::{GroupIndex, HashFamily, HashFn, SeededState, ShardedGroupIndex};
pub use record::{decode_kv, encode_kv, encode_kv_into};
pub use scan::{find_byte, tokens};
pub use sketch::{FreqSketch, KeyFilter};
pub use stream::StreamConfig;
pub use types::{BatchBuilder, Key, Pair, RecordBatch, StateBatch, StatePair, Value, INLINE_CAP};
pub use units::{ByteSize, SimDuration, SimTime, GB, KB, MB};
