//! Streaming-run configuration: micro-batch shape and checkpoint cadence.
//!
//! A stream run carves an arrival-ordered input into `batches` equal
//! record-count micro-batches and pauses between them to serve queries
//! and (optionally) write a checkpoint. All knobs are validated up front
//! — at `StreamJobBuilder` / CLI-argument construction time — so an
//! invalid cadence fails with an actionable message before any map work
//! is scheduled.

use crate::error::{Error, Result};

/// Shape of a streaming run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamConfig {
    /// Number of micro-batches the arrival-ordered input is split into.
    /// Must be at least 1; batches beyond the record count are rejected at
    /// run time (each batch must carry at least one record).
    pub batches: usize,
    /// Write a checkpoint every `n`-th batch boundary (1 = every batch).
    /// `None` disables periodic checkpoints; explicit
    /// `BatchCtl::checkpoint` calls still work.
    pub checkpoint_every: Option<usize>,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            batches: 4,
            checkpoint_every: None,
        }
    }
}

impl StreamConfig {
    /// Validates the configuration shape (record-count-independent checks).
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] naming the offending knob if
    /// `batches == 0` or `checkpoint_every == Some(0)`.
    pub fn validate(&self) -> Result<()> {
        if self.batches == 0 {
            return Err(Error::config(
                "stream batches must be at least 1 (got 0); \
                 use `--batches 1` for a single-batch run",
            ));
        }
        if self.checkpoint_every == Some(0) {
            return Err(Error::config(
                "checkpoint cadence must be at least 1 batch (got 0); \
                 omit `--checkpoint-every` to disable periodic checkpoints",
            ));
        }
        Ok(())
    }

    /// Validates the configuration against a concrete input size: every
    /// micro-batch must carry at least one record.
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] if [`StreamConfig::validate`] fails
    /// or `batches > records`.
    pub fn validate_for(&self, records: usize) -> Result<()> {
        self.validate()?;
        if self.batches > records {
            return Err(Error::config(format!(
                "stream batches ({}) exceed the input record count ({records}); \
                 every micro-batch must carry at least one record — lower \
                 `--batches` or generate a larger input",
                self.batches
            )));
        }
        Ok(())
    }

    /// Whether a checkpoint is due after completing 1-based batch `b`.
    pub fn checkpoint_due(&self, b: usize) -> bool {
        match self.checkpoint_every {
            Some(n) => n > 0 && b.is_multiple_of(n),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        StreamConfig::default().validate().unwrap();
    }

    #[test]
    fn zero_batches_rejected_with_actionable_message() {
        let cfg = StreamConfig {
            batches: 0,
            checkpoint_every: None,
        };
        let msg = cfg.validate().unwrap_err().to_string();
        assert!(msg.contains("at least 1"), "{msg}");
        assert!(msg.contains("--batches"), "{msg}");
    }

    #[test]
    fn zero_cadence_rejected() {
        let cfg = StreamConfig {
            batches: 2,
            checkpoint_every: Some(0),
        };
        let msg = cfg.validate().unwrap_err().to_string();
        assert!(msg.contains("cadence"), "{msg}");
    }

    #[test]
    fn more_batches_than_records_rejected() {
        let cfg = StreamConfig {
            batches: 10,
            checkpoint_every: None,
        };
        let msg = cfg.validate_for(3).unwrap_err().to_string();
        assert!(msg.contains("exceed the input record count"), "{msg}");
        cfg.validate_for(10).unwrap();
    }

    #[test]
    fn checkpoint_cadence_schedule() {
        let cfg = StreamConfig {
            batches: 6,
            checkpoint_every: Some(2),
        };
        let due: Vec<usize> = (1..=6).filter(|&b| cfg.checkpoint_due(b)).collect();
        assert_eq!(due, vec![2, 4, 6]);
        let off = StreamConfig {
            batches: 6,
            checkpoint_every: None,
        };
        assert!((1..=6).all(|b| !off.checkpoint_due(b)));
    }
}
