//! Fault-injection vocabulary shared across the platform.
//!
//! The engine (`opa-core`) schedules map/reduce failures and stragglers;
//! the storage substrate (`opa-simio`) injects spill-disk I/O errors. Both
//! speak the types defined here: a [`FaultConfig`] saying *how much* of
//! each fault class to inject, [`FaultEvent`]s recording *what fired and
//! when*, and a [`FaultReport`] aggregating the recovery cost a job paid.
//!
//! Every fault decision is a pure function of `(seed, kind, target,
//! attempt)` — hashed through [`crate::rng::SplitMix64`] — never of a
//! shared RNG stream, so the same seed reproduces the identical failure
//! trace regardless of scheduling interleavings or execution-layer thread
//! count.

use crate::error::{Error, Result};
use crate::units::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// How much fault injection a job run should experience. All rates are
/// probabilities in `[0, 1)`; the all-zero config (the default) disables
/// the subsystem entirely.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Seed for the deterministic per-decision hash.
    pub seed: u64,
    /// Probability that a map-task attempt fails partway through.
    pub map_failure_rate: f64,
    /// Probability that a reduce task crashes while absorbing a delivery.
    pub reduce_failure_rate: f64,
    /// Probability that a map task straggles (runs `straggler_factor`×
    /// slower and is speculatively re-executed).
    pub straggler_rate: f64,
    /// CPU slowdown factor applied to straggling map attempts (> 1).
    pub straggler_factor: f64,
    /// Probability that one spill-disk I/O operation fails and must be
    /// retried.
    pub spill_error_rate: f64,
    /// Probability that a map UDF deterministically rejects one input
    /// record (per-record poison). Unlike the crash classes above, a
    /// poisoned record is never retried: it is quarantined to the
    /// dead-letter queue with full provenance and the job completes
    /// without it. Deliberately *not* part of [`FaultConfig::uniform`] —
    /// poison removes records from the output, so it would break the
    /// "fault runs produce fault-free output" recovery invariant the
    /// crash classes guarantee.
    pub udf_poison_rate: f64,
    /// Maximum retries per failing entity before the fault plan forces
    /// success (bounds recovery work; must be ≥ 1 when any rate is set).
    pub max_retries: u32,
    /// Base retry backoff in virtual seconds; attempt `n` waits
    /// `backoff × 2ⁿ`.
    pub retry_backoff_secs: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::disabled()
    }
}

impl FaultConfig {
    /// No fault injection at all.
    pub fn disabled() -> Self {
        FaultConfig {
            seed: 0,
            map_failure_rate: 0.0,
            reduce_failure_rate: 0.0,
            straggler_rate: 0.0,
            straggler_factor: 3.0,
            spill_error_rate: 0.0,
            udf_poison_rate: 0.0,
            max_retries: 3,
            retry_backoff_secs: 1.0,
        }
    }

    /// Per-record UDF poison only: every other fault class stays off.
    /// This is the CLI's `--poison-rate` and the dead-letter-queue test
    /// configuration.
    pub fn poison(seed: u64, rate: f64) -> Self {
        FaultConfig {
            seed,
            udf_poison_rate: rate,
            ..FaultConfig::disabled()
        }
    }

    /// Every fault class at the same `rate` — the CLI's `--fault-rate`
    /// and the test harness's sweep configuration.
    pub fn uniform(seed: u64, rate: f64) -> Self {
        FaultConfig {
            seed,
            map_failure_rate: rate,
            reduce_failure_rate: rate,
            straggler_rate: rate,
            spill_error_rate: rate,
            ..FaultConfig::disabled()
        }
    }

    /// Whether any crash/straggler fault class can fire. Record poison is
    /// deliberately excluded: it needs no fault plan, no retries and no
    /// recovery machinery — see [`FaultConfig::poison_enabled`].
    pub fn enabled(&self) -> bool {
        self.map_failure_rate > 0.0
            || self.reduce_failure_rate > 0.0
            || self.straggler_rate > 0.0
            || self.spill_error_rate > 0.0
    }

    /// Whether per-record UDF poison can fire.
    pub fn poison_enabled(&self) -> bool {
        self.udf_poison_rate > 0.0
    }

    /// Checks every field for sanity.
    pub fn validate(&self) -> Result<()> {
        for (name, rate) in [
            ("map_failure_rate", self.map_failure_rate),
            ("reduce_failure_rate", self.reduce_failure_rate),
            ("straggler_rate", self.straggler_rate),
            ("spill_error_rate", self.spill_error_rate),
            ("udf_poison_rate", self.udf_poison_rate),
        ] {
            if !rate.is_finite() || !(0.0..1.0).contains(&rate) {
                return Err(Error::config(format!(
                    "fault {name} must be a probability in [0, 1), got {rate}"
                )));
            }
        }
        if !self.straggler_factor.is_finite() || self.straggler_factor <= 1.0 {
            return Err(Error::config(format!(
                "straggler_factor must be > 1, got {}",
                self.straggler_factor
            )));
        }
        if !self.retry_backoff_secs.is_finite() || self.retry_backoff_secs < 0.0 {
            return Err(Error::config(format!(
                "retry_backoff_secs must be non-negative, got {}",
                self.retry_backoff_secs
            )));
        }
        if self.enabled() && self.max_retries == 0 {
            return Err(Error::config(
                "max_retries must be ≥ 1 when fault injection is enabled",
            ));
        }
        Ok(())
    }

    /// Whether the record at global input `offset` is poisoned under this
    /// config. Pure in `(seed, offset)` — the same record poisons on every
    /// attempt, on every thread, in every interleaving, which is what
    /// makes quarantine (rather than retry) the only sane disposition.
    pub fn poisons(&self, offset: u64) -> bool {
        self.udf_poison_rate > 0.0
            && decision(self.seed, FaultKind::UdfPoison, offset, 0) < self.udf_poison_rate
    }

    /// Backoff before retry attempt `attempt` (1-based): `base × 2^(n−1)`.
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        let exp = attempt.saturating_sub(1).min(16);
        SimDuration::from_secs_f64(self.retry_backoff_secs * f64::from(1u32 << exp))
    }
}

/// The classes of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// A map-task attempt died partway through its chunk.
    MapFailure,
    /// A map task ran slow and was speculatively re-executed.
    Straggler,
    /// A reduce task crashed while absorbing a shuffle delivery.
    ReduceFailure,
    /// A spill-disk I/O operation failed and was retried.
    SpillError,
    /// A map UDF deterministically rejected one input record; the record
    /// was quarantined to the dead-letter queue instead of failing the
    /// job. `target` is the record's global input offset.
    UdfPoison,
}

/// One fault firing, for the reproducible failure trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Virtual time at which the fault fired.
    pub time: SimTime,
    /// Fault class.
    pub kind: FaultKind,
    /// The afflicted entity: chunk index for map faults, reducer index for
    /// reduce faults, operation ordinal for disk faults.
    pub target: u64,
    /// Which attempt of the entity failed (0 = first execution).
    pub attempt: u32,
}

/// Aggregated recovery cost of one job run, surfaced in `JobMetrics`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultReport {
    /// Map-task attempts that failed.
    pub map_failures: u64,
    /// Map-task re-executions scheduled after failures.
    pub map_retries: u64,
    /// Map tasks that straggled.
    pub stragglers: u64,
    /// Speculative backup attempts whose output won over a straggler's.
    pub speculative_wins: u64,
    /// Reduce-task crashes.
    pub reduce_failures: u64,
    /// Spill-disk I/O operations that failed (each retried in place).
    pub spill_io_errors: u64,
    /// Input records rejected by the map UDF and quarantined to the
    /// dead-letter queue.
    pub udf_poisoned: u64,
    /// Bytes written or shipped by work that was later thrown away.
    pub wasted_bytes: u64,
    /// CPU time burned by attempts whose results were discarded.
    pub wasted_cpu: SimDuration,
    /// Virtual time spent detecting faults, backing off and re-executing.
    pub recovery_time: SimDuration,
    /// Every fault firing, ordered by (time, kind, target, attempt).
    pub trace: Vec<FaultEvent>,
}

impl FaultReport {
    /// Whether any fault fired during the run.
    pub fn any_fired(&self) -> bool {
        !self.trace.is_empty()
    }

    /// Total retries across every fault class.
    pub fn total_retries(&self) -> u64 {
        self.map_retries + self.reduce_failures + self.spill_io_errors
    }

    /// Canonicalizes the trace ordering (events are gathered from the
    /// engine and the disk layer independently).
    pub fn sort_trace(&mut self) {
        self.trace
            .sort_by_key(|e| (e.time, e.kind, e.target, e.attempt));
    }
}

/// Hashes a fault decision identity to a uniform `f64` in `[0, 1)`.
/// Pure: depends only on the four inputs, never on call order.
pub fn decision(seed: u64, kind: FaultKind, target: u64, attempt: u64) -> f64 {
    let k = match kind {
        FaultKind::MapFailure => 0x6d61_7066u64,
        FaultKind::Straggler => 0x7374_7261u64,
        FaultKind::ReduceFailure => 0x7265_6475u64,
        FaultKind::SpillError => 0x7370_696cu64,
        FaultKind::UdfPoison => 0x706f_6973u64,
    };
    let mixed = seed
        .wrapping_add(k.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(target.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(attempt.wrapping_mul(0x94d0_49bb_1331_11eb));
    let mut rng = crate::rng::SplitMix64::new(mixed);
    rng.next();
    rng.next_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_config_is_valid_and_inert() {
        let cfg = FaultConfig::disabled();
        assert!(!cfg.enabled());
        cfg.validate().expect("disabled config is valid");
        assert_eq!(cfg, FaultConfig::default());
    }

    #[test]
    fn uniform_config_enables_every_class() {
        let cfg = FaultConfig::uniform(7, 0.1);
        assert!(cfg.enabled());
        cfg.validate().expect("uniform config is valid");
        assert_eq!(cfg.map_failure_rate, 0.1);
        assert_eq!(cfg.spill_error_rate, 0.1);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = FaultConfig::uniform(1, 0.5);
        cfg.map_failure_rate = 1.0;
        assert!(cfg.validate().is_err(), "rate 1.0 would loop forever");
        let mut cfg = FaultConfig::uniform(1, 0.5);
        cfg.straggler_rate = f64::NAN;
        assert!(cfg.validate().is_err());
        let mut cfg = FaultConfig::uniform(1, 0.5);
        cfg.straggler_factor = 1.0;
        assert!(cfg.validate().is_err(), "factor 1 is not a slowdown");
        let mut cfg = FaultConfig::uniform(1, 0.5);
        cfg.max_retries = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = FaultConfig::uniform(1, 0.5);
        cfg.retry_backoff_secs = -1.0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn backoff_doubles_per_attempt() {
        let cfg = FaultConfig::uniform(1, 0.1);
        assert_eq!(cfg.backoff(1).as_secs_f64(), 1.0);
        assert_eq!(cfg.backoff(2).as_secs_f64(), 2.0);
        assert_eq!(cfg.backoff(3).as_secs_f64(), 4.0);
    }

    #[test]
    fn decisions_are_pure_and_spread() {
        let a = decision(42, FaultKind::MapFailure, 3, 0);
        let b = decision(42, FaultKind::MapFailure, 3, 0);
        assert_eq!(a, b, "same identity, same decision");
        assert_ne!(
            decision(42, FaultKind::MapFailure, 3, 0),
            decision(42, FaultKind::Straggler, 3, 0),
            "kind participates in the hash"
        );
        // Roughly uniform across targets.
        let hits = (0..10_000)
            .filter(|&t| decision(9, FaultKind::SpillError, t, 0) < 0.25)
            .count();
        assert!((2000..3000).contains(&hits), "skewed decisions: {hits}");
    }

    #[test]
    fn poison_is_orthogonal_to_crash_classes() {
        let cfg = FaultConfig::poison(11, 0.05);
        assert!(!cfg.enabled(), "poison must not arm the crash fault plan");
        assert!(cfg.poison_enabled());
        cfg.validate().expect("poison config is valid");
        assert!(
            !FaultConfig::uniform(11, 0.2).poison_enabled(),
            "uniform() must not poison: it would break crash-recovery output identity"
        );
        let mut cfg = cfg;
        cfg.udf_poison_rate = 1.0;
        assert!(cfg.validate().is_err(), "rate 1.0 would drop every record");
    }

    #[test]
    fn poison_decisions_are_stable_per_offset() {
        let cfg = FaultConfig::poison(99, 0.1);
        let hits: Vec<u64> = (0..10_000).filter(|&o| cfg.poisons(o)).collect();
        assert!((800..1200).contains(&hits.len()), "skewed: {}", hits.len());
        for &o in &hits {
            assert!(cfg.poisons(o), "same offset, same verdict");
        }
        let other = FaultConfig::poison(100, 0.1);
        assert_ne!(
            hits,
            (0..10_000)
                .filter(|&o| other.poisons(o))
                .collect::<Vec<_>>(),
            "seed participates in the poison hash"
        );
        assert!(!FaultConfig::disabled().poisons(hits[0]));
    }

    #[test]
    fn report_counts_and_trace() {
        let mut rep = FaultReport::default();
        assert!(!rep.any_fired());
        rep.trace.push(FaultEvent {
            time: SimTime::from_secs_f64(2.0),
            kind: FaultKind::SpillError,
            target: 5,
            attempt: 0,
        });
        rep.trace.push(FaultEvent {
            time: SimTime::from_secs_f64(1.0),
            kind: FaultKind::MapFailure,
            target: 1,
            attempt: 0,
        });
        rep.sort_trace();
        assert!(rep.any_fired());
        assert_eq!(rep.trace[0].kind, FaultKind::MapFailure);
        rep.map_retries = 2;
        rep.spill_io_errors = 1;
        assert_eq!(rep.total_retries(), 3);
    }
}
