//! SWAR/SIMD byte scanning for tokenizers.
//!
//! The map-side hot loop of text workloads (word counting, trigram
//! sliding windows) spends most of its time finding delimiter bytes. The
//! scalar idiom — `record.split(|&b| b == b' ').filter(|w| !w.is_empty())`
//! — inspects one byte per iteration. [`tokens`] yields exactly the same
//! sequence of non-empty tokens but locates delimiters a word (or a SIMD
//! vector) at a time:
//!
//! - the portable default is a SWAR scan — 8 bytes per step using the
//!   classic zero-byte trick on `x ^ (delim × 0x0101…01)`;
//! - with the `simd` feature, `x86_64` uses an SSE2 compare + movemask
//!   over 16-byte vectors and `aarch64` the NEON compare + `vshrn`
//!   nibble-mask equivalent. Both are baseline ISA on their targets, so
//!   no runtime detection is needed.
//!
//! Every path reports the *first* matching position, so the token
//! sequence is identical by construction; `tests/swar_equivalence.rs`
//! property-tests all of them against the scalar split.

/// Iterator over the non-empty `delim`-separated tokens of `data`.
/// Equivalent to `data.split(|&b| b == delim).filter(|t| !t.is_empty())`.
pub fn tokens(data: &[u8], delim: u8) -> Tokens<'_> {
    Tokens {
        data,
        delim,
        pos: 0,
    }
}

/// See [`tokens`].
#[derive(Debug, Clone)]
pub struct Tokens<'a> {
    data: &'a [u8],
    delim: u8,
    pos: usize,
}

impl<'a> Iterator for Tokens<'a> {
    type Item = &'a [u8];

    #[inline]
    fn next(&mut self) -> Option<&'a [u8]> {
        let d = self.data;
        let n = d.len();
        let mut start = self.pos;
        // Delimiter runs are short in real text; skip them bytewise.
        while start < n && d[start] == self.delim {
            start += 1;
        }
        if start >= n {
            self.pos = n;
            return None;
        }
        let end = match find_byte(&d[start..], self.delim) {
            Some(off) => start + off,
            None => n,
        };
        self.pos = end;
        Some(&d[start..end])
    }
}

/// Position of the first occurrence of `needle` in `haystack`.
#[inline]
pub fn find_byte(haystack: &[u8], needle: u8) -> Option<usize> {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        return find_byte_sse2(haystack, needle);
    }
    #[cfg(all(feature = "simd", target_arch = "aarch64"))]
    {
        return find_byte_neon(haystack, needle);
    }
    #[allow(unreachable_code)]
    find_byte_swar(haystack, needle)
}

const LSB: u64 = 0x0101_0101_0101_0101;
const MSB: u64 = 0x8080_8080_8080_8080;

/// Portable SWAR scan: 8 bytes per step.
///
/// `x ^ pat` has a zero byte exactly where `x` has a `needle` byte, and
/// `(v − 0x01…) & !v & 0x80…` flags zero bytes of `v`. Borrows can leak
/// spurious flags into *more significant* bytes, but only across a true
/// zero byte — so the least significant set flag is always a real match,
/// and `trailing_zeros` reads exactly that one.
pub fn find_byte_swar(haystack: &[u8], needle: u8) -> Option<usize> {
    let pat = LSB.wrapping_mul(needle as u64);
    let mut chunks = haystack.chunks_exact(8);
    let mut base = 0usize;
    for w in &mut chunks {
        let x = u64::from_le_bytes(w.try_into().expect("chunk is 8 bytes")) ^ pat;
        let flags = x.wrapping_sub(LSB) & !x & MSB;
        if flags != 0 {
            return Some(base + (flags.trailing_zeros() / 8) as usize);
        }
        base += 8;
    }
    chunks
        .remainder()
        .iter()
        .position(|&b| b == needle)
        .map(|i| base + i)
}

/// SSE2 scan: 16 bytes per step. SSE2 is baseline on `x86_64`, so this
/// compiles to plain unprefixed vector code with no runtime dispatch.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
pub fn find_byte_sse2(haystack: &[u8], needle: u8) -> Option<usize> {
    use std::arch::x86_64::{_mm_cmpeq_epi8, _mm_loadu_si128, _mm_movemask_epi8, _mm_set1_epi8};
    let mut chunks = haystack.chunks_exact(16);
    let mut base = 0usize;
    // SAFETY: `_mm_loadu_si128` permits unaligned loads and each chunk is
    // exactly 16 readable bytes; SSE2 is unconditionally available on
    // x86_64.
    unsafe {
        let pat = _mm_set1_epi8(needle as i8);
        for w in &mut chunks {
            let v = _mm_loadu_si128(w.as_ptr() as *const _);
            let mask = _mm_movemask_epi8(_mm_cmpeq_epi8(v, pat)) as u32;
            if mask != 0 {
                return Some(base + mask.trailing_zeros() as usize);
            }
            base += 16;
        }
    }
    find_byte_swar(chunks.remainder(), needle).map(|i| base + i)
}

/// NEON scan: 16 bytes per step. NEON has no movemask; `vshrn` narrows
/// the per-byte 0xFF/0x00 compare result to a nibble per byte packed in a
/// `u64`, so `trailing_zeros / 4` recovers the first match index.
#[cfg(all(feature = "simd", target_arch = "aarch64"))]
pub fn find_byte_neon(haystack: &[u8], needle: u8) -> Option<usize> {
    use std::arch::aarch64::{
        vceqq_u8, vdupq_n_u8, vget_lane_u64, vld1q_u8, vreinterpret_u64_u8, vreinterpretq_u16_u8,
        vshrn_n_u16,
    };
    let mut chunks = haystack.chunks_exact(16);
    let mut base = 0usize;
    // SAFETY: `vld1q_u8` permits unaligned loads and each chunk is
    // exactly 16 readable bytes; NEON is baseline on aarch64.
    unsafe {
        let pat = vdupq_n_u8(needle);
        for w in &mut chunks {
            let eq = vceqq_u8(vld1q_u8(w.as_ptr()), pat);
            let nibbles = vshrn_n_u16(vreinterpretq_u16_u8(eq), 4);
            let mask = vget_lane_u64(vreinterpret_u64_u8(nibbles), 0);
            if mask != 0 {
                return Some(base + (mask.trailing_zeros() / 4) as usize);
            }
            base += 16;
        }
    }
    find_byte_swar(chunks.remainder(), needle).map(|i| base + i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_tokens(data: &[u8], delim: u8) -> Vec<Vec<u8>> {
        data.split(|&b| b == delim)
            .filter(|t| !t.is_empty())
            .map(<[u8]>::to_vec)
            .collect()
    }

    #[test]
    fn matches_split_filter_on_representative_inputs() {
        let cases: &[&[u8]] = &[
            b"",
            b" ",
            b"   ",
            b"a",
            b"a b c",
            b" leading and  double  gaps ",
            b"exactly8 exactly8",
            b"a-sixteen-byte-x token crossing the simd stride boundary here",
            b"trailing space ",
        ];
        for &case in cases {
            let got: Vec<Vec<u8>> = tokens(case, b' ').map(<[u8]>::to_vec).collect();
            assert_eq!(got, reference_tokens(case, b' '), "input {case:?}");
        }
    }

    #[test]
    fn find_byte_first_match_and_miss() {
        // 0xFF bytes next to the needle stress the SWAR borrow caveat.
        let mut data = vec![0xFFu8; 40];
        assert_eq!(find_byte(&data, b'x'), None);
        assert_eq!(find_byte_swar(&data, b'x'), None);
        data[21] = b'x';
        data[37] = b'x';
        assert_eq!(find_byte(&data, b'x'), Some(21));
        assert_eq!(find_byte_swar(&data, b'x'), Some(21));
        for pos in 0..24 {
            let mut v = vec![0u8; 24];
            v[pos] = b';';
            assert_eq!(find_byte(&v, b';'), Some(pos), "needle at {pos}");
            assert_eq!(find_byte_swar(&v, b';'), Some(pos), "needle at {pos}");
        }
    }

    #[test]
    fn delimiter_zero_works() {
        // delim = 0 makes the SWAR xor a no-op; the zero-byte trick must
        // still fire on genuine zero bytes only.
        let data = b"ab\0cd\0\0ef";
        let got: Vec<Vec<u8>> = tokens(data, 0).map(<[u8]>::to_vec).collect();
        assert_eq!(got, reference_tokens(data, 0));
    }
}
