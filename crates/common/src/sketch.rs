//! Frequency-gated admission primitives: a TinyLFU-style count-min
//! sketch with periodic halving, and a companion one-sided membership
//! filter.
//!
//! The reduce-side INC/DINC tables historically used *first-come*
//! occupancy: whatever key arrived first kept its in-memory slot and
//! every later key spilled. [`FreqSketch`] supplies the missing signal —
//! a cheap, deterministic estimate of how often each key has been seen —
//! so the admission policy can ask "is the arriving key hotter than a
//! resident one?" and evict the colder occupant instead of spilling the
//! hotter newcomer.
//!
//! Both structures share the **seeding discipline** of the
//! Misra-Gries/SpaceSaving monitors in `opa-freq`: every hash function is
//! drawn from the same fixed [`HashFamily`] seed that backs
//! [`SeededState::fixed`](crate::hash::SeededState::fixed)
//! (`0x6f70_615f_6873_6831`), at member indices that collide with neither
//! the engine's partitioning functions (`fn_at(0..=8)` and depth-indexed
//! repartitioning) nor the monitor's map hasher (`fn_at(63)`). A sketch
//! is therefore a pure function of its *touch sequence*: two reducers fed
//! the same keys in the same order hold bit-identical sketches on any
//! thread count, which is what lets admission decisions participate in
//! the engine's record/replay determinism contract.
//!
//! # Aging
//!
//! Following TinyLFU, the sketch halves every counter once the number of
//! recorded touches reaches a sample period proportional to its width
//! (the *reset* operation). Halving preserves the relative order of
//! counters — `a ≥ b ⇒ ⌊a/2⌋ ≥ ⌊b/2⌋` — so hot keys stay distinguishable
//! from cold ones while stale history decays geometrically.
//!
//! ```
//! use opa_common::sketch::FreqSketch;
//!
//! let mut s = FreqSketch::with_capacity(1024);
//! for _ in 0..10 {
//!     s.touch(42);
//! }
//! s.touch(7);
//! assert!(s.estimate(42) > s.estimate(7));
//!
//! // Byte-exact serialization round trip (checkpoint/restore path).
//! let nums = s.to_nums();
//! let back = FreqSketch::from_nums(&nums).expect("valid sketch image");
//! assert_eq!(s.to_nums(), back.to_nums());
//! ```

use crate::error::{Error, Result};
use crate::hash::{HashFamily, HashFn};

/// The fixed family seed shared with [`SeededState::fixed`]
/// (`crate::hash::SeededState::fixed`): ASCII `"opa_hsh1"`.
const FIXED_FAMILY_SEED: u64 = 0x6f70_615f_6873_6831;

/// Family member indices reserved for the sketch rows. `fn_at(63)` backs
/// the monitors' map hasher and `fn_at(0..=8)` the engine's partitioning
/// chain; 59–62 are untaken.
const ROW_FN_BASE: usize = 59;

/// Family member indices reserved for the membership-filter probes.
const FILTER_FN_BASE: usize = 57;

/// Number of count-min rows. Four rows keep the collision error of a
/// width-`w` sketch at roughly `(ops/w)⁴`-ish tail probability while the
/// whole touch path stays a handful of multiplies.
const DEPTH: usize = 4;

/// Per-counter saturation ceiling. 8-bit counters are the TinyLFU
/// compromise: admission only ever compares *relative* hotness, and the
/// periodic halving keeps live counts far from the ceiling.
const COUNTER_MAX: u8 = u8::MAX;

/// A TinyLFU-style count-min frequency sketch over 64-bit key
/// fingerprints, with periodic halving (aging).
///
/// Counters are 8-bit and saturating; [`FreqSketch::touch`] bumps one
/// counter per row and [`FreqSketch::estimate`] reads the row minimum.
/// Once the number of touches reaches the sample period (`8·width`),
/// every counter is halved and the touch count is halved with it, so the
/// sketch tracks a geometrically-weighted recent window rather than
/// all of history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FreqSketch {
    /// `DEPTH` rows of `width` counters, row-major.
    counters: Vec<u8>,
    /// Row width (power of two).
    width: usize,
    /// Touches recorded since the last halving was accounted (halved
    /// alongside the counters).
    ops: u64,
    /// Touch count that triggers a halving.
    period: u64,
    /// Per-row index functions, drawn from the fixed family.
    rows: [HashFn; DEPTH],
}

impl FreqSketch {
    /// Creates a sketch sized for roughly `expected_keys` distinct keys:
    /// the row width is the next power of two at or above
    /// `expected_keys`, floored at 64.
    pub fn with_capacity(expected_keys: usize) -> Self {
        let width = expected_keys.max(64).next_power_of_two();
        let family = HashFamily::new(FIXED_FAMILY_SEED);
        FreqSketch {
            counters: vec![0; DEPTH * width],
            width,
            ops: 0,
            period: 8 * width as u64,
            rows: std::array::from_fn(|i| family.fn_at(ROW_FN_BASE + i)),
        }
    }

    /// Row width (power of two).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Touches recorded since the last halving.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    #[inline]
    fn index(&self, row: usize, fp: u64) -> usize {
        row * self.width + (self.rows[row].hash(&fp.to_le_bytes()) as usize & (self.width - 1))
    }

    /// Records one arrival of the key with fingerprint `fp`, halving all
    /// counters when the sample period is reached. Deterministic: the
    /// sketch state is a pure function of the touch sequence.
    pub fn touch(&mut self, fp: u64) {
        for row in 0..DEPTH {
            let i = self.index(row, fp);
            if self.counters[i] < COUNTER_MAX {
                self.counters[i] += 1;
            }
        }
        self.ops += 1;
        if self.ops >= self.period {
            self.halve();
        }
    }

    /// Estimated frequency of `fp` within the current sample window: the
    /// minimum counter across rows. Never *under*-estimates the in-window
    /// count of a key (count-min property); collisions can only inflate
    /// it.
    pub fn estimate(&self, fp: u64) -> u32 {
        (0..DEPTH)
            .map(|row| u32::from(self.counters[self.index(row, fp)]))
            .min()
            .unwrap_or(0)
    }

    /// The TinyLFU reset: halves every counter (and the touch count), so
    /// history decays while the relative order of any two counters is
    /// preserved (`a ≥ b ⇒ ⌊a/2⌋ ≥ ⌊b/2⌋`).
    pub fn halve(&mut self) {
        for c in &mut self.counters {
            *c >>= 1;
        }
        self.ops >>= 1;
    }

    /// Serializes the sketch into a `u64` vector suitable for a
    /// checkpoint `Nums` section: `[width, ops, period]` header followed
    /// by the counters packed eight per word, little-endian. The encoding
    /// is byte-exact: `from_nums(to_nums())` reproduces the sketch
    /// verbatim.
    pub fn to_nums(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(3 + self.counters.len() / 8);
        out.push(self.width as u64);
        out.push(self.ops);
        out.push(self.period);
        for chunk in self.counters.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            out.push(u64::from_le_bytes(word));
        }
        out
    }

    /// Rebuilds a sketch from [`FreqSketch::to_nums`] output.
    ///
    /// # Errors
    /// Fails when the header is malformed (non-power-of-two width, wrong
    /// word count) — e.g. a corrupted or truncated checkpoint section.
    pub fn from_nums(nums: &[u64]) -> Result<Self> {
        let [width, ops, period, rest @ ..] = nums else {
            return Err(Error::storage("frequency sketch image too short"));
        };
        let width = *width as usize;
        if width < 64 || !width.is_power_of_two() {
            return Err(Error::storage(format!(
                "frequency sketch width {width} is not a power of two ≥ 64"
            )));
        }
        let total = DEPTH * width;
        if rest.len() != total / 8 {
            return Err(Error::storage(format!(
                "frequency sketch image has {} counter words, expected {}",
                rest.len(),
                total / 8
            )));
        }
        let mut counters = Vec::with_capacity(total);
        for word in rest {
            counters.extend_from_slice(&word.to_le_bytes());
        }
        let family = HashFamily::new(FIXED_FAMILY_SEED);
        Ok(FreqSketch {
            counters,
            width,
            ops: *ops,
            period: *period,
            rows: std::array::from_fn(|i| family.fn_at(ROW_FN_BASE + i)),
        })
    }
}

/// A one-sided membership filter over key fingerprints (a small Bloom
/// filter, two probes), used by the admission policy to remember which
/// keys already have bytes on disk.
///
/// The INC-hash exactness invariant — *a key's data is never split
/// between memory and disk* — requires that a key which has ever spilled
/// a tuple (or been evicted) is never admitted to the in-memory table
/// afterwards. The filter makes that check O(1): `insert` on every spill
/// or eviction, `contains` before every admission. False positives only
/// deny an admission (the tuple spills to the key's bucket exactly as it
/// would have anyway), so correctness never depends on the filter's
/// accuracy — only the amount of spilling saved does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyFilter {
    words: Vec<u64>,
    /// Bit count (power of two).
    nbits: usize,
    probes: [HashFn; 2],
}

impl KeyFilter {
    /// Creates a filter sized for roughly `expected_keys` distinct keys
    /// (8 bits per expected key, floored at 1024 bits).
    pub fn with_capacity(expected_keys: usize) -> Self {
        let nbits = (expected_keys.saturating_mul(8))
            .max(1024)
            .next_power_of_two();
        let family = HashFamily::new(FIXED_FAMILY_SEED);
        KeyFilter {
            words: vec![0; nbits / 64],
            nbits,
            probes: std::array::from_fn(|i| family.fn_at(FILTER_FN_BASE + i)),
        }
    }

    /// Bit count (power of two).
    pub fn nbits(&self) -> usize {
        self.nbits
    }

    #[inline]
    fn bit(&self, probe: usize, fp: u64) -> usize {
        self.probes[probe].hash(&fp.to_le_bytes()) as usize & (self.nbits - 1)
    }

    /// Marks `fp` as present.
    pub fn insert(&mut self, fp: u64) {
        for probe in 0..2 {
            let b = self.bit(probe, fp);
            self.words[b / 64] |= 1 << (b % 64);
        }
    }

    /// Whether `fp` may have been inserted. One-sided: `false` is
    /// definitive, `true` may be a collision.
    pub fn contains(&self, fp: u64) -> bool {
        (0..2).all(|probe| {
            let b = self.bit(probe, fp);
            self.words[b / 64] & (1 << (b % 64)) != 0
        })
    }

    /// Serializes the filter into a `u64` vector (`[nbits]` header then
    /// the bit words). Byte-exact round trip through
    /// [`KeyFilter::from_nums`].
    pub fn to_nums(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(1 + self.words.len());
        out.push(self.nbits as u64);
        out.extend_from_slice(&self.words);
        out
    }

    /// Rebuilds a filter from [`KeyFilter::to_nums`] output.
    ///
    /// # Errors
    /// Fails when the header is malformed or the word count disagrees
    /// with the declared bit count.
    pub fn from_nums(nums: &[u64]) -> Result<Self> {
        let [nbits, rest @ ..] = nums else {
            return Err(Error::storage("key filter image too short"));
        };
        let nbits = *nbits as usize;
        if nbits < 1024 || !nbits.is_power_of_two() {
            return Err(Error::storage(format!(
                "key filter bit count {nbits} is not a power of two ≥ 1024"
            )));
        }
        if rest.len() != nbits / 64 {
            return Err(Error::storage(format!(
                "key filter image has {} words, expected {}",
                rest.len(),
                nbits / 64
            )));
        }
        let family = HashFamily::new(FIXED_FAMILY_SEED);
        Ok(KeyFilter {
            words: rest.to_vec(),
            nbits,
            probes: std::array::from_fn(|i| family.fn_at(FILTER_FN_BASE + i)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_tracks_touches_without_collisions() {
        let mut s = FreqSketch::with_capacity(4096);
        for fp in 0..32u64 {
            for _ in 0..=fp {
                s.touch(fp);
            }
        }
        for fp in 0..32u64 {
            // Count-min never under-estimates within the sample window.
            assert!(u64::from(s.estimate(fp)) > fp, "fp {fp}");
        }
        assert_eq!(s.estimate(999_999), 0, "untouched key stays zero");
    }

    #[test]
    fn halving_preserves_counter_order_and_decays() {
        let mut s = FreqSketch::with_capacity(1024);
        for _ in 0..40 {
            s.touch(1); // hot
        }
        for _ in 0..10 {
            s.touch(2); // warm
        }
        s.touch(3); // cold
        let (h0, w0, c0) = (s.estimate(1), s.estimate(2), s.estimate(3));
        assert!(h0 > w0 && w0 > c0);
        s.halve();
        assert!(s.estimate(1) >= s.estimate(2));
        assert!(s.estimate(2) >= s.estimate(3));
        assert!(s.estimate(1) <= h0 && s.estimate(2) <= w0 && s.estimate(3) <= c0);
    }

    #[test]
    fn aging_fires_at_the_sample_period() {
        let mut s = FreqSketch::with_capacity(64);
        let period = 8 * s.width() as u64;
        for i in 0..period {
            s.touch(i % 16);
        }
        // The halving fired exactly once: ops reset to period/2.
        assert_eq!(s.ops(), period / 2);
        // Counters decayed below the raw touch counts.
        assert!(u64::from(s.estimate(0)) < period / 16);
    }

    #[test]
    fn counters_saturate_instead_of_wrapping() {
        let mut s = FreqSketch::with_capacity(64);
        // Stay below the sample period so no halving interferes, but far
        // above the u8 ceiling.
        for _ in 0..400 {
            s.touch(7);
        }
        assert_eq!(s.estimate(7), u32::from(COUNTER_MAX));
    }

    #[test]
    fn serialization_round_trips_byte_exact() {
        let mut s = FreqSketch::with_capacity(512);
        for i in 0..5000u64 {
            s.touch(i.wrapping_mul(0x9e37_79b9_7f4a_7c15) % 300);
        }
        let nums = s.to_nums();
        let back = FreqSketch::from_nums(&nums).expect("round trip");
        assert_eq!(s, back);
        assert_eq!(nums, back.to_nums());
    }

    #[test]
    fn malformed_images_are_rejected() {
        assert!(FreqSketch::from_nums(&[]).is_err());
        assert!(FreqSketch::from_nums(&[63, 0, 8]).is_err(), "bad width");
        assert!(
            FreqSketch::from_nums(&[64, 0, 512, 1, 2, 3]).is_err(),
            "word count mismatch"
        );
        assert!(KeyFilter::from_nums(&[]).is_err());
        assert!(KeyFilter::from_nums(&[1000]).is_err(), "bad bit count");
        assert!(KeyFilter::from_nums(&[1024, 7]).is_err(), "short words");
    }

    #[test]
    fn filter_is_one_sided() {
        let mut f = KeyFilter::with_capacity(1000);
        for fp in 0..200u64 {
            f.insert(fp);
        }
        for fp in 0..200u64 {
            assert!(f.contains(fp), "inserted fp {fp} must report present");
        }
        // Far more absent keys report absent than present at this load.
        let false_positives = (10_000..20_000u64).filter(|&fp| f.contains(fp)).count();
        assert!(
            false_positives < 1000,
            "false-positive rate implausibly high: {false_positives}/10000"
        );
    }

    #[test]
    fn filter_round_trips_byte_exact() {
        let mut f = KeyFilter::with_capacity(500);
        for fp in (0..100u64).map(|i| i * 17) {
            f.insert(fp);
        }
        let nums = f.to_nums();
        let back = KeyFilter::from_nums(&nums).expect("round trip");
        assert_eq!(f, back);
        assert_eq!(nums, back.to_nums());
    }

    #[test]
    fn sketches_are_pure_functions_of_the_touch_sequence() {
        let stream: Vec<u64> = (0..4000).map(|i| (i * i) % 97).collect();
        let mut a = FreqSketch::with_capacity(256);
        let mut b = FreqSketch::with_capacity(256);
        for &fp in &stream {
            a.touch(fp);
            b.touch(fp);
        }
        assert_eq!(a, b);
        assert_eq!(a.to_nums(), b.to_nums());
    }
}
