//! Byte-size and virtual-time units.
//!
//! The OPA engine executes the real MapReduce data flow while charging
//! *virtual* time through a cost model, so wall-clock types from `std::time`
//! are deliberately not used anywhere in the data path. [`SimTime`] is an
//! absolute instant on the simulated clock and [`SimDuration`] a span; both
//! are microsecond-granular integers so event ordering is exact and runs are
//! bit-for-bit reproducible.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// One kibibyte (1024 bytes).
pub const KB: u64 = 1024;
/// One mebibyte (1024 KiB).
pub const MB: u64 = 1024 * KB;
/// One gibibyte (1024 MiB).
pub const GB: u64 = 1024 * MB;

/// A byte count with human-readable formatting.
///
/// ```
/// use opa_common::units::{ByteSize, MB};
/// assert_eq!(ByteSize(256 * MB).to_string(), "256.00 MB");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Hash, Serialize, Deserialize,
)]
pub struct ByteSize(pub u64);

impl ByteSize {
    /// The raw number of bytes.
    #[inline]
    pub fn bytes(self) -> u64 {
        self.0
    }

    /// This size expressed in (fractional) gigabytes.
    #[inline]
    pub fn as_gb(self) -> f64 {
        self.0 as f64 / GB as f64
    }

    /// This size expressed in (fractional) megabytes.
    #[inline]
    pub fn as_mb(self) -> f64 {
        self.0 as f64 / MB as f64
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b >= GB {
            write!(f, "{:.2} GB", b as f64 / GB as f64)
        } else if b >= MB {
            write!(f, "{:.2} MB", b as f64 / MB as f64)
        } else if b >= KB {
            write!(f, "{:.2} KB", b as f64 / KB as f64)
        } else {
            write!(f, "{b} B")
        }
    }
}

impl From<u64> for ByteSize {
    fn from(b: u64) -> Self {
        ByteSize(b)
    }
}

/// An instant on the simulated clock, in microseconds since job start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Hash, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulated time, in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Hash, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The epoch: simulated time zero (job start).
    pub const ZERO: SimTime = SimTime(0);

    /// Builds an instant from fractional seconds. Negative inputs clamp to
    /// zero (cost models can produce tiny negative values from rounding).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime((s.max(0.0) * 1e6).round() as u64)
    }

    /// This instant in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The span from `earlier` to `self`; zero if `earlier` is later.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a span from fractional seconds, clamping negatives to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e6).round() as u64)
    }

    /// This span in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_size_formats_each_magnitude() {
        assert_eq!(ByteSize(512).to_string(), "512 B");
        assert_eq!(ByteSize(2 * KB).to_string(), "2.00 KB");
        assert_eq!(ByteSize(140 * MB).to_string(), "140.00 MB");
        assert_eq!(ByteSize(256 * GB).to_string(), "256.00 GB");
    }

    #[test]
    fn byte_size_fractional_views() {
        assert!((ByteSize(GB).as_gb() - 1.0).abs() < 1e-12);
        assert!((ByteSize(MB / 2).as_mb() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sim_time_roundtrips_through_seconds() {
        let t = SimTime::from_secs_f64(4860.0);
        assert!((t.as_secs_f64() - 4860.0).abs() < 1e-6);
        assert_eq!(SimTime::from_secs_f64(-3.0), SimTime::ZERO);
    }

    #[test]
    fn sim_time_arithmetic() {
        let t = SimTime::from_secs_f64(10.0);
        let d = SimDuration::from_secs_f64(2.5);
        assert_eq!((t + d).as_secs_f64(), 12.5);
        assert_eq!((t - SimTime::from_secs_f64(4.0)).as_secs_f64(), 6.0);
        // Subtraction saturates rather than panicking.
        assert_eq!(SimTime::ZERO - t, SimDuration::ZERO);
    }

    #[test]
    fn durations_sum() {
        let total: SimDuration = (1..=4).map(|i| SimDuration::from_secs_f64(i as f64)).sum();
        assert_eq!(total.as_secs_f64(), 10.0);
    }

    #[test]
    fn max_and_since() {
        let a = SimTime::from_secs_f64(3.0);
        let b = SimTime::from_secs_f64(5.0);
        assert_eq!(a.max(b), b);
        assert_eq!(b.saturating_since(a).as_secs_f64(), 2.0);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }
}
