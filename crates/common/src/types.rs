//! Record types flowing through the platform.
//!
//! MapReduce data is untyped bytes at the system level: the map function
//! emits ⟨key, value⟩ pairs and the reduce side groups by key. OPA follows
//! the paper's prototype (§5), which stores records in byte arrays rather
//! than heap objects: [`Key`] and [`Value`] keep payloads of up to
//! [`INLINE_CAP`] bytes *inline in the struct* (no heap allocation at all —
//! this covers every `from_u64` key, session ids and most trigrams) and fall
//! back to a shared [`bytes::Bytes`] buffer for larger payloads, so
//! shuffling and spilling never deep-copy. The two representations are
//! indistinguishable through the public API: `Eq`/`Ord`/`Hash` are defined
//! on the byte content, never on the representation.
//!
//! Map output is collected through [`BatchBuilder`], which appends large
//! payloads into one append-only arena per chunk; sealing the builder turns
//! the rows into offset/len views over that single allocation
//! ([`RecordBatch`]), which is the unit shuffled between mappers and
//! reducers.

use bytes::Bytes;
use std::fmt;

/// Fixed per-record bookkeeping overhead charged when accounting buffer
/// occupancy (two 32-bit length prefixes, mirroring Hadoop's IFile record
/// framing).
pub const RECORD_OVERHEAD: u64 = 8;

/// Largest payload stored inline inside a [`Key`]/[`Value`] without a heap
/// allocation. 22 bytes keeps the whole struct within 24 bytes of inline
/// storage while covering all fixed-width numeric keys (8 bytes) and the
/// common run of short text keys.
pub const INLINE_CAP: usize = 22;

/// Internal payload representation: small payloads live in the struct,
/// large ones in a shared heap buffer. All comparisons and hashing go
/// through [`Repr::as_slice`], so the two variants are indistinguishable.
#[derive(Clone)]
enum Repr {
    /// Payload of `len <= INLINE_CAP` bytes stored in-struct.
    Inline { len: u8, buf: [u8; INLINE_CAP] },
    /// Large payload in a shared allocation (possibly an arena view).
    Heap(Bytes),
}

impl Repr {
    #[inline]
    fn as_slice(&self) -> &[u8] {
        match self {
            Repr::Inline { len, buf } => &buf[..*len as usize],
            Repr::Heap(b) => b,
        }
    }

    /// Builds a representation from a borrowed slice: inline when small,
    /// one copy into a fresh allocation otherwise.
    #[inline]
    fn from_slice(s: &[u8]) -> Repr {
        if s.len() <= INLINE_CAP {
            let mut buf = [0u8; INLINE_CAP];
            buf[..s.len()].copy_from_slice(s);
            Repr::Inline {
                len: s.len() as u8,
                buf,
            }
        } else {
            Repr::Heap(Bytes::copy_from_slice(s))
        }
    }

    /// Builds a representation from an owned buffer: small payloads are
    /// inlined (dropping the buffer), large ones keep the shared handle.
    #[inline]
    fn from_bytes(b: Bytes) -> Repr {
        if b.len() <= INLINE_CAP {
            Repr::from_slice(&b)
        } else {
            Repr::Heap(b)
        }
    }
}

impl PartialEq for Repr {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Repr {}

impl PartialOrd for Repr {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Repr {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl std::hash::Hash for Repr {
    #[inline]
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl Default for Repr {
    #[inline]
    fn default() -> Self {
        Repr::Inline {
            len: 0,
            buf: [0u8; INLINE_CAP],
        }
    }
}

/// An opaque record key. Ordering is lexicographic on the raw bytes, which
/// is what the sort-merge baseline sorts by.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Key {
    repr: Repr,
}

/// An opaque record value. Ordering is lexicographic on the raw bytes
/// (used only for stable output presentation).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Value {
    repr: Repr,
}

impl Key {
    /// Builds a key from anything convertible to [`Bytes`] (e.g. `&'static
    /// str`, `Vec<u8>`, another `Bytes`). Small payloads are stored inline.
    pub fn new(b: impl Into<Bytes>) -> Self {
        Key {
            repr: Repr::from_bytes(b.into()),
        }
    }

    /// Builds a key directly from a borrowed slice — the zero-allocation
    /// path for payloads of up to [`INLINE_CAP`] bytes.
    #[inline]
    pub fn from_slice(s: &[u8]) -> Self {
        Key {
            repr: Repr::from_slice(s),
        }
    }

    /// Builds a key from a u64 in big-endian form, so numeric order matches
    /// lexicographic byte order. Used by workloads with integer keys
    /// (user-ids). Never allocates.
    #[inline]
    pub fn from_u64(v: u64) -> Self {
        Key::from_slice(&v.to_be_bytes())
    }

    /// Interprets the first 8 bytes as a big-endian u64 (the inverse of
    /// [`Key::from_u64`]). Returns `None` for short keys.
    pub fn as_u64(&self) -> Option<u64> {
        self.bytes()
            .get(..8)
            .map(|b| u64::from_be_bytes(b.try_into().expect("slice is 8 bytes")))
    }

    /// The raw key bytes.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        self.repr.as_slice()
    }

    /// Length of the key in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.bytes().len()
    }

    /// Whether the key is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bytes().is_empty()
    }

    /// Forces the heap representation even for payloads that would fit
    /// inline. Exists only so representation-independence tests can compare
    /// both variants over identical bytes; the data path never uses it.
    #[doc(hidden)]
    pub fn forced_heap(b: impl Into<Bytes>) -> Self {
        Key {
            repr: Repr::Heap(b.into()),
        }
    }
}

impl Value {
    /// Builds a value from anything convertible to [`Bytes`]. Small
    /// payloads are stored inline.
    pub fn new(b: impl Into<Bytes>) -> Self {
        Value {
            repr: Repr::from_bytes(b.into()),
        }
    }

    /// Builds a value directly from a borrowed slice — the zero-allocation
    /// path for payloads of up to [`INLINE_CAP`] bytes.
    #[inline]
    pub fn from_slice(s: &[u8]) -> Self {
        Value {
            repr: Repr::from_slice(s),
        }
    }

    /// Builds a value holding a big-endian u64 (e.g. a count). Never
    /// allocates.
    #[inline]
    pub fn from_u64(v: u64) -> Self {
        Value::from_slice(&v.to_be_bytes())
    }

    /// Interprets the first 8 bytes as a big-endian u64.
    pub fn as_u64(&self) -> Option<u64> {
        self.bytes()
            .get(..8)
            .map(|b| u64::from_be_bytes(b.try_into().expect("slice is 8 bytes")))
    }

    /// The raw value bytes.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        self.repr.as_slice()
    }

    /// Length of the value in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.bytes().len()
    }

    /// Whether the value is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bytes().is_empty()
    }

    /// Forces the heap representation even for payloads that would fit
    /// inline. Exists only so representation-independence tests can compare
    /// both variants over identical bytes; the data path never uses it.
    #[doc(hidden)]
    pub fn forced_heap(b: impl Into<Bytes>) -> Self {
        Value {
            repr: Repr::Heap(b.into()),
        }
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match std::str::from_utf8(self.bytes()) {
            Ok(s) if s.chars().all(|c| !c.is_control()) => write!(f, "Key({s:?})"),
            _ => write!(f, "Key(0x{})", hex(self.bytes())),
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match std::str::from_utf8(self.bytes()) {
            Ok(s) if s.chars().all(|c| !c.is_control()) => write!(f, "Value({s:?})"),
            _ => write!(f, "Value(0x{})", hex(self.bytes())),
        }
    }
}

/// Lower-case hex rendering into one pre-sized `String` (the Debug path —
/// no per-byte allocation).
fn hex(b: &[u8]) -> String {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    let mut s = String::with_capacity(b.len() * 2);
    for &x in b {
        s.push(DIGITS[(x >> 4) as usize] as char);
        s.push(DIGITS[(x & 0xf) as usize] as char);
    }
    s
}

impl From<&str> for Key {
    fn from(s: &str) -> Self {
        Key::from_slice(s.as_bytes())
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::from_slice(s.as_bytes())
    }
}

/// A ⟨key, value⟩ pair, the unit of map output in the classic model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pair {
    /// Grouping key.
    pub key: Key,
    /// Payload.
    pub value: Value,
}

impl Pair {
    /// Builds a pair.
    pub fn new(key: Key, value: Value) -> Self {
        Pair { key, value }
    }

    /// Serialized size used for all buffer/spill accounting: key bytes +
    /// value bytes + [`RECORD_OVERHEAD`].
    #[inline]
    pub fn size(&self) -> u64 {
        self.key.len() as u64 + self.value.len() as u64 + RECORD_OVERHEAD
    }
}

/// A ⟨key, state⟩ pair — the unit flowing through the incremental (INC/DINC)
/// frameworks after the `init()` function has collapsed raw values into
/// states (paper §4.2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StatePair {
    /// Grouping key.
    pub key: Key,
    /// Opaque serialized state produced by `init()`/`cb()`.
    pub state: Value,
}

impl StatePair {
    /// Builds a key-state pair.
    pub fn new(key: Key, state: Value) -> Self {
        StatePair { key, state }
    }

    /// Serialized size used for buffer/spill accounting.
    #[inline]
    pub fn size(&self) -> u64 {
        self.key.len() as u64 + self.state.len() as u64 + RECORD_OVERHEAD
    }
}

/// A shuffled batch of key-value pairs plus an optional cache of their
/// partition-time `h1` fingerprints (parallel to `pairs` when present).
/// The hashes are a pure cache — equality and serialization ignore them —
/// carried so reduce-side group tables can probe without re-hashing.
#[derive(Clone, Debug, Default)]
pub struct RecordBatch {
    pairs: Vec<Pair>,
    hashes: Vec<u64>,
    /// Running serialized size of `pairs` — kept on push so accounting
    /// never rescans the rows.
    size: u64,
}

impl RecordBatch {
    /// A batch over existing pairs with no cached hashes (consumers
    /// recompute on demand).
    pub fn from_pairs(pairs: Vec<Pair>) -> Self {
        let size = pairs.iter().map(Pair::size).sum();
        RecordBatch {
            pairs,
            hashes: Vec::new(),
            size,
        }
    }

    /// A batch with a full parallel hash cache.
    pub fn with_hashes(pairs: Vec<Pair>, hashes: Vec<u64>) -> Self {
        debug_assert!(hashes.is_empty() || hashes.len() == pairs.len());
        let size = pairs.iter().map(Pair::size).sum();
        RecordBatch {
            pairs,
            hashes,
            size,
        }
    }

    /// An empty batch expecting `cap` rows.
    pub fn with_capacity(cap: usize) -> Self {
        RecordBatch {
            pairs: Vec::with_capacity(cap),
            hashes: Vec::with_capacity(cap),
            size: 0,
        }
    }

    /// Appends one row with its cached hash.
    #[inline]
    pub fn push_hashed(&mut self, pair: Pair, hash: u64) {
        debug_assert_eq!(self.hashes.len(), self.pairs.len());
        self.size += pair.size();
        self.pairs.push(pair);
        self.hashes.push(hash);
    }

    /// The rows.
    #[inline]
    pub fn pairs(&self) -> &[Pair] {
        &self.pairs
    }

    /// The cached `h1` fingerprint of row `i`, if this batch carries one.
    #[inline]
    pub fn hash_at(&self, i: usize) -> Option<u64> {
        self.hashes.get(i).copied()
    }

    /// Consumes the batch, returning the rows.
    pub fn into_pairs(self) -> Vec<Pair> {
        self.pairs
    }

    /// Consumes the batch, returning rows and the (possibly empty) hash
    /// cache separately.
    pub fn into_parts(self) -> (Vec<Pair>, Vec<u64>) {
        (self.pairs, self.hashes)
    }

    /// Serialized size of all rows (accounting). O(1): maintained on push.
    pub fn bytes(&self) -> u64 {
        self.size
    }
}

impl PartialEq for RecordBatch {
    fn eq(&self, other: &Self) -> bool {
        self.pairs == other.pairs
    }
}
impl Eq for RecordBatch {}

impl std::ops::Deref for RecordBatch {
    type Target = [Pair];
    #[inline]
    fn deref(&self) -> &[Pair] {
        &self.pairs
    }
}

impl IntoIterator for RecordBatch {
    type Item = Pair;
    type IntoIter = std::vec::IntoIter<Pair>;
    fn into_iter(self) -> Self::IntoIter {
        self.pairs.into_iter()
    }
}

impl<'a> IntoIterator for &'a RecordBatch {
    type Item = &'a Pair;
    type IntoIter = std::slice::Iter<'a, Pair>;
    fn into_iter(self) -> Self::IntoIter {
        self.pairs.iter()
    }
}

/// A shuffled batch of key-state pairs (incremental frameworks), with the
/// same optional hash cache as [`RecordBatch`].
#[derive(Clone, Debug, Default)]
pub struct StateBatch {
    states: Vec<StatePair>,
    hashes: Vec<u64>,
    /// Running serialized size of `states` — kept on push so accounting
    /// never rescans the rows.
    size: u64,
}

impl StateBatch {
    /// A batch over existing states with no cached hashes.
    pub fn from_states(states: Vec<StatePair>) -> Self {
        let size = states.iter().map(StatePair::size).sum();
        StateBatch {
            states,
            hashes: Vec::new(),
            size,
        }
    }

    /// A batch with a full parallel hash cache.
    pub fn with_hashes(states: Vec<StatePair>, hashes: Vec<u64>) -> Self {
        debug_assert!(hashes.is_empty() || hashes.len() == states.len());
        let size = states.iter().map(StatePair::size).sum();
        StateBatch {
            states,
            hashes,
            size,
        }
    }

    /// An empty batch expecting `cap` rows.
    pub fn with_capacity(cap: usize) -> Self {
        StateBatch {
            states: Vec::with_capacity(cap),
            hashes: Vec::with_capacity(cap),
            size: 0,
        }
    }

    /// Appends one row with its cached hash.
    #[inline]
    pub fn push_hashed(&mut self, state: StatePair, hash: u64) {
        debug_assert_eq!(self.hashes.len(), self.states.len());
        self.size += state.size();
        self.states.push(state);
        self.hashes.push(hash);
    }

    /// The rows.
    #[inline]
    pub fn states(&self) -> &[StatePair] {
        &self.states
    }

    /// The cached `h1` fingerprint of row `i`, if this batch carries one.
    #[inline]
    pub fn hash_at(&self, i: usize) -> Option<u64> {
        self.hashes.get(i).copied()
    }

    /// Consumes the batch, returning the rows.
    pub fn into_states(self) -> Vec<StatePair> {
        self.states
    }

    /// Consumes the batch, returning rows and the (possibly empty) hash
    /// cache separately.
    pub fn into_parts(self) -> (Vec<StatePair>, Vec<u64>) {
        (self.states, self.hashes)
    }

    /// Serialized size of all rows (accounting). O(1): maintained on push.
    pub fn bytes(&self) -> u64 {
        self.size
    }
}

impl PartialEq for StateBatch {
    fn eq(&self, other: &Self) -> bool {
        self.states == other.states
    }
}
impl Eq for StateBatch {}

impl std::ops::Deref for StateBatch {
    type Target = [StatePair];
    #[inline]
    fn deref(&self) -> &[StatePair] {
        &self.states
    }
}

impl IntoIterator for StateBatch {
    type Item = StatePair;
    type IntoIter = std::vec::IntoIter<StatePair>;
    fn into_iter(self) -> Self::IntoIter {
        self.states.into_iter()
    }
}

impl<'a> IntoIterator for &'a StateBatch {
    type Item = &'a StatePair;
    type IntoIter = std::slice::Iter<'a, StatePair>;
    fn into_iter(self) -> Self::IntoIter {
        self.states.iter()
    }
}

/// One payload slot recorded by [`BatchBuilder`] before sealing: either a
/// ready inline representation or an offset/len window into the arena.
#[derive(Clone)]
enum Slot {
    Ready(Repr),
    Arena { off: u32, len: u32 },
}

/// Arena-batched map-output collector: the zero-allocation emit path.
///
/// Payloads of up to [`INLINE_CAP`] bytes become inline representations on
/// the spot; larger payloads are appended to one append-only byte arena
/// shared by the whole chunk. [`BatchBuilder::seal`] freezes the arena into
/// a single shared allocation and turns every large payload into a
/// zero-copy offset/len view over it — so a map task performs O(1) heap
/// allocations regardless of how many records it emits.
#[derive(Default)]
pub struct BatchBuilder {
    arena: Vec<u8>,
    rows: Vec<(Slot, Slot)>,
}

impl BatchBuilder {
    /// A builder expecting roughly `rows` emitted pairs.
    pub fn with_capacity(rows: usize) -> Self {
        BatchBuilder {
            arena: Vec::new(),
            rows: Vec::with_capacity(rows),
        }
    }

    #[inline]
    fn slot(&mut self, payload: &[u8]) -> Slot {
        if payload.len() <= INLINE_CAP {
            Slot::Ready(Repr::from_slice(payload))
        } else {
            let off = self.arena.len();
            assert!(
                off + payload.len() <= u32::MAX as usize,
                "map-output arena exceeds 4 GiB"
            );
            self.arena.extend_from_slice(payload);
            Slot::Arena {
                off: off as u32,
                len: payload.len() as u32,
            }
        }
    }

    /// Records one emitted ⟨key, value⟩ pair.
    #[inline]
    pub fn push(&mut self, key: &[u8], value: &[u8]) {
        let k = self.slot(key);
        let v = self.slot(value);
        self.rows.push((k, v));
    }

    /// Number of rows recorded so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no rows have been recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Freezes the arena and resolves every row into a [`Pair`] whose
    /// large payloads are zero-copy views over the shared arena.
    pub fn seal(self) -> Vec<Pair> {
        let arena = Bytes::from(self.arena);
        let resolve = |slot: Slot| -> Repr {
            match slot {
                Slot::Ready(r) => r,
                Slot::Arena { off, len } => {
                    Repr::Heap(arena.slice(off as usize..(off + len) as usize))
                }
            }
        };
        self.rows
            .into_iter()
            .map(|(k, v)| Pair::new(Key { repr: resolve(k) }, Value { repr: resolve(v) }))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_key_roundtrip_preserves_order() {
        let a = Key::from_u64(3);
        let b = Key::from_u64(200);
        let c = Key::from_u64(70_000);
        assert!(a < b && b < c, "big-endian keys must sort numerically");
        assert_eq!(b.as_u64(), Some(200));
    }

    #[test]
    fn short_key_as_u64_is_none() {
        assert_eq!(Key::from("abc").as_u64(), None);
    }

    #[test]
    fn pair_size_includes_overhead() {
        let p = Pair::new(Key::from("user1"), Value::from("click"));
        assert_eq!(p.size(), 5 + 5 + RECORD_OVERHEAD);
    }

    #[test]
    fn state_pair_size() {
        let p = StatePair::new(Key::from_u64(1), Value::new(vec![0u8; 512]));
        assert_eq!(p.size(), 8 + 512 + RECORD_OVERHEAD);
    }

    #[test]
    fn debug_renders_text_and_binary() {
        assert_eq!(format!("{:?}", Key::from("abc")), "Key(\"abc\")");
        let dbg = format!("{:?}", Key::new(vec![0u8, 1u8]));
        assert!(dbg.starts_with("Key(0x0001"), "{dbg}");
    }

    #[test]
    fn value_u64_roundtrip() {
        assert_eq!(Value::from_u64(42).as_u64(), Some(42));
    }

    #[test]
    fn clone_is_shallow() {
        // Large payloads stay heap-backed; clones share the allocation.
        let v = Value::new(vec![7u8; 1024]);
        let w = v.clone();
        assert_eq!(v.bytes().as_ptr(), w.bytes().as_ptr());
    }

    #[test]
    fn small_payloads_are_inline() {
        // At or below the cap, the representation must be inline: a clone
        // gets its own copy of the bytes (distinct addresses).
        for n in [1usize, 8, INLINE_CAP] {
            let payload: Vec<u8> = (0..n).map(|i| i as u8).collect();
            let v = Value::new(payload);
            let w = v.clone();
            assert_ne!(v.bytes().as_ptr(), w.bytes().as_ptr(), "len {n}");
            assert_eq!(v, w);
        }
    }

    #[test]
    fn inline_and_heap_representations_are_indistinguishable() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        for n in [0usize, 1, 21, 22, 23, 100] {
            let payload: Vec<u8> = (0..n).map(|i| (i * 7) as u8).collect();
            let inline_or_heap = Key::from_slice(&payload);
            // Force the heap path through an arena slice view.
            let mut builder = BatchBuilder::with_capacity(1);
            builder.push(&payload, b"");
            let via_builder = builder.seal().remove(0).key;
            assert_eq!(inline_or_heap, via_builder, "len {n}");
            assert_eq!(
                inline_or_heap.cmp(&via_builder),
                std::cmp::Ordering::Equal,
                "len {n}"
            );
            let h = |k: &Key| {
                let mut st = DefaultHasher::new();
                k.hash(&mut st);
                st.finish()
            };
            assert_eq!(h(&inline_or_heap), h(&via_builder), "len {n}");
        }
    }

    #[test]
    fn batch_builder_shares_one_arena() {
        let big_a = vec![1u8; 100];
        let big_b = vec![2u8; 200];
        let mut b = BatchBuilder::with_capacity(3);
        b.push(&big_a, b"x"); // large key, inline value
        b.push(b"k", &big_b); // inline key, large value
        b.push(b"small", b"tiny"); // fully inline row
        let pairs = b.seal();
        assert_eq!(pairs.len(), 3);
        assert_eq!(pairs[0].key.bytes(), &big_a[..]);
        assert_eq!(pairs[1].value.bytes(), &big_b[..]);
        assert_eq!(pairs[2].key.bytes(), b"small");
        // The two large payloads are views over the same allocation.
        let a_ptr = pairs[0].key.bytes().as_ptr();
        let b_ptr = pairs[1].value.bytes().as_ptr();
        assert_eq!(unsafe { a_ptr.add(100) }, b_ptr, "contiguous arena views");
    }

    #[test]
    fn record_batch_equality_ignores_hash_cache() {
        let pairs = vec![Pair::new(Key::from_u64(1), Value::from_u64(2))];
        let plain = RecordBatch::from_pairs(pairs.clone());
        let hashed = RecordBatch::with_hashes(pairs, vec![0xdead_beef]);
        assert_eq!(plain, hashed);
        assert_eq!(hashed.hash_at(0), Some(0xdead_beef));
        assert_eq!(plain.hash_at(0), None);
    }
}
