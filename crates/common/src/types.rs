//! Record types flowing through the platform.
//!
//! MapReduce data is untyped bytes at the system level: the map function
//! emits ⟨key, value⟩ pairs and the reduce side groups by key. OPA follows
//! the paper's prototype (§5), which stores records in byte arrays rather
//! than heap objects, by backing [`Key`] and [`Value`] with [`bytes::Bytes`]
//! so shuffling and spilling never deep-copy payloads.

use bytes::Bytes;
use std::fmt;

/// Fixed per-record bookkeeping overhead charged when accounting buffer
/// occupancy (two 32-bit length prefixes, mirroring Hadoop's IFile record
/// framing).
pub const RECORD_OVERHEAD: u64 = 8;

/// An opaque record key. Ordering is lexicographic on the raw bytes, which
/// is what the sort-merge baseline sorts by.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Key(pub Bytes);

/// An opaque record value.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Value(pub Bytes);

impl Key {
    /// Builds a key from anything convertible to [`Bytes`] (e.g. `&'static
    /// str`, `Vec<u8>`, another `Bytes`).
    pub fn new(b: impl Into<Bytes>) -> Self {
        Key(b.into())
    }

    /// Builds a key from a u64 in big-endian form, so numeric order matches
    /// lexicographic byte order. Used by workloads with integer keys
    /// (user-ids).
    pub fn from_u64(v: u64) -> Self {
        Key(Bytes::copy_from_slice(&v.to_be_bytes()))
    }

    /// Interprets the first 8 bytes as a big-endian u64 (the inverse of
    /// [`Key::from_u64`]). Returns `None` for short keys.
    pub fn as_u64(&self) -> Option<u64> {
        self.0
            .get(..8)
            .map(|b| u64::from_be_bytes(b.try_into().expect("slice is 8 bytes")))
    }

    /// The raw key bytes.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        &self.0
    }

    /// Length of the key in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the key is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Value {
    /// Builds a value from anything convertible to [`Bytes`].
    pub fn new(b: impl Into<Bytes>) -> Self {
        Value(b.into())
    }

    /// Builds a value holding a big-endian u64 (e.g. a count).
    pub fn from_u64(v: u64) -> Self {
        Value(Bytes::copy_from_slice(&v.to_be_bytes()))
    }

    /// Interprets the first 8 bytes as a big-endian u64.
    pub fn as_u64(&self) -> Option<u64> {
        self.0
            .get(..8)
            .map(|b| u64::from_be_bytes(b.try_into().expect("slice is 8 bytes")))
    }

    /// The raw value bytes.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        &self.0
    }

    /// Length of the value in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the value is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match std::str::from_utf8(&self.0) {
            Ok(s) if s.chars().all(|c| !c.is_control()) => write!(f, "Key({s:?})"),
            _ => write!(f, "Key(0x{})", hex(&self.0)),
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match std::str::from_utf8(&self.0) {
            Ok(s) if s.chars().all(|c| !c.is_control()) => write!(f, "Value({s:?})"),
            _ => write!(f, "Value(0x{})", hex(&self.0)),
        }
    }
}

fn hex(b: &[u8]) -> String {
    b.iter().map(|x| format!("{x:02x}")).collect()
}

impl From<&str> for Key {
    fn from(s: &str) -> Self {
        Key(Bytes::copy_from_slice(s.as_bytes()))
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value(Bytes::copy_from_slice(s.as_bytes()))
    }
}

/// A ⟨key, value⟩ pair, the unit of map output in the classic model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pair {
    /// Grouping key.
    pub key: Key,
    /// Payload.
    pub value: Value,
}

impl Pair {
    /// Builds a pair.
    pub fn new(key: Key, value: Value) -> Self {
        Pair { key, value }
    }

    /// Serialized size used for all buffer/spill accounting: key bytes +
    /// value bytes + [`RECORD_OVERHEAD`].
    #[inline]
    pub fn size(&self) -> u64 {
        self.key.len() as u64 + self.value.len() as u64 + RECORD_OVERHEAD
    }
}

/// A ⟨key, state⟩ pair — the unit flowing through the incremental (INC/DINC)
/// frameworks after the `init()` function has collapsed raw values into
/// states (paper §4.2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StatePair {
    /// Grouping key.
    pub key: Key,
    /// Opaque serialized state produced by `init()`/`cb()`.
    pub state: Value,
}

impl StatePair {
    /// Builds a key-state pair.
    pub fn new(key: Key, state: Value) -> Self {
        StatePair { key, state }
    }

    /// Serialized size used for buffer/spill accounting.
    #[inline]
    pub fn size(&self) -> u64 {
        self.key.len() as u64 + self.state.len() as u64 + RECORD_OVERHEAD
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_key_roundtrip_preserves_order() {
        let a = Key::from_u64(3);
        let b = Key::from_u64(200);
        let c = Key::from_u64(70_000);
        assert!(a < b && b < c, "big-endian keys must sort numerically");
        assert_eq!(b.as_u64(), Some(200));
    }

    #[test]
    fn short_key_as_u64_is_none() {
        assert_eq!(Key::from("abc").as_u64(), None);
    }

    #[test]
    fn pair_size_includes_overhead() {
        let p = Pair::new(Key::from("user1"), Value::from("click"));
        assert_eq!(p.size(), 5 + 5 + RECORD_OVERHEAD);
    }

    #[test]
    fn state_pair_size() {
        let p = StatePair::new(Key::from_u64(1), Value::new(vec![0u8; 512]));
        assert_eq!(p.size(), 8 + 512 + RECORD_OVERHEAD);
    }

    #[test]
    fn debug_renders_text_and_binary() {
        assert_eq!(format!("{:?}", Key::from("abc")), "Key(\"abc\")");
        let dbg = format!("{:?}", Key::new(vec![0u8, 1u8]));
        assert!(dbg.starts_with("Key(0x0001"), "{dbg}");
    }

    #[test]
    fn value_u64_roundtrip() {
        assert_eq!(Value::from_u64(42).as_u64(), Some(42));
    }

    #[test]
    fn clone_is_shallow() {
        // Bytes clones share the same backing allocation.
        let v = Value::new(vec![7u8; 1024]);
        let w = v.clone();
        assert_eq!(v.bytes().as_ptr(), w.bytes().as_ptr());
    }
}
