//! Deterministic random number generation.
//!
//! Workload generators and the hash family need reproducible randomness that
//! does not depend on any external crate's version-to-version stream changes,
//! so the primitive generator (SplitMix64) is implemented here and used
//! throughout.

/// SplitMix64: a tiny, fast, well-distributed PRNG with a 64-bit state.
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators" (OOPSLA'14). Stable output forever, unlike `StdRng`.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniform bits.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` via multiply-high (no modulo bias worth
    /// caring about at 64 bits).
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        (((self.next() as u128) * (bound as u128)) >> 64) as u64
    }

    /// Uniform f64 in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // First outputs for seed 0 (known-good SplitMix64 vector).
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next(), 0xe220a8397b1dcdaf);
        assert_eq!(sm.next(), 0x6e789e6aa1b965f4);
        assert_eq!(sm.next(), 0x06c45d188009454f);
    }

    #[test]
    fn next_below_is_in_range_and_spread() {
        let mut sm = SplitMix64::new(9);
        let mut hits = [0usize; 10];
        for _ in 0..10_000 {
            let v = sm.next_below(10);
            hits[v as usize] += 1;
        }
        for &h in &hits {
            assert!((800..1200).contains(&h), "uneven: {hits:?}");
        }
    }

    #[test]
    fn next_f64_unit_interval() {
        let mut sm = SplitMix64::new(123);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f = sm.next_f64();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(77);
        let mut b = SplitMix64::new(77);
        for _ in 0..64 {
            assert_eq!(a.next(), b.next());
        }
    }
}
