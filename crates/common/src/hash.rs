//! Universal hashing.
//!
//! The paper's hash framework (§4.1) relies on *a series of independent hash
//! functions* `h1, h2, h3, …`: `h1` partitions map output across reducers,
//! `h2` splits a reducer's input into buckets, `h3` performs in-memory
//! group-by, `h4…` drive recursive partitioning. Independence matters — if
//! `h2` and `h3` were correlated, every bucket would collapse into a few
//! hash-table slots.
//!
//! We implement a Carter–Wegman style family: the key bytes are first
//! compressed to a 64-bit fingerprint with a seeded polynomial (distinct odd
//! multiplier per function), then diffused through the SplitMix64 finalizer,
//! which is a bijection on `u64`. Each [`HashFn`] draws its parameters from
//! an independent stream of a seeded PCG, so `HashFamily::new(seed).fn_at(i)`
//! is stable across runs and platforms.

use crate::rng::SplitMix64;

/// One member of the hash family. Cheap to copy; hashing allocates nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashFn {
    /// Odd multiplier for the byte-polynomial compression stage.
    mul: u64,
    /// Additive seed mixed into the initial accumulator.
    add: u64,
    /// Post-compression xor mask, distinct per function.
    mask: u64,
    /// Cached powers `mul²..mul⁴` (mod 2⁶⁴) for the 4-word unrolled
    /// polynomial step. Pure functions of `mul`, precomputed at
    /// construction so the hot loop carries no serial multiply chain.
    mul2: u64,
    mul3: u64,
    mul4: u64,
}

impl HashFn {
    fn from_params(mul: u64, add: u64, mask: u64) -> Self {
        let mul2 = mul.wrapping_mul(mul);
        HashFn {
            mul,
            add,
            mask,
            mul2,
            mul3: mul2.wrapping_mul(mul),
            mul4: mul2.wrapping_mul(mul2),
        }
    }

    /// Hashes raw bytes to a 64-bit fingerprint.
    ///
    /// SWAR-style 4-lane unroll of the byte polynomial: by Horner's rule,
    /// four steps of `acc ← acc·m + vᵢ` equal
    /// `acc·m⁴ + v₀·m³ + v₁·m² + v₂·m + v₃`, exactly, in the wrapping
    /// arithmetic of `Z/2⁶⁴` — so the four word multiplies become
    /// independent and the serial dependency chain shrinks from four
    /// multiplies per 32 bytes to one. Bit-identical to
    /// [`HashFn::hash_reference`] (property-tested in
    /// `tests/swar_equivalence.rs`).
    #[inline]
    pub fn hash(&self, data: &[u8]) -> u64 {
        let mut acc = self.add ^ (data.len() as u64).wrapping_mul(self.mul);
        let mut blocks = data.chunks_exact(32);
        for b in &mut blocks {
            let v0 = u64::from_le_bytes(b[..8].try_into().expect("8 bytes"));
            let v1 = u64::from_le_bytes(b[8..16].try_into().expect("8 bytes"));
            let v2 = u64::from_le_bytes(b[16..24].try_into().expect("8 bytes"));
            let v3 = u64::from_le_bytes(b[24..].try_into().expect("8 bytes"));
            acc = acc
                .wrapping_mul(self.mul4)
                .wrapping_add(v0.wrapping_mul(self.mul3))
                .wrapping_add(v1.wrapping_mul(self.mul2))
                .wrapping_add(v2.wrapping_mul(self.mul))
                .wrapping_add(v3);
        }
        // Consume remaining 8-byte words, then the tail.
        let mut chunks = blocks.remainder().chunks_exact(8);
        for w in &mut chunks {
            let v = u64::from_le_bytes(w.try_into().expect("chunk is 8 bytes"));
            acc = acc.wrapping_mul(self.mul).wrapping_add(v);
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            acc = acc
                .wrapping_mul(self.mul)
                .wrapping_add(u64::from_le_bytes(tail));
        }
        finalize(acc ^ self.mask)
    }

    /// The scalar reference implementation of [`HashFn::hash`]: one
    /// 8-byte word per polynomial step, no unrolling. This is the
    /// specification the fast path must match bit-for-bit; it exists so
    /// equivalence tests compare against an independent implementation
    /// rather than the optimized code against itself.
    pub fn hash_reference(&self, data: &[u8]) -> u64 {
        let mut acc = self.add ^ (data.len() as u64).wrapping_mul(self.mul);
        let mut chunks = data.chunks_exact(8);
        for w in &mut chunks {
            let v = u64::from_le_bytes(w.try_into().expect("chunk is 8 bytes"));
            acc = acc.wrapping_mul(self.mul).wrapping_add(v);
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            acc = acc
                .wrapping_mul(self.mul)
                .wrapping_add(u64::from_le_bytes(tail));
        }
        finalize(acc ^ self.mask)
    }

    /// Hashes bytes into one of `m` buckets (`m > 0`).
    #[inline]
    pub fn bucket(&self, data: &[u8], m: usize) -> usize {
        bucket_of(self.hash(data), m)
    }
}

/// Maps a precomputed 64-bit fingerprint into one of `m` buckets — the
/// multiply-high mapping behind [`HashFn::bucket`], split out so the hash
/// can be computed once and reused for both partitioning and group-table
/// probes. `bucket_of(h.hash(k), m) == h.bucket(k, m)` bit-identically.
#[inline]
pub fn bucket_of(hash: u64, m: usize) -> usize {
    debug_assert!(m > 0, "bucket count must be positive");
    // Multiply-high maps the uniform u64 to [0, m) with less bias than
    // a modulo and no division.
    (((hash as u128) * (m as u128)) >> 64) as usize
}

/// SplitMix64 finalizer: a full-avalanche bijection on `u64`.
#[inline]
fn finalize(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// A reproducible family of independent hash functions.
///
/// ```
/// use opa_common::hash::HashFamily;
/// let fam = HashFamily::new(42);
/// let h1 = fam.fn_at(0);
/// let h2 = fam.fn_at(1);
/// assert_ne!(h1.hash(b"user-17"), h2.hash(b"user-17"));
/// // Deterministic across instantiations:
/// assert_eq!(h1.hash(b"x"), HashFamily::new(42).fn_at(0).hash(b"x"));
/// ```
#[derive(Debug, Clone)]
pub struct HashFamily {
    seed: u64,
}

impl HashFamily {
    /// Creates a family from a seed. The same seed always yields the same
    /// functions.
    pub fn new(seed: u64) -> Self {
        HashFamily { seed }
    }

    /// Returns the `i`-th function of the family (`h_{i+1}` in the paper's
    /// notation). Functions at distinct indices are independent.
    pub fn fn_at(&self, i: usize) -> HashFn {
        // Derive three parameters from an index-keyed SplitMix stream.
        let mut sm = SplitMix64::new(self.seed ^ (i as u64).wrapping_mul(0x9e3779b97f4a7c15));
        let mul = sm.next() | 1; // multiplier must be odd
        let add = sm.next();
        let mask = sm.next();
        HashFn::from_params(mul, add, mask)
    }
}

/// A deterministic seeded [`std::hash::BuildHasher`] drawn from the same
/// Carter–Wegman family as [`HashFn`], replacing `RandomState` in every
/// group-by `HashMap`. Two wins over SipHash-with-random-keys: the
/// polynomial+SplitMix pipeline is markedly cheaper per probe, and the
/// seed is fixed, so any incidental iteration over such a map is
/// reproducible across runs and platforms. Output determinism never rests
/// on this — every group-by table in the engine pairs the map with an
/// insertion-ordered `Vec` — but reproducible iteration removes a whole
/// class of latent nondeterminism.
#[derive(Debug, Clone, Copy)]
pub struct SeededState {
    f: HashFn,
}

impl SeededState {
    /// A build-hasher derived from an explicit hash function.
    pub fn from_fn(f: HashFn) -> Self {
        SeededState { f }
    }

    /// The fixed engine-wide instance used for group-by tables whose
    /// call sites have no `HashFamily` in scope. The seed is arbitrary
    /// but pinned; it is deliberately distinct from the partitioning
    /// functions `h1..h4` (family index 63) so table layout cannot
    /// correlate with partitioning.
    pub fn fixed() -> Self {
        SeededState {
            f: HashFamily::new(0x6f70_615f_6873_6831).fn_at(63),
        }
    }
}

impl Default for SeededState {
    fn default() -> Self {
        SeededState::fixed()
    }
}

impl std::hash::BuildHasher for SeededState {
    type Hasher = SeededHasher;
    #[inline]
    fn build_hasher(&self) -> SeededHasher {
        SeededHasher {
            acc: self.f.add,
            mul: self.f.mul,
            mask: self.f.mask,
        }
    }
}

/// Streaming hasher behind [`SeededState`]: the same byte-polynomial
/// compression as [`HashFn::hash`], folded word-at-a-time over whatever
/// the `Hash` impl writes, finished with the SplitMix64 bijection.
#[derive(Debug, Clone)]
pub struct SeededHasher {
    acc: u64,
    mul: u64,
    mask: u64,
}

impl std::hash::Hasher for SeededHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for w in &mut chunks {
            let v = u64::from_le_bytes(w.try_into().expect("chunk is 8 bytes"));
            self.acc = self.acc.wrapping_mul(self.mul).wrapping_add(v);
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.acc = self
                .acc
                .wrapping_mul(self.mul)
                .wrapping_add(u64::from_le_bytes(tail))
                .wrapping_add(rem.len() as u64);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.acc = self.acc.wrapping_mul(self.mul).wrapping_add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.write_u64(v as u64 ^ 0x9e37);
    }

    #[inline]
    fn finish(&self) -> u64 {
        finalize(self.acc ^ self.mask)
    }
}

/// Sentinel marking an empty [`GroupIndex`] slot.
const EMPTY: u32 = u32::MAX;

/// A minimal open-addressing index from a precomputed 64-bit fingerprint
/// to a dense row id — the probe side of the engine's insertion-ordered
/// group-by pattern (`Vec<(Key, V)>` plus an index).
///
/// Unlike `HashMap<Key, usize>` it stores **no keys at all**: callers keep
/// their rows in the companion `Vec` and supply an equality closure that
/// compares against `rows[candidate]`. That removes the per-distinct-key
/// `Key` clone the old pattern paid, and — because the caller passes the
/// fingerprint — lets the partition-time `h1` hash be computed once and
/// carried all the way into the reduce-table probe. The table never
/// iterates, so its layout cannot influence output order.
#[derive(Debug, Clone, Default)]
pub struct GroupIndex {
    /// Parallel arrays: fingerprint and row id per slot (`EMPTY` = free).
    fps: Vec<u64>,
    rows: Vec<u32>,
    /// Slot mask (`slots.len() - 1`, capacity is a power of two).
    mask: usize,
    len: usize,
}

impl GroupIndex {
    /// An index expecting roughly `cap` distinct rows.
    pub fn with_capacity(cap: usize) -> Self {
        let slots = (cap.max(4) * 8 / 7).next_power_of_two();
        GroupIndex {
            fps: vec![0; slots],
            rows: vec![EMPTY; slots],
            mask: slots - 1,
            len: 0,
        }
    }

    /// Number of rows indexed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Looks up the row whose fingerprint is `fp` and for which `eq`
    /// confirms a true key match (guarding against fingerprint
    /// collisions).
    #[inline]
    pub fn get(&self, fp: u64, mut eq: impl FnMut(usize) -> bool) -> Option<usize> {
        if self.rows.is_empty() {
            // A `Default` index has no slots yet; `insert` grows it lazily.
            return None;
        }
        let mut slot = (fp as usize) & self.mask;
        loop {
            let row = self.rows[slot];
            if row == EMPTY {
                return None;
            }
            if self.fps[slot] == fp && eq(row as usize) {
                return Some(row as usize);
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Inserts a fingerprint → row mapping. The caller has already
    /// established via [`GroupIndex::get`] that the key is absent.
    #[inline]
    pub fn insert(&mut self, fp: u64, row: usize) {
        debug_assert!(row < EMPTY as usize);
        if (self.len + 1) * 8 > (self.mask + 1) * 7 {
            self.grow();
        }
        self.insert_slot(fp, row as u32);
        self.len += 1;
    }

    #[inline]
    fn insert_slot(&mut self, fp: u64, row: u32) {
        let mut slot = (fp as usize) & self.mask;
        while self.rows[slot] != EMPTY {
            slot = (slot + 1) & self.mask;
        }
        self.fps[slot] = fp;
        self.rows[slot] = row;
    }

    fn grow(&mut self) {
        let new_slots = (self.mask + 1) * 2;
        let old_fps = std::mem::replace(&mut self.fps, vec![0; new_slots]);
        let old_rows = std::mem::replace(&mut self.rows, vec![EMPTY; new_slots]);
        self.mask = new_slots - 1;
        for (fp, row) in old_fps.into_iter().zip(old_rows) {
            if row != EMPTY {
                self.insert_slot(fp, row);
            }
        }
    }

    /// Drops every entry, keeping the allocation.
    pub fn clear(&mut self) {
        self.fps.fill(0);
        self.rows.fill(EMPTY);
        self.len = 0;
    }

    /// Removes the mapping `fp → row`, restoring the linear-probe
    /// invariant with backward-shift deletion (no tombstones, so probe
    /// chains never grow from deletions). Returns whether the mapping
    /// existed. Deterministic: the resulting slot layout is a pure
    /// function of the insert/remove sequence.
    pub fn remove(&mut self, fp: u64, row: usize) -> bool {
        if self.rows.is_empty() {
            return false;
        }
        let mut slot = (fp as usize) & self.mask;
        loop {
            let r = self.rows[slot];
            if r == EMPTY {
                return false;
            }
            if self.fps[slot] == fp && r as usize == row {
                break;
            }
            slot = (slot + 1) & self.mask;
        }
        // Backward-shift: walk the cluster after `slot`; any entry whose
        // probe path passes through the vacated slot moves back into it.
        let mut hole = slot;
        let mut probe = slot;
        loop {
            probe = (probe + 1) & self.mask;
            if self.rows[probe] == EMPTY {
                break;
            }
            let ideal = (self.fps[probe] as usize) & self.mask;
            if (probe.wrapping_sub(ideal) & self.mask) >= (probe.wrapping_sub(hole) & self.mask) {
                self.fps[hole] = self.fps[probe];
                self.rows[hole] = self.rows[probe];
                hole = probe;
            }
        }
        self.fps[hole] = 0;
        self.rows[hole] = EMPTY;
        self.len -= 1;
        true
    }

    /// Rewrites the mapping `fp → old_row` to point at `new_row` (the
    /// caller moved the row in its companion `Vec`, e.g. via
    /// `swap_remove`). Returns whether the mapping existed.
    pub fn reindex(&mut self, fp: u64, old_row: usize, new_row: usize) -> bool {
        debug_assert!(new_row < EMPTY as usize);
        if self.rows.is_empty() {
            return false;
        }
        let mut slot = (fp as usize) & self.mask;
        loop {
            let r = self.rows[slot];
            if r == EMPTY {
                return false;
            }
            if self.fps[slot] == fp && r as usize == old_row {
                self.rows[slot] = new_row as u32;
                return true;
            }
            slot = (slot + 1) & self.mask;
        }
    }
}

/// Number of shards in a [`ShardedGroupIndex`] (power of two).
pub const GROUP_SHARDS: usize = 8;

/// Which shard a fingerprint belongs to.
///
/// The shard selector reads the *middle* bits of the fingerprint: the top
/// bits are already spoken for by the multiply-high partitioning
/// ([`bucket_of`] — within one reducer they are constrained to that
/// reducer's interval, so they would collapse every key into one shard),
/// and the low bits index [`GroupIndex`] slots. Bits 29..32 are
/// independent of both for every table size the engine builds.
#[inline]
fn shard_of(fp: u64) -> usize {
    ((fp >> 29) as usize) & (GROUP_SHARDS - 1)
}

/// A [`GroupIndex`] partitioned into [`GROUP_SHARDS`] independent shards
/// by the carried h1 fingerprint.
///
/// Same contract as `GroupIndex` — fingerprint → dense row id, rows live
/// in the caller's insertion-ordered `Vec` — but the probe structure is
/// split so each shard stays small: growth rehashes one shard (1/8 of the
/// keys) instead of stalling on the whole table, `clear` touches only the
/// slots of shards that were used, and distinct shards never share cache
/// lines, so concurrent read-only probes from different worker threads
/// cannot false-share.
///
/// Determinism: the shard of a key is a pure function of its fingerprint
/// (data, not schedule), row ids are assigned by the caller in arrival
/// order, and neither shards nor slots are ever iterated — the "merge" of
/// the shards at seal time is simply the caller walking its global
/// arrival-ordered row `Vec`. No steal order or thread interleaving can
/// reach the output through this structure.
#[derive(Debug, Clone, Default)]
pub struct ShardedGroupIndex {
    shards: [GroupIndex; GROUP_SHARDS],
    len: usize,
}

impl ShardedGroupIndex {
    /// An index expecting roughly `cap` distinct rows across all shards.
    pub fn with_capacity(cap: usize) -> Self {
        ShardedGroupIndex {
            shards: std::array::from_fn(|_| GroupIndex::with_capacity(cap / GROUP_SHARDS + 1)),
            len: 0,
        }
    }

    /// Number of rows indexed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Looks up the row whose fingerprint is `fp` and for which `eq`
    /// confirms a true key match.
    #[inline]
    pub fn get(&self, fp: u64, eq: impl FnMut(usize) -> bool) -> Option<usize> {
        self.shards[shard_of(fp)].get(fp, eq)
    }

    /// Inserts a fingerprint → row mapping. The caller has already
    /// established via [`ShardedGroupIndex::get`] that the key is absent.
    #[inline]
    pub fn insert(&mut self, fp: u64, row: usize) {
        self.shards[shard_of(fp)].insert(fp, row);
        self.len += 1;
    }

    /// Drops every entry, keeping the allocations.
    pub fn clear(&mut self) {
        for shard in &mut self.shards {
            if !shard.is_empty() {
                shard.clear();
            }
        }
        self.len = 0;
    }

    /// Removes the mapping `fp → row` (see [`GroupIndex::remove`]).
    /// Returns whether the mapping existed.
    pub fn remove(&mut self, fp: u64, row: usize) -> bool {
        let removed = self.shards[shard_of(fp)].remove(fp, row);
        if removed {
            self.len -= 1;
        }
        removed
    }

    /// Rewrites the mapping `fp → old_row` to `new_row` (see
    /// [`GroupIndex::reindex`]). Returns whether the mapping existed.
    pub fn reindex(&mut self, fp: u64, old_row: usize, new_row: usize) -> bool {
        self.shards[shard_of(fp)].reindex(fp, old_row, new_row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic_across_instances() {
        let a = HashFamily::new(7).fn_at(3);
        let b = HashFamily::new(7).fn_at(3);
        for k in 0..100u64 {
            assert_eq!(a.hash(&k.to_le_bytes()), b.hash(&k.to_le_bytes()));
        }
    }

    #[test]
    fn distinct_indices_give_distinct_functions() {
        let fam = HashFamily::new(1);
        let h0 = fam.fn_at(0);
        let h1 = fam.fn_at(1);
        let differing = (0..1000u64)
            .filter(|k| h0.hash(&k.to_le_bytes()) != h1.hash(&k.to_le_bytes()))
            .count();
        assert!(differing > 990, "functions nearly identical: {differing}");
    }

    #[test]
    fn buckets_are_roughly_balanced() {
        let h = HashFamily::new(99).fn_at(0);
        let m = 16;
        let mut counts = vec![0usize; m];
        let n = 64_000u64;
        for k in 0..n {
            counts[h.bucket(&k.to_le_bytes(), m)] += 1;
        }
        let expect = n as usize / m;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expect as f64).abs() < expect as f64 * 0.1,
                "bucket {i} holds {c}, expected ~{expect}"
            );
        }
    }

    #[test]
    fn pairwise_bucket_independence() {
        // Keys colliding under h2 should not preferentially collide under
        // h3: condition on one h2 bucket and check h3 spread.
        let fam = HashFamily::new(5);
        let (h2, h3) = (fam.fn_at(1), fam.fn_at(2));
        let m = 8;
        let in_bucket0: Vec<u64> = (0..100_000u64)
            .filter(|k| h2.bucket(&k.to_le_bytes(), m) == 0)
            .collect();
        assert!(in_bucket0.len() > 10_000);
        let mut counts = vec![0usize; m];
        for k in &in_bucket0 {
            counts[h3.bucket(&k.to_le_bytes(), m)] += 1;
        }
        let expect = in_bucket0.len() / m;
        for &c in &counts {
            assert!((c as f64 - expect as f64).abs() < expect as f64 * 0.15);
        }
    }

    #[test]
    fn few_collisions_on_sequential_keys() {
        let h = HashFamily::new(0).fn_at(0);
        let mut seen = HashSet::new();
        for k in 0..100_000u64 {
            seen.insert(h.hash(&k.to_le_bytes()));
        }
        // Birthday bound: expected collisions ~ n^2/2^65 ≈ 0.
        assert!(seen.len() >= 99_998);
    }

    #[test]
    fn seeded_state_is_deterministic_and_spreads() {
        use std::hash::BuildHasher;
        let s = SeededState::fixed();
        let mut seen = HashSet::new();
        for k in 0..50_000u64 {
            let h = s.hash_one(k.to_be_bytes());
            assert_eq!(h, SeededState::fixed().hash_one(k.to_be_bytes()));
            seen.insert(h);
        }
        assert!(seen.len() >= 49_998, "near-perfect spread expected");
    }

    #[test]
    fn group_index_probes_by_fingerprint() {
        let keys: Vec<u64> = (0..10_000).map(|k| k * 3 + 1).collect();
        let h = HashFamily::new(11).fn_at(0);
        let mut rows: Vec<u64> = Vec::new();
        let mut idx = GroupIndex::with_capacity(16);
        for &k in &keys {
            let fp = h.hash(&k.to_be_bytes());
            match idx.get(fp, |r| rows[r] == k) {
                Some(_) => panic!("duplicate insert"),
                None => {
                    idx.insert(fp, rows.len());
                    rows.push(k);
                }
            }
        }
        assert_eq!(idx.len(), keys.len());
        for &k in &keys {
            let fp = h.hash(&k.to_be_bytes());
            let r = idx.get(fp, |r| rows[r] == k).expect("present");
            assert_eq!(rows[r], k);
        }
        // Absent keys miss even when their fingerprint slot is occupied.
        for k in 100_000..100_100u64 {
            let fp = h.hash(&k.to_be_bytes());
            assert!(idx.get(fp, |r| rows[r] == k).is_none());
        }
        idx.clear();
        assert!(idx.is_empty());
        assert_eq!(idx.get(h.hash(&3u64.to_be_bytes()), |_| true), None);
    }

    #[test]
    fn sharded_index_agrees_with_flat_index() {
        // The sharded index must behave exactly like a flat GroupIndex:
        // same hits, same misses, same row ids — shard selection is an
        // internal restructuring only.
        let h = HashFamily::new(21).fn_at(0);
        let keys: Vec<u64> = (0..20_000).map(|k| k * 7 + 3).collect();
        let mut rows: Vec<u64> = Vec::new();
        let mut flat = GroupIndex::with_capacity(8);
        let mut sharded = ShardedGroupIndex::with_capacity(8);
        for &k in &keys {
            let fp = h.hash(&k.to_be_bytes());
            let a = flat.get(fp, |r| rows[r] == k);
            let b = sharded.get(fp, |r| rows[r] == k);
            assert_eq!(a, b, "lookup diverged for key {k}");
            if a.is_none() {
                flat.insert(fp, rows.len());
                sharded.insert(fp, rows.len());
                rows.push(k);
            }
        }
        assert_eq!(flat.len(), sharded.len());
        assert_eq!(sharded.len(), keys.len());
        for &k in &keys {
            let fp = h.hash(&k.to_be_bytes());
            assert_eq!(
                flat.get(fp, |r| rows[r] == k),
                sharded.get(fp, |r| rows[r] == k)
            );
        }
        for k in 500_000..500_200u64 {
            let fp = h.hash(&k.to_be_bytes());
            assert!(sharded.get(fp, |r| rows[r] == k).is_none());
        }
        sharded.clear();
        assert!(sharded.is_empty());
        assert_eq!(sharded.get(h.hash(&3u64.to_be_bytes()), |_| true), None);
    }

    #[test]
    fn shard_selector_spreads_reducer_local_fingerprints() {
        // Within one reducer, fingerprints share a multiply-high interval
        // (their top bits are correlated); the shard selector must still
        // spread them. Simulate reducer 0 of 40 and count shard usage.
        let h = HashFamily::new(4).fn_at(0);
        let m = 40;
        let mut counts = [0usize; GROUP_SHARDS];
        let mut total = 0;
        for k in 0..200_000u64 {
            let fp = h.hash(&k.to_be_bytes());
            if bucket_of(fp, m) == 0 {
                counts[shard_of(fp)] += 1;
                total += 1;
            }
        }
        assert!(total > 3000, "sample too small: {total}");
        let expect = total / GROUP_SHARDS;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expect as f64).abs() < expect as f64 * 0.2,
                "shard {i} holds {c}, expected ~{expect}"
            );
        }
    }

    #[test]
    fn variable_length_inputs_differ() {
        let h = HashFamily::new(3).fn_at(0);
        // Length is mixed in, so a prefix and its zero-padded extension
        // must not collide systematically.
        assert_ne!(h.hash(b"ab"), h.hash(b"ab\0"));
        assert_ne!(h.hash(b""), h.hash(b"\0"));
    }

    #[test]
    fn remove_preserves_probe_chains() {
        // Remove every third key from a crowded index (long probe
        // clusters) and verify every surviving key still resolves —
        // backward-shift deletion must repair the chains it cuts.
        let h = HashFamily::new(17).fn_at(0);
        let keys: Vec<u64> = (0..5_000).collect();
        let mut rows: Vec<u64> = Vec::new();
        let mut idx = GroupIndex::with_capacity(16);
        for &k in &keys {
            let fp = h.hash(&k.to_be_bytes());
            idx.insert(fp, rows.len());
            rows.push(k);
        }
        let mut removed = 0;
        for (r, &k) in rows.iter().enumerate() {
            if k % 3 == 0 {
                let fp = h.hash(&k.to_be_bytes());
                assert!(idx.remove(fp, r), "key {k} was present");
                removed += 1;
            }
        }
        assert_eq!(idx.len(), keys.len() - removed);
        for (r, &k) in rows.iter().enumerate() {
            let fp = h.hash(&k.to_be_bytes());
            let hit = idx.get(fp, |c| rows[c] == k);
            if k % 3 == 0 {
                assert_eq!(hit, None, "removed key {k} must miss");
            } else {
                assert_eq!(hit, Some(r), "surviving key {k} must still resolve");
            }
        }
        // Removing an absent mapping is a no-op.
        assert!(!idx.remove(h.hash(&0u64.to_be_bytes()), 0));
    }

    #[test]
    fn reindex_follows_swap_remove() {
        // The eviction pattern: swap_remove a victim row, then reindex
        // the moved last row to its new position.
        let h = HashFamily::new(29).fn_at(0);
        let mut rows: Vec<u64> = Vec::new();
        let mut idx = ShardedGroupIndex::with_capacity(4);
        for k in 0..1_000u64 {
            idx.insert(h.hash(&k.to_be_bytes()), rows.len());
            rows.push(k);
        }
        for _ in 0..600 {
            // Deterministically evict the middle row.
            let victim = rows.len() / 2;
            let vfp = h.hash(&rows[victim].to_be_bytes());
            assert!(idx.remove(vfp, victim));
            let moved = rows.swap_remove(victim);
            if victim < rows.len() {
                let mfp = h.hash(&rows[victim].to_be_bytes());
                assert!(idx.reindex(mfp, rows.len(), victim), "moved key {moved}");
            }
        }
        assert_eq!(idx.len(), rows.len());
        for (r, &k) in rows.iter().enumerate() {
            let fp = h.hash(&k.to_be_bytes());
            assert_eq!(idx.get(fp, |c| rows[c] == k), Some(r), "key {k}");
        }
    }
}
