//! Universal hashing.
//!
//! The paper's hash framework (§4.1) relies on *a series of independent hash
//! functions* `h1, h2, h3, …`: `h1` partitions map output across reducers,
//! `h2` splits a reducer's input into buckets, `h3` performs in-memory
//! group-by, `h4…` drive recursive partitioning. Independence matters — if
//! `h2` and `h3` were correlated, every bucket would collapse into a few
//! hash-table slots.
//!
//! We implement a Carter–Wegman style family: the key bytes are first
//! compressed to a 64-bit fingerprint with a seeded polynomial (distinct odd
//! multiplier per function), then diffused through the SplitMix64 finalizer,
//! which is a bijection on `u64`. Each [`HashFn`] draws its parameters from
//! an independent stream of a seeded PCG, so `HashFamily::new(seed).fn_at(i)`
//! is stable across runs and platforms.

use crate::rng::SplitMix64;

/// One member of the hash family. Cheap to copy; hashing allocates nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashFn {
    /// Odd multiplier for the byte-polynomial compression stage.
    mul: u64,
    /// Additive seed mixed into the initial accumulator.
    add: u64,
    /// Post-compression xor mask, distinct per function.
    mask: u64,
}

impl HashFn {
    /// Hashes raw bytes to a 64-bit fingerprint.
    #[inline]
    pub fn hash(&self, data: &[u8]) -> u64 {
        let mut acc = self.add ^ (data.len() as u64).wrapping_mul(self.mul);
        // Consume 8-byte words, then the tail.
        let mut chunks = data.chunks_exact(8);
        for w in &mut chunks {
            let v = u64::from_le_bytes(w.try_into().expect("chunk is 8 bytes"));
            acc = acc.wrapping_mul(self.mul).wrapping_add(v);
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            acc = acc
                .wrapping_mul(self.mul)
                .wrapping_add(u64::from_le_bytes(tail));
        }
        finalize(acc ^ self.mask)
    }

    /// Hashes bytes into one of `m` buckets (`m > 0`).
    #[inline]
    pub fn bucket(&self, data: &[u8], m: usize) -> usize {
        debug_assert!(m > 0, "bucket count must be positive");
        // Multiply-high maps the uniform u64 to [0, m) with less bias than
        // a modulo and no division.
        (((self.hash(data) as u128) * (m as u128)) >> 64) as usize
    }
}

/// SplitMix64 finalizer: a full-avalanche bijection on `u64`.
#[inline]
fn finalize(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// A reproducible family of independent hash functions.
///
/// ```
/// use opa_common::hash::HashFamily;
/// let fam = HashFamily::new(42);
/// let h1 = fam.fn_at(0);
/// let h2 = fam.fn_at(1);
/// assert_ne!(h1.hash(b"user-17"), h2.hash(b"user-17"));
/// // Deterministic across instantiations:
/// assert_eq!(h1.hash(b"x"), HashFamily::new(42).fn_at(0).hash(b"x"));
/// ```
#[derive(Debug, Clone)]
pub struct HashFamily {
    seed: u64,
}

impl HashFamily {
    /// Creates a family from a seed. The same seed always yields the same
    /// functions.
    pub fn new(seed: u64) -> Self {
        HashFamily { seed }
    }

    /// Returns the `i`-th function of the family (`h_{i+1}` in the paper's
    /// notation). Functions at distinct indices are independent.
    pub fn fn_at(&self, i: usize) -> HashFn {
        // Derive three parameters from an index-keyed SplitMix stream.
        let mut sm = SplitMix64::new(self.seed ^ (i as u64).wrapping_mul(0x9e3779b97f4a7c15));
        let mul = sm.next() | 1; // multiplier must be odd
        let add = sm.next();
        let mask = sm.next();
        HashFn { mul, add, mask }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic_across_instances() {
        let a = HashFamily::new(7).fn_at(3);
        let b = HashFamily::new(7).fn_at(3);
        for k in 0..100u64 {
            assert_eq!(a.hash(&k.to_le_bytes()), b.hash(&k.to_le_bytes()));
        }
    }

    #[test]
    fn distinct_indices_give_distinct_functions() {
        let fam = HashFamily::new(1);
        let h0 = fam.fn_at(0);
        let h1 = fam.fn_at(1);
        let differing = (0..1000u64)
            .filter(|k| h0.hash(&k.to_le_bytes()) != h1.hash(&k.to_le_bytes()))
            .count();
        assert!(differing > 990, "functions nearly identical: {differing}");
    }

    #[test]
    fn buckets_are_roughly_balanced() {
        let h = HashFamily::new(99).fn_at(0);
        let m = 16;
        let mut counts = vec![0usize; m];
        let n = 64_000u64;
        for k in 0..n {
            counts[h.bucket(&k.to_le_bytes(), m)] += 1;
        }
        let expect = n as usize / m;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expect as f64).abs() < expect as f64 * 0.1,
                "bucket {i} holds {c}, expected ~{expect}"
            );
        }
    }

    #[test]
    fn pairwise_bucket_independence() {
        // Keys colliding under h2 should not preferentially collide under
        // h3: condition on one h2 bucket and check h3 spread.
        let fam = HashFamily::new(5);
        let (h2, h3) = (fam.fn_at(1), fam.fn_at(2));
        let m = 8;
        let in_bucket0: Vec<u64> = (0..100_000u64)
            .filter(|k| h2.bucket(&k.to_le_bytes(), m) == 0)
            .collect();
        assert!(in_bucket0.len() > 10_000);
        let mut counts = vec![0usize; m];
        for k in &in_bucket0 {
            counts[h3.bucket(&k.to_le_bytes(), m)] += 1;
        }
        let expect = in_bucket0.len() / m;
        for &c in &counts {
            assert!((c as f64 - expect as f64).abs() < expect as f64 * 0.15);
        }
    }

    #[test]
    fn few_collisions_on_sequential_keys() {
        let h = HashFamily::new(0).fn_at(0);
        let mut seen = HashSet::new();
        for k in 0..100_000u64 {
            seen.insert(h.hash(&k.to_le_bytes()));
        }
        // Birthday bound: expected collisions ~ n^2/2^65 ≈ 0.
        assert!(seen.len() >= 99_998);
    }

    #[test]
    fn variable_length_inputs_differ() {
        let h = HashFamily::new(3).fn_at(0);
        // Length is mixed in, so a prefix and its zero-padded extension
        // must not collide systematically.
        assert_ne!(h.hash(b"ab"), h.hash(b"ab\0"));
        assert_ne!(h.hash(b""), h.hash(b"\0"));
    }
}
