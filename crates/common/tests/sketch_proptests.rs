//! Property-based tests for the admission frequency sketch and the
//! spill-membership filter (ISSUE 7, satellite 3): halving preserves the
//! relative order of hot keys, counts never exceed true frequency after
//! aging, and serialization round-trips byte-exact.

use opa_common::sketch::{FreqSketch, KeyFilter};
use proptest::prelude::*;

/// Row/cell coordinates a key occupies, recovered behaviourally: a key's
/// estimate after a single touch of an empty clone tells us nothing, so
/// instead we detect collisions by touching one key and reading another.
fn collides(width_hint: usize, a: u64, b: u64) -> bool {
    let mut s = FreqSketch::with_capacity(width_hint);
    s.touch(a);
    // If some cell of `b` is untouched, the min over rows is 0 and the
    // keys are distinguishable; estimate > 0 means every row collides.
    s.estimate(b) > 0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Halving preserves the relative order of any two keys' estimates:
    /// `est(a) ≥ est(b)` before the reset implies the same after, for an
    /// arbitrary touch sequence. (Halving maps every counter through the
    /// monotone `⌊·/2⌋`, which commutes with the row-minimum.)
    #[test]
    fn halving_preserves_relative_order(
        stream in proptest::collection::vec(0u64..64, 1..2000),
    ) {
        let mut s = FreqSketch::with_capacity(256);
        for &fp in &stream {
            s.touch(fp);
        }
        let before: Vec<u32> = (0..64).map(|fp| s.estimate(fp)).collect();
        s.halve();
        let after: Vec<u32> = (0..64).map(|fp| s.estimate(fp)).collect();
        for a in 0..64usize {
            for b in 0..64usize {
                if before[a] >= before[b] {
                    prop_assert!(
                        after[a] >= after[b],
                        "order inverted: fp {a} ({} → {}) vs fp {b} ({} → {})",
                        before[a], after[a], before[b], after[b]
                    );
                }
            }
        }
        // Halving is exactly ⌊est/2⌋ (min commutes with monotone halving).
        for fp in 0..64usize {
            prop_assert_eq!(after[fp], before[fp] / 2);
        }
    }

    /// In a collision-free placement, the estimate equals the true count
    /// before aging and never exceeds the true count after any number of
    /// halvings. Colliding placements (count-min's one-sided error) are
    /// discarded via `prop_assume`.
    #[test]
    fn counts_never_exceed_true_frequency_after_aging(
        counts in proptest::collection::vec(1u32..100, 2..10),
        halvings in 1usize..4,
        key_stride in 1u64..1 << 48,
    ) {
        // Build a collision-free placement deterministically: nudge any
        // key that shares all four cells with an earlier one.
        let mut keys: Vec<u64> = Vec::with_capacity(counts.len());
        for i in 0..counts.len() as u64 {
            let mut candidate = i.wrapping_mul(key_stride | 1);
            while keys.iter().any(|&k| collides(4096, k, candidate)) {
                candidate = candidate.wrapping_add(0x9e37_79b9_7f4a_7c15);
            }
            keys.push(candidate);
        }
        let mut s = FreqSketch::with_capacity(4096);
        for (&fp, &n) in keys.iter().zip(&counts) {
            for _ in 0..n {
                s.touch(fp);
            }
        }
        for (&fp, &n) in keys.iter().zip(&counts) {
            prop_assert_eq!(s.estimate(fp), n, "exact before aging");
        }
        let mut prev: Vec<u32> = keys.iter().map(|&fp| s.estimate(fp)).collect();
        for _ in 0..halvings {
            s.halve();
            for ((&fp, &n), p) in keys.iter().zip(&counts).zip(&mut prev) {
                let est = s.estimate(fp);
                prop_assert!(est <= n, "aged count {est} exceeds true frequency {n}");
                prop_assert!(est <= *p, "aging must be monotone non-increasing");
                *p = est;
            }
        }
    }

    /// Sketch serialization round-trips byte-exact for arbitrary touch
    /// sequences, including ones long enough to cross the aging period.
    #[test]
    fn sketch_serialization_round_trips_byte_exact(
        stream in proptest::collection::vec(any::<u64>(), 0..1500),
        capacity in 1usize..512,
    ) {
        let mut s = FreqSketch::with_capacity(capacity);
        for &fp in &stream {
            s.touch(fp);
        }
        let nums = s.to_nums();
        let back = FreqSketch::from_nums(&nums).expect("valid image");
        prop_assert_eq!(&s, &back);
        prop_assert_eq!(nums, back.to_nums());
        // The restored sketch continues identically.
        let (mut s2, mut b2) = (s, back);
        for fp in 0..200u64 {
            s2.touch(fp);
            b2.touch(fp);
        }
        prop_assert_eq!(s2.to_nums(), b2.to_nums());
    }

    /// Filter serialization round-trips byte-exact and membership is
    /// one-sided: every inserted key reports present, before and after
    /// the round trip.
    #[test]
    fn filter_round_trips_and_stays_one_sided(
        keys in proptest::collection::vec(any::<u64>(), 0..400),
        capacity in 1usize..2000,
    ) {
        let mut f = KeyFilter::with_capacity(capacity);
        for &fp in &keys {
            f.insert(fp);
        }
        let nums = f.to_nums();
        let back = KeyFilter::from_nums(&nums).expect("valid image");
        prop_assert_eq!(&f, &back);
        prop_assert_eq!(nums, back.to_nums());
        for &fp in &keys {
            prop_assert!(f.contains(fp));
            prop_assert!(back.contains(fp));
        }
    }
}
