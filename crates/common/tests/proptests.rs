//! Property-based tests for the foundation types.

use opa_common::hash::HashFamily;
use opa_common::units::{SimDuration, SimTime};
use opa_common::{Key, Value};
use proptest::prelude::*;

proptest! {
    /// Big-endian u64 keys sort like the numbers they encode.
    #[test]
    fn key_order_matches_numeric(a: u64, b: u64) {
        let (ka, kb) = (Key::from_u64(a), Key::from_u64(b));
        prop_assert_eq!(ka.cmp(&kb), a.cmp(&b));
        prop_assert_eq!(ka.as_u64(), Some(a));
    }

    /// Hash buckets stay in range for any input and modulus.
    #[test]
    fn buckets_in_range(data in proptest::collection::vec(any::<u8>(), 0..128),
                        seed: u64, m in 1usize..1000) {
        let h = HashFamily::new(seed).fn_at(0);
        prop_assert!(h.bucket(&data, m) < m);
    }

    /// The same family index always produces the same function; different
    /// seeds almost always differ on non-trivial input.
    #[test]
    fn hash_deterministic(data in proptest::collection::vec(any::<u8>(), 1..64), seed: u64) {
        let a = HashFamily::new(seed).fn_at(3).hash(&data);
        let b = HashFamily::new(seed).fn_at(3).hash(&data);
        prop_assert_eq!(a, b);
    }

    /// SimTime arithmetic is associative over durations and saturating
    /// subtraction never panics.
    #[test]
    fn simtime_arithmetic(a in 0u64..1 << 40, b in 0u64..1 << 40, c in 0u64..1 << 40) {
        let t = SimTime(a);
        let d1 = SimDuration(b);
        let d2 = SimDuration(c);
        prop_assert_eq!((t + d1) + d2, t + (d1 + d2));
        let _ = SimTime(a) - SimTime(b); // must not panic for any ordering
        prop_assert!(SimTime(a).max(SimTime(b)).0 >= a.max(b));
    }

    /// Value u64 round-trips.
    #[test]
    fn value_u64_roundtrip(v: u64) {
        prop_assert_eq!(Value::from_u64(v).as_u64(), Some(v));
    }

    /// seconds → SimTime → seconds round-trips within a microsecond.
    #[test]
    fn simtime_seconds_roundtrip(s in 0.0f64..1e7) {
        let t = SimTime::from_secs_f64(s);
        prop_assert!((t.as_secs_f64() - s).abs() < 1e-6 + s * 1e-12);
    }
}
