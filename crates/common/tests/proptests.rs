//! Property-based tests for the foundation types.

use opa_common::hash::HashFamily;
use opa_common::units::{SimDuration, SimTime};
use opa_common::{Key, Value};
use proptest::prelude::*;

proptest! {
    /// Big-endian u64 keys sort like the numbers they encode.
    #[test]
    fn key_order_matches_numeric(a: u64, b: u64) {
        let (ka, kb) = (Key::from_u64(a), Key::from_u64(b));
        prop_assert_eq!(ka.cmp(&kb), a.cmp(&b));
        prop_assert_eq!(ka.as_u64(), Some(a));
    }

    /// Hash buckets stay in range for any input and modulus.
    #[test]
    fn buckets_in_range(data in proptest::collection::vec(any::<u8>(), 0..128),
                        seed: u64, m in 1usize..1000) {
        let h = HashFamily::new(seed).fn_at(0);
        prop_assert!(h.bucket(&data, m) < m);
    }

    /// The same family index always produces the same function; different
    /// seeds almost always differ on non-trivial input.
    #[test]
    fn hash_deterministic(data in proptest::collection::vec(any::<u8>(), 1..64), seed: u64) {
        let a = HashFamily::new(seed).fn_at(3).hash(&data);
        let b = HashFamily::new(seed).fn_at(3).hash(&data);
        prop_assert_eq!(a, b);
    }

    /// SimTime arithmetic is associative over durations and saturating
    /// subtraction never panics.
    #[test]
    fn simtime_arithmetic(a in 0u64..1 << 40, b in 0u64..1 << 40, c in 0u64..1 << 40) {
        let t = SimTime(a);
        let d1 = SimDuration(b);
        let d2 = SimDuration(c);
        prop_assert_eq!((t + d1) + d2, t + (d1 + d2));
        let _ = SimTime(a) - SimTime(b); // must not panic for any ordering
        prop_assert!(SimTime(a).max(SimTime(b)).0 >= a.max(b));
    }

    /// Value u64 round-trips.
    #[test]
    fn value_u64_roundtrip(v: u64) {
        prop_assert_eq!(Value::from_u64(v).as_u64(), Some(v));
    }

    /// seconds → SimTime → seconds round-trips within a microsecond.
    #[test]
    fn simtime_seconds_roundtrip(s in 0.0f64..1e7) {
        let t = SimTime::from_secs_f64(s);
        prop_assert!((t.as_secs_f64() - s).abs() < 1e-6 + s * 1e-12);
    }
}

/// Sizes that straddle every representation boundary: empty, one under
/// the inline cap, the cap itself, first heap size, and a big payload.
const BOUNDARY_SIZES: [usize; 5] = [0, 21, 22, 23, 1024];

fn std_hash<T: std::hash::Hash>(t: &T) -> u64 {
    use std::hash::Hasher;
    let mut h = std::collections::hash_map::DefaultHasher::new();
    t.hash(&mut h);
    h.finish()
}

proptest! {
    /// The inline and heap representations of the same bytes are
    /// indistinguishable: equal, equal-ordered, equal-hashed, and either
    /// one against any other payload orders exactly as the raw slices do.
    #[test]
    fn key_repr_is_invisible(a in proptest::collection::vec(any::<u8>(), 0..64),
                             b in proptest::collection::vec(any::<u8>(), 0..64)) {
        let ia = Key::from_slice(&a);
        let ha = Key::forced_heap(a.clone());
        prop_assert_eq!(&ia, &ha);
        prop_assert_eq!(ia.cmp(&ha), std::cmp::Ordering::Equal);
        prop_assert_eq!(std_hash(&ia), std_hash(&ha));
        prop_assert_eq!(ia.as_u64(), ha.as_u64());
        prop_assert_eq!(ia.len(), ha.len());

        let ib = Key::from_slice(&b);
        let hb = Key::forced_heap(b.clone());
        prop_assert_eq!(ia.cmp(&ib), a.cmp(&b));
        prop_assert_eq!(ia.cmp(&hb), a.cmp(&b));
        prop_assert_eq!(ha.cmp(&ib), a.cmp(&b));
        prop_assert_eq!(ha.cmp(&hb), a.cmp(&b));
    }

    /// Same property for values.
    #[test]
    fn value_repr_is_invisible(a in proptest::collection::vec(any::<u8>(), 0..64)) {
        let iv = Value::from_slice(&a);
        let hv = Value::forced_heap(a.clone());
        prop_assert_eq!(&iv, &hv);
        prop_assert_eq!(std_hash(&iv), std_hash(&hv));
        prop_assert_eq!(iv.as_u64(), hv.as_u64());
        prop_assert_eq!(iv.bytes(), hv.bytes());
    }

    /// Every seeded hash function agrees across representations: the
    /// group-by probe path may receive either variant for the same key.
    #[test]
    fn seeded_hash_ignores_repr(a in proptest::collection::vec(any::<u8>(), 0..64),
                                seed: u64) {
        let h = HashFamily::new(seed).fn_at(0);
        let i = Key::from_slice(&a);
        let p = Key::forced_heap(a.clone());
        prop_assert_eq!(h.hash(i.bytes()), h.hash(p.bytes()));
    }

    /// `from_u64` keys are always inline-capable and round-trip through
    /// `as_u64` regardless of which constructor produced the bytes.
    #[test]
    fn u64_roundtrip_across_reprs(v: u64) {
        let i = Key::from_u64(v);
        let p = Key::forced_heap(v.to_be_bytes().to_vec());
        prop_assert_eq!(i.as_u64(), Some(v));
        prop_assert_eq!(p.as_u64(), Some(v));
        prop_assert_eq!(i, p);
    }
}

/// Deterministic boundary sweep: equality, ordering adjacency and hashes
/// at exactly the sizes where the representation flips (0, 21, 22 inline;
/// 23, 1024 heap).
#[test]
fn boundary_sizes_cross_repr_semantics() {
    for &n in &BOUNDARY_SIZES {
        let bytes = vec![0x5A; n];
        let inline_or_heap = Key::from_slice(&bytes);
        let heap = Key::forced_heap(bytes.clone());
        assert_eq!(inline_or_heap, heap, "size {n}");
        assert_eq!(std_hash(&inline_or_heap), std_hash(&heap), "size {n}");
        assert_eq!(inline_or_heap.bytes(), &bytes[..], "size {n}");
        // One byte longer always orders strictly greater (prefix rule),
        // whichever side of the inline cap each length lands on.
        let mut longer = bytes.clone();
        longer.push(0x5A);
        assert!(Key::from_slice(&longer) > inline_or_heap, "size {n}");
        assert!(Key::forced_heap(longer) > heap, "size {n}");
    }
}
