//! Bit-equality of the SWAR/SIMD fast paths against their scalar
//! references.
//!
//! The engine's determinism guarantees (golden output CRCs, trace CRCs,
//! thread-count invariance) all assume `HashFn::hash` and the token
//! scanner compute *exactly* what their scalar specifications compute —
//! not merely "a good hash" or "roughly the same tokens". These tests pin
//! that equivalence at the byte level, over the boundary lengths the
//! unrolled loops can mishandle (around the 8-byte SWAR stride, the
//! 16-byte SIMD stride, the 32-byte hash unroll, and the engine's 22/23
//! inline-key sizes) and over arbitrary inputs.
//!
//! Run with and without `--features simd`: the same assertions then cover
//! the SSE2/NEON specializations.

use opa_common::hash::HashFamily;
use opa_common::scan::{find_byte, find_byte_swar, tokens};
use proptest::prelude::*;

/// Lengths that straddle every stride the fast paths use.
const BOUNDARY_LENS: &[usize] = &[
    0, 1, 7, 8, 9, 15, 16, 17, 22, 23, 24, 31, 32, 33, 63, 64, 1024, 1031,
];

/// Deterministic non-trivial filler for fixed-length cases.
fn filler(len: usize, salt: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(167).wrapping_add(salt) ^ 0x3C)
        .collect()
}

#[test]
fn hash_matches_reference_at_boundary_lengths() {
    // h1..h3 are fn_at(0..3); also probe a deep family index and a second
    // seed so the cached mul^2..mul^4 powers are exercised for several
    // multipliers.
    for seed in [0u64, 0x9E37_79B9_7F4A_7C15] {
        let fam = HashFamily::new(seed);
        for idx in [0usize, 1, 2, 7] {
            let h = fam.fn_at(idx);
            for &len in BOUNDARY_LENS {
                let data = filler(len, idx as u8);
                assert_eq!(
                    h.hash(&data),
                    h.hash_reference(&data),
                    "h{} diverged at length {len} (seed {seed:#x})",
                    idx + 1
                );
            }
        }
    }
}

#[test]
fn tokens_matches_split_filter_at_boundary_lengths() {
    for &len in BOUNDARY_LENS {
        // Sprinkle delimiters at a stride that hits both sides of each
        // chunk boundary as len varies.
        let mut data = filler(len, 11);
        for b in &mut data {
            if *b % 5 == 0 {
                *b = b' ';
            }
        }
        let got: Vec<&[u8]> = tokens(&data, b' ').collect();
        let want: Vec<&[u8]> = data
            .split(|&b| b == b' ')
            .filter(|t| !t.is_empty())
            .collect();
        assert_eq!(got, want, "token stream diverged at length {len}");
    }
}

proptest! {
    /// The unrolled 4-lane hash equals the scalar Horner reference for
    /// arbitrary bytes, family indices, and seeds.
    #[test]
    fn hash_matches_reference(data in proptest::collection::vec(any::<u8>(), 0..200),
                              seed: u64, idx in 0usize..4) {
        let h = HashFamily::new(seed).fn_at(idx);
        prop_assert_eq!(h.hash(&data), h.hash_reference(&data));
    }

    /// The token scanner yields exactly the split-on-delim/skip-empty
    /// sequence for arbitrary bytes. Restricting bytes to 0..8 makes
    /// delimiter hits dense, so runs, leading/trailing delimiters, and
    /// chunk-straddling tokens all occur constantly.
    #[test]
    fn tokens_match_split_filter(data in proptest::collection::vec(0u8..8, 0..120),
                                 delim in 0u8..8) {
        let got: Vec<&[u8]> = tokens(&data, delim).collect();
        let want: Vec<&[u8]> =
            data.split(|&b| b == delim).filter(|t| !t.is_empty()).collect();
        prop_assert_eq!(got, want);
    }

    /// `find_byte` (whatever path the feature set selects) agrees with the
    /// scalar position search and the portable SWAR path.
    #[test]
    fn find_byte_matches_position(data in proptest::collection::vec(any::<u8>(), 0..100),
                                  needle: u8) {
        let want = data.iter().position(|&b| b == needle);
        prop_assert_eq!(find_byte(&data, needle), want);
        prop_assert_eq!(find_byte_swar(&data, needle), want);
    }
}
