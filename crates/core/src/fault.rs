//! Deterministic fault scheduling for one job run.
//!
//! A [`FaultPlan`] turns a [`FaultConfig`] into concrete per-entity
//! decisions: which map-task attempts fail (and how far through their
//! chunk), which attempts straggle, and which reduce tasks crash on which
//! delivery. Every decision is a pure hash of `(seed, kind, entity,
//! attempt)` via [`opa_common::fault::decision`] — no shared RNG stream —
//! so the failure trace is a function of the seed alone, independent of
//! event interleaving and execution-layer thread count.
//!
//! Recovery semantics live in the scheduler (`crate::job`):
//!
//! - **map failure** — the attempt's plan prefix is charged as waste
//!   ([`crate::map_phase::abort_map_task`]) and a retry is scheduled after
//!   exponential backoff, reusing the stashed pure plan;
//! - **straggler** — the slow attempt runs to completion at `factor×` CPU
//!   cost with its output discarded, while a speculative backup launched at
//!   the nominal-duration horizon supplies the real granules;
//! - **reduce crash** — the reducer re-replays its recorded [`Effect`]
//!   history in time-only mode ([`crate::reduce::replay_recovery`]) before
//!   absorbing the delivery that found it dead;
//! - **spill-disk error** — handled below the plan, inside
//!   [`crate::sim::Resources`] via [`opa_simio::DiskFaultInjector`].
//!
//! Retries are bounded: attempt `max_retries` (and beyond) of any entity
//! is forced to succeed, so every faulted job terminates.
//!
//! [`Effect`]: crate::reduce::Effect

use opa_common::fault::{decision, FaultConfig, FaultKind};

/// What happens to one map-task attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MapFate {
    /// The attempt runs to a successful completion.
    Ok,
    /// The attempt dies after completing `frac` of its operations.
    Fail {
        /// Fraction of the plan's operations charged before the death.
        frac: f64,
    },
    /// The attempt straggles at `factor×` CPU cost; a speculative backup
    /// is launched and wins.
    Straggle {
        /// CPU slowdown factor.
        factor: f64,
    },
}

/// The job-wide fault schedule. Cheap to copy; all state is the config.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    cfg: FaultConfig,
}

impl FaultPlan {
    /// Builds the plan for a validated config.
    pub fn new(cfg: FaultConfig) -> Self {
        FaultPlan { cfg }
    }

    /// The configuration behind this plan.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Decides the fate of attempt `attempt` of the map task for `chunk`.
    /// Attempts at or past `max_retries` always succeed (bounded retry);
    /// only the first attempt may straggle — a speculative backup is
    /// already the recovery for a straggler, re-speculating on the backup
    /// would not model anything new.
    pub fn map_fate(&self, chunk: usize, attempt: u32) -> MapFate {
        if attempt >= self.cfg.max_retries {
            return MapFate::Ok;
        }
        let id = chunk as u64;
        let roll = decision(self.cfg.seed, FaultKind::MapFailure, id, u64::from(attempt));
        if roll < self.cfg.map_failure_rate {
            // Reuse the roll's fractional position within the accepted
            // band as the death point: still a pure function of identity.
            let frac = 0.1 + 0.8 * (roll / self.cfg.map_failure_rate);
            return MapFate::Fail { frac };
        }
        if attempt == 0 {
            let s = decision(self.cfg.seed, FaultKind::Straggler, id, 0);
            if s < self.cfg.straggler_rate {
                return MapFate::Straggle {
                    factor: self.cfg.straggler_factor,
                };
            }
        }
        MapFate::Ok
    }

    /// Whether the reduce task `reducer` crashes while absorbing its
    /// `delivery`-th delivery, given it has crashed `crashes` times
    /// already. Bounded by `max_retries` crashes per reducer.
    pub fn reduce_crashes(&self, reducer: usize, delivery: u64, crashes: u32) -> bool {
        if crashes >= self.cfg.max_retries {
            return false;
        }
        // The delivery ordinal is folded into the target so each delivery
        // is an independent trial; the crash count is the attempt axis.
        let id = (reducer as u64) << 32 | (delivery & 0xffff_ffff);
        decision(
            self.cfg.seed,
            FaultKind::ReduceFailure,
            id,
            u64::from(crashes),
        ) < self.cfg.reduce_failure_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(rate: f64) -> FaultPlan {
        FaultPlan::new(FaultConfig::uniform(99, rate))
    }

    #[test]
    fn disabled_plan_never_fires() {
        let p = plan(0.0);
        for chunk in 0..200 {
            assert_eq!(p.map_fate(chunk, 0), MapFate::Ok);
            assert!(!p.reduce_crashes(chunk, 0, 0));
        }
    }

    #[test]
    fn fates_are_pure_functions_of_identity() {
        let p = plan(0.3);
        for chunk in 0..50 {
            assert_eq!(p.map_fate(chunk, 0), p.map_fate(chunk, 0));
            assert_eq!(p.map_fate(chunk, 1), p.map_fate(chunk, 1));
        }
    }

    #[test]
    fn rates_are_roughly_honored() {
        let p = plan(0.25);
        let fails = (0..4000)
            .filter(|&c| matches!(p.map_fate(c, 0), MapFate::Fail { .. }))
            .count();
        assert!((800..1200).contains(&fails), "~25% failures, got {fails}");
    }

    #[test]
    fn retries_are_bounded_by_config() {
        let mut cfg = FaultConfig::uniform(7, 0.999);
        cfg.max_retries = 2;
        let p = FaultPlan::new(cfg);
        for chunk in 0..100 {
            assert_eq!(p.map_fate(chunk, 2), MapFate::Ok, "attempt 2 must pass");
            assert!(!p.reduce_crashes(chunk, 5, 2), "3rd crash is forbidden");
        }
    }

    #[test]
    fn only_first_attempts_straggle() {
        let mut cfg = FaultConfig::uniform(3, 0.0);
        cfg.straggler_rate = 0.9;
        let p = FaultPlan::new(cfg);
        let first: usize = (0..100)
            .filter(|&c| matches!(p.map_fate(c, 0), MapFate::Straggle { .. }))
            .count();
        assert!(first > 50, "high straggler rate must fire: {first}");
        for chunk in 0..100 {
            assert!(
                !matches!(p.map_fate(chunk, 1), MapFate::Straggle { .. }),
                "retries must not straggle"
            );
        }
    }

    #[test]
    fn failure_fraction_stays_interior() {
        let p = plan(0.5);
        for chunk in 0..2000 {
            if let MapFate::Fail { frac } = p.map_fate(chunk, 0) {
                assert!((0.1..=0.9).contains(&frac), "frac {frac} out of band");
            }
        }
    }
}
