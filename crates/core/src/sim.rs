//! Discrete-event simulation primitives: per-node disk queues, CPU/disk
//! utilization accounting, and the task timeline behind Fig. 2(a).
//!
//! Each node owns one or two disk queues (one when intermediate data shares
//! the HDFS device — the paper's default — two for the Fig 2(d) SSD
//! variant). A queue serializes requests: an operation requested at `t` is
//! serviced at `max(t, free_at)` and the requester blocks until completion,
//! which is how disk contention between co-located map tasks, shuffles and
//! merges arises without an explicit queueing model.

use crate::cost::CostModel;
use opa_common::units::{SimDuration, SimTime};
use opa_simio::{IoCategory, IoOp, IoStats};
use opa_trace::{SpanKind, TraceEvent, TraceLog, Tracer};
use serde::{Deserialize, Serialize};

/// Operation classes shown on the paper's task timelines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// A map task (includes its sort, as in Fig 2(a)).
    Map,
    /// A shuffle transfer.
    Shuffle,
    /// A background (multi-pass) merge.
    Merge,
    /// Final-merge + reduce-function work, or hash-side reduce work.
    Reduce,
}

impl OpKind {
    /// The corresponding trace-layer span kind (`opa-trace` has no
    /// dependency on this crate, so the vocabulary is mirrored there).
    pub fn trace_kind(self) -> SpanKind {
        match self {
            OpKind::Map => SpanKind::Map,
            OpKind::Shuffle => SpanKind::Shuffle,
            OpKind::Merge => SpanKind::Merge,
            OpKind::Reduce => SpanKind::Reduce,
        }
    }
}

/// One timeline interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// Operation class.
    pub kind: OpKind,
    /// Start of the interval.
    pub start: SimTime,
    /// End of the interval.
    pub end: SimTime,
}

/// Cluster-wide busy-time accounting in fixed-width buckets, from which the
/// harness derives CPU-utilization and disk-busy (iowait-proxy) series.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Usage {
    /// Bucket width in seconds.
    pub bucket_secs: f64,
    /// CPU busy seconds per bucket (all nodes pooled).
    pub cpu: Vec<f64>,
    /// Disk busy seconds per bucket (all devices pooled).
    pub disk: Vec<f64>,
    nodes: usize,
    cores_per_node: usize,
}

impl Usage {
    fn new(bucket_secs: f64, nodes: usize, cores_per_node: usize) -> Self {
        Usage {
            bucket_secs,
            cpu: Vec::new(),
            disk: Vec::new(),
            nodes,
            cores_per_node,
        }
    }

    fn add(series: &mut Vec<f64>, bucket_secs: f64, start: SimTime, end: SimTime) {
        if end <= start {
            return;
        }
        let (s, e) = (start.as_secs_f64(), end.as_secs_f64());
        let first = (s / bucket_secs) as usize;
        let last = (e / bucket_secs) as usize;
        if series.len() <= last {
            series.resize(last + 1, 0.0);
        }
        for (b, slot) in series.iter_mut().enumerate().take(last + 1).skip(first) {
            let lo = (b as f64) * bucket_secs;
            let hi = lo + bucket_secs;
            *slot += (e.min(hi) - s.max(lo)).max(0.0);
        }
    }

    fn add_cpu(&mut self, start: SimTime, end: SimTime) {
        let w = self.bucket_secs;
        Self::add(&mut self.cpu, w, start, end);
    }

    fn add_disk(&mut self, start: SimTime, end: SimTime) {
        let w = self.bucket_secs;
        Self::add(&mut self.disk, w, start, end);
    }

    /// CPU utilization percentage per bucket (busy cores / total cores).
    pub fn cpu_utilization(&self) -> Vec<f64> {
        let cap = self.bucket_secs * (self.nodes * self.cores_per_node) as f64;
        self.cpu.iter().map(|&b| 100.0 * b / cap).collect()
    }

    /// Disk busy percentage per bucket — the engine's proxy for the
    /// paper's CPU-iowait curves (the disks are the blocking resource).
    pub fn disk_busy(&self) -> Vec<f64> {
        let cap = self.bucket_secs * self.nodes as f64;
        self.disk
            .iter()
            .map(|&b| (100.0 * b / cap).min(100.0))
            .collect()
    }
}

#[derive(Debug, Clone, Copy)]
struct DiskQueue {
    free_at: SimTime,
}

#[derive(Debug, Clone, Copy)]
struct NodeRes {
    hdfs: DiskQueue,
    spill: DiskQueue,
}

/// All shared simulated resources of one job run.
#[derive(Debug)]
pub struct Resources {
    nodes: Vec<NodeRes>,
    /// Whether intermediate data shares the HDFS device (the default).
    shared_device: bool,
    /// Busy-time accounting.
    pub usage: Usage,
    /// Task timeline spans.
    pub timeline: Vec<Span>,
    /// Job-wide I/O statistics (first pass and recovery combined — what
    /// the devices actually served).
    pub io: IoStats,
    /// The recovery-only share of [`Resources::io`]: I/O re-done while
    /// re-replaying reduce work lost to an injected crash. Subtracting it
    /// recovers the fault-free first pass the §3 model predicts
    /// (`JobMetrics::io_first_pass`).
    pub io_recovery: IoStats,
    /// Optional spill-disk error injector (fault-injection subsystem).
    disk_faults: Option<opa_simio::DiskFaultInjector>,
    /// Structured event collector; `None` (the default) keeps tracing
    /// zero-cost.
    trace: Option<Box<Tracer>>,
    /// Whether I/O charged right now is fault-recovery re-replay.
    in_recovery: bool,
}

impl Resources {
    /// Builds resources for `nodes` nodes. `separate_spill_device` selects
    /// the Fig 2(d) topology (intermediate data on its own device).
    pub fn new(nodes: usize, cores_per_node: usize, separate_spill_device: bool) -> Self {
        Resources {
            nodes: vec![
                NodeRes {
                    hdfs: DiskQueue {
                        free_at: SimTime::ZERO
                    },
                    spill: DiskQueue {
                        free_at: SimTime::ZERO
                    },
                };
                nodes
            ],
            shared_device: !separate_spill_device,
            usage: Usage::new(10.0, nodes, cores_per_node),
            timeline: Vec::new(),
            io: IoStats::new(),
            io_recovery: IoStats::new(),
            disk_faults: None,
            trace: None,
            in_recovery: false,
        }
    }

    /// Turns on structured event collection for this run. All emission
    /// happens scheduler-side in event order, so the resulting trace is
    /// bit-identical at any execution-thread count.
    pub fn enable_trace(&mut self) {
        self.trace = Some(Box::new(Tracer::new()));
    }

    /// Whether event collection is on.
    pub fn trace_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// Appends one event to the trace, if tracing is on.
    #[inline]
    pub fn emit(&mut self, ev: TraceEvent) {
        if let Some(t) = self.trace.as_mut() {
            t.push(ev);
        }
    }

    /// Detaches the collected trace (if tracing was on).
    pub fn take_trace(&mut self) -> Option<TraceLog> {
        self.trace.take().map(|t| t.into_log())
    }

    /// Marks subsequent I/O as fault-recovery re-replay: it still hits
    /// [`Resources::io`] (the device really served it) but is mirrored
    /// into [`Resources::io_recovery`] and flagged in the trace.
    pub fn begin_recovery(&mut self) {
        self.in_recovery = true;
    }

    /// Ends the recovery window opened by [`Resources::begin_recovery`].
    pub fn end_recovery(&mut self) {
        self.in_recovery = false;
    }

    /// Arms spill-disk error injection. Disk operations keep their logical
    /// byte accounting; injected errors only repeat the operation's busy
    /// time and are reported through the injector.
    pub fn set_disk_faults(&mut self, injector: opa_simio::DiskFaultInjector) {
        self.disk_faults = Some(injector);
    }

    /// Disarms and returns the injector, with its accumulated error trace.
    pub fn take_disk_faults(&mut self) -> Option<opa_simio::DiskFaultInjector> {
        self.disk_faults.take()
    }

    /// Performs an I/O operation on a node's HDFS device starting no
    /// earlier than `t`; records it under `cat` and returns completion.
    pub fn hdfs_io(
        &mut self,
        node: usize,
        t: SimTime,
        cat: IoCategory,
        op: IoOp,
        cost: &CostModel,
    ) -> SimTime {
        if op.is_none() {
            return t;
        }
        self.io.record(cat, op);
        if self.in_recovery {
            self.io_recovery.record(cat, op);
        }
        let dur = cost.hdfs_time(op);
        let q = &mut self.nodes[node].hdfs;
        let start = t.max(q.free_at);
        let end = start + dur;
        q.free_at = end;
        self.usage.add_disk(start, end);
        self.emit_io(node, start, end, cat, op);
        end
    }

    /// Performs an I/O operation on a node's intermediate-data device.
    /// Falls back to the HDFS queue when the devices are shared.
    pub fn spill_io(
        &mut self,
        node: usize,
        t: SimTime,
        cat: IoCategory,
        op: IoOp,
        cost: &CostModel,
    ) -> SimTime {
        if op.is_none() {
            return t;
        }
        self.io.record(cat, op);
        if self.in_recovery {
            self.io_recovery.record(cat, op);
        }
        let dur = cost.spill_time(op);
        let n = &mut self.nodes[node];
        let q = if self.shared_device {
            &mut n.hdfs
        } else {
            &mut n.spill
        };
        let start = t.max(q.free_at);
        // Injected errors repeat the whole operation: a torn write (or a
        // read that returned garbage) moves the same bytes again.
        let failures = match self.disk_faults.as_mut() {
            Some(inj) => inj.inject(start, op.read + op.written),
            None => 0,
        };
        let mut end = start + dur;
        for _ in 0..failures {
            end += dur;
        }
        q.free_at = end;
        self.usage.add_disk(start, end);
        self.emit_io(node, start, end, cat, op);
        end
    }

    #[inline]
    fn emit_io(&mut self, node: usize, start: SimTime, end: SimTime, cat: IoCategory, op: IoOp) {
        if let Some(tr) = self.trace.as_mut() {
            tr.push(TraceEvent::Io {
                t0: start.0,
                t: end.0,
                node: node as u32,
                cat,
                read: op.read,
                written: op.written,
                seeks: op.seeks,
                recovery: self.in_recovery,
            });
        }
    }

    /// Charges `dur` of CPU time starting at `t` (slots, not this method,
    /// bound concurrency). Returns completion.
    pub fn cpu(&mut self, _node: usize, t: SimTime, dur: SimDuration) -> SimTime {
        let end = t + dur;
        self.usage.add_cpu(t, end);
        end
    }

    /// Records a timeline span on `node`.
    pub fn span(&mut self, node: usize, kind: OpKind, start: SimTime, end: SimTime) {
        if end > start {
            self.timeline.push(Span { kind, start, end });
            if let Some(tr) = self.trace.as_mut() {
                tr.push(TraceEvent::Span {
                    t0: start.0,
                    t: end.0,
                    node: node as u32,
                    kind: kind.trace_kind(),
                });
            }
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Per-node disk-queue availability `(hdfs_free_at, spill_free_at)` in
    /// microseconds — checkpointed by the stream runtime because queue
    /// occupancy feeds granule and delivery times, and therefore delivery
    /// *order*, on resume.
    pub fn export_disk_free(&self) -> Vec<(u64, u64)> {
        self.nodes
            .iter()
            .map(|n| (n.hdfs.free_at.0, n.spill.free_at.0))
            .collect()
    }

    /// Restores per-node disk-queue availability from
    /// [`Resources::export_disk_free`] output.
    ///
    /// # Panics
    /// Panics if `free` does not have one entry per node.
    pub fn restore_disk_free(&mut self, free: &[(u64, u64)]) {
        assert_eq!(free.len(), self.nodes.len(), "node count mismatch");
        for (n, &(h, s)) in self.nodes.iter_mut().zip(free) {
            n.hdfs.free_at = SimTime(h);
            n.spill.free_at = SimTime(s);
        }
    }
}

/// A time-ordered event queue with stable FIFO tie-breaking.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: std::collections::BinaryHeap<QueueEntry<E>>,
    seq: u64,
}

#[derive(Debug)]
struct QueueEntry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for QueueEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for QueueEntry<E> {}
impl<E> PartialOrd for QueueEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for QueueEntry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other.time.cmp(&self.time).then(other.seq.cmp(&self.seq))
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: std::collections::BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(QueueEntry { time, seq, event });
    }

    /// Pops the earliest event (FIFO among ties).
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The earliest event without removing it. The scheduler uses this to
    /// detect runs of consecutive deliveries that can be recorded as one
    /// batch on the worker pool.
    pub fn peek(&self) -> Option<(SimTime, &E)> {
        self.heap.peek().map(|e| (e.time, &e.event))
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opa_common::units::KB;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn event_queue_orders_by_time_then_fifo() {
        let mut q = EventQueue::new();
        q.push(t(5.0), "late");
        q.push(t(1.0), "first");
        q.push(t(1.0), "second");
        q.push(t(0.5), "earliest");
        assert_eq!(q.len(), 4);
        assert_eq!(q.peek(), Some((t(0.5), &"earliest")));
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["earliest", "first", "second", "late"]);
        assert!(q.is_empty());
    }

    #[test]
    fn disk_queue_serializes_requests() {
        let cost = CostModel::paper_scaled();
        let mut res = Resources::new(2, 4, false);
        // Two requests at t=0 on the same node queue back-to-back.
        let op = IoOp::read(80 * KB); // ~1.004 s at scaled 80 MB/s
        let e1 = res.hdfs_io(0, SimTime::ZERO, IoCategory::MapInput, op, &cost);
        let e2 = res.hdfs_io(0, SimTime::ZERO, IoCategory::MapInput, op, &cost);
        assert!(e2 > e1);
        assert!((e2.as_secs_f64() - 2.0 * e1.as_secs_f64()).abs() < 1e-6);
        // A different node is unaffected.
        let e3 = res.hdfs_io(1, SimTime::ZERO, IoCategory::MapInput, op, &cost);
        assert_eq!(e3, e1);
    }

    #[test]
    fn shared_device_couples_hdfs_and_spill() {
        let cost = CostModel::paper_scaled();
        let op = IoOp::write(80 * KB);
        let mut shared = Resources::new(1, 4, false);
        let h = shared.hdfs_io(0, SimTime::ZERO, IoCategory::MapInput, op, &cost);
        let s = shared.spill_io(0, SimTime::ZERO, IoCategory::ReduceSpill, op, &cost);
        assert!(s > h, "spill should queue behind HDFS on a shared device");

        let mut split = Resources::new(1, 4, true);
        let h2 = split.hdfs_io(0, SimTime::ZERO, IoCategory::MapInput, op, &cost);
        let s2 = split.spill_io(0, SimTime::ZERO, IoCategory::ReduceSpill, op, &cost);
        assert_eq!(
            s2.as_secs_f64(),
            h2.as_secs_f64(),
            "separate devices serve in parallel"
        );
    }

    #[test]
    fn zero_ops_are_free_and_unrecorded() {
        let cost = CostModel::paper_scaled();
        let mut res = Resources::new(1, 4, false);
        let end = res.hdfs_io(0, t(3.0), IoCategory::MapInput, IoOp::NONE, &cost);
        assert_eq!(end, t(3.0));
        assert_eq!(res.io.total_bytes(), 0);
        assert_eq!(res.io.total_seeks(), 0);
    }

    #[test]
    fn usage_buckets_accumulate() {
        let mut u = Usage::new(10.0, 1, 4);
        u.add_cpu(t(5.0), t(25.0)); // spans buckets 0,1,2
        assert_eq!(u.cpu.len(), 3);
        assert!((u.cpu[0] - 5.0).abs() < 1e-9);
        assert!((u.cpu[1] - 10.0).abs() < 1e-9);
        assert!((u.cpu[2] - 5.0).abs() < 1e-9);
        let util = u.cpu_utilization();
        // Bucket 1: 10 busy seconds / (10 s × 4 cores) = 25%.
        assert!((util[1] - 25.0).abs() < 1e-9);
    }

    #[test]
    fn spans_drop_empty_intervals() {
        let mut res = Resources::new(1, 4, false);
        res.span(0, OpKind::Map, t(1.0), t(1.0));
        res.span(0, OpKind::Map, t(1.0), t(2.0));
        assert_eq!(res.timeline.len(), 1);
    }

    #[test]
    fn io_stats_flow_through() {
        let cost = CostModel::free();
        let mut res = Resources::new(1, 4, false);
        let _ = res.spill_io(
            0,
            SimTime::ZERO,
            IoCategory::ReduceSpill,
            IoOp::write(100),
            &cost,
        );
        assert_eq!(res.io.written_bytes(IoCategory::ReduceSpill), 100);
    }
}
