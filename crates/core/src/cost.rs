//! The engine's cost model: what a unit of work costs in virtual seconds.
//!
//! OPA runs the paper's experiments at 1/1024 of the published data scale
//! (256 GB → 256 MB) while keeping the virtual clock at 1:1 with the
//! paper's seconds. Every *data-proportional* constant is therefore
//! multiplied by the scale factor (a byte of simulated 80 MB/s disk takes
//! 1024× longer; a record's CPU cost is 1024× a real record's), while
//! *count-proportional* constants (seek time, task startup) stay unscaled —
//! file counts, task counts and spill counts are all ratios of
//! data-to-buffer sizes and thus scale-invariant. See DESIGN.md §2.
//!
//! CPU constants were calibrated so the per-node CPU times of Table 3
//! land near the paper's: the map-side sort burden (`c_cmp`) makes
//! sort-merge map CPU ≈ 1.6× hash map CPU, and the reduce-side constants
//! order SM ≈ MR-hash > INC-hash.

use opa_common::units::{SimDuration, MB};
use opa_simio::{DiskProfile, IoOp};
use serde::{Deserialize, Serialize};

/// All virtual-time constants used by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Data scale factor relative to the paper (1024 = run MBs, report as
    /// if GBs). Only recorded for reporting; the constants below are
    /// already scaled.
    pub scale: f64,
    /// Device serving job input/output (HDFS traffic).
    pub hdfs_disk: DiskProfile,
    /// Device serving intermediate data (spills, buckets). Point this at
    /// an SSD profile for the Fig 2(d) experiment.
    pub spill_disk: DiskProfile,
    /// Seconds per byte of shuffle transfer.
    pub net_secs_per_byte: f64,
    /// Seconds to start a map task (`c_start`, paper: 100 ms).
    pub c_start: f64,
    /// CPU seconds per record through the map function.
    pub c_map_rec: f64,
    /// CPU seconds per value through the reduce function.
    pub c_reduce_rec: f64,
    /// CPU seconds per sort/merge comparison.
    pub c_cmp: f64,
    /// CPU seconds per hash-table operation.
    pub c_hash: f64,
    /// CPU seconds per combine (`cb`) call.
    pub c_cb: f64,
    /// CPU seconds per `init()` call.
    pub c_init: f64,
}

impl CostModel {
    /// The paper-calibrated model at 1/1024 data scale.
    pub fn paper_scaled() -> Self {
        CostModel::paper_scaled_at(1024.0)
    }

    /// The paper-calibrated model at an arbitrary data-scale denominator.
    /// Data-proportional constants (disk/network per byte, per-record CPU)
    /// are multiplied by `scale / 1024` relative to the calibrated 1/1024
    /// baseline; count-proportional ones (seeks, startup) stay as
    /// published.
    pub fn paper_scaled_at(scale: f64) -> Self {
        let f = scale / 1024.0;
        CostModel {
            scale,
            hdfs_disk: scaled_disk(DiskProfile::hdd(), scale),
            spill_disk: scaled_disk(DiskProfile::hdd(), scale),
            net_secs_per_byte: scale / (100.0 * MB as f64),
            c_start: 0.1,
            c_map_rec: 1.5e-3 * f,
            c_reduce_rec: 2.0e-3 * f,
            c_cmp: 2.5e-4 * f,
            c_hash: 4.0e-4 * f,
            c_cb: 1.2e-3 * f,
            c_init: 4.0e-4 * f,
        }
    }

    /// The paper-calibrated model with intermediate data on SSD
    /// (Fig 2(d): "all the intermediate data was passed to a fast SSD").
    pub fn paper_scaled_ssd_spill() -> Self {
        CostModel {
            spill_disk: scaled_disk(DiskProfile::ssd(), 1024.0),
            ..CostModel::paper_scaled()
        }
    }

    /// A free cost model: every operation takes zero virtual time. Used by
    /// correctness tests that only care about data flow.
    pub fn free() -> Self {
        CostModel {
            scale: 1.0,
            hdfs_disk: DiskProfile::instant(),
            spill_disk: DiskProfile::instant(),
            net_secs_per_byte: 0.0,
            c_start: 0.0,
            c_map_rec: 0.0,
            c_reduce_rec: 0.0,
            c_cmp: 0.0,
            c_hash: 0.0,
            c_cb: 0.0,
            c_init: 0.0,
        }
    }

    /// CPU time to sort `n` records by comparison (`n·log2(n)` compares).
    pub fn sort_time(&self, n: u64) -> SimDuration {
        if n < 2 {
            return SimDuration::ZERO;
        }
        let cmps = n as f64 * (n as f64).log2();
        SimDuration::from_secs_f64(self.c_cmp * cmps)
    }

    /// CPU time to merge `n` records from `fan_in` sorted runs
    /// (`n·log2(fan_in)` compares through a tournament heap).
    pub fn merge_time(&self, n: u64, fan_in: usize) -> SimDuration {
        if n == 0 || fan_in < 2 {
            return SimDuration::ZERO;
        }
        let cmps = n as f64 * (fan_in as f64).log2().max(1.0);
        SimDuration::from_secs_f64(self.c_cmp * cmps)
    }

    /// CPU time for `n` map-function invocations.
    pub fn map_time(&self, n: u64) -> SimDuration {
        SimDuration::from_secs_f64(self.c_map_rec * n as f64)
    }

    /// CPU time for `n` values fed through the reduce function.
    pub fn reduce_time(&self, n: u64) -> SimDuration {
        SimDuration::from_secs_f64(self.c_reduce_rec * n as f64)
    }

    /// CPU time for `n` hash-table operations.
    pub fn hash_time(&self, n: u64) -> SimDuration {
        SimDuration::from_secs_f64(self.c_hash * n as f64)
    }

    /// CPU time for `n` combine calls.
    pub fn cb_time(&self, n: u64) -> SimDuration {
        SimDuration::from_secs_f64(self.c_cb * n as f64)
    }

    /// CPU time for `n` init calls.
    pub fn init_time(&self, n: u64) -> SimDuration {
        SimDuration::from_secs_f64(self.c_init * n as f64)
    }

    /// Network time to ship `bytes` from a mapper to a reducer.
    pub fn net_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(self.net_secs_per_byte * bytes as f64)
    }

    /// Time for an I/O operation on the HDFS device.
    pub fn hdfs_time(&self, op: IoOp) -> SimDuration {
        self.hdfs_disk.time_for(op)
    }

    /// Time for an I/O operation on the intermediate-data device.
    pub fn spill_time(&self, op: IoOp) -> SimDuration {
        self.spill_disk.time_for(op)
    }
}

/// Scales a device's per-byte cost by the data scale factor; seek time is
/// count-proportional and stays unscaled.
fn scaled_disk(base: DiskProfile, scale: f64) -> DiskProfile {
    DiskProfile {
        secs_per_byte: base.secs_per_byte * scale,
        secs_per_seek: base.secs_per_seek,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opa_common::units::KB;

    #[test]
    fn scaled_disk_keeps_seek_time() {
        let m = CostModel::paper_scaled();
        assert_eq!(m.hdfs_disk.secs_per_seek, 0.004);
        // 64 KB at scaled 80 MB/s should take what 64 MB takes unscaled:
        // 0.8 s (+ 1 seek).
        let t = m.hdfs_time(IoOp::read(64 * KB));
        assert!((t.as_secs_f64() - 0.804).abs() < 0.01, "{t}");
    }

    #[test]
    fn sort_costs_superlinear() {
        let m = CostModel::paper_scaled();
        let t1 = m.sort_time(1000).as_secs_f64();
        let t2 = m.sort_time(2000).as_secs_f64();
        assert!(t2 > 2.0 * t1, "sort should be superlinear: {t1} vs {t2}");
        assert_eq!(m.sort_time(1), SimDuration::ZERO);
    }

    #[test]
    fn merge_scales_with_fan_in_log() {
        let m = CostModel::paper_scaled();
        let narrow = m.merge_time(10_000, 2).as_secs_f64();
        let wide = m.merge_time(10_000, 16).as_secs_f64();
        assert!((wide / narrow - 4.0).abs() < 0.01, "log2(16)/log2(2) = 4");
        assert_eq!(m.merge_time(0, 8), SimDuration::ZERO);
        assert_eq!(m.merge_time(100, 1), SimDuration::ZERO);
    }

    #[test]
    fn hash_cheaper_than_sort_per_record() {
        // The paper's core claim: eliminating the sort shrinks map CPU.
        let m = CostModel::paper_scaled();
        let n = 640u64; // records in a 64 KB chunk
        let sort = m.sort_time(n).as_secs_f64();
        let hash = m.hash_time(n).as_secs_f64();
        assert!(
            hash < sort / 2.0,
            "hash ({hash}) should be far cheaper than sort ({sort})"
        );
    }

    #[test]
    fn ssd_variant_speeds_spills_only() {
        let hdd = CostModel::paper_scaled();
        let ssd = CostModel::paper_scaled_ssd_spill();
        let op = IoOp::write(100 * KB);
        assert!(ssd.spill_time(op) < hdd.spill_time(op));
        assert_eq!(ssd.hdfs_time(op), hdd.hdfs_time(op));
    }

    #[test]
    fn arbitrary_scale_interpolates_the_baseline() {
        let base = CostModel::paper_scaled();
        let same = CostModel::paper_scaled_at(1024.0);
        assert_eq!(base, same);
        // Half the scale denominator → data-proportional costs halve.
        let half = CostModel::paper_scaled_at(512.0);
        assert!((half.c_map_rec - base.c_map_rec / 2.0).abs() < 1e-12);
        assert!((half.hdfs_disk.secs_per_byte - base.hdfs_disk.secs_per_byte / 2.0).abs() < 1e-15);
        // Count-proportional constants stay put.
        assert_eq!(half.c_start, base.c_start);
        assert_eq!(half.hdfs_disk.secs_per_seek, base.hdfs_disk.secs_per_seek);
    }

    #[test]
    fn free_model_is_all_zero() {
        let m = CostModel::free();
        assert_eq!(m.sort_time(1 << 20), SimDuration::ZERO);
        assert_eq!(m.map_time(1 << 20), SimDuration::ZERO);
        assert_eq!(m.hdfs_time(IoOp::read(1 << 30)), SimDuration::ZERO);
        assert_eq!(m.net_time(1 << 30), SimDuration::ZERO);
    }
}
