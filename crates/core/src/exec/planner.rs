//! Speculative execution of indexed pure tasks.
//!
//! The scheduler consumes map-task plans in chunk-index order, but the
//! plans themselves are pure functions of the index. The planner keeps a
//! bounded window of upcoming indices in flight on the pool; when the
//! scheduler asks for index `i` it either finds the result ready, helps
//! the pool while a worker finishes it, or — if no worker has started it
//! yet — steals the slot and computes inline. The steal path is also the
//! entire behavior at `threads = 1`, so both configurations execute the
//! same code.

use std::sync::{Arc, Condvar, Mutex};

use super::Pool;

enum Slot<T> {
    /// Not started; either a worker or the scheduler may claim it.
    Pending,
    /// Some thread is computing it right now.
    Claimed,
    /// Result ready for pickup.
    Done(T),
    /// Result already handed to the scheduler.
    Taken,
}

struct State<T> {
    slots: Vec<Slot<T>>,
    /// Next index eligible for speculative submission to the pool.
    next_submit: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    cv: Condvar,
}

/// A bounded-window prefetcher for `n` indexed pure tasks.
pub struct Planner<T> {
    shared: Arc<Shared<T>>,
    window: usize,
}

impl<T: Send> Planner<T> {
    /// A planner over task indices `0..n` keeping at most `window`
    /// speculative submissions ahead of the scheduler.
    pub fn new(n: usize, window: usize) -> Self {
        let slots = (0..n).map(|_| Slot::Pending).collect();
        Planner {
            shared: Arc::new(Shared {
                state: Mutex::new(State {
                    slots,
                    next_submit: 0,
                }),
                cv: Condvar::new(),
            }),
            window: window.max(1),
        }
    }

    /// Fills the speculation window. Call once before the event loop.
    pub fn prime<'env, F>(&self, pool: &Pool<'env>, compute: F)
    where
        T: 'env,
        F: Fn(usize) -> T + Copy + Send + 'env,
    {
        for _ in 0..self.window {
            if !self.submit_one(pool, compute) {
                break;
            }
        }
    }

    /// Submits the next unsubmitted index to the pool, if any remain.
    /// Speculation is disabled on a worker-less pool: the scheduler will
    /// claim every slot inline via [`Planner::take`] instead.
    fn submit_one<'env, F>(&self, pool: &Pool<'env>, compute: F) -> bool
    where
        T: 'env,
        F: Fn(usize) -> T + Copy + Send + 'env,
    {
        if pool.workers() == 0 {
            return false;
        }
        let index = {
            let mut st = self.shared.state.lock().expect("planner lock");
            if st.next_submit >= st.slots.len() {
                return false;
            }
            let i = st.next_submit;
            st.next_submit += 1;
            i
        };
        let shared = Arc::clone(&self.shared);
        pool.submit(move || {
            let claimed = {
                let mut st = shared.state.lock().expect("planner lock");
                if matches!(st.slots[index], Slot::Pending) {
                    st.slots[index] = Slot::Claimed;
                    true
                } else {
                    false
                }
            };
            if !claimed {
                // The scheduler stole this index; nothing to do.
                return;
            }
            let value = compute(index);
            let mut st = shared.state.lock().expect("planner lock");
            st.slots[index] = Slot::Done(value);
            drop(st);
            shared.cv.notify_all();
        });
        true
    }

    /// Returns the result for `index`, computing it inline if no worker
    /// has started it. Tops up the speculation window as a side effect.
    pub fn take<'env, F>(&self, index: usize, pool: &Pool<'env>, compute: F) -> T
    where
        T: 'env,
        F: Fn(usize) -> T + Copy + Send + 'env,
    {
        self.submit_one(pool, compute);
        loop {
            let mut st = self.shared.state.lock().expect("planner lock");
            match st.slots[index] {
                Slot::Done(_) => {
                    let Slot::Done(value) = std::mem::replace(&mut st.slots[index], Slot::Taken)
                    else {
                        unreachable!()
                    };
                    return value;
                }
                Slot::Pending => {
                    // Steal: mark claimed so a late worker task skips it.
                    st.slots[index] = Slot::Claimed;
                    drop(st);
                    return compute(index);
                }
                Slot::Claimed => {
                    drop(st);
                    // A worker is on it; make progress elsewhere instead
                    // of sleeping, then re-check.
                    if pool.try_run_one() {
                        continue;
                    }
                    let st = self.shared.state.lock().expect("planner lock");
                    if matches!(st.slots[index], Slot::Claimed) {
                        let _ = self
                            .shared
                            .cv
                            .wait_timeout(st, Pool::wait_beat())
                            .expect("planner cv");
                        pool.assert_healthy();
                    }
                }
                Slot::Taken => unreachable!("map-task plan {index} taken twice"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_path_computes_every_index() {
        std::thread::scope(|s| {
            let pool = Pool::new(s, 0);
            let planner: Planner<usize> = Planner::new(8, 4);
            planner.prime(&pool, |i| i * i);
            for i in 0..8 {
                assert_eq!(planner.take(i, &pool, |i| i * i), i * i);
            }
        });
    }

    #[test]
    fn speculative_path_matches_inline_results() {
        std::thread::scope(|s| {
            let pool = Pool::new(s, 4);
            let planner: Planner<usize> = Planner::new(100, 8);
            planner.prime(&pool, |i| i * 3 + 1);
            for i in 0..100 {
                assert_eq!(planner.take(i, &pool, |i| i * 3 + 1), i * 3 + 1);
            }
        });
    }

    #[test]
    fn out_of_order_takes_are_supported() {
        // The scheduler normally consumes in order, but nothing in the
        // contract requires it.
        std::thread::scope(|s| {
            let pool = Pool::new(s, 2);
            let planner: Planner<usize> = Planner::new(10, 3);
            planner.prime(&pool, |i| i + 7);
            for i in (0..10).rev() {
                assert_eq!(planner.take(i, &pool, |i| i + 7), i + 7);
            }
        });
    }
}
