//! Fan-out/fan-in collection of a fixed-size task batch.
//!
//! The scheduler uses this for reducer mailboxes: it submits one recording
//! task per reducer touched by a delivery burst, then waits for all of
//! them, helping the pool drain while it waits so the main thread is never
//! idle capacity.

use std::sync::{Arc, Condvar, Mutex};

use super::Pool;

struct State<T> {
    slots: Vec<Option<T>>,
    remaining: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    cv: Condvar,
}

/// A one-shot collection cell for exactly `n` slotted results.
pub struct Gather<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for Gather<T> {
    fn clone(&self) -> Self {
        Gather {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T: Send> Gather<T> {
    /// A gather expecting results for slots `0..n`.
    pub fn new(n: usize) -> Self {
        Gather {
            shared: Arc::new(Shared {
                state: Mutex::new(State {
                    slots: (0..n).map(|_| None).collect(),
                    remaining: n,
                }),
                cv: Condvar::new(),
            }),
        }
    }

    /// Deposits the result for `slot`. Each slot must be filled exactly
    /// once.
    ///
    /// Only the put that completes the batch notifies the waiter: the
    /// waiter cannot return before `remaining == 0` anyway, and while
    /// results are still outstanding it is busy helping the pool drain,
    /// not blocked. This amortizes a delivery burst's wakeups to one
    /// notify per batch instead of one per message.
    pub fn put(&self, slot: usize, value: T) {
        let remaining = {
            let mut st = self.shared.state.lock().expect("gather lock");
            assert!(st.slots[slot].is_none(), "gather slot {slot} filled twice");
            st.slots[slot] = Some(value);
            st.remaining -= 1;
            st.remaining
        };
        if remaining == 0 {
            self.shared.cv.notify_all();
        }
    }

    /// Blocks until all slots are filled, returning them in slot order.
    /// Helps the pool drain while waiting.
    pub fn wait(self, pool: &Pool<'_>) -> Vec<T> {
        loop {
            {
                let mut st = self.shared.state.lock().expect("gather lock");
                if st.remaining == 0 {
                    return st
                        .slots
                        .iter_mut()
                        .map(|s| s.take().expect("gather slot filled"))
                        .collect();
                }
            }
            if pool.try_run_one() {
                continue;
            }
            let st = self.shared.state.lock().expect("gather lock");
            if st.remaining > 0 {
                let _ = self
                    .shared
                    .cv
                    .wait_timeout(st, Pool::wait_beat())
                    .expect("gather cv");
                pool.assert_healthy();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_in_slot_order_regardless_of_fill_order() {
        std::thread::scope(|s| {
            let pool = Pool::new(s, 2);
            let gather: Gather<&'static str> = Gather::new(3);
            for (slot, word) in [(2usize, "c"), (0, "a"), (1, "b")] {
                let g = gather.clone();
                pool.submit(move || g.put(slot, word));
            }
            assert_eq!(gather.wait(&pool), vec!["a", "b", "c"]);
        });
    }

    #[test]
    fn zero_slot_gather_returns_immediately() {
        std::thread::scope(|s| {
            let pool = Pool::new(s, 0);
            let gather: Gather<u8> = Gather::new(0);
            assert!(gather.wait(&pool).is_empty());
        });
    }

    #[test]
    fn inline_pool_fills_before_wait() {
        std::thread::scope(|s| {
            let pool = Pool::new(s, 0);
            let gather: Gather<u32> = Gather::new(2);
            for slot in 0..2u32 {
                let g = gather.clone();
                pool.submit(move || g.put(slot as usize, slot * 10));
            }
            assert_eq!(gather.wait(&pool), vec![0, 10]);
        });
    }
}
