//! The parallel execution layer.
//!
//! The engine is split into two layers:
//!
//! - a **scheduling layer** (the event loop in [`crate::job`]) that owns
//!   every piece of shared simulation state — disk queues, progress,
//!   timeline, metrics — and mutates it in a deterministic order derived
//!   purely from the event queue;
//! - an **execution layer** (this module) that runs the *pure* part of the
//!   work — map-task computation and reducer effect recording — on a pool
//!   of host threads.
//!
//! Nothing a worker thread computes depends on simulated time or on any
//! other worker, so the scheduling layer can replay recorded results in
//! exactly the order the sequential engine would have produced them. The
//! consequence is the engine's core contract: a job's [`crate::job::JobOutcome`]
//! is bit-identical at any thread count, including `threads = 1`.
//!
//! Three primitives:
//!
//! - [`Pool`] — a scoped work-stealing pool over `std::thread` (the
//!   sanctioned dependency set has no crossbeam); tasks may borrow the
//!   job and input. Each worker owns a deque, submissions deal
//!   round-robin, and an idle worker steals the oldest half of a victim's
//!   backlog so one straggling task cannot serialize a wave.
//! - [`Planner`] — speculative execution of indexed pure tasks (map-task
//!   plans): a bounded window of upcoming tasks runs ahead on the pool,
//!   and the scheduler claims results by index, stealing unstarted work
//!   inline so it never idles.
//! - [`Gather`] — a fan-out/fan-in cell: submit N tasks (a delivery burst
//!   goes up as one [`Pool::submit_batch`]), then collect all N results
//!   while helping the pool drain; only the completing task wakes the
//!   waiter.

mod gather;
mod planner;
mod pool;

pub use gather::Gather;
pub use planner::Planner;
pub use pool::{Pool, Task};
