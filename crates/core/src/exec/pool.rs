//! A scoped worker pool built on `std::thread::scope`.
//!
//! Tasks are `FnOnce` closures that may borrow from the enclosing job run
//! (the job, the cluster spec, the input records): the pool's lifetime
//! parameter ties every task to the scope that owns the worker threads.
//! With zero workers the pool degrades to immediate inline execution on
//! the submitting thread, which is what makes the `threads = 1`
//! configuration share the exact code path of the parallel one.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::Scope;
use std::time::Duration;

type Task<'env> = Box<dyn FnOnce() + Send + 'env>;

struct State<'env> {
    queue: VecDeque<Task<'env>>,
    shutdown: bool,
}

struct Shared<'env> {
    state: Mutex<State<'env>>,
    cv: Condvar,
    panicked: AtomicBool,
}

/// A fixed-size pool of scoped worker threads draining a FIFO task queue.
pub struct Pool<'env> {
    shared: Arc<Shared<'env>>,
    workers: usize,
}

impl<'env> Pool<'env> {
    /// Spawns `workers` threads on `scope`. Zero workers is valid: tasks
    /// then run inline at submission.
    pub fn new<'scope>(scope: &'scope Scope<'scope, 'env>, workers: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
            panicked: AtomicBool::new(false),
        });
        for _ in 0..workers {
            let sh = Arc::clone(&shared);
            scope.spawn(move || worker_loop(&sh));
        }
        Pool { shared, workers }
    }

    /// Number of worker threads (0 means inline execution).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Enqueues a task — or runs it immediately when the pool has no
    /// workers.
    pub fn submit(&self, task: impl FnOnce() + Send + 'env) {
        if self.workers == 0 {
            task();
            return;
        }
        {
            let mut st = self.shared.state.lock().expect("pool lock");
            st.queue.push_back(Box::new(task));
        }
        self.shared.cv.notify_one();
    }

    /// Runs one queued task on the calling thread, if any is pending.
    /// Waiters use this to help drain the pool instead of blocking.
    pub fn try_run_one(&self) -> bool {
        let task = {
            let mut st = self.shared.state.lock().expect("pool lock");
            st.queue.pop_front()
        };
        match task {
            Some(t) => {
                t();
                true
            }
            None => false,
        }
    }

    /// Propagates a worker-thread panic to the caller. Waiters call this
    /// inside their wait loops so a crashed worker cannot deadlock the
    /// scheduler.
    pub fn assert_healthy(&self) {
        if self.shared.panicked.load(Ordering::Acquire) {
            panic!("an execution-layer worker thread panicked");
        }
    }

    /// A short bounded sleep used by wait loops between health checks.
    pub(crate) fn wait_beat() -> Duration {
        Duration::from_millis(25)
    }
}

impl Drop for Pool<'_> {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().expect("pool lock");
        st.shutdown = true;
        drop(st);
        self.shared.cv.notify_all();
    }
}

fn worker_loop(sh: &Shared<'_>) {
    loop {
        let task = {
            let mut st = sh.state.lock().expect("pool lock");
            loop {
                if let Some(t) = st.queue.pop_front() {
                    break Some(t);
                }
                if st.shutdown {
                    break None;
                }
                st = sh.cv.wait(st).expect("pool cv");
            }
        };
        let Some(task) = task else { return };
        if std::panic::catch_unwind(std::panic::AssertUnwindSafe(task)).is_err() {
            sh.panicked.store(true, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn zero_workers_runs_inline() {
        let hits = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let pool = Pool::new(s, 0);
            pool.submit(|| {
                hits.fetch_add(1, Ordering::SeqCst);
            });
            assert_eq!(hits.load(Ordering::SeqCst), 1, "inline = done at submit");
            assert!(!pool.try_run_one(), "nothing queued");
        });
    }

    #[test]
    fn workers_drain_the_queue() {
        let hits = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let pool = Pool::new(s, 3);
            for _ in 0..64 {
                pool.submit(|| {
                    hits.fetch_add(1, Ordering::SeqCst);
                });
            }
            // Help from the main thread too; then wait for quiescence.
            while hits.load(Ordering::SeqCst) < 64 {
                if !pool.try_run_one() {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        });
        assert_eq!(hits.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn pool_drop_releases_idle_workers() {
        // The scope would hang forever if Drop failed to wake the workers.
        std::thread::scope(|s| {
            let _pool = Pool::new(s, 2);
        });
    }
}
