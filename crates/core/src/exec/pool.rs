//! A scoped work-stealing worker pool built on `std::thread::scope`.
//!
//! Tasks are `FnOnce` closures that may borrow from the enclosing job run
//! (the job, the cluster spec, the input records): the pool's lifetime
//! parameter ties every task to the scope that owns the worker threads.
//! With zero workers the pool degrades to immediate inline execution on
//! the submitting thread, which is what makes the `threads = 1`
//! configuration share the exact code path of the parallel one.
//!
//! # Scheduling
//!
//! Each worker owns a deque; submissions are dealt round-robin across the
//! deques so a burst of tasks lands spread out instead of funneling
//! through one contended queue. A worker drains its own deque first and,
//! when that runs dry, *steals half* of the oldest tasks from the first
//! non-empty victim (scanning from its own index so thieves fan out).
//! Stealing in halves means one expensive task queued behind cheap ones
//! cannot serialize a wave: the straggler's backlog migrates to idle
//! workers in O(log n) steals.
//!
//! Steal order never influences results: tasks communicate only through
//! [`super::Gather`]/[`super::Planner`] slots, and the scheduling layer
//! replays their effect logs in event order regardless of which thread
//! produced them.
//!
//! # Parking
//!
//! Idle workers park on a condvar behind a sleeper count; submitters skip
//! the notify syscall entirely while every worker is busy (the common
//! case mid-wave). [`Pool::submit_batch`] enqueues a whole delivery burst
//! with one wake decision instead of one notify per task.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::Scope;
use std::time::Duration;

/// A unit of pool work: a boxed closure tied to the job-run scope.
pub type Task<'env> = Box<dyn FnOnce() + Send + 'env>;

struct Shared<'env> {
    /// One deque per worker. Round-robin submission targets, steal-half
    /// victims. Tasks never need a particular queue: any thread may run
    /// any task.
    queues: Vec<Mutex<VecDeque<Task<'env>>>>,
    /// Tasks currently queued (in any deque). Checked by parking workers
    /// under `park` so a submit between "queues looked empty" and "wait"
    /// cannot be lost.
    pending: AtomicUsize,
    /// Round-robin cursors: submission target and steal scan start.
    submit_cursor: AtomicUsize,
    steal_cursor: AtomicUsize,
    /// Workers currently parked (or committing to park) on `cv`.
    sleepers: AtomicUsize,
    park: Mutex<ParkState>,
    cv: Condvar,
    panicked: AtomicBool,
}

struct ParkState {
    shutdown: bool,
}

/// A fixed-size pool of scoped worker threads with per-worker deques and
/// steal-half work stealing.
pub struct Pool<'env> {
    shared: Arc<Shared<'env>>,
    workers: usize,
}

impl<'env> Pool<'env> {
    /// Spawns `workers` threads on `scope`. Zero workers is valid: tasks
    /// then run inline at submission.
    pub fn new<'scope>(scope: &'scope Scope<'scope, 'env>, workers: usize) -> Self {
        let shared = Arc::new(Shared {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicUsize::new(0),
            submit_cursor: AtomicUsize::new(0),
            steal_cursor: AtomicUsize::new(0),
            sleepers: AtomicUsize::new(0),
            park: Mutex::new(ParkState { shutdown: false }),
            cv: Condvar::new(),
            panicked: AtomicBool::new(false),
        });
        for i in 0..workers {
            let sh = Arc::clone(&shared);
            scope.spawn(move || worker_loop(&sh, i));
        }
        Pool { shared, workers }
    }

    /// Number of worker threads (0 means inline execution).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Enqueues a task — or runs it immediately when the pool has no
    /// workers.
    pub fn submit(&self, task: impl FnOnce() + Send + 'env) {
        if self.workers == 0 {
            task();
            return;
        }
        self.enqueue(Box::new(task));
        self.wake(1);
    }

    /// Enqueues a whole batch with a single wake decision. Order within
    /// the batch is preserved per deque (round-robin deal), which keeps
    /// the oldest tasks globally near every deque front.
    pub fn submit_batch(&self, tasks: Vec<Task<'env>>) {
        if self.workers == 0 {
            for task in tasks {
                task();
            }
            return;
        }
        let n = tasks.len();
        for task in tasks {
            self.enqueue(task);
        }
        self.wake(n);
    }

    fn enqueue(&self, task: Task<'env>) {
        let q = self.shared.submit_cursor.fetch_add(1, Ordering::Relaxed) % self.workers;
        self.shared.queues[q]
            .lock()
            .expect("pool queue lock")
            .push_back(task);
        self.shared.pending.fetch_add(1, Ordering::SeqCst);
    }

    /// Wakes up to `n` parked workers — and skips the syscall entirely
    /// when nobody is parked, which is the common case mid-wave.
    fn wake(&self, n: usize) {
        if self.shared.sleepers.load(Ordering::SeqCst) == 0 {
            return;
        }
        // Take the park lock so the notify cannot slip between a worker's
        // final pending check and its wait.
        let _st = self.shared.park.lock().expect("pool park lock");
        if n == 1 {
            self.shared.cv.notify_one();
        } else {
            self.shared.cv.notify_all();
        }
    }

    /// Runs one queued task on the calling thread, if any is pending.
    /// Waiters use this to help drain the pool instead of blocking. The
    /// helper steals a single task (not half): it is about to re-check
    /// its own wait condition, not build a backlog.
    pub fn try_run_one(&self) -> bool {
        if self.workers == 0 || self.shared.pending.load(Ordering::SeqCst) == 0 {
            return false;
        }
        let start = self.shared.steal_cursor.fetch_add(1, Ordering::Relaxed);
        for k in 0..self.workers {
            let q = (start + k) % self.workers;
            let task = self.shared.queues[q]
                .lock()
                .expect("pool queue lock")
                .pop_front();
            if let Some(task) = task {
                self.shared.pending.fetch_sub(1, Ordering::SeqCst);
                task();
                return true;
            }
        }
        false
    }

    /// Propagates a worker-thread panic to the caller. Waiters call this
    /// inside their wait loops so a crashed worker cannot deadlock the
    /// scheduler.
    pub fn assert_healthy(&self) {
        if self.shared.panicked.load(Ordering::Acquire) {
            panic!("an execution-layer worker thread panicked");
        }
    }

    /// A short bounded sleep used by wait loops between health checks.
    pub(crate) fn wait_beat() -> Duration {
        Duration::from_millis(25)
    }
}

impl Drop for Pool<'_> {
    fn drop(&mut self) {
        let mut st = self.shared.park.lock().expect("pool park lock");
        st.shutdown = true;
        drop(st);
        self.shared.cv.notify_all();
    }
}

/// Pops from the worker's own deque, or steals the oldest half of the
/// first non-empty victim's deque. Returns the task to run now; surplus
/// stolen tasks are re-queued on the worker's own deque.
fn grab<'env>(sh: &Shared<'env>, me: usize) -> Option<Task<'env>> {
    if sh.pending.load(Ordering::SeqCst) == 0 {
        return None;
    }
    if let Some(task) = sh.queues[me].lock().expect("pool queue lock").pop_front() {
        sh.pending.fetch_sub(1, Ordering::SeqCst);
        return Some(task);
    }
    let n = sh.queues.len();
    for k in 1..n {
        let victim = (me + k) % n;
        // Move the stolen half out under the victim's lock alone — never
        // hold two queue locks at once (symmetric steals would deadlock).
        let mut stolen: VecDeque<Task<'env>> = {
            let mut vq = sh.queues[victim].lock().expect("pool queue lock");
            let len = vq.len();
            if len == 0 {
                continue;
            }
            vq.drain(..len.div_ceil(2)).collect()
        };
        let first = stolen.pop_front().expect("stole at least one task");
        sh.pending.fetch_sub(1, Ordering::SeqCst);
        if !stolen.is_empty() {
            sh.queues[me]
                .lock()
                .expect("pool queue lock")
                .extend(stolen.drain(..));
            // The surplus is stealable in turn; offer it to a parked
            // worker (no-op syscall-free when none are parked).
            if sh.sleepers.load(Ordering::SeqCst) > 0 {
                let _st = sh.park.lock().expect("pool park lock");
                sh.cv.notify_one();
            }
        }
        return Some(first);
    }
    None
}

fn worker_loop(sh: &Shared<'_>, me: usize) {
    loop {
        if let Some(task) = grab(sh, me) {
            if std::panic::catch_unwind(std::panic::AssertUnwindSafe(task)).is_err() {
                sh.panicked.store(true, Ordering::Release);
            }
            continue;
        }
        // Park. The sleeper count is registered and `pending` re-checked
        // under the park lock; a submitter bumps `pending` before reading
        // `sleepers` and notifies under the same lock, so the wakeup
        // cannot be lost. The timed wait is a safety beat, not a poll.
        let st = sh.park.lock().expect("pool park lock");
        if st.shutdown {
            return;
        }
        sh.sleepers.fetch_add(1, Ordering::SeqCst);
        if sh.pending.load(Ordering::SeqCst) == 0 {
            let _ = sh
                .cv
                .wait_timeout(st, Pool::wait_beat())
                .expect("pool park cv");
        }
        sh.sleepers.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn zero_workers_runs_inline() {
        let hits = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let pool = Pool::new(s, 0);
            pool.submit(|| {
                hits.fetch_add(1, Ordering::SeqCst);
            });
            assert_eq!(hits.load(Ordering::SeqCst), 1, "inline = done at submit");
            assert!(!pool.try_run_one(), "nothing queued");
        });
    }

    #[test]
    fn workers_drain_the_queue() {
        let hits = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let pool = Pool::new(s, 3);
            for _ in 0..64 {
                pool.submit(|| {
                    hits.fetch_add(1, Ordering::SeqCst);
                });
            }
            // Help from the main thread too; then wait for quiescence.
            while hits.load(Ordering::SeqCst) < 64 {
                if !pool.try_run_one() {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        });
        assert_eq!(hits.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn batch_submission_completes_every_task() {
        let hits = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let pool = Pool::new(s, 2);
            let tasks: Vec<Task<'_>> = (0..100)
                .map(|_| {
                    Box::new(|| {
                        hits.fetch_add(1, Ordering::SeqCst);
                    }) as Task<'_>
                })
                .collect();
            pool.submit_batch(tasks);
            while hits.load(Ordering::SeqCst) < 100 {
                if !pool.try_run_one() {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        });
        assert_eq!(hits.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn stealing_rebalances_a_lopsided_backlog() {
        // One slow task occupies its worker while many quick tasks queue
        // up round-robin behind it; idle workers must steal the backlog
        // rather than wait for the straggler. The assertion is progress
        // with the submitter refusing to help: only stealing can finish.
        let done = AtomicUsize::new(0);
        let gate = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let pool = Pool::new(s, 4);
            pool.submit(|| {
                while gate.load(Ordering::SeqCst) == 0 {
                    std::thread::sleep(Duration::from_millis(1));
                }
                done.fetch_add(1, Ordering::SeqCst);
            });
            for _ in 0..63 {
                pool.submit(|| {
                    done.fetch_add(1, Ordering::SeqCst);
                });
            }
            // Every quick task finishes while the straggler still holds
            // its worker hostage.
            let deadline = std::time::Instant::now() + Duration::from_secs(10);
            while done.load(Ordering::SeqCst) < 63 {
                assert!(
                    std::time::Instant::now() < deadline,
                    "steal-half failed to drain a straggler's backlog"
                );
                std::thread::sleep(Duration::from_millis(1));
            }
            gate.store(1, Ordering::SeqCst);
            while done.load(Ordering::SeqCst) < 64 {
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        assert_eq!(done.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn pool_drop_releases_idle_workers() {
        // The scope would hang forever if Drop failed to wake the workers.
        std::thread::scope(|s| {
            let _pool = Pool::new(s, 2);
        });
    }
}
