//! Map-task execution and map-output collection.
//!
//! A map task reads its chunk, applies the user map function, and then
//! hands the output to a framework-specific collector:
//!
//! - **sort-merge** — sorts by ⟨partition, key⟩ (charging the comparison
//!   CPU the paper blames for the busy map phase), applies the combiner if
//!   present, and external-sorts through spill files when the output
//!   exceeds `B_m`;
//! - **MR-hash** — partitions by `h1` with a single buffer scan, no sort;
//! - **INC/DINC-hash** — applies `init()` immediately after map (§4.2) and
//!   collapses same-key states with `cb()` in an in-memory hash table (the
//!   Hash-based Map Output component of §5).
//!
//! Under pipelining the task emits several *granules* (each independently
//! sorted, like MapReduce Online's eager spills) at interpolated times;
//! otherwise a single granule at task completion.
//!
//! ## Compute / accounting split
//!
//! Map-task work is split in two so the execution layer
//! ([`crate::exec`]) can run the expensive part on worker threads:
//!
//! 1. [`compute_map_task`] does everything that touches *data* — the map
//!    function, sorting, combining, partitioning — and records every
//!    simulated-resource operation (CPU charge, HDFS read, spill write,
//!    merge span) into a [`MapTaskPlan`]. It is a pure function of the
//!    job, framework, records and hash function: no [`Resources`] access,
//!    no simulated time.
//! 2. [`finish_map_task`] replays the plan against the shared
//!    [`Resources`] on the scheduling thread, which is where disk-queue
//!    contention, usage accounting and the task timeline are resolved.
//!
//! Because the plan is independent of *when* and *where* it is replayed,
//! plans may be computed speculatively and out of order while replay stays
//! in strict event order — the engine's bit-identical determinism contract
//! rests on this property. [`run_map_task`] composes the two for callers
//! that do not care about the split.

use crate::api::{Job, ReduceCtx, Site};
use crate::cluster::{ClusterSpec, Framework};
use crate::sim::{OpKind, Resources};
use bytes::Bytes;
use opa_common::fault::FaultConfig;
use opa_common::hash::bucket_of;
use opa_common::units::{SimDuration, SimTime};
use opa_common::{
    BatchBuilder, HashFn, Key, Pair, RecordBatch, ShardedGroupIndex, StateBatch, StatePair, Value,
};
use opa_simio::{IoCategory, IoOp};

/// Per-record UDF poison configuration for one map task: the fault config
/// whose `(seed, udf_poison_rate)` drive the verdict, plus the global
/// input offset of the task's first record. The verdict for a record is a
/// pure function of `(seed, base + index)` — independent of thread,
/// attempt and interleaving — so poisoned records quarantine identically
/// on every execution.
#[derive(Debug, Clone, Copy)]
pub struct PoisonGate {
    /// Fault config; only `seed` and `udf_poison_rate` are consulted.
    pub faults: FaultConfig,
    /// Global input offset of `records[0]` of this task's chunk.
    pub base: u64,
}

/// Data delivered from a mapper to one reducer: a batch of rows sharing
/// the mapper's arena, carrying each row's partition-time `h1` fingerprint
/// so reduce-side group tables never re-hash.
#[derive(Debug, Clone)]
pub enum Payload {
    /// Key-value pairs; sorted by key when produced by sort-merge.
    Pairs(RecordBatch),
    /// Key-state pairs (incremental frameworks).
    States(StateBatch),
}

impl Payload {
    /// Serialized size in bytes.
    pub fn bytes(&self) -> u64 {
        match self {
            Payload::Pairs(b) => b.bytes(),
            Payload::States(b) => b.bytes(),
        }
    }

    /// Record count.
    pub fn len(&self) -> usize {
        match self {
            Payload::Pairs(b) => b.len(),
            Payload::States(b) => b.len(),
        }
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One batch of deliveries pushed by a mapper at `time`: element `p` goes
/// to reducer partition `p`.
#[derive(Debug)]
pub struct Granule {
    /// Virtual instant at which the granule leaves the mapper.
    pub time: SimTime,
    /// Per-reducer payloads (length = total reducers).
    pub partitions: Vec<Payload>,
}

/// Outcome of one executed map task.
#[derive(Debug)]
pub struct MapTaskResult {
    /// Task completion time.
    pub finish: SimTime,
    /// Granules to deliver (non-pipelined tasks have exactly one, at
    /// `finish`).
    pub granules: Vec<Granule>,
    /// CPU time this task consumed.
    pub cpu: SimDuration,
    /// Total map-output bytes (shuffle volume contributed).
    pub output_bytes: u64,
    /// Map-side internal spill bytes written (external sort).
    pub spill_bytes: u64,
    /// Output pairs emitted directly at the mapper by map-side `cb()`
    /// early output (e.g. sessions that closed within a chunk).
    pub early_output: Vec<Pair>,
    /// Records the map UDF rejected, as `(global offset, raw record)` in
    /// ascending offset order. The scheduler quarantines these to the
    /// dead-letter queue instead of failing the task.
    pub poisoned: Vec<(u64, Bytes)>,
}

/// One recorded simulated-resource operation of a map task. Replayed in
/// order by [`finish_map_task`].
#[derive(Debug, Clone, Copy)]
enum MapOp {
    /// Advance the task-local clock without charging any resource
    /// (task startup latency `c_start`).
    Advance(SimDuration),
    /// Charge CPU on the task's node.
    Cpu(SimDuration),
    /// An HDFS operation (chunk read, map-side early output).
    Hdfs(IoCategory, IoOp),
    /// A local-disk operation (map output, external-sort spills).
    Spill(IoCategory, IoOp),
    /// Open a background-merge timeline span at the current clock.
    MergeStart,
    /// Close the innermost open merge span.
    MergeEnd,
    /// Stamp the next granule with the current clock.
    Granule,
}

/// The pure half of a map task: the data it produced plus the operation
/// log needed to account for it. Produced by [`compute_map_task`] —
/// possibly on a worker thread — and consumed by [`finish_map_task`] on
/// the scheduling thread.
#[derive(Debug)]
pub struct MapTaskPlan {
    ops: Vec<MapOp>,
    /// Per-granule per-reducer payloads, in granule order; each entry is
    /// stamped by the matching [`MapOp::Granule`] during replay.
    granules: Vec<Vec<Payload>>,
    cpu: SimDuration,
    output_bytes: u64,
    spill_bytes: u64,
    early_output: Vec<Pair>,
    poisoned: Vec<(u64, Bytes)>,
}

impl MapTaskPlan {
    fn new() -> Self {
        MapTaskPlan {
            ops: Vec::new(),
            granules: Vec::new(),
            cpu: SimDuration::ZERO,
            output_bytes: 0,
            spill_bytes: 0,
            early_output: Vec::new(),
            poisoned: Vec::new(),
        }
    }

    fn op_cpu(&mut self, dur: SimDuration) {
        self.ops.push(MapOp::Cpu(dur));
        self.cpu += dur;
    }

    /// Converts this plan into its in-memory dataflow form (the M3R-style
    /// partition-stable handoff): drops the HDFS chunk read — the input
    /// never lived on the distributed filesystem, it arrived as the
    /// previous stage's resident output — and the map-output
    /// materialization writes, which are exactly the shuffle volume the
    /// handoff skips. CPU charges, internal external-sort spills and
    /// granule stamps are kept: the map function and its sort really run.
    /// Returns the forgone map-output byte volume (the stage's
    /// `bytes_saved`) and zeroes the plan's own shuffle accounting.
    pub fn strip_materialization(&mut self) -> u64 {
        self.ops.retain(|op| {
            !matches!(
                op,
                MapOp::Hdfs(IoCategory::MapInput, _) | MapOp::Spill(IoCategory::MapOutput, _)
            )
        });
        std::mem::take(&mut self.output_bytes)
    }

    /// The task's contention-free duration: what it would take on an idle
    /// node. The fault subsystem uses this as the straggler-detection
    /// horizon — the instant a healthy attempt "should have" finished.
    pub fn nominal_duration(&self, spec: &ClusterSpec) -> SimDuration {
        let cost = &spec.cost;
        let mut total = SimDuration::ZERO;
        for op in &self.ops {
            match *op {
                MapOp::Advance(d) | MapOp::Cpu(d) => total += d,
                MapOp::Hdfs(_, io) => total += cost.hdfs_time(io),
                MapOp::Spill(_, io) => total += cost.spill_time(io),
                MapOp::MergeStart | MapOp::MergeEnd | MapOp::Granule => {}
            }
        }
        total
    }
}

/// What a discarded map-task attempt cost: when it died (or was given up
/// on) and the work it burned.
#[derive(Debug, Clone, Copy)]
pub struct MapAttemptWaste {
    /// Virtual time at which the attempt ended (failure detected, or the
    /// straggling copy finally stopped).
    pub fail_time: SimTime,
    /// CPU the attempt consumed before dying.
    pub wasted_cpu: SimDuration,
    /// Bytes the attempt wrote that nobody will read.
    pub wasted_bytes: u64,
}

/// Replays the prefix of a map-task plan that a failing attempt completed
/// before dying: `frac` of the plan's operations are charged against the
/// shared resources (the work really happened — CPU burned, disk queues
/// occupied), but no granules are produced and no early output escapes.
/// Returns the waste accounting for the fault report.
pub fn abort_map_task(
    plan: &MapTaskPlan,
    frac: f64,
    node: usize,
    start: SimTime,
    spec: &ClusterSpec,
    res: &mut Resources,
) -> MapAttemptWaste {
    let frac = frac.clamp(0.0, 1.0);
    let upto = ((plan.ops.len() as f64 * frac).ceil() as usize).clamp(1, plan.ops.len());
    replay_partial(plan, upto, 1.0, node, start, spec, res)
}

/// Replays a straggling map-task attempt in full, with `Advance`/`Cpu`
/// durations scaled by `factor` (the node's CPU is degraded; its disk is
/// not). The attempt's entire output is wasted: the engine launches a
/// speculative backup at the nominal-duration horizon and always commits
/// the backup's granules, treating the straggling node as blacklisted.
pub fn straggle_map_task(
    plan: &MapTaskPlan,
    factor: f64,
    node: usize,
    start: SimTime,
    spec: &ClusterSpec,
    res: &mut Resources,
) -> MapAttemptWaste {
    replay_partial(
        plan,
        plan.ops.len(),
        factor.max(1.0),
        node,
        start,
        spec,
        res,
    )
}

/// Shared partial/scaled replay behind [`abort_map_task`] and
/// [`straggle_map_task`]: charges the first `upto` operations, skipping
/// granule stamping, and closes any merge span left open at the cut.
fn replay_partial(
    plan: &MapTaskPlan,
    upto: usize,
    factor: f64,
    node: usize,
    start: SimTime,
    spec: &ClusterSpec,
    res: &mut Resources,
) -> MapAttemptWaste {
    let cost = &spec.cost;
    let scale = |d: SimDuration| SimDuration((d.0 as f64 * factor) as u64);
    let mut t = start;
    let mut merge_starts: Vec<SimTime> = Vec::new();
    let mut wasted_cpu = SimDuration::ZERO;
    let mut wasted_bytes = 0u64;
    for op in &plan.ops[..upto] {
        match *op {
            MapOp::Advance(d) => t += scale(d),
            MapOp::Cpu(d) => {
                let d = scale(d);
                wasted_cpu += d;
                t = res.cpu(node, t, d);
            }
            MapOp::Hdfs(cat, io) => t = res.hdfs_io(node, t, cat, io, cost),
            MapOp::Spill(cat, io) => {
                wasted_bytes += io.written;
                t = res.spill_io(node, t, cat, io, cost);
            }
            MapOp::MergeStart => merge_starts.push(t),
            MapOp::MergeEnd => {
                let m0 = merge_starts.pop().expect("balanced merge markers");
                res.span(node, OpKind::Merge, m0, t);
            }
            MapOp::Granule => {}
        }
    }
    // A merge interrupted by the failure still occupied the timeline.
    while let Some(m0) = merge_starts.pop() {
        res.span(node, OpKind::Merge, m0, t);
    }
    res.span(node, OpKind::Map, start, t);
    MapAttemptWaste {
        fail_time: t,
        wasted_cpu,
        wasted_bytes,
    }
}

/// Computes one map task without touching shared simulation state: runs
/// the user map function and the framework collector, and records every
/// resource operation into the returned plan. Pure — safe to run on any
/// thread, in any order.
#[allow(clippy::too_many_arguments)]
pub fn compute_map_task(
    job: &dyn Job,
    framework: Framework,
    records: &[Bytes],
    chunk_bytes: u64,
    spec: &ClusterSpec,
    h1: HashFn,
    admission: opa_common::AdmissionPolicy,
    combine: opa_common::CombineScope,
    poison: Option<PoisonGate>,
) -> MapTaskPlan {
    let cost = &spec.cost;
    let n_partitions = spec.total_reducers();
    let mut plan = MapTaskPlan::new();

    // Task startup, then read the input chunk from HDFS.
    plan.ops
        .push(MapOp::Advance(SimDuration::from_secs_f64(cost.c_start)));
    plan.ops
        .push(MapOp::Hdfs(IoCategory::MapInput, IoOp::read(chunk_bytes)));

    // The map function, for real: emissions land in the arena-batched
    // collector (inline representations for small payloads, one shared
    // append-only arena for large ones), so the per-record path allocates
    // nothing.
    let mut builder = BatchBuilder::with_capacity(records.len());
    let mut mapped = 0u64;
    for (i, rec) in records.iter().enumerate() {
        // Poisoned records never reach the UDF: the verdict is pure in
        // (seed, offset), so the same record quarantines on every attempt
        // and the chunk's whole plan stays a pure function of its inputs.
        if let Some(gate) = &poison {
            let offset = gate.base + i as u64;
            if gate.faults.poisons(offset) {
                plan.poisoned.push((offset, rec.clone()));
                continue;
            }
        }
        job.map(rec, &mut |k, v| builder.push(k, v));
        mapped += 1;
    }
    let pairs = builder.seal();
    plan.op_cpu(cost.map_time(mapped));

    // `Off` disables the per-task combiner for the materializing
    // frameworks; the incremental frameworks fold on arrival by
    // construction, so for them the scope has no per-task effect.
    let combiner = job.combiner().filter(|_| combine.task_combining());
    match framework {
        Framework::SortMerge => plan_sort_merge(combiner, pairs, 1, spec, h1, &mut plan),
        Framework::SortMergePipelined => {
            // Pipelined granules interpolate between map-fn end and finish.
            plan_sort_merge(combiner, pairs, spec.pipeline_granules, spec, h1, &mut plan)
        }
        Framework::MrHash => plan_mr_hash(combiner, pairs, n_partitions, spec, h1, &mut plan),
        Framework::IncHash | Framework::DincHash => plan_incremental(
            job,
            pairs,
            n_partitions,
            chunk_bytes,
            spec,
            h1,
            admission,
            &mut plan,
        ),
    }
    plan
}

/// Replays a map-task plan against the shared resources, resolving disk
/// contention and stamping granule times. Must run on the scheduling
/// thread, in event order.
pub fn finish_map_task(
    plan: MapTaskPlan,
    node: usize,
    start: SimTime,
    spec: &ClusterSpec,
    res: &mut Resources,
) -> MapTaskResult {
    let cost = &spec.cost;
    let mut t = start;
    let mut merge_starts: Vec<SimTime> = Vec::new();
    let mut granule_times: Vec<SimTime> = Vec::with_capacity(plan.granules.len());
    for op in &plan.ops {
        match *op {
            MapOp::Advance(d) => t += d,
            MapOp::Cpu(d) => t = res.cpu(node, t, d),
            MapOp::Hdfs(cat, io) => t = res.hdfs_io(node, t, cat, io, cost),
            MapOp::Spill(cat, io) => t = res.spill_io(node, t, cat, io, cost),
            MapOp::MergeStart => merge_starts.push(t),
            MapOp::MergeEnd => {
                let m0 = merge_starts.pop().expect("balanced merge markers");
                res.span(node, OpKind::Merge, m0, t);
            }
            MapOp::Granule => granule_times.push(t),
        }
    }
    res.span(node, OpKind::Map, start, t);
    let granules = granule_times
        .into_iter()
        .zip(plan.granules)
        .map(|(time, partitions)| Granule { time, partitions })
        .collect();
    MapTaskResult {
        finish: t,
        granules,
        cpu: plan.cpu,
        output_bytes: plan.output_bytes,
        spill_bytes: plan.spill_bytes,
        early_output: plan.early_output,
        poisoned: plan.poisoned,
    }
}

/// Executes one map task starting at `start` on `node` (compute followed
/// immediately by accounting).
#[allow(clippy::too_many_arguments)]
pub fn run_map_task(
    job: &dyn Job,
    framework: Framework,
    records: &[Bytes],
    chunk_bytes: u64,
    node: usize,
    start: SimTime,
    spec: &ClusterSpec,
    h1: HashFn,
    res: &mut Resources,
) -> MapTaskResult {
    let plan = compute_map_task(
        job,
        framework,
        records,
        chunk_bytes,
        spec,
        h1,
        opa_common::AdmissionPolicy::Off,
        opa_common::CombineScope::Task,
        None,
    );
    finish_map_task(plan, node, start, spec, res)
}

/// Sort-merge collection, optionally split into `granules` pipelined
/// pieces (each sorted and combined independently, like HOP's spills).
fn plan_sort_merge(
    combiner: Option<&dyn crate::api::Combiner>,
    pairs: Vec<Pair>,
    granules: usize,
    spec: &ClusterSpec,
    h1: HashFn,
    plan: &mut MapTaskPlan,
) {
    let cost = &spec.cost;
    let n_partitions = spec.total_reducers();
    let n = pairs.len();
    let granules = granules.clamp(1, n.max(1));
    let mut iter = pairs.into_iter();

    // Scratch run buffer; the combiner path drains it in place so
    // pipelined tasks reuse its capacity across granules, the
    // combiner-less path moves it out wholesale (no element copies).
    let mut part: Vec<(usize, u64, Pair)> = Vec::with_capacity(n / granules + 1);
    for g in 0..granules {
        let lo = n * g / granules;
        let hi = n * (g + 1) / granules;
        // Tag each pair with its h1 fingerprint (hashed once — the same
        // fingerprint partitions here and probes reduce-side tables) and
        // its target partition; the pairs are moved out of the map
        // buffer, not cloned.
        part.clear();
        part.extend(iter.by_ref().take(hi - lo).map(|p| {
            let h = h1.hash(p.key.bytes());
            (bucket_of(h, n_partitions), h, p)
        }));
        // The compound ⟨partition, key⟩ sort of §2.2.
        part.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.2.key.cmp(&b.2.key)));
        plan.op_cpu(cost.sort_time(part.len() as u64));

        // Combiner on sorted groups, if the job has one and the scope
        // permits per-task combining.
        let run: Vec<(usize, u64, Pair)> = if let Some(cb) = combiner {
            let in_recs = part.len() as u64;
            let combined = combine_sorted(cb, part.drain(..));
            plan.op_cpu(cost.cb_time(in_recs));
            combined
        } else {
            std::mem::take(&mut part)
        };

        let g_bytes: u64 = run.iter().map(|(_, _, p)| p.size()).sum();
        plan.output_bytes += g_bytes;

        // External sort when this piece overflows the map buffer.
        if g_bytes > spec.hardware.map_buffer {
            plan_external_sort(g_bytes, run.len() as u64, spec, plan);
        }

        // Write the (final) sorted map output for this granule.
        plan.ops
            .push(MapOp::Spill(IoCategory::MapOutput, IoOp::write(g_bytes)));

        // Scatter into per-reducer batches, preserving sorted order and
        // carrying the fingerprints.
        let cap = run.len() / n_partitions + 1;
        let mut per_part: Vec<RecordBatch> = (0..n_partitions)
            .map(|_| RecordBatch::with_capacity(cap))
            .collect();
        for (p, h, pair) in run {
            per_part[p].push_hashed(pair, h);
        }
        plan.ops.push(MapOp::Granule);
        plan.granules
            .push(per_part.into_iter().map(Payload::Pairs).collect());
    }
}

/// Applies the combiner to consecutive same-⟨partition, key⟩ groups of a
/// sorted run, keeping each group's fingerprint. Key handles are shared,
/// not deep-copied.
fn combine_sorted(
    cb: &dyn crate::api::Combiner,
    sorted: impl Iterator<Item = (usize, u64, Pair)>,
) -> Vec<(usize, u64, Pair)> {
    let mut out = Vec::new();
    let mut iter = sorted.peekable();
    if cb.supports_fold() {
        // Fold fast path: accumulate each group in place — no per-group
        // value Vec, no second pass over the group.
        while let Some((p, h, first)) = iter.next() {
            let key = first.key;
            let mut acc = first.value;
            while iter
                .peek()
                .is_some_and(|(q, _, pair)| *q == p && pair.key == key)
            {
                cb.fold(&key, &mut acc, iter.next().expect("peeked").2.value);
            }
            out.push((p, h, Pair::new(key, acc)));
        }
        return out;
    }
    let mut values: Vec<Value> = Vec::new();
    while let Some((p, h, first)) = iter.next() {
        let key = first.key;
        values.push(first.value);
        while iter
            .peek()
            .is_some_and(|(q, _, pair)| *q == p && pair.key == key)
        {
            values.push(iter.next().expect("peeked").2.value);
        }
        for v in cb.combine(&key, std::mem::take(&mut values)) {
            out.push((p, h, Pair::new(key.clone(), v)));
        }
    }
    out
}

/// Plans the I/O and CPU of a map-side external sort: spill runs of
/// `B_m`, background-merge per the `2F−1` policy, final read.
fn plan_external_sort(
    out_bytes: u64,
    out_records: u64,
    spec: &ClusterSpec,
    plan: &mut MapTaskPlan,
) {
    let cost = &spec.cost;
    let bm = spec.hardware.map_buffer;
    let f = spec.system.merge_factor;
    let rec_size = (out_bytes / out_records.max(1)).max(1);

    // Write initial runs.
    let mut files: Vec<u64> = Vec::new();
    let mut remaining = out_bytes;
    while remaining > 0 {
        let run = remaining.min(bm);
        plan.ops
            .push(MapOp::Spill(IoCategory::MapSpill, IoOp::write(run)));
        plan.spill_bytes += run;
        remaining -= run;
        files.push(run);
        // Background merge at 2F−1 files.
        while files.len() >= 2 * f - 1 {
            files.sort_unstable_by(|a, b| b.cmp(a));
            let tail: Vec<u64> = files.split_off(files.len() - f);
            let merged: u64 = tail.iter().sum();
            let mut op = IoOp::write(merged);
            for sz in &tail {
                op += IoOp::read(*sz);
            }
            plan.ops.push(MapOp::MergeStart);
            plan.ops.push(MapOp::Spill(IoCategory::MapSpill, op));
            plan.op_cpu(cost.merge_time(merged / rec_size, f));
            plan.ops.push(MapOp::MergeEnd);
            plan.spill_bytes += merged;
            files.push(merged);
        }
    }
    // Final merge: read all remaining runs back (output write is charged
    // by the caller as U3).
    let mut op = IoOp::NONE;
    for sz in &files {
        op += IoOp::read(*sz);
    }
    plan.ops.push(MapOp::Spill(IoCategory::MapSpill, op));
    plan.op_cpu(cost.merge_time(out_bytes / rec_size, files.len().max(2)));
}

/// MR-hash collection: one partitioning scan, no sort. When the job has a
/// combiner, the Hash-based Map Output component (§5) builds an in-memory
/// hash table and feeds each key's values through it — map-side partial
/// aggregation works for every hash framework; what MR-hash lacks is only
/// *reduce-side* incremental processing.
fn plan_mr_hash(
    combiner: Option<&dyn crate::api::Combiner>,
    pairs: Vec<Pair>,
    n_partitions: usize,
    spec: &ClusterSpec,
    h1: HashFn,
    plan: &mut MapTaskPlan,
) {
    let cost = &spec.cost;
    let n = pairs.len() as u64;
    // Hash each key once; the fingerprint drives the group-by probe, the
    // partition choice, and rides the batch to the reduce side.
    let hashed: Vec<(u64, Pair)> = if let Some(cb) = combiner.filter(|cb| cb.supports_fold()) {
        // Fold fast path: one accumulator per key, updated in place — no
        // per-group value Vec. Groups stay in insertion order, so the
        // output is identical to the collect-then-combine path below for
        // any law-abiding fold combiner.
        let mut groups: Vec<(u64, Key, Value)> = Vec::new();
        let mut index = ShardedGroupIndex::with_capacity(pairs.len() / 4 + 1);
        for p in pairs {
            let h = h1.hash(p.key.bytes());
            match index.get(h, |r| groups[r].1 == p.key) {
                Some(i) => {
                    let (_, ref key, ref mut acc) = groups[i];
                    cb.fold(key, acc, p.value);
                }
                None => {
                    index.insert(h, groups.len());
                    groups.push((h, p.key, p.value));
                }
            }
        }
        plan.op_cpu(cost.cb_time(n));
        groups
            .into_iter()
            .map(|(h, key, acc)| (h, Pair::new(key, acc)))
            .collect()
    } else if let Some(cb) = combiner {
        // Insertion-ordered hash table: key → collected values. The
        // index stores only fingerprints and row ids — no key clones.
        let mut groups: Vec<(u64, Key, Vec<Value>)> = Vec::new();
        let mut index = ShardedGroupIndex::with_capacity(pairs.len() / 4 + 1);
        for p in pairs {
            let h = h1.hash(p.key.bytes());
            match index.get(h, |r| groups[r].1 == p.key) {
                Some(i) => groups[i].2.push(p.value),
                None => {
                    index.insert(h, groups.len());
                    groups.push((h, p.key, vec![p.value]));
                }
            }
        }
        let mut combined = Vec::with_capacity(groups.len());
        for (h, key, values) in groups {
            for v in cb.combine(&key, values) {
                combined.push((h, Pair::new(key.clone(), v)));
            }
        }
        plan.op_cpu(cost.cb_time(n));
        combined
    } else {
        pairs
            .into_iter()
            .map(|p| (h1.hash(p.key.bytes()), p))
            .collect()
    };
    let cap = hashed.len() / n_partitions + 1;
    let mut per_part: Vec<RecordBatch> = (0..n_partitions)
        .map(|_| RecordBatch::with_capacity(cap))
        .collect();
    for (h, p) in hashed {
        per_part[bucket_of(h, n_partitions)].push_hashed(p, h);
    }
    plan.op_cpu(cost.hash_time(n));

    let output_bytes: u64 = per_part.iter().map(RecordBatch::bytes).sum();
    plan.output_bytes = output_bytes;
    plan.ops.push(MapOp::Spill(
        IoCategory::MapOutput,
        IoOp::write(output_bytes),
    ));
    plan.ops.push(MapOp::Granule);
    plan.granules
        .push(per_part.into_iter().map(Payload::Pairs).collect());
}

/// INC/DINC collection: `init()` per pair, then an insertion-ordered hash
/// table collapses same-key states with `cb()` (map-side combine). The
/// per-partition buffers are pre-sized from the job's `state_size_hint`
/// so the hot path does not grow-and-copy per delivery.
///
/// With the LFU admission policy on, the collapse table is additionally
/// held to the map buffer budget: once full, a newcomer is admitted only
/// by evicting a resident the frequency sketch scores strictly colder
/// (the evictee's partial state is emitted early — the reduce side
/// re-merges it, so the result is exact either way); otherwise the
/// newcomer is forwarded uncombined. Decisions are pure functions of the
/// chunk's record order, so plans stay deterministic at any thread count.
#[allow(clippy::too_many_arguments)]
fn plan_incremental(
    job: &dyn Job,
    pairs: Vec<Pair>,
    n_partitions: usize,
    chunk_bytes: u64,
    spec: &ClusterSpec,
    h1: HashFn,
    admission: opa_common::AdmissionPolicy,
    plan: &mut MapTaskPlan,
) {
    let cost = &spec.cost;
    let inc = job
        .incremental()
        .expect("validated: incremental frameworks require an IncrementalReducer");
    let n = pairs.len() as u64;

    // Sizing hint: distinct states this chunk can plausibly produce.
    let state_hint = job.state_size_hint().unwrap_or(64).max(1);
    let distinct_hint = ((chunk_bytes / state_hint) as usize + 1).min(pairs.len().max(1));

    // init() immediately after map. Each key is hashed exactly once: the
    // fingerprint probes the insertion-ordered group table, picks the
    // partition on first sight, and is carried in the outgoing batch.
    let mut ctx = ReduceCtx::at_site(Site::Map);
    let mut order: Vec<(usize, u64, Key, Value)> = Vec::with_capacity(distinct_hint);
    let mut index = ShardedGroupIndex::with_capacity(distinct_hint);
    let mut cb_calls = 0u64;
    let mut sketch = admission
        .is_on()
        .then(|| opa_common::FreqSketch::with_capacity(distinct_hint));
    let budget = spec.hardware.map_buffer;
    let mut used = 0u64;
    let mut evicted: Vec<(usize, u64, Key, Value)> = Vec::new();
    let mut victim_cursor = 0u64;
    for p in pairs {
        let state = inc.init(&p.key, p.value);
        let h = h1.hash(p.key.bytes());
        if let Some(sk) = sketch.as_mut() {
            sk.touch(h);
        }
        match index.get(h, |r| order[r].2 == p.key) {
            Some(i) => {
                let (_, _, ref key, ref mut acc) = order[i];
                if sketch.is_some() {
                    let before = inc.state_mem_size(acc);
                    inc.cb(key, acc, state, &mut ctx);
                    used = (used + inc.state_mem_size(acc)).saturating_sub(before);
                } else {
                    inc.cb(key, acc, state, &mut ctx);
                }
                cb_calls += 1;
            }
            None => {
                let part = bucket_of(h, n_partitions);
                let sz = p.key.len() as u64 + inc.state_mem_size(&state) + 16;
                if let Some(sk) = &sketch {
                    if used + sz > budget && !order.is_empty() {
                        // Table full: probe a few resident rows round-robin
                        // for the coldest and displace it only if the
                        // newcomer is strictly hotter.
                        let nres = order.len();
                        let mut best: Option<(usize, u32)> = None;
                        for probe in 0..4u64 {
                            let vi = ((victim_cursor + probe) % nres as u64) as usize;
                            let est = sk.estimate(order[vi].1);
                            if best.is_none_or(|(_, b)| est < b) {
                                best = Some((vi, est));
                            }
                        }
                        victim_cursor = victim_cursor.wrapping_add(4);
                        let admit = best
                            .filter(|&(_, vest)| sk.estimate(h) > vest)
                            .map(|(vi, _)| vi);
                        if let Some(vi) = admit {
                            let last = nres - 1;
                            let victim = order.swap_remove(vi);
                            index.remove(victim.1, vi);
                            if vi < last {
                                index.reindex(order[vi].1, last, vi);
                            }
                            used = used.saturating_sub(
                                victim.2.len() as u64 + inc.state_mem_size(&victim.3) + 16,
                            );
                            evicted.push(victim);
                            used += sz;
                            index.insert(h, order.len());
                            order.push((part, h, p.key, state));
                        } else {
                            // Not admitted: forward uncombined.
                            evicted.push((part, h, p.key, state));
                        }
                        continue;
                    }
                }
                used += sz;
                index.insert(h, order.len());
                order.push((part, h, p.key, state));
            }
        }
    }
    plan.op_cpu(
        cost.init_time(n) + cost.hash_time(n + 2 * evicted.len() as u64) + cost.cb_time(cb_calls),
    );

    let cap = order.len() / n_partitions + 1;
    let mut per_part: Vec<StateBatch> = (0..n_partitions)
        .map(|_| StateBatch::with_capacity(cap))
        .collect();
    // Early-displaced entries ship first: a victim's partial state must
    // reach the reducer before later tuples of the same key so bucket
    // files preserve arrival order for order-sensitive jobs.
    for (part, h, key, state) in evicted.into_iter().chain(order) {
        per_part[part].push_hashed(StatePair::new(key, state), h);
    }
    let output_bytes: u64 = per_part.iter().map(StateBatch::bytes).sum();
    plan.output_bytes = output_bytes;
    plan.ops.push(MapOp::Spill(
        IoCategory::MapOutput,
        IoOp::write(output_bytes),
    ));

    // Any map-side early output (closed sessions) goes straight to HDFS.
    let early_output = ctx.drain();
    let early_bytes: u64 = early_output.iter().map(Pair::size).sum();
    if early_bytes > 0 {
        plan.ops.push(MapOp::Hdfs(
            IoCategory::ReduceOutput,
            IoOp::write(early_bytes),
        ));
    }
    plan.early_output = early_output;

    plan.ops.push(MapOp::Granule);
    plan.granules
        .push(per_part.into_iter().map(Payload::States).collect());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Combiner;
    use crate::sim::Resources;

    /// Word-count-ish job keyed on the record's first byte.
    struct FirstByte {
        with_combiner: bool,
    }

    impl Job for FirstByte {
        fn name(&self) -> &str {
            "first byte"
        }
        fn map(&self, record: &[u8], emit: &mut dyn FnMut(&[u8], &[u8])) {
            emit(&record[..1], &1u64.to_be_bytes());
        }
        fn reduce(&self, key: &Key, values: Vec<Value>, ctx: &mut ReduceCtx) {
            let sum: u64 = values.iter().filter_map(Value::as_u64).sum();
            ctx.emit(key.clone(), Value::from_u64(sum));
        }
        fn combiner(&self) -> Option<&dyn Combiner> {
            if self.with_combiner {
                Some(self)
            } else {
                None
            }
        }
        fn incremental(&self) -> Option<&dyn crate::api::IncrementalReducer> {
            Some(self)
        }
    }

    impl Combiner for FirstByte {
        fn combine(&self, _key: &Key, values: Vec<Value>) -> Vec<Value> {
            vec![Value::from_u64(
                values.iter().filter_map(Value::as_u64).sum(),
            )]
        }
    }

    impl crate::api::IncrementalReducer for FirstByte {
        fn init(&self, _key: &Key, value: Value) -> Value {
            value
        }
        fn cb(&self, _key: &Key, acc: &mut Value, other: Value, _ctx: &mut ReduceCtx) {
            *acc = Value::from_u64(acc.as_u64().unwrap_or(0) + other.as_u64().unwrap_or(0));
        }
        fn finalize(&self, key: &Key, state: Value, ctx: &mut ReduceCtx) {
            ctx.emit(key.clone(), state);
        }
    }

    fn records(n: usize, alphabet: u8) -> Vec<Bytes> {
        (0..n)
            .map(|i| Bytes::from(vec![(i as u8) % alphabet, b'x', b'y']))
            .collect()
    }

    fn run(
        job: &dyn Job,
        framework: Framework,
        recs: &[Bytes],
        spec: &ClusterSpec,
    ) -> MapTaskResult {
        let mut res = Resources::new(spec.hardware.nodes, 4, false);
        let h1 = opa_common::HashFamily::new(spec.hash_seed).fn_at(0);
        let bytes: u64 = recs.iter().map(|r| r.len() as u64).sum();
        run_map_task(
            job,
            framework,
            recs,
            bytes,
            0,
            SimTime::ZERO,
            spec,
            h1,
            &mut res,
        )
    }

    #[test]
    fn sort_merge_payloads_are_key_sorted_per_partition() {
        let spec = ClusterSpec::tiny();
        let job = FirstByte {
            with_combiner: false,
        };
        let recs = records(64, 13);
        let result = run(&job, Framework::SortMerge, &recs, &spec);
        assert_eq!(result.granules.len(), 1);
        let mut total = 0usize;
        for payload in &result.granules[0].partitions {
            let Payload::Pairs(pairs) = payload else {
                panic!("sort-merge emits pairs");
            };
            total += pairs.len();
            for w in pairs.windows(2) {
                assert!(w[0].key <= w[1].key, "partition not key-sorted");
            }
        }
        assert_eq!(total, 64, "no record may vanish");
        assert_eq!(result.spill_bytes, 0, "tiny chunk fits the map buffer");
    }

    #[test]
    fn combiner_shrinks_sort_merge_output() {
        let spec = ClusterSpec::tiny();
        let recs = records(200, 5); // 5 distinct keys, 40 repeats each
        let plain = run(
            &FirstByte {
                with_combiner: false,
            },
            Framework::SortMerge,
            &recs,
            &spec,
        );
        let combined = run(
            &FirstByte {
                with_combiner: true,
            },
            Framework::SortMerge,
            &recs,
            &spec,
        );
        assert!(
            combined.output_bytes < plain.output_bytes / 10,
            "combiner should collapse 200 records into 5: {} vs {}",
            combined.output_bytes,
            plain.output_bytes
        );
    }

    #[test]
    fn external_sort_triggers_past_map_buffer() {
        let mut spec = ClusterSpec::tiny();
        spec.hardware.map_buffer = 256; // force external sort
        let job = FirstByte {
            with_combiner: false,
        };
        let recs = records(500, 250);
        let result = run(&job, Framework::SortMerge, &recs, &spec);
        assert!(result.spill_bytes > 0, "map-side spill expected");
    }

    #[test]
    fn pipelined_granules_cover_all_records_in_order() {
        let mut spec = ClusterSpec::tiny();
        spec.pipeline_granules = 4;
        let job = FirstByte {
            with_combiner: false,
        };
        let recs = records(100, 9);
        let result = run(&job, Framework::SortMergePipelined, &recs, &spec);
        assert_eq!(result.granules.len(), 4);
        let mut prev = SimTime::ZERO;
        let mut total = 0usize;
        for g in &result.granules {
            assert!(g.time >= prev, "granule times must be non-decreasing");
            prev = g.time;
            total += g.partitions.iter().map(Payload::len).sum::<usize>();
        }
        assert_eq!(total, 100);
    }

    #[test]
    fn incremental_map_side_collapses_states() {
        let spec = ClusterSpec::tiny();
        let job = FirstByte {
            with_combiner: false,
        };
        let recs = records(120, 6);
        let result = run(&job, Framework::IncHash, &recs, &spec);
        let mut keys = 0usize;
        let mut mass = 0u64;
        for payload in &result.granules[0].partitions {
            let Payload::States(states) = payload else {
                panic!("incremental map emits states");
            };
            keys += states.len();
            mass += states.iter().filter_map(|s| s.state.as_u64()).sum::<u64>();
        }
        assert_eq!(keys, 6, "map-side cb must collapse to distinct keys");
        assert_eq!(mass, 120, "counts must be preserved by the collapse");
    }

    #[test]
    fn mr_hash_without_combiner_keeps_every_pair() {
        let spec = ClusterSpec::tiny();
        let job = FirstByte {
            with_combiner: false,
        };
        let recs = records(80, 7);
        let result = run(&job, Framework::MrHash, &recs, &spec);
        let total: usize = result.granules[0].partitions.iter().map(Payload::len).sum();
        assert_eq!(total, 80);
    }

    #[test]
    fn plan_replay_matches_direct_execution_for_all_frameworks() {
        // compute-then-finish must be indistinguishable from the fused
        // path no matter which framework planned the ops, because the
        // event loop interleaves plans computed on other threads.
        let mut spec = ClusterSpec::tiny();
        spec.pipeline_granules = 3;
        for fw in [
            Framework::SortMerge,
            Framework::SortMergePipelined,
            Framework::MrHash,
            Framework::IncHash,
            Framework::DincHash,
        ] {
            let job = FirstByte {
                with_combiner: false,
            };
            let recs = records(90, 11);
            let bytes: u64 = recs.iter().map(|r| r.len() as u64).sum();
            let h1 = opa_common::HashFamily::new(spec.hash_seed).fn_at(0);
            let mut res_a = Resources::new(spec.hardware.nodes, 4, false);
            let direct = run_map_task(
                &job,
                fw,
                &recs,
                bytes,
                0,
                SimTime::ZERO,
                &spec,
                h1,
                &mut res_a,
            );
            let plan = compute_map_task(
                &job,
                fw,
                &recs,
                bytes,
                &spec,
                h1,
                opa_common::AdmissionPolicy::Off,
                opa_common::CombineScope::Task,
                None,
            );
            let mut res_b = Resources::new(spec.hardware.nodes, 4, false);
            let replayed = finish_map_task(plan, 0, SimTime::ZERO, &spec, &mut res_b);
            assert_eq!(format!("{direct:?}"), format!("{replayed:?}"), "{fw:?}");
            assert_eq!(
                format!("{:?}", res_a.timeline),
                format!("{:?}", res_b.timeline),
                "{fw:?}"
            );
        }
    }

    #[test]
    fn plans_are_pure_functions_of_their_inputs() {
        let spec = ClusterSpec::tiny();
        let job = FirstByte {
            with_combiner: true,
        };
        let recs = records(70, 8);
        let bytes: u64 = recs.iter().map(|r| r.len() as u64).sum();
        let h1 = opa_common::HashFamily::new(spec.hash_seed).fn_at(0);
        let a = compute_map_task(
            &job,
            Framework::SortMerge,
            &recs,
            bytes,
            &spec,
            h1,
            opa_common::AdmissionPolicy::Off,
            opa_common::CombineScope::Task,
            None,
        );
        let b = compute_map_task(
            &job,
            Framework::SortMerge,
            &recs,
            bytes,
            &spec,
            h1,
            opa_common::AdmissionPolicy::Off,
            opa_common::CombineScope::Task,
            None,
        );
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}
