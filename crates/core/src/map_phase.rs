//! Map-task execution and map-output collection.
//!
//! A map task reads its chunk, applies the user map function, and then
//! hands the output to a framework-specific collector:
//!
//! - **sort-merge** — sorts by ⟨partition, key⟩ (charging the comparison
//!   CPU the paper blames for the busy map phase), applies the combiner if
//!   present, and external-sorts through spill files when the output
//!   exceeds `B_m`;
//! - **MR-hash** — partitions by `h1` with a single buffer scan, no sort;
//! - **INC/DINC-hash** — applies `init()` immediately after map (§4.2) and
//!   collapses same-key states with `cb()` in an in-memory hash table (the
//!   Hash-based Map Output component of §5).
//!
//! Under pipelining the task emits several *granules* (each independently
//! sorted, like MapReduce Online's eager spills) at interpolated times;
//! otherwise a single granule at task completion.

use crate::api::{Job, ReduceCtx, Site};
use crate::cluster::{ClusterSpec, Framework};
use crate::sim::{OpKind, Resources};
use bytes::Bytes;
use opa_common::units::{SimDuration, SimTime};
use opa_common::{HashFn, Key, Pair, StatePair, Value};
use opa_simio::{IoCategory, IoOp};
use std::collections::HashMap;

/// Data delivered from a mapper to one reducer.
#[derive(Debug, Clone)]
pub enum Payload {
    /// Key-value pairs; sorted by key when produced by sort-merge.
    Pairs(Vec<Pair>),
    /// Key-state pairs (incremental frameworks).
    States(Vec<StatePair>),
}

impl Payload {
    /// Serialized size in bytes.
    pub fn bytes(&self) -> u64 {
        match self {
            Payload::Pairs(v) => v.iter().map(Pair::size).sum(),
            Payload::States(v) => v.iter().map(StatePair::size).sum(),
        }
    }

    /// Record count.
    pub fn len(&self) -> usize {
        match self {
            Payload::Pairs(v) => v.len(),
            Payload::States(v) => v.len(),
        }
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One batch of deliveries pushed by a mapper at `time`: element `p` goes
/// to reducer partition `p`.
#[derive(Debug)]
pub struct Granule {
    /// Virtual instant at which the granule leaves the mapper.
    pub time: SimTime,
    /// Per-reducer payloads (length = total reducers).
    pub partitions: Vec<Payload>,
}

/// Outcome of one executed map task.
#[derive(Debug)]
pub struct MapTaskResult {
    /// Task completion time.
    pub finish: SimTime,
    /// Granules to deliver (non-pipelined tasks have exactly one, at
    /// `finish`).
    pub granules: Vec<Granule>,
    /// CPU time this task consumed.
    pub cpu: SimDuration,
    /// Total map-output bytes (shuffle volume contributed).
    pub output_bytes: u64,
    /// Map-side internal spill bytes written (external sort).
    pub spill_bytes: u64,
    /// Output pairs emitted directly at the mapper by map-side `cb()`
    /// early output (e.g. sessions that closed within a chunk).
    pub early_output: Vec<Pair>,
}

/// Executes one map task starting at `start` on `node`.
#[allow(clippy::too_many_arguments)]
pub fn run_map_task(
    job: &dyn Job,
    framework: Framework,
    records: &[Bytes],
    chunk_bytes: u64,
    node: usize,
    start: SimTime,
    spec: &ClusterSpec,
    h1: HashFn,
    res: &mut Resources,
) -> MapTaskResult {
    let cost = &spec.cost;
    let n_partitions = spec.total_reducers();
    let mut cpu = SimDuration::ZERO;

    // Task startup, then read the input chunk from HDFS.
    let mut t = start + SimDuration::from_secs_f64(cost.c_start);
    t = res.hdfs_io(node, t, IoCategory::MapInput, IoOp::read(chunk_bytes), cost);

    // The map function, for real.
    let mut pairs: Vec<Pair> = Vec::with_capacity(records.len());
    for rec in records {
        job.map(rec, &mut |k, v| pairs.push(Pair::new(k, v)));
    }
    let map_dur = cost.map_time(records.len() as u64);
    t = res.cpu(node, t, map_dur);
    cpu += map_dur;

    let mut result = match framework {
        Framework::SortMerge => collect_sort_merge(job, pairs, 1, node, t, spec, h1, res, &mut cpu),
        Framework::SortMergePipelined => {
            // Pipelined granules interpolate between map-fn end and finish.
            collect_sort_merge(
                job,
                pairs,
                spec.pipeline_granules,
                node,
                t,
                spec,
                h1,
                res,
                &mut cpu,
            )
        }
        Framework::MrHash => {
            collect_mr_hash(job, pairs, n_partitions, node, t, spec, h1, res, &mut cpu)
        }
        Framework::IncHash | Framework::DincHash => {
            collect_incremental(job, pairs, n_partitions, node, t, spec, h1, res, &mut cpu)
        }
    };
    result.cpu = cpu;
    res.span(OpKind::Map, start, result.finish);
    result
}

/// Sort-merge collection, optionally split into `granules` pipelined
/// pieces (each sorted and combined independently, like HOP's spills).
#[allow(clippy::too_many_arguments)]
fn collect_sort_merge(
    job: &dyn Job,
    pairs: Vec<Pair>,
    granules: usize,
    node: usize,
    t0: SimTime,
    spec: &ClusterSpec,
    h1: HashFn,
    res: &mut Resources,
    cpu: &mut SimDuration,
) -> MapTaskResult {
    let cost = &spec.cost;
    let n_partitions = spec.total_reducers();
    let n = pairs.len();
    let granules = granules.clamp(1, n.max(1));
    let mut t = t0;
    let mut out = Vec::with_capacity(granules);
    let mut output_bytes = 0u64;
    let mut spill_bytes = 0u64;

    for g in 0..granules {
        let lo = n * g / granules;
        let hi = n * (g + 1) / granules;
        let mut part: Vec<(usize, Pair)> = pairs[lo..hi]
            .iter()
            .map(|p| (h1.bucket(p.key.bytes(), n_partitions), p.clone()))
            .collect();
        // The compound ⟨partition, key⟩ sort of §2.2.
        part.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.key.cmp(&b.1.key)));
        let sort_dur = cost.sort_time(part.len() as u64);
        t = res.cpu(node, t, sort_dur);
        *cpu += sort_dur;

        // Combiner on sorted groups, if the job has one.
        let part = if let Some(cb) = job.combiner() {
            let in_recs = part.len() as u64;
            let combined = combine_sorted(cb, part);
            let dur = cost.cb_time(in_recs);
            t = res.cpu(node, t, dur);
            *cpu += dur;
            combined
        } else {
            part
        };

        let g_bytes: u64 = part.iter().map(|(_, p)| p.size()).sum();
        output_bytes += g_bytes;

        // External sort when this piece overflows the map buffer.
        if g_bytes > spec.hardware.map_buffer {
            let (sp, end) = external_sort_io(
                g_bytes,
                part.len() as u64,
                spec,
                node,
                t,
                res,
                cpu,
            );
            spill_bytes += sp;
            t = end;
        }

        // Write the (final) sorted map output for this granule.
        t = res.spill_io(node, t, IoCategory::MapOutput, IoOp::write(g_bytes), cost);

        // Scatter into per-reducer payloads, preserving sorted order.
        let mut per_part: Vec<Vec<Pair>> = vec![Vec::new(); n_partitions];
        for (p, pair) in part {
            per_part[p].push(pair);
        }
        out.push(Granule {
            time: t,
            partitions: per_part.into_iter().map(Payload::Pairs).collect(),
        });
    }

    MapTaskResult {
        finish: t,
        granules: out,
        cpu: *cpu,
        output_bytes,
        spill_bytes,
        early_output: Vec::new(),
    }
}

/// Applies the combiner to consecutive same-⟨partition, key⟩ groups of a
/// sorted run.
fn combine_sorted(
    cb: &dyn crate::api::Combiner,
    sorted: Vec<(usize, Pair)>,
) -> Vec<(usize, Pair)> {
    let mut out = Vec::new();
    let mut iter = sorted.into_iter().peekable();
    while let Some((p, first)) = iter.next() {
        let key = first.key.clone();
        let mut values = vec![first.value];
        while iter
            .peek()
            .is_some_and(|(q, pair)| *q == p && pair.key == key)
        {
            values.push(iter.next().expect("peeked").1.value);
        }
        for v in cb.combine(&key, values) {
            out.push((p, Pair::new(key.clone(), v)));
        }
    }
    out
}

/// Simulates the I/O and CPU of a map-side external sort: spill runs of
/// `B_m`, background-merge per the `2F−1` policy, final read. Returns the
/// spill bytes written and the completion time.
fn external_sort_io(
    out_bytes: u64,
    out_records: u64,
    spec: &ClusterSpec,
    node: usize,
    mut t: SimTime,
    res: &mut Resources,
    cpu: &mut SimDuration,
) -> (u64, SimTime) {
    let cost = &spec.cost;
    let bm = spec.hardware.map_buffer;
    let f = spec.system.merge_factor;
    let rec_size = (out_bytes / out_records.max(1)).max(1);

    // Write initial runs.
    let mut files: Vec<u64> = Vec::new();
    let mut remaining = out_bytes;
    let mut written = 0u64;
    while remaining > 0 {
        let run = remaining.min(bm);
        t = res.spill_io(node, t, IoCategory::MapSpill, IoOp::write(run), cost);
        written += run;
        remaining -= run;
        files.push(run);
        // Background merge at 2F−1 files.
        while files.len() >= 2 * f - 1 {
            files.sort_unstable_by(|a, b| b.cmp(a));
            let tail: Vec<u64> = files.split_off(files.len() - f);
            let merged: u64 = tail.iter().sum();
            let mut op = IoOp::write(merged);
            for sz in &tail {
                op += IoOp::read(*sz);
            }
            let m0 = t;
            t = res.spill_io(node, t, IoCategory::MapSpill, op, cost);
            let dur = cost.merge_time(merged / rec_size, f);
            t = res.cpu(node, t, dur);
            *cpu += dur;
            res.span(OpKind::Merge, m0, t);
            written += merged;
            files.push(merged);
        }
    }
    // Final merge: read all remaining runs back (output write is charged
    // by the caller as U3).
    let mut op = IoOp::NONE;
    for sz in &files {
        op += IoOp::read(*sz);
    }
    t = res.spill_io(node, t, IoCategory::MapSpill, op, cost);
    let dur = cost.merge_time(out_bytes / rec_size, files.len().max(2));
    t = res.cpu(node, t, dur);
    *cpu += dur;
    (written, t)
}

/// MR-hash collection: one partitioning scan, no sort. When the job has a
/// combiner, the Hash-based Map Output component (§5) builds an in-memory
/// hash table and feeds each key's values through it — map-side partial
/// aggregation works for every hash framework; what MR-hash lacks is only
/// *reduce-side* incremental processing.
#[allow(clippy::too_many_arguments)]
fn collect_mr_hash(
    job: &dyn Job,
    pairs: Vec<Pair>,
    n_partitions: usize,
    node: usize,
    t0: SimTime,
    spec: &ClusterSpec,
    h1: HashFn,
    res: &mut Resources,
    cpu: &mut SimDuration,
) -> MapTaskResult {
    let cost = &spec.cost;
    let n = pairs.len() as u64;
    let mut t = t0;
    let pairs = if let Some(cb) = job.combiner() {
        // Insertion-ordered hash table: key → collected values.
        let mut groups: Vec<(Key, Vec<Value>)> = Vec::new();
        let mut index: HashMap<Key, usize> = HashMap::new();
        for p in pairs {
            match index.get(&p.key) {
                Some(&i) => groups[i].1.push(p.value),
                None => {
                    index.insert(p.key.clone(), groups.len());
                    groups.push((p.key, vec![p.value]));
                }
            }
        }
        let mut combined = Vec::with_capacity(groups.len());
        for (key, values) in groups {
            for v in cb.combine(&key, values) {
                combined.push(Pair::new(key.clone(), v));
            }
        }
        let dur = cost.cb_time(n);
        t = res.cpu(node, t, dur);
        *cpu += dur;
        combined
    } else {
        pairs
    };
    let mut per_part: Vec<Vec<Pair>> = vec![Vec::new(); n_partitions];
    for p in pairs {
        per_part[h1.bucket(p.key.bytes(), n_partitions)].push(p);
    }
    let dur = cost.hash_time(n);
    t = res.cpu(node, t, dur);
    *cpu += dur;

    let output_bytes: u64 = per_part
        .iter()
        .map(|v| v.iter().map(Pair::size).sum::<u64>())
        .sum();
    t = res.spill_io(
        node,
        t,
        IoCategory::MapOutput,
        IoOp::write(output_bytes),
        cost,
    );
    MapTaskResult {
        finish: t,
        granules: vec![Granule {
            time: t,
            partitions: per_part.into_iter().map(Payload::Pairs).collect(),
        }],
        cpu: *cpu,
        output_bytes,
        spill_bytes: 0,
        early_output: Vec::new(),
    }
}

/// INC/DINC collection: `init()` per pair, then an insertion-ordered hash
/// table collapses same-key states with `cb()` (map-side combine).
#[allow(clippy::too_many_arguments)]
fn collect_incremental(
    job: &dyn Job,
    pairs: Vec<Pair>,
    n_partitions: usize,
    node: usize,
    t0: SimTime,
    spec: &ClusterSpec,
    h1: HashFn,
    res: &mut Resources,
    cpu: &mut SimDuration,
) -> MapTaskResult {
    let cost = &spec.cost;
    let inc = job
        .incremental()
        .expect("validated: incremental frameworks require an IncrementalReducer");
    let n = pairs.len() as u64;

    // init() immediately after map.
    let mut ctx = ReduceCtx::at_site(Site::Map);
    let mut order: Vec<(usize, Key, Value)> = Vec::new();
    let mut index: HashMap<Key, usize> = HashMap::new();
    let mut cb_calls = 0u64;
    for p in pairs {
        let state = inc.init(&p.key, p.value);
        match index.get(&p.key) {
            Some(&i) => {
                let (_, ref key, ref mut acc) = order[i];
                inc.cb(key, acc, state, &mut ctx);
                cb_calls += 1;
            }
            None => {
                let part = h1.bucket(p.key.bytes(), n_partitions);
                index.insert(p.key.clone(), order.len());
                order.push((part, p.key, state));
            }
        }
    }
    let dur = cost.init_time(n) + cost.hash_time(n) + cost.cb_time(cb_calls);
    let mut t = res.cpu(node, t0, dur);
    *cpu += dur;

    let mut per_part: Vec<Vec<StatePair>> = vec![Vec::new(); n_partitions];
    for (part, key, state) in order {
        per_part[part].push(StatePair::new(key, state));
    }
    let output_bytes: u64 = per_part
        .iter()
        .map(|v| v.iter().map(StatePair::size).sum::<u64>())
        .sum();
    t = res.spill_io(
        node,
        t,
        IoCategory::MapOutput,
        IoOp::write(output_bytes),
        cost,
    );

    // Any map-side early output (closed sessions) goes straight to HDFS.
    let early_output = ctx.drain();
    let early_bytes: u64 = early_output.iter().map(Pair::size).sum();
    if early_bytes > 0 {
        t = res.hdfs_io(
            node,
            t,
            IoCategory::ReduceOutput,
            IoOp::write(early_bytes),
            cost,
        );
    }

    MapTaskResult {
        finish: t,
        granules: vec![Granule {
            time: t,
            partitions: per_part.into_iter().map(Payload::States).collect(),
        }],
        cpu: *cpu,
        output_bytes,
        spill_bytes: 0,
        early_output,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Combiner;
    use crate::sim::Resources;

    /// Word-count-ish job keyed on the record's first byte.
    struct FirstByte {
        with_combiner: bool,
    }

    impl Job for FirstByte {
        fn name(&self) -> &str {
            "first byte"
        }
        fn map(&self, record: &[u8], emit: &mut dyn FnMut(Key, Value)) {
            emit(Key::new(vec![record[0]]), Value::from_u64(1));
        }
        fn reduce(&self, key: &Key, values: Vec<Value>, ctx: &mut ReduceCtx) {
            let sum: u64 = values.iter().filter_map(Value::as_u64).sum();
            ctx.emit(key.clone(), Value::from_u64(sum));
        }
        fn combiner(&self) -> Option<&dyn Combiner> {
            if self.with_combiner {
                Some(self)
            } else {
                None
            }
        }
        fn incremental(&self) -> Option<&dyn crate::api::IncrementalReducer> {
            Some(self)
        }
    }

    impl Combiner for FirstByte {
        fn combine(&self, _key: &Key, values: Vec<Value>) -> Vec<Value> {
            vec![Value::from_u64(
                values.iter().filter_map(Value::as_u64).sum(),
            )]
        }
    }

    impl crate::api::IncrementalReducer for FirstByte {
        fn init(&self, _key: &Key, value: Value) -> Value {
            value
        }
        fn cb(&self, _key: &Key, acc: &mut Value, other: Value, _ctx: &mut ReduceCtx) {
            *acc = Value::from_u64(acc.as_u64().unwrap_or(0) + other.as_u64().unwrap_or(0));
        }
        fn finalize(&self, key: &Key, state: Value, ctx: &mut ReduceCtx) {
            ctx.emit(key.clone(), state);
        }
    }

    fn records(n: usize, alphabet: u8) -> Vec<Bytes> {
        (0..n)
            .map(|i| Bytes::from(vec![(i as u8) % alphabet, b'x', b'y']))
            .collect()
    }

    fn run(
        job: &dyn Job,
        framework: Framework,
        recs: &[Bytes],
        spec: &ClusterSpec,
    ) -> MapTaskResult {
        let mut res = Resources::new(spec.hardware.nodes, 4, false);
        let h1 = opa_common::HashFamily::new(spec.hash_seed).fn_at(0);
        let bytes: u64 = recs.iter().map(|r| r.len() as u64).sum();
        run_map_task(
            job,
            framework,
            recs,
            bytes,
            0,
            SimTime::ZERO,
            spec,
            h1,
            &mut res,
        )
    }

    #[test]
    fn sort_merge_payloads_are_key_sorted_per_partition() {
        let spec = ClusterSpec::tiny();
        let job = FirstByte {
            with_combiner: false,
        };
        let recs = records(64, 13);
        let result = run(&job, Framework::SortMerge, &recs, &spec);
        assert_eq!(result.granules.len(), 1);
        let mut total = 0usize;
        for payload in &result.granules[0].partitions {
            let Payload::Pairs(pairs) = payload else {
                panic!("sort-merge emits pairs");
            };
            total += pairs.len();
            for w in pairs.windows(2) {
                assert!(w[0].key <= w[1].key, "partition not key-sorted");
            }
        }
        assert_eq!(total, 64, "no record may vanish");
        assert_eq!(result.spill_bytes, 0, "tiny chunk fits the map buffer");
    }

    #[test]
    fn combiner_shrinks_sort_merge_output() {
        let spec = ClusterSpec::tiny();
        let recs = records(200, 5); // 5 distinct keys, 40 repeats each
        let plain = run(
            &FirstByte {
                with_combiner: false,
            },
            Framework::SortMerge,
            &recs,
            &spec,
        );
        let combined = run(
            &FirstByte {
                with_combiner: true,
            },
            Framework::SortMerge,
            &recs,
            &spec,
        );
        assert!(
            combined.output_bytes < plain.output_bytes / 10,
            "combiner should collapse 200 records into 5: {} vs {}",
            combined.output_bytes,
            plain.output_bytes
        );
    }

    #[test]
    fn external_sort_triggers_past_map_buffer() {
        let mut spec = ClusterSpec::tiny();
        spec.hardware.map_buffer = 256; // force external sort
        let job = FirstByte {
            with_combiner: false,
        };
        let recs = records(500, 250);
        let result = run(&job, Framework::SortMerge, &recs, &spec);
        assert!(result.spill_bytes > 0, "map-side spill expected");
    }

    #[test]
    fn pipelined_granules_cover_all_records_in_order() {
        let mut spec = ClusterSpec::tiny();
        spec.pipeline_granules = 4;
        let job = FirstByte {
            with_combiner: false,
        };
        let recs = records(100, 9);
        let result = run(&job, Framework::SortMergePipelined, &recs, &spec);
        assert_eq!(result.granules.len(), 4);
        let mut prev = SimTime::ZERO;
        let mut total = 0usize;
        for g in &result.granules {
            assert!(g.time >= prev, "granule times must be non-decreasing");
            prev = g.time;
            total += g.partitions.iter().map(Payload::len).sum::<usize>();
        }
        assert_eq!(total, 100);
    }

    #[test]
    fn incremental_map_side_collapses_states() {
        let spec = ClusterSpec::tiny();
        let job = FirstByte {
            with_combiner: false,
        };
        let recs = records(120, 6);
        let result = run(&job, Framework::IncHash, &recs, &spec);
        let mut keys = 0usize;
        let mut mass = 0u64;
        for payload in &result.granules[0].partitions {
            let Payload::States(states) = payload else {
                panic!("incremental map emits states");
            };
            keys += states.len();
            mass += states
                .iter()
                .filter_map(|s| s.state.as_u64())
                .sum::<u64>();
        }
        assert_eq!(keys, 6, "map-side cb must collapse to distinct keys");
        assert_eq!(mass, 120, "counts must be preserved by the collapse");
    }

    #[test]
    fn mr_hash_without_combiner_keeps_every_pair() {
        let spec = ClusterSpec::tiny();
        let job = FirstByte {
            with_combiner: false,
        };
        let recs = records(80, 7);
        let result = run(&job, Framework::MrHash, &recs, &spec);
        let total: usize = result.granules[0]
            .partitions
            .iter()
            .map(Payload::len)
            .sum();
        assert_eq!(total, 80);
    }
}
