//! The user-facing job API.
//!
//! A workload implements [`Job`] (the classic map/reduce pair) and, to run
//! under the incremental frameworks, exposes an [`IncrementalReducer`] —
//! the paper's `init() / cb() / fn()` triple (§4.2) plus the DINC eviction
//! hook (§4.3, §6.2). Values and states are opaque bytes, mirroring the
//! prototype's byte-array memory managers (§5): the engine never interprets
//! them, it only moves, groups and sizes them.

use opa_common::{Key, Pair, Value};

/// Where user code is currently running. Incremental jobs whose early
/// output is only safe with global knowledge (e.g. "count reached 50")
/// must gate emission on [`Site::Reduce`]; jobs with locally-safe early
/// output (a session closed by a within-chunk gap) may emit at either
/// site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Site {
    /// Map-side combine (`cb` applied inside the Hash-based Map Output
    /// component).
    Map,
    /// Reduce-side processing.
    Reduce,
}

/// Emission context handed to reduce-side user code. Everything a reducer
/// (classic or incremental) outputs goes through here; the engine drains it
/// to account output bytes and progress.
#[derive(Debug)]
pub struct ReduceCtx {
    emitted: Vec<Pair>,
    /// Highest event time observed by this reducer, if the job defines
    /// event times. Drives the DINC expiry eviction rule.
    pub watermark: Option<u64>,
    /// Whether this context serves map-side or reduce-side user code.
    pub site: Site,
}

impl Default for ReduceCtx {
    fn default() -> Self {
        ReduceCtx {
            emitted: Vec::new(),
            watermark: None,
            site: Site::Reduce,
        }
    }
}

impl ReduceCtx {
    /// Fresh reduce-side context.
    pub fn new() -> Self {
        ReduceCtx::default()
    }

    /// Fresh context at an explicit site.
    pub fn at_site(site: Site) -> Self {
        ReduceCtx {
            site,
            ..ReduceCtx::default()
        }
    }

    /// Emits one output pair.
    #[inline]
    pub fn emit(&mut self, key: Key, value: Value) {
        self.emitted.push(Pair::new(key, value));
    }

    /// Takes everything emitted since the last drain.
    pub fn drain(&mut self) -> Vec<Pair> {
        std::mem::take(&mut self.emitted)
    }

    /// Number of pairs pending drain.
    pub fn pending(&self) -> usize {
        self.emitted.len()
    }

    /// Copy of the pairs pending drain (checkpointing).
    pub(crate) fn export_pending(&self) -> Vec<Pair> {
        self.emitted.clone()
    }

    /// Refills the pending buffer of a fresh context (restore path).
    pub(crate) fn restore_pending(&mut self, pairs: Vec<Pair>) {
        debug_assert!(self.emitted.is_empty(), "restore into a non-empty ctx");
        self.emitted = pairs;
    }

    /// Raises the watermark to `t` if it is higher.
    pub fn advance_watermark(&mut self, t: u64) {
        self.watermark = Some(self.watermark.map_or(t, |w| w.max(t)));
    }
}

/// A combine function for the sort-merge baseline (Fig. 1): partial
/// aggregation applied after the map function and again when a reducer's
/// buffer fills. Must be commutative and associative over values.
pub trait Combiner: Send + Sync {
    /// Collapses the values of one key into (usually) fewer values.
    fn combine(&self, key: &Key, values: Vec<Value>) -> Vec<Value>;

    /// Whether this combiner collapses any value list to a *single* value
    /// and implements [`Combiner::fold`]. When `true`, the engine's combine
    /// paths accumulate in place pairwise instead of materializing a
    /// `Vec<Value>` per group, keeping combining on the zero-allocation
    /// plane. Must agree with `combine`: for any value list, folding the
    /// values left-to-right into the first one must produce exactly
    /// `combine(key, values)[0]`.
    fn supports_fold(&self) -> bool {
        false
    }

    /// Accumulates `value` into `acc` in place. Only called when
    /// [`Combiner::supports_fold`] returns `true`. The default
    /// implementation routes through [`Combiner::combine`] (allocating)
    /// so implementors only override it alongside `supports_fold`.
    fn fold(&self, key: &Key, acc: &mut Value, value: Value) {
        let mut out = self.combine(key, vec![std::mem::take(acc), value]);
        debug_assert_eq!(out.len(), 1, "fold requires a single-value combiner");
        *acc = out.pop().expect("fold combiner produced no value");
    }
}

/// The paper's incremental-processing interface (§4.2): `init()` turns a
/// raw value into a state, `cb()` merges states, `finalize()` produces the
/// final answer — `reduce = cb ∘ … ∘ cb` followed by `fn`.
pub trait IncrementalReducer: Send + Sync {
    /// `init()` — reduces one raw value to a state. Applied map-side,
    /// immediately after the map function.
    fn init(&self, key: &Key, value: Value) -> Value;

    /// `cb()` — merges `other` into `acc`. May emit early output through
    /// `ctx` (e.g. closed sessions, counters crossing a query threshold),
    /// which is what lets INC/DINC reduce progress track map progress.
    fn cb(&self, key: &Key, acc: &mut Value, other: Value, ctx: &mut ReduceCtx);

    /// `fn()` — produces the final answer(s) for a key from its state.
    fn finalize(&self, key: &Key, state: Value, ctx: &mut ReduceCtx);

    /// Memory footprint charged for a resident state. Defaults to the
    /// serialized length; jobs with pre-allocated fixed-size state buffers
    /// (sessionization's 0.5/1/2 KB reorder buffers) override this with the
    /// fixed capacity, which is what makes Table 4's "larger states ⇒
    /// fewer resident keys ⇒ more spill" trade-off real.
    fn state_mem_size(&self, state: &Value) -> u64 {
        state.len() as u64
    }

    /// Event time carried by a state, if this job has a temporal dimension
    /// (sessionization does; counting does not). The engine maintains the
    /// per-reducer watermark from these.
    fn event_time(&self, _state: &Value) -> Option<u64> {
        None
    }

    /// DINC eviction *guard* (the paper's §6.2 rule): may this state be
    /// displaced from the monitor right now? Sessionization answers "only
    /// if every click in the state belongs to an expired session"; counting
    /// workloads accept any eviction (their partial states spill and merge
    /// later). The default permits eviction.
    fn can_evict(&self, _key: &Key, _state: &Value, _watermark: Option<u64>) -> bool {
        true
    }

    /// DINC eviction hook. Called when the FREQUENT monitor displaces
    /// `state` (and at end-of-input drain). Return `None` after emitting
    /// the state's results through `ctx` if the state is complete and can
    /// bypass disk (the paper's sessionization rule: all clicks belong to
    /// an expired session); return `Some(state)` to spill it. The default
    /// spills everything.
    fn evict(
        &self,
        _key: &Key,
        state: Value,
        _watermark: Option<u64>,
        _ctx: &mut ReduceCtx,
    ) -> Option<Value> {
        Some(state)
    }
}

/// A MapReduce job: the map function, the classic reduce function, and the
/// optional combiner / incremental interfaces that unlock the richer
/// frameworks.
pub trait Job: Send + Sync {
    /// Human-readable job name for reports.
    fn name(&self) -> &str;

    /// The map function: parse one input record, emit ⟨key, value⟩ pairs
    /// as borrowed byte slices. The engine copies each payload into its
    /// arena-batched collector (small payloads become inline
    /// representations, large ones append-only arena views), so map
    /// functions should emit from stack buffers or record subslices and
    /// never allocate per pair.
    fn map(&self, record: &[u8], emit: &mut dyn FnMut(&[u8], &[u8]));

    /// The classic reduce function over a key's complete value list. Used
    /// by the sort-merge and MR-hash frameworks.
    fn reduce(&self, key: &Key, values: Vec<Value>, ctx: &mut ReduceCtx);

    /// Combiner for the sort-merge baseline, if the reduce function is
    /// commutative and associative.
    fn combiner(&self) -> Option<&dyn Combiner> {
        None
    }

    /// Incremental interface, if the reduce function permits incremental
    /// processing. Required by `Framework::IncHash` / `Framework::DincHash`.
    fn incremental(&self) -> Option<&dyn IncrementalReducer> {
        None
    }

    /// Hint: expected number of distinct keys, used to size the hash
    /// frameworks' bucket fan-out (the paper sets `h = K·n_p/B`).
    fn expected_keys(&self) -> Option<u64> {
        None
    }

    /// Hint: typical key-state pair size in bytes, used to size the DINC
    /// monitor (`s = (B − h)·n_p`).
    fn state_size_hint(&self) -> Option<u64> {
        None
    }

    /// Declares that this job's map function preserves the partition of
    /// its input records: for every framed ⟨key, value⟩ record it
    /// consumes in a dataflow, every pair it emits carries a key that
    /// hashes to the *same* h1 partition as the input key (the common
    /// case: the map emits under the unchanged input key). This is the
    /// M3R partition-stability contract — a chained stage may skip the
    /// reshuffle entirely only when the upstream dataset carries a
    /// compatible `PartitionSpec` *and* the downstream job declares this.
    /// The dataflow layer re-verifies the claim against the carried h1
    /// fingerprints at run time and hard-errors on a violation, so a
    /// wrong `true` cannot silently corrupt grouping. Default: `false`
    /// (always safe; forces the reshuffle fallback).
    fn partition_preserving(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountJob;

    impl Job for CountJob {
        fn name(&self) -> &str {
            "count"
        }
        fn map(&self, record: &[u8], emit: &mut dyn FnMut(&[u8], &[u8])) {
            emit(record, &1u64.to_be_bytes());
        }
        fn reduce(&self, key: &Key, values: Vec<Value>, ctx: &mut ReduceCtx) {
            let sum: u64 = values.iter().filter_map(Value::as_u64).sum();
            ctx.emit(key.clone(), Value::from_u64(sum));
        }
    }

    #[test]
    fn ctx_collects_and_drains() {
        let mut ctx = ReduceCtx::new();
        CountJob.reduce(
            &Key::from("a"),
            vec![Value::from_u64(1), Value::from_u64(2)],
            &mut ctx,
        );
        assert_eq!(ctx.pending(), 1);
        let out = ctx.drain();
        assert_eq!(out[0].value.as_u64(), Some(3));
        assert_eq!(ctx.pending(), 0);
        assert!(ctx.drain().is_empty());
    }

    #[test]
    fn watermark_is_monotone() {
        let mut ctx = ReduceCtx::new();
        assert_eq!(ctx.watermark, None);
        ctx.advance_watermark(10);
        ctx.advance_watermark(5);
        assert_eq!(ctx.watermark, Some(10));
        ctx.advance_watermark(20);
        assert_eq!(ctx.watermark, Some(20));
    }

    #[test]
    fn default_hooks_are_absent() {
        let j = CountJob;
        assert!(j.combiner().is_none());
        assert!(j.incremental().is_none());
        assert!(j.expected_keys().is_none());
        assert!(j.state_size_hint().is_none());
        assert!(!j.partition_preserving());
    }

    struct EchoInc;
    impl IncrementalReducer for EchoInc {
        fn init(&self, _k: &Key, v: Value) -> Value {
            v
        }
        fn cb(&self, _k: &Key, acc: &mut Value, other: Value, _ctx: &mut ReduceCtx) {
            let mut b = acc.bytes().to_vec();
            b.extend_from_slice(other.bytes());
            *acc = Value::new(b);
        }
        fn finalize(&self, k: &Key, state: Value, ctx: &mut ReduceCtx) {
            ctx.emit(k.clone(), state);
        }
    }

    #[test]
    fn default_evict_spills_state_unchanged() {
        let inc = EchoInc;
        let mut ctx = ReduceCtx::new();
        let out = inc.evict(&Key::from("k"), Value::from("abc"), Some(5), &mut ctx);
        assert_eq!(out, Some(Value::from("abc")));
        assert_eq!(ctx.pending(), 0);
    }
}
