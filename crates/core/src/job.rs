//! Job orchestration: the discrete-event loop tying mappers, shuffle and
//! reducers together.
//!
//! One `run` executes the whole MapReduce job: the input is split into
//! `C`-sized chunks by the block store, map tasks run on each node's map
//! slots (FIFO over node-local chunks), completed mappers push granules
//! whose per-reducer payloads travel over the simulated network, and each
//! reducer — a serial virtual timeline — absorbs deliveries through its
//! framework and completes once the queue drains. Reducers normally all
//! start in wave one (`R` ≤ reduce slots); with `R` above the slot count
//! the extra reducers start only when a first-wave reducer on their node
//! finishes and must re-read all their map output from the mappers' disks —
//! the two-wave effect of §3.2(3).
//!
//! ## Scheduling vs execution
//!
//! The loop itself is the *scheduling layer*: it owns every piece of
//! shared simulation state and touches it strictly in event order. The
//! heavy data work — map-task computation ([`compute_map_task`]) and
//! reducer ingestion (recorded through [`ReduceEnv`]) — runs on the
//! *execution layer* ([`crate::exec`]): a pool of `threads − 1` worker
//! threads plus the scheduler itself. Results come back as effect logs
//! and are replayed here in the exact order the sequential engine would
//! have produced, so a [`JobOutcome`] is bit-identical at any thread
//! count (see `tests/determinism.rs`).

use crate::api::Job;
use crate::cluster::{ClusterSpec, Framework};
use crate::exec::{Gather, Planner, Pool};
use crate::fault::{FaultPlan, MapFate};
use crate::map_phase::{
    abort_map_task, compute_map_task, finish_map_task, straggle_map_task, Payload, PoisonGate,
};
use crate::metrics::JobMetrics;
use crate::progress::{ProgressCurve, ProgressTracker};
use crate::reduce::{
    make_reducer, replay, replay_recovery, Effect, ReduceEnv, ReduceSide, ReducerSizing,
    ReplayTarget,
};
use crate::sim::{EventQueue, OpKind, Resources, Span, Usage};
use bytes::Bytes;
use opa_common::fault::{FaultConfig, FaultEvent, FaultKind, FaultReport};
use opa_common::units::{SimDuration, SimTime};
use opa_common::{
    Error, ExecConfig, GroupIndex, HashFamily, Pair, RecordBatch, Result, StateBatch, StatePair,
};
use opa_simio::{BlockStore, DiskFaultInjector, IoCategory, IoOp};
use opa_trace::{TraceEvent, TraceLog};
use std::collections::VecDeque;

/// Number of points progress curves are resampled to.
const PROGRESS_POINTS: usize = 400;

/// Job input: a sequence of raw records (lines of a log, documents…).
#[derive(Debug, Clone, Default)]
pub struct JobInput {
    /// The records. `Bytes` so chunks and map inputs never deep-copy.
    pub records: Vec<Bytes>,
}

impl JobInput {
    /// Builds an input from owned byte records.
    pub fn from_records(records: Vec<Vec<u8>>) -> Self {
        JobInput {
            records: records.into_iter().map(Bytes::from).collect(),
        }
    }

    /// Builds an input by splitting UTF-8 text into lines.
    pub fn from_text(text: &str) -> Self {
        JobInput {
            records: text
                .lines()
                .filter(|l| !l.is_empty())
                .map(|l| Bytes::copy_from_slice(l.as_bytes()))
                .collect(),
        }
    }

    /// Total input size `D` in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.records.iter().map(|r| r.len() as u64).sum()
    }

    /// Record count.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the input is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// One quarantined input record: the engine-level provenance of a map UDF
/// poison firing. The serving layer (`opa-serve`) adds tenant/job identity
/// on top when it files the entry in its dead-letter queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoisonedRecord {
    /// Map chunk (task) the record belonged to.
    pub chunk: u32,
    /// The map-task attempt that committed the chunk (0 unless crash or
    /// straggler recovery re-ran it).
    pub attempt: u32,
    /// The record's global input offset.
    pub offset: u64,
    /// The raw record bytes, exactly as read from the input.
    pub record: Bytes,
}

/// Everything a finished job yields.
#[derive(Debug)]
pub struct JobOutcome {
    /// Table-style metrics (times, bytes, CPU).
    pub metrics: JobMetrics,
    /// Definition-1 progress curves.
    pub progress: ProgressCurve,
    /// Task timeline (Fig 2(a)-style spans).
    pub timeline: Vec<Span>,
    /// CPU/disk busy-time series (Fig 2(b,c)-style).
    pub usage: Usage,
    /// The job's actual output pairs (order unspecified across reducers).
    pub output: Vec<Pair>,
    /// The structured event trace, when the run was started with
    /// [`JobBuilder::trace`]. Bit-identical at any thread count; see the
    /// `opa-trace` crate for the JSONL format, rollups and exporters.
    pub trace: Option<TraceLog>,
    /// Records quarantined by per-record UDF poison
    /// ([`opa_common::fault::FaultConfig::udf_poison_rate`]), in the order
    /// their chunks committed. Empty unless poison injection was enabled.
    pub dlq: Vec<PoisonedRecord>,
}

impl JobOutcome {
    /// The output sorted by key then value — canonical form for
    /// correctness comparisons.
    pub fn sorted_output(&self) -> Vec<Pair> {
        let mut out = self.output.clone();
        out.sort_by(|a, b| a.key.cmp(&b.key).then_with(|| a.value.cmp(&b.value)));
        out
    }

    /// Persists the job output to a real file in the IFile-style run
    /// format (length-framed records + CRC-32).
    pub fn write_output(&self, path: &std::path::Path) -> Result<()> {
        let buf = opa_simio::codec::encode_run(&self.output);
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)
                .map_err(|e| Error::storage(format!("mkdir {}: {e}", dir.display())))?;
        }
        std::fs::write(path, buf)
            .map_err(|e| Error::storage(format!("write {}: {e}", path.display())))
    }

    /// Reads back an output file written by [`JobOutcome::write_output`],
    /// verifying its checksum.
    pub fn read_output(path: &std::path::Path) -> Result<Vec<Pair>> {
        let buf = std::fs::read(path)
            .map_err(|e| Error::storage(format!("read {}: {e}", path.display())))?;
        opa_simio::codec::decode_run(&buf)
    }

    /// The output as a resident [`crate::dataflow::Dataset`], bucketed
    /// under the partition function of `spec` — the handle a
    /// [`crate::dataflow::Dataflow`] chains from. Pass the spec the job
    /// ran on to get the partitioning its reducers actually produced.
    pub fn dataset(&self, spec: &ClusterSpec) -> crate::dataflow::Dataset {
        crate::dataflow::Dataset::from_pairs(
            self.output.clone(),
            crate::dataflow::PartitionSpec::of(spec),
        )
    }
}

/// Fluent builder for one job run.
pub struct JobBuilder<J: Job> {
    job: J,
    framework: Framework,
    spec: ClusterSpec,
    exec: ExecConfig,
    km_hint: f64,
    early_stop_coverage: Option<f64>,
    snapshot_points: Vec<f64>,
    dinc_monitor: crate::reduce::dinc_hash::MonitorKind,
    admission: opa_common::AdmissionPolicy,
    combine: opa_common::CombineScope,
    faults: FaultConfig,
    trace: bool,
}

impl<J: Job> JobBuilder<J> {
    /// Starts a builder with the sort-merge baseline on the paper cluster.
    pub fn new(job: J) -> Self {
        JobBuilder {
            job,
            framework: Framework::SortMerge,
            spec: ClusterSpec::paper_scaled(),
            exec: ExecConfig::sequential(),
            km_hint: 1.0,
            early_stop_coverage: None,
            snapshot_points: Vec::new(),
            dinc_monitor: crate::reduce::dinc_hash::MonitorKind::Frequent,
            admission: opa_common::AdmissionPolicy::Off,
            combine: opa_common::CombineScope::Task,
            faults: FaultConfig::disabled(),
            trace: false,
        }
    }

    /// Turns on structured event tracing. The run then carries a
    /// [`TraceLog`] in [`JobOutcome::trace`] — one record per simulation
    /// event, deterministic and bit-identical at any thread count. Off by
    /// default (tracing is zero-cost when off).
    pub fn trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Selects the reduce-side framework.
    pub fn framework(mut self, f: Framework) -> Self {
        self.framework = f;
        self
    }

    /// Selects the cluster configuration.
    pub fn cluster(mut self, spec: ClusterSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Sets the execution-layer thread count. `1` (the default) runs the
    /// engine fully sequentially on the calling thread; `n > 1` adds
    /// `n − 1` worker threads, capped at the host's core count (pass
    /// [`ExecConfig::oversubscribed`] to [`JobBuilder::exec`] to lift the
    /// cap). The [`JobOutcome`] is bit-identical at any value — threads
    /// only change wall-clock time.
    pub fn threads(mut self, threads: usize) -> Self {
        self.exec = ExecConfig::with_threads(threads);
        self
    }

    /// Sets the full execution-layer configuration.
    pub fn exec(mut self, exec: ExecConfig) -> Self {
        self.exec = exec;
        self
    }

    /// Hints the map output/input ratio `K_m`, used to size hash-framework
    /// bucket fan-outs (defaults to 1.0).
    pub fn km_hint(mut self, km: f64) -> Self {
        self.km_hint = km;
        self
    }

    /// Enables DINC's approximate early termination at coverage φ.
    pub fn early_stop_coverage(mut self, phi: f64) -> Self {
        self.early_stop_coverage = Some(phi);
        self
    }

    /// Selects the frequency algorithm behind DINC-hash's monitor
    /// (default: FREQUENT, the paper's choice).
    pub fn dinc_monitor(mut self, kind: crate::reduce::dinc_hash::MonitorKind) -> Self {
        self.dinc_monitor = kind;
        self
    }

    /// Selects the reduce-side admission policy (default: off, the
    /// paper's first-come occupancy). Under
    /// [`AdmissionPolicy::Lfu`](opa_common::AdmissionPolicy::Lfu) a
    /// table-full arrival may evict a resident key that a deterministic
    /// frequency sketch judges colder, instead of spilling itself.
    pub fn admission(mut self, policy: opa_common::AdmissionPolicy) -> Self {
        self.admission = policy;
        self
    }

    /// Selects where map output is combined before shuffle (default:
    /// [`CombineScope::Task`](opa_common::CombineScope::Task), the
    /// engine's historical per-map-task combining — bit-identical to
    /// builds that predate the knob). Under
    /// [`CombineScope::Node`](opa_common::CombineScope::Node) granules
    /// from all map tasks of one simulated node additionally merge
    /// through the job's combiner (or, for the incremental frameworks,
    /// its `cb()`) in a per-node staging table before any shuffle bytes
    /// are booked; flush points are scheduler-side and deterministic, so
    /// output stays bit-identical at any thread count.
    /// [`CombineScope::Off`](opa_common::CombineScope::Off) disables even
    /// per-task combining for the materializing frameworks.
    pub fn combine(mut self, scope: opa_common::CombineScope) -> Self {
        self.combine = scope;
        self
    }

    /// Requests MapReduce-Online-style snapshot outputs (§3.3) at the
    /// given map-progress fractions, e.g. `[0.25, 0.5, 0.75]`. Each point
    /// makes every reducer repeat its merge and emit a snapshot — the
    /// expensive behaviour the paper measures.
    pub fn snapshot_points(mut self, points: &[f64]) -> Self {
        self.snapshot_points = points.to_vec();
        self
    }

    /// Validates the configured snapshot points: each must be a finite
    /// map-progress fraction in `[0, 1]`. Shared by [`JobBuilder::run`] and
    /// CLI argument parsing so a bad `--snapshots` list fails up front with
    /// an actionable message instead of deep inside the run.
    pub fn validate_snapshot_points(&self) -> Result<()> {
        for &p in &self.snapshot_points {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(Error::job(format!(
                    "snapshot point {p} is not a map-progress fraction in \
                     [0, 1]; pass fractions of map completion such as \
                     0.25,0.5,0.75"
                )));
            }
        }
        Ok(())
    }

    /// Enables deterministic fault injection: map/reduce failures,
    /// stragglers and spill-disk errors per `cfg`, with full recovery.
    /// Recovery never loses or duplicates data: order-independent
    /// reductions produce output bit-identical to the fault-free run.
    /// Jobs that emit early from a slack-bounded reorder buffer
    /// (sessionization under INC/DINC) may re-anchor labels when a fault
    /// delays a map task past the slack, exactly as in real Hadoop —
    /// reduce-crash recovery alone is fully output-transparent. Timing,
    /// I/O accounting and the [`JobMetrics::faults`] report change in
    /// any case.
    pub fn faults(mut self, cfg: FaultConfig) -> Self {
        self.faults = cfg;
        self
    }

    /// Access to the wrapped job.
    pub fn job(&self) -> &J {
        &self.job
    }

    /// Runs the job on `input`.
    pub fn run(&self, input: &JobInput) -> Result<JobOutcome> {
        self.spec.validate()?;
        self.exec.validate()?;
        self.faults.validate()?;
        self.validate_snapshot_points()?;
        if let Some(phi) = self.early_stop_coverage {
            if !phi.is_finite() || !(0.0..=1.0).contains(&phi) || phi == 0.0 {
                return Err(Error::job(format!(
                    "early-stop coverage φ must be a fraction in (0, 1], got {phi}"
                )));
            }
        }
        if input.is_empty() {
            return Err(Error::job("job input is empty"));
        }
        run_job(
            &self.job,
            self.framework,
            &self.spec,
            self.exec,
            self.km_hint,
            self.early_stop_coverage,
            self.dinc_monitor,
            self.admission,
            self.combine,
            &self.snapshot_points,
            &self.faults,
            self.trace,
            input,
        )
    }
}

/// How the per-node staging table merges two same-key rows under
/// [`opa_common::CombineScope::Node`].
#[derive(Clone, Copy)]
enum NodeMerge<'j> {
    /// Key-value pairs folded through the job's combiner.
    Pairs(&'j dyn crate::api::Combiner),
    /// Key-state pairs merged through the incremental `cb()` at
    /// [`crate::api::Site::Map`]; early emissions route to job output
    /// exactly like task-level map-side `cb()` emissions.
    States(&'j dyn crate::api::IncrementalReducer),
}

enum Ev {
    StartMap {
        chunk: usize,
        /// 0 for the first execution; retries and speculative backups
        /// count up. Drives the fault plan's per-attempt decisions.
        attempt: u32,
    },
    Deliver {
        reducer: usize,
        from_node: usize,
        payload: Payload,
    },
}

/// A reducer's recorded mailbox result: the reducer itself (handed back
/// after recording) plus, per delivery, the delivery log and the logs of
/// any snapshots taken right after it.
type MailboxLogs = VecDeque<(Vec<Effect>, Vec<Vec<Effect>>)>;

/// Records one reducer's mailbox — a run of consecutive deliveries, each
/// followed by `snaps` snapshot repetitions — into effect logs. Pure data
/// work: runs on any execution-layer thread.
fn record_mailbox<'j>(
    mut rec: Box<dyn ReduceSide + Send + 'j>,
    items: Vec<(Payload, usize)>,
    est: SimTime,
    spec: &ClusterSpec,
) -> (Box<dyn ReduceSide + Send + 'j>, MailboxLogs) {
    let mut logs: MailboxLogs = VecDeque::with_capacity(items.len());
    let mut te = est;
    for (payload, snaps) in items {
        let mut env = ReduceEnv::new(spec);
        te = rec.on_delivery(te, payload, &mut env);
        let dlog = env.into_log();
        let mut slogs = Vec::with_capacity(snaps);
        for _ in 0..snaps {
            let mut senv = ReduceEnv::new(spec);
            te = rec.snapshot(te, &mut senv);
            slogs.push(senv.into_log());
        }
        logs.push_back((dlog, slogs));
    }
    (rec, logs)
}

#[allow(clippy::too_many_lines)]
#[allow(clippy::too_many_arguments)]
fn run_job(
    job: &dyn Job,
    framework: Framework,
    spec: &ClusterSpec,
    exec: ExecConfig,
    km_hint: f64,
    early_stop: Option<f64>,
    dinc_monitor: crate::reduce::dinc_hash::MonitorKind,
    admission: opa_common::AdmissionPolicy,
    combine: opa_common::CombineScope,
    snapshot_points: &[f64],
    faults: &FaultConfig,
    trace: bool,
    input: &JobInput,
) -> Result<JobOutcome> {
    let hw = &spec.hardware;
    let n_nodes = hw.nodes;
    let n_reducers = spec.total_reducers();
    let family = HashFamily::new(spec.hash_seed);
    let h1 = family.fn_at(0);

    // Snapshot points were validated by the builder (finite fractions in
    // [0, 1] — see `JobBuilder::validate_snapshot_points`).
    let mut snapshots: Vec<f64> = snapshot_points.to_vec();
    snapshots.sort_by(f64::total_cmp);

    // Split the input into chunks, HDFS-style.
    let store = BlockStore::split(
        input.records.iter().map(|r| r.len() as u64),
        spec.system.chunk_size,
        n_nodes,
    );

    // The scheduler thread doubles as a worker, so `threads` total. The
    // effective count is capped at the host's cores unless the config
    // explicitly oversubscribes: surplus threads would only time-slice,
    // and the outcome is bit-identical at any count anyway.
    let workers = exec.effective_threads().saturating_sub(1);

    // Declared outside the execution scope: the speculative planner's
    // closures capture it by reference and outlive this stack frame's
    // inner locals.
    let poison_on = faults.poison_enabled();

    std::thread::scope(|scope| -> Result<JobOutcome> {
        let pool = Pool::new(scope, workers);

        let separate_spill = spec.cost.spill_disk != spec.cost.hdfs_disk;
        let mut res = Resources::new(n_nodes, hw.map_slots.max(hw.reduce_slots), separate_spill);
        if trace {
            res.enable_trace();
        }
        let mut progress = ProgressTracker::new(store.num_chunks() as u64);

        // Fault-injection state. All decisions and recovery charging run
        // on this (scheduling) thread in event order, so the failure trace
        // and the recovered outcome are thread-count invariant.
        let fault_on = faults.enabled();
        let fplan = if fault_on {
            Some(FaultPlan::new(*faults))
        } else {
            None
        };
        let mut freport = FaultReport::default();
        if faults.spill_error_rate > 0.0 {
            res.set_disk_faults(DiskFaultInjector::new(
                faults.seed,
                faults.spill_error_rate,
                faults.max_retries,
            ));
        }
        // Pure map-task plans stashed by failed/straggling attempts for
        // reuse by their retry (the plan is a function of the chunk alone).
        let mut plan_stash: Vec<Option<crate::map_phase::MapTaskPlan>> =
            (0..store.num_chunks()).map(|_| None).collect();
        // Per-reducer crash bookkeeping and effect history for recovery
        // re-replay (history is only kept when reduce crashes can fire).
        let track_history = faults.reduce_failure_rate > 0.0;
        let mut delivery_seq: Vec<u64> = vec![0; n_reducers];
        let mut crash_count: Vec<u32> = vec![0; n_reducers];
        let mut history: Vec<Vec<Effect>> = vec![Vec::new(); n_reducers];

        // Reducer sizing from job hints.
        let expected_input =
            ((input.total_bytes() as f64 * km_hint) / n_reducers as f64).ceil() as u64;
        let expected_keys = job
            .expected_keys()
            .map(|k| (k / n_reducers as u64).max(1))
            .unwrap_or(expected_input / 64);
        let sizing = ReducerSizing {
            expected_input,
            expected_keys,
            state_size: job.state_size_hint().unwrap_or(64),
            early_stop_coverage: early_stop,
            monitor: dinc_monitor,
            admission,
        };
        let mut reducers = Vec::with_capacity(n_reducers);
        for _ in 0..n_reducers {
            reducers.push(Some(make_reducer(framework, job, spec, sizing, &family)?));
        }
        let reducer_node = |r: usize| r % n_nodes;
        // Wave assignment: the first `reduce_slots` reducers per node start
        // at time zero; the rest queue their deliveries.
        let wave1_per_node = hw.reduce_slots;
        let started: Vec<bool> = (0..n_reducers)
            .map(|r| (r / n_nodes) < wave1_per_node)
            .collect();

        // Per-node FIFO of map chunks; seed each node's map slots.
        let mut queue: EventQueue<Ev> = EventQueue::new();
        let mut pending: Vec<VecDeque<usize>> = vec![VecDeque::new(); n_nodes];
        for (i, c) in store.chunks().iter().enumerate() {
            pending[c.node].push_back(i);
        }
        for node_pending in pending.iter_mut() {
            for _ in 0..hw.map_slots {
                if let Some(chunk) = node_pending.pop_front() {
                    queue.push(SimTime::ZERO, Ev::StartMap { chunk, attempt: 0 });
                }
            }
        }

        // Speculative map-task planning: plans are pure functions of the
        // chunk index, so the pool computes a window of them ahead of the
        // scheduler.
        let compute_plan = |chunk: usize| {
            let c = &store.chunks()[chunk];
            compute_map_task(
                job,
                framework,
                &input.records[c.range.clone()],
                c.bytes,
                spec,
                h1,
                admission,
                combine,
                poison_on.then_some(PoisonGate {
                    faults: *faults,
                    base: c.range.start as u64,
                }),
            )
        };
        let planner: Planner<crate::map_phase::MapTaskPlan> =
            Planner::new(store.num_chunks(), workers * 2 + 2);
        planner.prime(&pool, compute_plan);

        // Per-entity accounting.
        let mut map_cpu = vec![SimDuration::ZERO; n_nodes];
        let mut reduce_cpu = vec![SimDuration::ZERO; n_reducers];
        let mut ready_at = vec![SimTime::ZERO; n_reducers];
        let mut deferred: Vec<Vec<(usize, Payload)>> = vec![Vec::new(); n_reducers];
        let mut spill_written_map = 0u64;
        let mut spill_written_reduce = vec![0u64; n_reducers];
        let mut snapshot_bytes = vec![0u64; n_reducers];
        let mut next_snapshot = 0usize;
        let mut snapshots_taken = vec![0usize; n_reducers];
        let mut maps_completed = 0usize;
        let mut map_output_bytes = 0u64;
        let mut map_finish = SimTime::ZERO;
        let mut output: Vec<Pair> = Vec::new();
        let mut dlq: Vec<PoisonedRecord> = Vec::new();

        // `CombineScope::Node`: per-node pre-shuffle staging. Committed map
        // granules land in a per-node hash-indexed table (probed by the
        // carried h1 fingerprints) instead of booking shuffle bytes; the
        // table drains at two deterministic flush points — the node's last
        // committed map task, and a post-combine byte budget
        // (`ClusterSpec::node_combine_buffer`). Staging runs entirely on
        // this scheduling thread in event order, so the outcome stays
        // thread-count invariant like the rest of the scheduler. A node
        // scope without a combiner (or `init/cb` for the incremental
        // frameworks) degenerates to task scope: nothing to merge with.
        let node_merge: Option<NodeMerge<'_>> = if combine.is_node() {
            if framework.is_incremental() {
                job.incremental().map(NodeMerge::States)
            } else {
                job.combiner().map(NodeMerge::Pairs)
            }
        } else {
            None
        };
        // Staged rows in first-seen order: (partition, h1 fingerprint, key,
        // value-or-state). First-seen order makes the rebuilt payloads a
        // pure function of the commit sequence.
        let mut stage_rows: Vec<Vec<(usize, u64, opa_common::Key, opa_common::Value)>> =
            vec![Vec::new(); n_nodes];
        let mut stage_index: Vec<GroupIndex> =
            (0..n_nodes).map(|_| GroupIndex::with_capacity(64)).collect();
        let mut stage_bytes = vec![0u64; n_nodes]; // resident, post-combine
        let mut stage_in = vec![0u64; n_nodes]; // offered since last flush, pre-combine
        let mut stage_merges = vec![0u64; n_nodes]; // cb/fold calls since last flush
        let mut stage_ctx: Vec<crate::api::ReduceCtx> = (0..n_nodes)
            .map(|_| crate::api::ReduceCtx::at_site(crate::api::Site::Map))
            .collect();
        // Committed-chunk countdown per node: the node's table takes its
        // final flush when the last of its chunks commits. Failed and
        // straggling attempts `continue` before the commit path, so the
        // countdown moves only at the committing attempt.
        let mut stage_outstanding: Vec<usize> = vec![0; n_nodes];
        if node_merge.is_some() {
            for c in store.chunks() {
                stage_outstanding[c.node] += 1;
            }
        }
        let mut nc_stats = crate::metrics::NodeCombineStats::default();
        // Shuffle bytes actually booked on the network (post-combine under
        // node scope; equal to `map_output_bytes` minus in-task combining
        // otherwise). Wave-two re-reads replay these same transfers from
        // disk and are not re-counted.
        let mut shuffle_booked = 0u64;

        // Burst scratch, reused across iterations.
        let mut mail_of: Vec<Option<usize>> = vec![None; n_reducers];
        let mut log_q: Vec<MailboxLogs> = (0..n_reducers).map(|_| VecDeque::new()).collect();

        macro_rules! target {
            ($r:expr) => {
                ReplayTarget {
                    node: reducer_node($r),
                    res: &mut res,
                    progress: &mut progress,
                    output: &mut output,
                    reduce_cpu: &mut reduce_cpu[$r],
                    spill_written: &mut spill_written_reduce[$r],
                    snapshot_bytes: &mut snapshot_bytes[$r],
                }
            };
        }

        // Drains one node's staging table at flush time `$t`: charge the
        // accumulated cross-task merge CPU, rebuild per-partition payloads
        // in first-seen row order, and book the (post-combine) shuffle
        // transfers exactly as the direct path would have.
        macro_rules! flush_node {
            ($node:expr, $t:expr) => {{
                let fnode: usize = $node;
                if !stage_rows[fnode].is_empty() {
                    let t0: SimTime = $t;
                    let rows = std::mem::take(&mut stage_rows[fnode]);
                    stage_index[fnode].clear();
                    stage_bytes[fnode] = 0;
                    let bytes_in = std::mem::take(&mut stage_in[fnode]);
                    let merges = std::mem::take(&mut stage_merges[fnode]);
                    let cb_cpu = spec.cost.cb_time(merges);
                    let t1 = res.cpu(fnode, t0, cb_cpu);
                    map_cpu[fnode] += cb_cpu;
                    let states_mode = matches!(node_merge, Some(NodeMerge::States(_)));
                    let cap = rows.len() / n_reducers + 1;
                    let mut payloads: Vec<Payload> = (0..n_reducers)
                        .map(|_| {
                            if states_mode {
                                Payload::States(StateBatch::with_capacity(cap))
                            } else {
                                Payload::Pairs(RecordBatch::with_capacity(cap))
                            }
                        })
                        .collect();
                    let keys = rows.len() as u64;
                    for (part, h, key, value) in rows {
                        match &mut payloads[part] {
                            Payload::Pairs(b) => b.push_hashed(Pair::new(key, value), h),
                            Payload::States(b) => b.push_hashed(StatePair::new(key, value), h),
                        }
                    }
                    let mut bytes_out = 0u64;
                    for (r, payload) in payloads.into_iter().enumerate() {
                        if payload.is_empty() {
                            continue;
                        }
                        let b = payload.bytes();
                        bytes_out += b;
                        let arrival = t1 + spec.cost.net_time(b);
                        res.span(fnode, OpKind::Shuffle, t1, arrival);
                        res.emit(TraceEvent::Shuffle {
                            t0: t1.0,
                            t: arrival.0,
                            from_node: fnode as u32,
                            reducer: r as u32,
                            bytes: b,
                        });
                        queue.push(
                            arrival,
                            Ev::Deliver {
                                reducer: r,
                                from_node: fnode,
                                payload,
                            },
                        );
                    }
                    shuffle_booked += bytes_out;
                    nc_stats.flushes += 1;
                    nc_stats.staged_bytes += bytes_in;
                    nc_stats.flushed_bytes += bytes_out;
                    res.emit(TraceEvent::NodeCombine {
                        t0: t0.0,
                        t: t1.0,
                        node: fnode as u32,
                        bytes_in,
                        bytes_out,
                        keys,
                    });
                }
            }};
        }

        // Main event loop.
        while let Some((t, ev)) = queue.pop() {
            match ev {
                Ev::StartMap { chunk, attempt } => {
                    let node = store.chunks()[chunk].node;
                    res.emit(TraceEvent::MapStart {
                        t: t.0,
                        chunk: chunk as u32,
                        attempt,
                        node: node as u32,
                    });
                    // Retries reuse the stashed pure plan; the planner only
                    // hands out each chunk's first-execution plan.
                    let plan = if attempt == 0 {
                        planner.take(chunk, &pool, compute_plan)
                    } else {
                        plan_stash[chunk]
                            .take()
                            .unwrap_or_else(|| compute_plan(chunk))
                    };
                    match fplan
                        .as_ref()
                        .map_or(MapFate::Ok, |p| p.map_fate(chunk, attempt))
                    {
                        MapFate::Fail { frac } => {
                            // The attempt dies partway: charge the prefix
                            // as waste, back off, retry on the same slot.
                            let waste = abort_map_task(&plan, frac, node, t, spec, &mut res);
                            let backoff = faults.backoff(attempt + 1);
                            freport.map_failures += 1;
                            freport.map_retries += 1;
                            freport.wasted_cpu += waste.wasted_cpu;
                            freport.wasted_bytes += waste.wasted_bytes;
                            freport.recovery_time += (waste.fail_time - t) + backoff;
                            freport.trace.push(FaultEvent {
                                time: waste.fail_time,
                                kind: FaultKind::MapFailure,
                                target: chunk as u64,
                                attempt,
                            });
                            res.emit(TraceEvent::Fault {
                                t: waste.fail_time.0,
                                kind: FaultKind::MapFailure,
                                target: chunk as u64,
                                attempt,
                            });
                            res.emit(TraceEvent::Retry {
                                t: (waste.fail_time + backoff).0,
                                kind: FaultKind::MapFailure,
                                target: chunk as u64,
                                attempt: attempt + 1,
                            });
                            plan_stash[chunk] = Some(plan);
                            queue.push(
                                waste.fail_time + backoff,
                                Ev::StartMap {
                                    chunk,
                                    attempt: attempt + 1,
                                },
                            );
                            continue;
                        }
                        MapFate::Straggle { factor } => {
                            // The attempt limps along at factor× CPU cost;
                            // at the nominal-duration horizon the scheduler
                            // launches a speculative backup whose output is
                            // the one committed. Everything the straggler
                            // did is waste.
                            let nominal = plan.nominal_duration(spec);
                            let waste = straggle_map_task(&plan, factor, node, t, spec, &mut res);
                            let detect = t + nominal;
                            freport.stragglers += 1;
                            freport.speculative_wins += 1;
                            freport.wasted_cpu += waste.wasted_cpu;
                            freport.wasted_bytes += waste.wasted_bytes;
                            freport.recovery_time += waste.fail_time.saturating_since(detect);
                            freport.trace.push(FaultEvent {
                                time: detect,
                                kind: FaultKind::Straggler,
                                target: chunk as u64,
                                attempt,
                            });
                            res.emit(TraceEvent::Fault {
                                t: detect.0,
                                kind: FaultKind::Straggler,
                                target: chunk as u64,
                                attempt,
                            });
                            res.emit(TraceEvent::Retry {
                                t: detect.0,
                                kind: FaultKind::Straggler,
                                target: chunk as u64,
                                attempt: attempt + 1,
                            });
                            plan_stash[chunk] = Some(plan);
                            queue.push(
                                detect,
                                Ev::StartMap {
                                    chunk,
                                    attempt: attempt + 1,
                                },
                            );
                            continue;
                        }
                        MapFate::Ok => {}
                    }
                    let result = finish_map_task(plan, node, t, spec, &mut res);
                    // Quarantine the chunk's poisoned records exactly once,
                    // at the committing attempt: the record, its offset and
                    // the attempt number are the DLQ's provenance.
                    for &(offset, ref record) in &result.poisoned {
                        freport.udf_poisoned += 1;
                        freport.trace.push(FaultEvent {
                            time: result.finish,
                            kind: FaultKind::UdfPoison,
                            target: offset,
                            attempt,
                        });
                        res.emit(TraceEvent::Poison {
                            t: result.finish.0,
                            chunk: chunk as u32,
                            offset,
                            attempt,
                        });
                        dlq.push(PoisonedRecord {
                            chunk: chunk as u32,
                            attempt,
                            offset,
                            record: record.clone(),
                        });
                    }
                    res.emit(TraceEvent::MapFinish {
                        t0: t.0,
                        t: result.finish.0,
                        chunk: chunk as u32,
                        node: node as u32,
                        cpu: result.cpu.0,
                        output_bytes: result.output_bytes,
                        spill_bytes: result.spill_bytes,
                    });
                    map_cpu[node] += result.cpu;
                    spill_written_map += result.spill_bytes;
                    map_output_bytes += result.output_bytes;
                    map_finish = map_finish.max(result.finish);
                    progress.map_done(result.finish);
                    maps_completed += 1;
                    // MapReduce Online snapshots fire when map progress
                    // crosses a requested point; each reducer takes its
                    // snapshot at the next delivery it processes ("when
                    // reducers have received X% of the data").
                    while next_snapshot < snapshots.len()
                        && maps_completed as f64
                            >= snapshots[next_snapshot] * store.num_chunks() as f64
                    {
                        next_snapshot += 1;
                    }
                    if !result.early_output.is_empty() {
                        let bytes: u64 = result.early_output.iter().map(Pair::size).sum();
                        progress.emitted(result.finish, bytes);
                        output.extend(result.early_output);
                    }
                    for granule in result.granules {
                        if let Some(merge) = node_merge {
                            let gt = granule.time;
                            let rows = &mut stage_rows[node];
                            let index = &mut stage_index[node];
                            for (r, payload) in granule.partitions.into_iter().enumerate() {
                                if payload.is_empty() {
                                    continue;
                                }
                                stage_in[node] += payload.bytes();
                                match (payload, merge) {
                                    (Payload::Pairs(batch), NodeMerge::Pairs(cb)) => {
                                        let (pairs, hashes) = batch.into_parts();
                                        for (i, p) in pairs.into_iter().enumerate() {
                                            let h = hashes
                                                .get(i)
                                                .copied()
                                                .unwrap_or_else(|| h1.hash(p.key.bytes()));
                                            match index.get(h, |row| rows[row].2 == p.key) {
                                                Some(row) => {
                                                    let slot = &mut rows[row];
                                                    let before = slot.3.len() as u64;
                                                    cb.fold(&slot.2, &mut slot.3, p.value);
                                                    stage_bytes[node] = stage_bytes[node]
                                                        + slot.3.len() as u64
                                                        - before;
                                                    stage_merges[node] += 1;
                                                    nc_stats.merged_rows += 1;
                                                }
                                                None => {
                                                    stage_bytes[node] += p.size();
                                                    index.insert(h, rows.len());
                                                    rows.push((r, h, p.key, p.value));
                                                }
                                            }
                                        }
                                    }
                                    (Payload::States(batch), NodeMerge::States(inc)) => {
                                        let ctx = &mut stage_ctx[node];
                                        let (states, hashes) = batch.into_parts();
                                        for (i, sp) in states.into_iter().enumerate() {
                                            let h = hashes
                                                .get(i)
                                                .copied()
                                                .unwrap_or_else(|| h1.hash(sp.key.bytes()));
                                            match index.get(h, |row| rows[row].2 == sp.key) {
                                                Some(row) => {
                                                    let slot = &mut rows[row];
                                                    let before = inc.state_mem_size(&slot.3);
                                                    inc.cb(&slot.2, &mut slot.3, sp.state, ctx);
                                                    let after = inc.state_mem_size(&slot.3);
                                                    stage_bytes[node] = (stage_bytes[node]
                                                        + after)
                                                        .saturating_sub(before);
                                                    stage_merges[node] += 1;
                                                    nc_stats.merged_rows += 1;
                                                }
                                                None => {
                                                    stage_bytes[node] += sp.size();
                                                    index.insert(h, rows.len());
                                                    rows.push((r, h, sp.key, sp.state));
                                                }
                                            }
                                        }
                                    }
                                    _ => unreachable!("payload kind matches the merge mode"),
                                }
                            }
                            // Map-site early emissions from a cross-task
                            // `cb()` (e.g. a session closing across two
                            // chunks of the same node) route to job output
                            // exactly like task-level map-side emissions.
                            if stage_ctx[node].pending() > 0 {
                                let early = stage_ctx[node].drain();
                                let b: u64 = early.iter().map(Pair::size).sum();
                                let _ = res.hdfs_io(
                                    node,
                                    gt,
                                    IoCategory::ReduceOutput,
                                    IoOp::write(b),
                                    &spec.cost,
                                );
                                progress.emitted(gt, b);
                                output.extend(early);
                            }
                            if stage_bytes[node] > spec.node_combine_buffer {
                                flush_node!(node, gt);
                            }
                        } else {
                            for (r, payload) in granule.partitions.into_iter().enumerate() {
                                if payload.is_empty() {
                                    continue;
                                }
                                shuffle_booked += payload.bytes();
                                let arrival = granule.time + spec.cost.net_time(payload.bytes());
                                res.span(node, OpKind::Shuffle, granule.time, arrival);
                                res.emit(TraceEvent::Shuffle {
                                    t0: granule.time.0,
                                    t: arrival.0,
                                    from_node: node as u32,
                                    reducer: r as u32,
                                    bytes: payload.bytes(),
                                });
                                queue.push(
                                    arrival,
                                    Ev::Deliver {
                                        reducer: r,
                                        from_node: node,
                                        payload,
                                    },
                                );
                            }
                        }
                    }
                    // Node scope: the last committed chunk on a node takes
                    // the node's final flush before freeing the slot.
                    if node_merge.is_some() {
                        stage_outstanding[node] -= 1;
                        if stage_outstanding[node] == 0 {
                            flush_node!(node, result.finish);
                        }
                    }
                    // Free the slot: schedule the node's next chunk.
                    if let Some(next) = pending[node].pop_front() {
                        queue.push(
                            result.finish,
                            Ev::StartMap {
                                chunk: next,
                                attempt: 0,
                            },
                        );
                    }
                }
                Ev::Deliver {
                    reducer,
                    from_node,
                    payload,
                } => {
                    // Drain the maximal run of consecutive deliveries:
                    // processing a delivery never schedules new events, so
                    // everything up to the next StartMap can be recorded as
                    // one parallel batch without changing the pop order.
                    let mut burst: Vec<(SimTime, usize, usize, Payload)> =
                        vec![(t, reducer, from_node, payload)];
                    while matches!(queue.peek(), Some((_, Ev::Deliver { .. }))) {
                        let Some((
                            t2,
                            Ev::Deliver {
                                reducer,
                                from_node,
                                payload,
                            },
                        )) = queue.pop()
                        else {
                            unreachable!("peeked a delivery");
                        };
                        burst.push((t2, reducer, from_node, payload));
                    }

                    // Partition the burst into per-reducer mailboxes,
                    // preserving each reducer's arrival order; second-wave
                    // reducers defer as before.
                    let mut order: Vec<(usize, SimTime)> = Vec::with_capacity(burst.len());
                    let mut mailboxes: Vec<(usize, Vec<(Payload, usize)>)> = Vec::new();
                    for (t_ev, r, from, payload) in burst {
                        if !started[r] {
                            deferred[r].push((from, payload));
                            continue;
                        }
                        order.push((r, t_ev));
                        let slot = match mail_of[r] {
                            Some(s) => s,
                            None => {
                                mail_of[r] = Some(mailboxes.len());
                                mailboxes.push((r, Vec::new()));
                                mailboxes.len() - 1
                            }
                        };
                        // Snapshots catch up after the first delivery a
                        // reducer processes past each snapshot point.
                        let snaps = if mailboxes[slot].1.is_empty() {
                            next_snapshot.saturating_sub(snapshots_taken[r])
                        } else {
                            0
                        };
                        mailboxes[slot].1.push((payload, snaps));
                    }
                    if mailboxes.is_empty() {
                        continue;
                    }

                    // Record every mailbox on the pool (inline when the
                    // pool has no workers), then replay in pop order. The
                    // burst goes up as one batch — a single wake decision
                    // for the whole delivery run instead of one notify
                    // per mailbox.
                    let n_mail = mailboxes.len();
                    let gather = Gather::new(n_mail);
                    let mut mail_reducers: Vec<usize> = Vec::with_capacity(n_mail);
                    let mut batch: Vec<crate::exec::Task<'_>> = Vec::with_capacity(n_mail - 1);
                    let mut last: Option<crate::exec::Task<'_>> = None;
                    for (slot, (r, items)) in mailboxes.into_iter().enumerate() {
                        mail_reducers.push(r);
                        mail_of[r] = None;
                        let rec = reducers[r].take().expect("reducer in place");
                        let est = ready_at[r];
                        let g = gather.clone();
                        let task: crate::exec::Task<'_> = Box::new(move || {
                            g.put(slot, record_mailbox(rec, items, est, spec));
                        });
                        if slot + 1 == n_mail {
                            // The scheduler records the last mailbox itself:
                            // no handoff for single-mailbox bursts, and the
                            // main thread stays busy instead of waiting.
                            last = Some(task);
                        } else {
                            batch.push(task);
                        }
                    }
                    pool.submit_batch(batch);
                    last.expect("burst has at least one mailbox")();
                    for ((rec, logs), &r) in gather.wait(&pool).into_iter().zip(&mail_reducers) {
                        reducers[r] = Some(rec);
                        log_q[r] = logs;
                    }
                    for (r, t_ev) in order {
                        let (dlog, slogs) = log_q[r].pop_front().expect("one log per delivery");
                        let mut t0 = ready_at[r].max(t_ev);
                        // Reduce-task crash: the delivery finds the reducer
                        // dead; a restart backs off, then re-replays the
                        // recorded history in time-only mode to rebuild the
                        // lost in-memory state before absorbing this
                        // delivery.
                        if let Some(fp) = &fplan {
                            if fp.reduce_crashes(r, delivery_seq[r], crash_count[r]) {
                                crash_count[r] += 1;
                                freport.reduce_failures += 1;
                                freport.trace.push(FaultEvent {
                                    time: t0,
                                    kind: FaultKind::ReduceFailure,
                                    target: r as u64,
                                    attempt: crash_count[r] - 1,
                                });
                                let backoff = faults.backoff(crash_count[r]);
                                res.emit(TraceEvent::Fault {
                                    t: t0.0,
                                    kind: FaultKind::ReduceFailure,
                                    target: r as u64,
                                    attempt: crash_count[r] - 1,
                                });
                                res.emit(TraceEvent::Retry {
                                    t: (t0 + backoff).0,
                                    kind: FaultKind::ReduceFailure,
                                    target: r as u64,
                                    attempt: crash_count[r],
                                });
                                let recov = replay_recovery(
                                    &history[r],
                                    t0 + backoff,
                                    spec,
                                    reducer_node(r),
                                    &mut res,
                                );
                                freport.wasted_bytes += recov.wasted_bytes;
                                freport.wasted_cpu += recov.wasted_cpu;
                                freport.recovery_time += recov.ready_at.saturating_since(t0);
                                t0 = recov.ready_at;
                            }
                            delivery_seq[r] += 1;
                        }
                        if track_history {
                            history[r].extend(dlog.iter().cloned());
                            for slog in &slogs {
                                history[r].extend(slog.iter().cloned());
                            }
                        }
                        ready_at[r] = replay(dlog, t0, spec, target!(r));
                        for slog in slogs {
                            snapshots_taken[r] += 1;
                            ready_at[r] = replay(slog, ready_at[r], spec, target!(r));
                        }
                    }
                }
            }
        }

        // Finish wave-one reducers: record in parallel, replay in reducer
        // order (identical to the sequential engine's iteration order).
        let mut dinc_total: Option<crate::metrics::DincStats> = None;
        let mut merge_dinc = |stats: Option<crate::metrics::DincStats>| {
            if let Some(st) = stats {
                let acc = dinc_total.get_or_insert_with(Default::default);
                acc.slots_per_reducer = st.slots_per_reducer;
                acc.offered += st.offered;
                acc.rejected += st.rejected;
                acc.evict_output += st.evict_output;
                acc.evict_spilled += st.evict_spilled;
            }
        };
        let mut admission_total: Option<crate::metrics::AdmissionStats> = None;
        let mut merge_admission = |stats: Option<crate::metrics::AdmissionStats>| {
            if let Some(st) = stats {
                admission_total
                    .get_or_insert_with(Default::default)
                    .merge(&st);
            }
        };
        let mut end = map_finish;
        let mut node_wave1_finish: Vec<Vec<SimTime>> = vec![Vec::new(); n_nodes];
        let wave1: Vec<usize> = (0..n_reducers).filter(|&r| started[r]).collect();
        let gather = Gather::new(wave1.len());
        let mut finish_batch: Vec<crate::exec::Task<'_>> = Vec::new();
        let mut finish_last: Option<crate::exec::Task<'_>> = None;
        for (slot, &r) in wave1.iter().enumerate() {
            let mut rec = reducers[r].take().expect("reducer in place");
            let est = ready_at[r].max(map_finish);
            let g = gather.clone();
            let record: crate::exec::Task<'_> = Box::new(move || {
                let mut env = ReduceEnv::new(spec);
                rec.finish(est, &mut env);
                g.put(slot, (rec, env.into_log()));
            });
            if slot + 1 == wave1.len() {
                finish_last = Some(record);
            } else {
                finish_batch.push(record);
            }
        }
        pool.submit_batch(finish_batch);
        if let Some(record) = finish_last {
            record();
        }
        for ((rec, log), &r) in gather.wait(&pool).into_iter().zip(&wave1) {
            let t0 = ready_at[r].max(map_finish);
            let done = replay(log, t0, spec, target!(r));
            merge_dinc(rec.dinc_stats());
            let adm = rec.admission_stats();
            merge_admission(adm);
            node_wave1_finish[reducer_node(r)].push(done);
            end = end.max(done);
            reducers[r] = Some(rec);
            res.emit(TraceEvent::ReduceFinish {
                t: done.0,
                reducer: r as u32,
                node: reducer_node(r) as u32,
            });
            if admission.is_on() {
                if let Some(st) = adm {
                    res.emit(TraceEvent::Admission {
                        t: done.0,
                        reducer: r as u32,
                        offered: st.offered,
                        absorbed: st.absorbed,
                        evictions: st.admitted_evictions,
                        rejected: st.rejected,
                    });
                }
            }
        }

        // Second-wave reducers: start when a first-wave reducer on their
        // node finishes, re-reading their map output from the mappers'
        // disks. This stays sequential by design — each arrival time
        // depends on shared disk queues, which is a scheduling decision.
        for node_times in node_wave1_finish.iter_mut() {
            node_times.sort_unstable();
        }
        let mut wave_cursor = vec![0usize; n_nodes];
        for r in 0..n_reducers {
            if started[r] {
                continue;
            }
            let node = reducer_node(r);
            let slot_times = &node_wave1_finish[node];
            let start = if slot_times.is_empty() {
                map_finish
            } else {
                let i = wave_cursor[node].min(slot_times.len() - 1);
                wave_cursor[node] += 1;
                slot_times[i]
            };
            res.emit(TraceEvent::ReduceStart {
                t: start.0,
                reducer: r as u32,
                node: node as u32,
            });
            let mut t = start;
            let deliveries = std::mem::take(&mut deferred[r]);
            let dbg_wave2 = std::env::var_os("OPA_TRACE_WAVE2").is_some();
            let n_deliveries = deliveries.len();
            let bytes_total: u64 = deliveries.iter().map(|(_, p)| p.bytes()).sum();
            // The mappers finished long ago: their output must come off
            // disk. Fetches from distinct source nodes proceed in parallel
            // (the shuffle's parallel fetch threads); each source disk
            // serves its own reads sequentially.
            let mut arrivals: Vec<(SimTime, Payload)> = deliveries
                .into_iter()
                .map(|(from_node, payload)| {
                    let op = IoOp::read(payload.bytes());
                    let read_done =
                        res.spill_io(from_node, start, IoCategory::MapOutput, op, &spec.cost);
                    (read_done + spec.cost.net_time(payload.bytes()), payload)
                })
                .collect();
            arrivals.sort_by_key(|&(at, _)| at);
            let mut rec = reducers[r].take().expect("reducer in place");
            for (arrival, payload) in arrivals {
                let mut t0 = t.max(arrival);
                // Second-wave reducers crash and recover the same way as
                // wave one: backoff, then time-only history re-replay.
                if let Some(fp) = &fplan {
                    if fp.reduce_crashes(r, delivery_seq[r], crash_count[r]) {
                        crash_count[r] += 1;
                        freport.reduce_failures += 1;
                        freport.trace.push(FaultEvent {
                            time: t0,
                            kind: FaultKind::ReduceFailure,
                            target: r as u64,
                            attempt: crash_count[r] - 1,
                        });
                        let backoff = faults.backoff(crash_count[r]);
                        res.emit(TraceEvent::Fault {
                            t: t0.0,
                            kind: FaultKind::ReduceFailure,
                            target: r as u64,
                            attempt: crash_count[r] - 1,
                        });
                        res.emit(TraceEvent::Retry {
                            t: (t0 + backoff).0,
                            kind: FaultKind::ReduceFailure,
                            target: r as u64,
                            attempt: crash_count[r],
                        });
                        let recov =
                            replay_recovery(&history[r], t0 + backoff, spec, node, &mut res);
                        freport.wasted_bytes += recov.wasted_bytes;
                        freport.wasted_cpu += recov.wasted_cpu;
                        freport.recovery_time += recov.ready_at.saturating_since(t0);
                        t0 = recov.ready_at;
                    }
                    delivery_seq[r] += 1;
                }
                let mut env = ReduceEnv::new(spec);
                rec.on_delivery(t0, payload, &mut env);
                let dlog = env.into_log();
                if track_history {
                    history[r].extend(dlog.iter().cloned());
                }
                t = replay(dlog, t0, spec, target!(r));
            }
            let after_deliveries = t;
            let mut env = ReduceEnv::new(spec);
            rec.finish(t, &mut env);
            let done = replay(env.into_log(), t, spec, target!(r));
            res.emit(TraceEvent::ReduceFinish {
                t: done.0,
                reducer: r as u32,
                node: node as u32,
            });
            merge_dinc(rec.dinc_stats());
            let adm = rec.admission_stats();
            merge_admission(adm);
            if admission.is_on() {
                if let Some(st) = adm {
                    res.emit(TraceEvent::Admission {
                        t: done.0,
                        reducer: r as u32,
                        offered: st.offered,
                        absorbed: st.absorbed,
                        evictions: st.admitted_evictions,
                        rejected: st.rejected,
                    });
                }
            }
            reducers[r] = Some(rec);
            if dbg_wave2 {
                eprintln!(
                    "wave2 r={r}: start={start} deliveries={n_deliveries} bytes={bytes_total} after_deliv={after_deliveries} done={done}"
                );
            }
            end = end.max(done);
        }

        // Assemble the outcome.
        let fault_report = if fault_on || poison_on {
            if let Some(inj) = res.take_disk_faults() {
                freport.spill_io_errors = inj.errors();
                freport.wasted_bytes += inj.wasted_bytes();
                freport.trace.extend(inj.into_trace());
            }
            freport.sort_trace();
            Some(freport)
        } else {
            None
        };
        let output_bytes: u64 = output.iter().map(Pair::size).sum();
        let total_reduce_cpu: SimDuration = reduce_cpu.iter().copied().sum();
        let total_map_cpu: SimDuration = map_cpu.iter().copied().sum();
        let metrics = JobMetrics {
            framework: framework.label().to_string(),
            job: job.name().to_string(),
            running_time: end,
            map_finish,
            input_bytes: input.total_bytes(),
            map_output_bytes,
            map_spill_bytes: spill_written_map,
            reduce_spill_bytes: spill_written_reduce.iter().sum(),
            output_bytes,
            snapshot_bytes: snapshot_bytes.iter().sum(),
            output_records: output.len() as u64,
            map_cpu_per_node: SimDuration(total_map_cpu.0 / n_nodes as u64),
            reduce_cpu_per_node: SimDuration(total_reduce_cpu.0 / n_nodes as u64),
            io: res.io.clone(),
            io_recovery: res.io_recovery.clone(),
            dinc: dinc_total,
            admission: admission_total,
            faults: fault_report,
            shuffle_bytes: shuffle_booked,
            node_combine: node_merge.is_some().then_some(nc_stats),
        };
        let trace_log = res.take_trace();
        Ok(JobOutcome {
            metrics,
            progress: progress.finish(end, PROGRESS_POINTS),
            timeline: std::mem::take(&mut res.timeline),
            usage: res.usage,
            output,
            trace: trace_log,
            dlq,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::ReduceCtx;
    use opa_common::{Key, Value};

    struct Echo;
    impl Job for Echo {
        fn name(&self) -> &str {
            "echo"
        }
        fn map(&self, record: &[u8], emit: &mut dyn FnMut(&[u8], &[u8])) {
            emit(&record[..1], record);
        }
        fn reduce(&self, key: &Key, values: Vec<Value>, ctx: &mut ReduceCtx) {
            ctx.emit(key.clone(), Value::from_u64(values.len() as u64));
        }
    }

    fn input(n: usize) -> JobInput {
        JobInput::from_records((0..n).map(|i| vec![(i % 17) as u8, b'a', b'b']).collect())
    }

    #[test]
    fn job_input_constructors() {
        let text = JobInput::from_text("one\n\ntwo\nthree\n");
        assert_eq!(text.len(), 3);
        assert_eq!(text.total_bytes(), 11);
        let recs = input(4);
        assert_eq!(recs.len(), 4);
        assert!(!recs.is_empty());
    }

    #[test]
    fn second_wave_reducers_slow_the_job() {
        // §3.2(3): with R above the reduce-slot count, the second wave
        // must re-read map output from disk — R=8 ran slower than R=4 in
        // the paper (4723 s vs 4187 s).
        let data = input(3000);
        let mut spec = crate::cluster::ClusterSpec::paper_scaled();
        spec.system.chunk_size = 1024;
        let run = |r: usize| {
            let mut s = spec;
            s.system.reducers_per_node = r;
            JobBuilder::new(Echo)
                .cluster(s)
                .run(&data)
                .expect("job runs")
                .metrics
                .running_time
        };
        let wave1 = run(4);
        let wave2 = run(8);
        assert!(
            wave2 > wave1,
            "two waves should be slower: R=4 {wave1}, R=8 {wave2}"
        );
    }

    #[test]
    fn single_chunk_job_works() {
        let data = input(3);
        let outcome = JobBuilder::new(Echo)
            .cluster(crate::cluster::ClusterSpec::tiny())
            .run(&data)
            .expect("job runs");
        assert_eq!(outcome.metrics.output_records, 3); // 3 distinct first bytes
        assert_eq!(outcome.progress.points.last().unwrap().map_pct, 100.0);
    }

    #[test]
    fn sorted_output_is_canonical() {
        let data = input(100);
        let a = JobBuilder::new(Echo)
            .cluster(crate::cluster::ClusterSpec::tiny())
            .framework(crate::cluster::Framework::MrHash)
            .run(&data)
            .expect("job runs");
        let b = JobBuilder::new(Echo)
            .cluster(crate::cluster::ClusterSpec::tiny())
            .framework(crate::cluster::Framework::SortMerge)
            .run(&data)
            .expect("job runs");
        assert_eq!(a.sorted_output(), b.sorted_output());
    }

    #[test]
    fn parallel_execution_is_bit_identical() {
        // The full determinism matrix lives in tests/determinism.rs; this
        // is the smoke check closest to the scheduler.
        let data = input(800);
        let mut spec = crate::cluster::ClusterSpec::paper_scaled();
        spec.system.chunk_size = 512;
        let run = |threads: usize| {
            JobBuilder::new(Echo)
                .cluster(spec)
                .framework(crate::cluster::Framework::SortMergePipelined)
                .exec(opa_common::ExecConfig::oversubscribed(threads))
                .run(&data)
                .expect("job runs")
        };
        let seq = run(1);
        let par = run(4);
        assert_eq!(format!("{seq:?}"), format!("{par:?}"));
    }

    #[test]
    fn invalid_snapshot_points_rejected() {
        for bad in [f64::NAN, f64::INFINITY, -0.25, 1.5] {
            let r = JobBuilder::new(Echo)
                .cluster(crate::cluster::ClusterSpec::tiny())
                .snapshot_points(&[0.5, bad])
                .run(&input(10));
            assert!(r.is_err(), "snapshot point {bad} must be rejected");
        }
        // Boundary values are fine.
        JobBuilder::new(Echo)
            .cluster(crate::cluster::ClusterSpec::tiny())
            .snapshot_points(&[0.0, 1.0])
            .run(&input(10))
            .expect("boundary snapshot points are valid");
    }

    #[test]
    fn zero_threads_rejected() {
        let r = JobBuilder::new(Echo)
            .cluster(crate::cluster::ClusterSpec::tiny())
            .threads(0)
            .run(&input(10));
        assert!(r.is_err(), "threads = 0 is invalid");
    }

    #[test]
    fn dinc_stats_reported_only_for_dinc() {
        use crate::api::IncrementalReducer;
        #[derive(Clone)]
        struct CountInc;
        impl Job for CountInc {
            fn name(&self) -> &str {
                "count"
            }
            fn map(&self, record: &[u8], emit: &mut dyn FnMut(&[u8], &[u8])) {
                emit(&record[..1], &1u64.to_be_bytes());
            }
            fn reduce(&self, key: &Key, values: Vec<Value>, ctx: &mut ReduceCtx) {
                ctx.emit(key.clone(), Value::from_u64(values.len() as u64));
            }
            fn incremental(&self) -> Option<&dyn IncrementalReducer> {
                Some(self)
            }
        }
        impl IncrementalReducer for CountInc {
            fn init(&self, _k: &Key, v: Value) -> Value {
                v
            }
            fn cb(&self, _k: &Key, acc: &mut Value, other: Value, _ctx: &mut ReduceCtx) {
                *acc = Value::from_u64(acc.as_u64().unwrap_or(0) + other.as_u64().unwrap_or(0));
            }
            fn finalize(&self, k: &Key, state: Value, ctx: &mut ReduceCtx) {
                ctx.emit(k.clone(), state);
            }
        }
        let data = input(500);
        let dinc = JobBuilder::new(CountInc)
            .framework(crate::cluster::Framework::DincHash)
            .cluster(crate::cluster::ClusterSpec::tiny())
            .run(&data)
            .expect("job runs");
        let stats = dinc.metrics.dinc.expect("DINC reports monitor stats");
        assert!(stats.slots_per_reducer > 0);
        // Map-side combining collapses each chunk to its distinct keys
        // (17 here), so the monitor sees one tuple per (chunk, key).
        assert!(stats.offered >= 17 && stats.offered <= 500, "{stats:?}");
        let inc = JobBuilder::new(CountInc)
            .framework(crate::cluster::Framework::IncHash)
            .cluster(crate::cluster::ClusterSpec::tiny())
            .run(&data)
            .expect("job runs");
        assert!(inc.metrics.dinc.is_none());
    }

    #[test]
    fn snapshots_cost_time_and_produce_output() {
        let data = input(2000);
        let mut spec = crate::cluster::ClusterSpec::paper_scaled();
        spec.system.chunk_size = 1024;
        let plain = JobBuilder::new(Echo)
            .framework(crate::cluster::Framework::SortMergePipelined)
            .cluster(spec)
            .run(&data)
            .expect("job runs");
        let snap = JobBuilder::new(Echo)
            .framework(crate::cluster::Framework::SortMergePipelined)
            .cluster(spec)
            .snapshot_points(&[0.25, 0.5, 0.75])
            .run(&data)
            .expect("job runs");
        assert_eq!(plain.metrics.snapshot_bytes, 0);
        assert!(snap.metrics.snapshot_bytes > 0, "snapshots must emit");
        assert!(
            snap.metrics.running_time > plain.metrics.running_time,
            "repeating the merge must cost time: {} vs {}",
            snap.metrics.running_time,
            plain.metrics.running_time
        );
        // The final answer is unaffected by snapshotting.
        assert_eq!(plain.sorted_output(), snap.sorted_output());
    }

    #[test]
    fn invalid_cluster_rejected() {
        let mut spec = crate::cluster::ClusterSpec::tiny();
        spec.system.merge_factor = 1;
        let r = JobBuilder::new(Echo).cluster(spec).run(&input(4));
        assert!(r.is_err());
    }
}
