//! Cluster configuration: nodes, slots, buffers, and the framework choice.

use crate::cost::CostModel;
use opa_common::units::KB;
use opa_common::{Error, HardwareSpec, Result, SystemSettings};
use serde::{Deserialize, Serialize};

/// Which group-by framework the reduce side runs (and, for the hash
/// variants, how the map side collects output). See the crate docs for the
/// paper sections each one reproduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Framework {
    /// Hadoop's sort-merge baseline ("1-pass SM" when tuned via the model).
    SortMerge,
    /// Sort-merge with MapReduce-Online-style pipelining of sorted
    /// granules from unfinished mappers.
    SortMergePipelined,
    /// The basic hash technique of §4.1 (hybrid hash, full value lists).
    MrHash,
    /// The incremental hash technique of §4.2 (`init/cb/fn`).
    IncHash,
    /// The dynamic incremental hash technique of §4.3 (FREQUENT-monitored
    /// hot keys).
    DincHash,
}

impl Framework {
    /// All frameworks, in paper order.
    pub const ALL: [Framework; 5] = [
        Framework::SortMerge,
        Framework::SortMergePipelined,
        Framework::MrHash,
        Framework::IncHash,
        Framework::DincHash,
    ];

    /// Whether this framework flows key-*state* pairs (incremental) rather
    /// than key-value pairs.
    pub fn is_incremental(self) -> bool {
        matches!(self, Framework::IncHash | Framework::DincHash)
    }

    /// Short label used in reports ("1-pass SM", "MR-hash", …).
    pub fn label(self) -> &'static str {
        match self {
            Framework::SortMerge => "SM",
            Framework::SortMergePipelined => "SM-pipe",
            Framework::MrHash => "MR-hash",
            Framework::IncHash => "INC-hash",
            Framework::DincHash => "DINC-hash",
        }
    }
}

/// Full description of the simulated cluster a job runs on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// `N`, `B_m`, `B_r`, slot counts.
    pub hardware: HardwareSpec,
    /// `R`, `C`, `F`.
    pub system: SystemSettings,
    /// Virtual-time constants.
    pub cost: CostModel,
    /// Per-bucket write-buffer size for the hash frameworks (the `p` pages
    /// of the paper's footnote 5).
    pub bucket_write_buffer: u64,
    /// Granules each mapper pushes early under
    /// [`Framework::SortMergePipelined`] (ignored otherwise).
    pub pipeline_granules: usize,
    /// Seed for the engine's universal hash family (`h1, h2, h3, …`).
    pub hash_seed: u64,
    /// Byte budget of the per-node pre-shuffle staging table used under
    /// `CombineScope::Node`: once a node's staged (post-combine) bytes
    /// exceed this, the table flushes early instead of waiting for the
    /// node's last map task. Ignored under the other combine scopes.
    pub node_combine_buffer: u64,
}

impl ClusterSpec {
    /// The paper's 10-node cluster at 1/1024 scale with stock Hadoop
    /// settings (C=64 KB, F=10, R=4).
    pub fn paper_scaled() -> Self {
        ClusterSpec::paper_scaled_at(1024)
    }

    /// The paper's cluster at an arbitrary data-scale denominator: buffer
    /// sizes, chunk size and the cost model all scale together so every
    /// ratio the experiments depend on is preserved.
    pub fn paper_scaled_at(scale: u64) -> Self {
        let full = HardwareSpec::paper_cluster_full();
        let div = |b: u64| (b / scale).max(1);
        ClusterSpec {
            hardware: HardwareSpec {
                map_buffer: div(full.map_buffer),
                reduce_buffer: div(full.reduce_buffer),
                ..full
            },
            system: SystemSettings {
                reducers_per_node: 4,
                chunk_size: div(64 * 1024 * KB),
                merge_factor: 10,
            },
            cost: CostModel::paper_scaled_at(scale as f64),
            bucket_write_buffer: div(8 * 1024 * KB),
            pipeline_granules: 4,
            hash_seed: 0x09A5_EED5,
            node_combine_buffer: div(8 * 1024 * KB),
        }
    }

    /// A 2-node cluster with small buffers and a free cost model — fast,
    /// deterministic, and spill-happy. The workhorse of correctness tests.
    pub fn tiny() -> Self {
        ClusterSpec {
            hardware: HardwareSpec {
                nodes: 2,
                map_buffer: 8 * KB,
                reduce_buffer: 16 * KB,
                map_slots: 2,
                reduce_slots: 2,
            },
            system: SystemSettings {
                reducers_per_node: 2,
                chunk_size: 4 * KB,
                merge_factor: 3,
            },
            cost: CostModel::free(),
            bucket_write_buffer: KB,
            pipeline_granules: 2,
            hash_seed: 7,
            node_combine_buffer: 4 * KB,
        }
    }

    /// Validates the spec.
    pub fn validate(&self) -> Result<()> {
        self.hardware.validate()?;
        self.system.validate()?;
        if self.bucket_write_buffer == 0 {
            return Err(Error::config("bucket write buffer must be positive"));
        }
        if self.pipeline_granules == 0 {
            return Err(Error::config("pipeline granules must be >= 1"));
        }
        if self.node_combine_buffer == 0 {
            return Err(Error::config("node combine buffer must be positive"));
        }
        if self.bucket_write_buffer * 2 > self.hardware.reduce_buffer {
            return Err(Error::config(
                "bucket write buffer must leave room in the reduce buffer",
            ));
        }
        Ok(())
    }

    /// Total reducers in the cluster (`N · R`).
    pub fn total_reducers(&self) -> usize {
        self.hardware.nodes * self.system.reducers_per_node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        assert!(ClusterSpec::paper_scaled().validate().is_ok());
        assert!(ClusterSpec::tiny().validate().is_ok());
    }

    #[test]
    fn paper_cluster_counts() {
        let c = ClusterSpec::paper_scaled();
        assert_eq!(c.total_reducers(), 40);
        assert_eq!(c.hardware.nodes, 10);
    }

    #[test]
    fn oversized_write_buffer_rejected() {
        let mut c = ClusterSpec::tiny();
        c.bucket_write_buffer = c.hardware.reduce_buffer;
        assert!(c.validate().is_err());
    }

    #[test]
    fn framework_labels_distinct() {
        let labels: std::collections::HashSet<_> =
            Framework::ALL.iter().map(|f| f.label()).collect();
        assert_eq!(labels.len(), Framework::ALL.len());
    }

    #[test]
    fn incremental_flag() {
        assert!(Framework::IncHash.is_incremental());
        assert!(Framework::DincHash.is_incremental());
        assert!(!Framework::SortMerge.is_incremental());
        assert!(!Framework::MrHash.is_incremental());
    }
}
