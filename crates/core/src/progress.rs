//! Incremental map and reduce progress (the paper's Definition 1).
//!
//! *Map progress* = fraction of map tasks completed. *Reduce progress* =
//! ⅓ · shuffle-completed + ⅓ · combine-or-reduce-function-completed +
//! ⅓ · output-produced. Multi-pass merge contributes **nothing** — it is
//! irrelevant to the user's query, which is exactly why sort-merge's reduce
//! curve flatlines at 33% until the mappers finish.
//!
//! The tracker records raw cumulative counters on every simulation event
//! and normalizes post-hoc (totals are only known when the job ends), then
//! resamples to an even grid for plotting.

use opa_common::units::SimTime;
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Copy)]
struct Raw {
    t: SimTime,
    maps_done: u64,
    shuffled: u64,
    work: u64,
    output: u64,
}

/// Records progress events during a run.
#[derive(Debug)]
pub struct ProgressTracker {
    map_total: u64,
    maps_done: u64,
    shuffled: u64,
    work: u64,
    output: u64,
    raw: Vec<Raw>,
}

impl ProgressTracker {
    /// Creates a tracker for a job with `map_total` map tasks.
    pub fn new(map_total: u64) -> Self {
        let mut tr = ProgressTracker {
            map_total,
            maps_done: 0,
            shuffled: 0,
            work: 0,
            output: 0,
            raw: Vec::new(),
        };
        tr.snapshot(SimTime::ZERO);
        tr
    }

    fn snapshot(&mut self, t: SimTime) {
        self.raw.push(Raw {
            t,
            maps_done: self.maps_done,
            shuffled: self.shuffled,
            work: self.work,
            output: self.output,
        });
    }

    /// One map task finished at `t`.
    pub fn map_done(&mut self, t: SimTime) {
        self.maps_done += 1;
        self.snapshot(t);
    }

    /// `bytes` of map output arrived at a reducer at `t`.
    pub fn shuffled(&mut self, t: SimTime, bytes: u64) {
        self.shuffled += bytes;
        self.snapshot(t);
    }

    /// `units` of user reduce/combine work (tuples absorbed) happened at
    /// `t`.
    pub fn worked(&mut self, t: SimTime, units: u64) {
        if units > 0 {
            self.work += units;
            self.snapshot(t);
        }
    }

    /// `bytes` of job output were produced at `t`.
    pub fn emitted(&mut self, t: SimTime, bytes: u64) {
        if bytes > 0 {
            self.output += bytes;
            self.snapshot(t);
        }
    }

    /// Normalizes against the final totals and resamples to `points`
    /// evenly spaced instants over `[0, end]`.
    pub fn finish(mut self, end: SimTime, points: usize) -> ProgressCurve {
        self.snapshot(end);
        let totals = self.raw.last().copied().expect("at least one snapshot");
        let pct = |v: u64, total: u64| -> f64 {
            if total == 0 {
                100.0
            } else {
                100.0 * v as f64 / total as f64
            }
        };
        let map_total = self.map_total;

        let grid = points.max(2);
        let mut out = Vec::with_capacity(grid);
        let end_s = end.as_secs_f64();
        let mut idx = 0usize;
        let mut cur = Raw {
            t: SimTime::ZERO,
            maps_done: 0,
            shuffled: 0,
            work: 0,
            output: 0,
        };
        for g in 0..grid {
            let t = SimTime::from_secs_f64(end_s * g as f64 / (grid - 1) as f64);
            while idx < self.raw.len() && self.raw[idx].t <= t {
                cur = self.raw[idx];
                idx += 1;
            }
            let shuffle_pct = pct(cur.shuffled, totals.shuffled);
            let work_pct = pct(cur.work, totals.work);
            let output_pct = pct(cur.output, totals.output);
            out.push(ProgressPoint {
                t,
                map_pct: pct(cur.maps_done, map_total),
                reduce_pct: (shuffle_pct + work_pct + output_pct) / 3.0,
                shuffle_pct,
                work_pct,
                output_pct,
            });
        }
        ProgressCurve { points: out }
    }
}

/// One point of a progress curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProgressPoint {
    /// Instant.
    pub t: SimTime,
    /// Map progress (Definition 1), in percent.
    pub map_pct: f64,
    /// Reduce progress (Definition 1), in percent.
    pub reduce_pct: f64,
    /// Shuffle component (before the ⅓ weighting).
    pub shuffle_pct: f64,
    /// Reduce/combine-function component.
    pub work_pct: f64,
    /// Output component.
    pub output_pct: f64,
}

/// A normalized, evenly resampled pair of map/reduce progress curves.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProgressCurve {
    /// Evenly spaced samples from job start to job end.
    pub points: Vec<ProgressPoint>,
}

impl ProgressCurve {
    /// Reduce progress at the moment map progress first reaches 100%
    /// — the paper's headline "does reduce keep up with map?" number.
    pub fn reduce_pct_at_map_finish(&self) -> f64 {
        self.points
            .iter()
            .find(|p| p.map_pct >= 100.0)
            .map(|p| p.reduce_pct)
            .unwrap_or(0.0)
    }

    /// Reduce progress at the last sample *before* map progress reaches
    /// 100% — exposes the ceiling a framework hits while mappers still run
    /// (⅓ for blocking frameworks, ⅔ for incremental frameworks without
    /// early output, ~1 with early output).
    pub fn reduce_pct_before_map_finish(&self) -> f64 {
        self.points
            .iter()
            .take_while(|p| p.map_pct < 100.0)
            .last()
            .map(|p| p.reduce_pct)
            .unwrap_or(0.0)
    }

    /// First instant at which map progress reaches 100%.
    pub fn map_finish_time(&self) -> SimTime {
        self.points
            .iter()
            .find(|p| p.map_pct >= 100.0)
            .map(|p| p.t)
            .unwrap_or_else(|| self.points.last().map(|p| p.t).unwrap_or(SimTime::ZERO))
    }

    /// Job end (last sample instant).
    pub fn end_time(&self) -> SimTime {
        self.points.last().map(|p| p.t).unwrap_or(SimTime::ZERO)
    }

    /// Mean absolute gap between map and reduce progress over the map
    /// phase — small means "reduce keeps up with map".
    pub fn mean_map_reduce_gap(&self) -> f64 {
        let during_map: Vec<&ProgressPoint> =
            self.points.iter().filter(|p| p.map_pct < 100.0).collect();
        if during_map.is_empty() {
            return 0.0;
        }
        during_map
            .iter()
            .map(|p| (p.map_pct - p.reduce_pct).max(0.0))
            .sum::<f64>()
            / during_map.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn curves_are_monotone_and_end_at_100() {
        let mut tr = ProgressTracker::new(4);
        for i in 0..4 {
            tr.map_done(t(10.0 * (i + 1) as f64));
            tr.shuffled(t(10.0 * (i + 1) as f64 + 1.0), 100);
        }
        tr.worked(t(50.0), 42);
        tr.emitted(t(60.0), 1000);
        let curve = tr.finish(t(60.0), 61);
        let mut prev_map = -1.0;
        let mut prev_red = -1.0;
        for p in &curve.points {
            assert!(p.map_pct >= prev_map && p.reduce_pct >= prev_red);
            prev_map = p.map_pct;
            prev_red = p.reduce_pct;
        }
        let last = curve.points.last().unwrap();
        assert_eq!(last.map_pct, 100.0);
        assert!((last.reduce_pct - 100.0).abs() < 1e-9);
    }

    #[test]
    fn blocking_reduce_stalls_at_33_percent() {
        // Sort-merge shape: shuffle tracks map, but work and output happen
        // only after the maps finish.
        let mut tr = ProgressTracker::new(10);
        for i in 0..10 {
            let now = t(10.0 * (i + 1) as f64);
            tr.map_done(now);
            tr.shuffled(now, 50);
        }
        // All reduce work crammed at the end.
        tr.worked(t(190.0), 100);
        tr.emitted(t(200.0), 500);
        let curve = tr.finish(t(200.0), 201);
        // At map finish (t=100) reduce should sit at ~33%.
        let p = curve.points.iter().find(|p| p.t >= t(100.0)).unwrap();
        assert!(
            (p.reduce_pct - 100.0 / 3.0).abs() < 2.0,
            "expected ~33%, got {}",
            p.reduce_pct
        );
        assert!((curve.reduce_pct_at_map_finish() - 100.0 / 3.0).abs() < 2.0);
    }

    #[test]
    fn incremental_reduce_tracks_map() {
        // INC-hash shape: work and output flow during the map phase.
        let mut tr = ProgressTracker::new(10);
        for i in 0..10 {
            let now = t(10.0 * (i + 1) as f64);
            tr.map_done(now);
            tr.shuffled(now, 50);
            tr.worked(now, 10);
            tr.emitted(now, 50);
        }
        let curve = tr.finish(t(100.0), 101);
        assert!(curve.reduce_pct_at_map_finish() > 95.0);
        assert!(curve.mean_map_reduce_gap() < 10.0);
    }

    #[test]
    fn zero_total_components_count_complete() {
        // A job with no output at all (everything filtered) still reaches
        // 100% reduce progress.
        let mut tr = ProgressTracker::new(1);
        tr.map_done(t(1.0));
        tr.shuffled(t(1.0), 10);
        tr.worked(t(2.0), 1);
        let curve = tr.finish(t(2.0), 3);
        assert_eq!(curve.points.last().unwrap().reduce_pct, 100.0);
    }

    #[test]
    fn map_finish_time_detected() {
        let mut tr = ProgressTracker::new(2);
        tr.map_done(t(5.0));
        tr.map_done(t(9.0));
        tr.worked(t(20.0), 1);
        let curve = tr.finish(t(20.0), 41);
        let mf = curve.map_finish_time().as_secs_f64();
        assert!((mf - 9.0).abs() <= 0.5 + 1e-9, "map finish at {mf}");
    }
}
