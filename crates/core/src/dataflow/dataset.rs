//! The reusable in-memory dataset handle.
//!
//! A [`Dataset`] is one job's output held resident between the stages of a
//! [`Dataflow`](super::Dataflow): the pairs live bucketed by their `h1`
//! partition, and every record carries the `h1` fingerprint computed when
//! it was bucketed. Those carried fingerprints are what make partition
//! compatibility *checkable* rather than assumed — a downstream stage may
//! skip its shuffle only after [`Dataset::verify_placement`] proves every
//! record already sits on the partition the downstream partition function
//! would send it to.

use crate::cluster::ClusterSpec;
use crate::job::JobInput;
use bytes::Bytes;
use opa_common::hash::{bucket_of, HashFamily};
use opa_common::{encode_kv, Error, Pair, Result};
use opa_simio::ckpt::{decode_sections, encode_sections, Section};

/// Identity of a partition function: the engine partitions by
/// `bucket_of(h1(key), partitions)` where `h1` is the first member of the
/// universal hash family seeded by `hash_seed`. Two stages share a
/// partitioning exactly when their `PartitionSpec`s are equal — same
/// family seed, same fan-out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionSpec {
    /// Seed of the engine's universal hash family.
    pub hash_seed: u64,
    /// Number of partitions (the cluster's total reducers, `N · R`).
    pub partitions: usize,
}

impl PartitionSpec {
    /// The partition function a job run on `spec` uses.
    pub fn of(spec: &ClusterSpec) -> Self {
        PartitionSpec {
            hash_seed: spec.hash_seed,
            partitions: spec.total_reducers(),
        }
    }
}

/// One job's output pairs, resident in memory, bucketed by `h1` partition
/// and carrying each record's partition-time fingerprint.
///
/// Both `opa run` batch outcomes ([`crate::job::JobOutcome::dataset`]) and
/// the stream driver produce datasets; a [`Dataflow`](super::Dataflow)
/// consumes them. Record order is deterministic: partition-major, original
/// output order within each partition — so a dataset built from a
/// bit-identical `JobOutcome` is itself bit-identical at any thread count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dataset {
    spec: PartitionSpec,
    /// Per-partition pairs, indexed by partition.
    parts: Vec<Vec<Pair>>,
    /// Per-partition `h1` fingerprints, parallel to `parts`.
    hashes: Vec<Vec<u64>>,
}

impl Dataset {
    /// Buckets `pairs` under the given partition function, computing and
    /// carrying each key's `h1` fingerprint.
    pub fn from_pairs(pairs: Vec<Pair>, spec: PartitionSpec) -> Dataset {
        assert!(spec.partitions > 0, "partition count must be positive");
        let h1 = HashFamily::new(spec.hash_seed).fn_at(0);
        let mut parts: Vec<Vec<Pair>> = vec![Vec::new(); spec.partitions];
        let mut hashes: Vec<Vec<u64>> = vec![Vec::new(); spec.partitions];
        for pair in pairs {
            let h = h1.hash(pair.key.bytes());
            let p = bucket_of(h, spec.partitions);
            parts[p].push(pair);
            hashes[p].push(h);
        }
        Dataset {
            spec,
            parts,
            hashes,
        }
    }

    /// The partition function this dataset is bucketed under.
    pub fn spec(&self) -> PartitionSpec {
        self.spec
    }

    /// Total records across all partitions.
    pub fn len(&self) -> usize {
        self.parts.iter().map(Vec::len).sum()
    }

    /// Whether the dataset holds no records.
    pub fn is_empty(&self) -> bool {
        self.parts.iter().all(Vec::is_empty)
    }

    /// Total bytes of the dataset in its framed dataflow-record form —
    /// what the downstream map phase reads
    /// (see [`opa_common::record`]).
    pub fn record_bytes(&self) -> u64 {
        self.pairs()
            .map(|p| 4 + p.key.len() as u64 + p.value.len() as u64)
            .sum()
    }

    /// The pairs of one partition, in output order.
    pub fn partition(&self, p: usize) -> &[Pair] {
        &self.parts[p]
    }

    /// All pairs in canonical (partition-major) order.
    pub fn pairs(&self) -> impl Iterator<Item = &Pair> {
        self.parts.iter().flatten()
    }

    /// Consumes the dataset into its pairs, partition-major.
    pub fn into_pairs(self) -> Vec<Pair> {
        self.parts.into_iter().flatten().collect()
    }

    /// The pairs sorted by key then value — canonical form for
    /// correctness comparisons, matching
    /// [`crate::job::JobOutcome::sorted_output`].
    pub fn sorted_pairs(&self) -> Vec<Pair> {
        let mut out: Vec<Pair> = self.pairs().cloned().collect();
        out.sort_by(|a, b| a.key.cmp(&b.key).then_with(|| a.value.cmp(&b.value)));
        out
    }

    /// One partition's records in framed dataflow form, ready to feed a
    /// colocated map task on the shuffle-skip path.
    pub(crate) fn partition_records(&self, p: usize) -> Vec<Bytes> {
        self.parts[p]
            .iter()
            .map(|pair| Bytes::from(encode_kv(pair.key.bytes(), pair.value.bytes())))
            .collect()
    }

    /// Re-encodes the whole dataset as a [`JobInput`] of framed dataflow
    /// records (partition-major order) — the reshuffle-fallback path, and
    /// the exact bytes a materialize-to-disk handoff would read back.
    pub fn to_input(&self) -> JobInput {
        JobInput {
            records: (0..self.parts.len())
                .flat_map(|p| self.partition_records(p))
                .collect(),
        }
    }

    /// Checks the carried fingerprints against the dataset's own partition
    /// function: every record must sit on the partition `h1` sends it to.
    /// True by construction after [`Dataset::from_pairs`]; the check
    /// matters after a checkpoint restore or a union, and is the runtime
    /// half of the shuffle-skip compatibility argument.
    pub fn verify_placement(&self) -> bool {
        self.hashes
            .iter()
            .enumerate()
            .all(|(p, hs)| hs.iter().all(|&h| bucket_of(h, self.spec.partitions) == p))
    }

    /// Co-partitioned union: concatenates two datasets that share a
    /// partition function, `a`'s records before `b`'s within each
    /// partition. This is the no-shuffle join primitive — because both
    /// sides are bucketed by the same `h1`, every key's records from both
    /// inputs meet on one partition, verified against the carried
    /// fingerprints. Errors if the specs differ.
    pub fn union(a: &Dataset, b: &Dataset) -> Result<Dataset> {
        if a.spec != b.spec {
            return Err(Error::job(format!(
                "dataset union requires one partition function: \
                 {:?} vs {:?}",
                a.spec, b.spec
            )));
        }
        let mut parts = a.parts.clone();
        let mut hashes = a.hashes.clone();
        for (p, (pairs, hs)) in b.parts.iter().zip(&b.hashes).enumerate() {
            parts[p].extend(pairs.iter().cloned());
            hashes[p].extend(hs.iter().copied());
        }
        let out = Dataset {
            spec: a.spec,
            parts,
            hashes,
        };
        debug_assert!(out.verify_placement());
        Ok(out)
    }

    /// Serializes the dataset into checkpoint sections: one `Nums` header
    /// (seed, fan-out), then a `Pairs` + `Nums` (fingerprints) couple per
    /// partition.
    pub(crate) fn to_sections(&self) -> Vec<Section> {
        let mut sections = Vec::with_capacity(1 + 2 * self.parts.len());
        sections.push(Section::Nums(vec![
            self.spec.hash_seed,
            self.spec.partitions as u64,
        ]));
        for (pairs, hashes) in self.parts.iter().zip(&self.hashes) {
            sections.push(Section::Pairs(pairs.clone()));
            sections.push(Section::Nums(hashes.clone()));
        }
        sections
    }

    /// Rebuilds a dataset from [`Dataset::to_sections`] output, verifying
    /// record placement against the restored fingerprints.
    pub(crate) fn from_sections(sections: &[Section]) -> Result<Dataset> {
        let bad = || Error::job("malformed dataset checkpoint sections");
        let Some(Section::Nums(header)) = sections.first() else {
            return Err(bad());
        };
        let [hash_seed, partitions] = header[..] else {
            return Err(bad());
        };
        let partitions = partitions as usize;
        if partitions == 0 || sections.len() != 1 + 2 * partitions {
            return Err(bad());
        }
        let mut parts = Vec::with_capacity(partitions);
        let mut hashes = Vec::with_capacity(partitions);
        for chunk in sections[1..].chunks(2) {
            let (Section::Pairs(pairs), Section::Nums(hs)) = (&chunk[0], &chunk[1]) else {
                return Err(bad());
            };
            if pairs.len() != hs.len() {
                return Err(bad());
            }
            parts.push(pairs.clone());
            hashes.push(hs.clone());
        }
        let ds = Dataset {
            spec: PartitionSpec {
                hash_seed,
                partitions,
            },
            parts,
            hashes,
        };
        if !ds.verify_placement() {
            return Err(Error::job(
                "dataset checkpoint fails fingerprint placement verification",
            ));
        }
        Ok(ds)
    }

    /// Writes the dataset to a checkpoint-format file (`OPAC` framing +
    /// CRC, see [`opa_simio::ckpt`]).
    pub fn write(&self, path: &std::path::Path) -> Result<()> {
        let buf = encode_sections(&self.to_sections());
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)
                .map_err(|e| Error::storage(format!("mkdir {}: {e}", dir.display())))?;
        }
        std::fs::write(path, buf)
            .map_err(|e| Error::storage(format!("write {}: {e}", path.display())))
    }

    /// Reads back a dataset written by [`Dataset::write`], verifying the
    /// file checksum and record placement.
    pub fn read(path: &std::path::Path) -> Result<Dataset> {
        let buf = std::fs::read(path)
            .map_err(|e| Error::storage(format!("read {}: {e}", path.display())))?;
        Dataset::from_sections(&decode_sections(&buf)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opa_common::{Key, Value};

    fn sample_spec() -> PartitionSpec {
        PartitionSpec {
            hash_seed: 7,
            partitions: 4,
        }
    }

    fn sample() -> Dataset {
        let pairs: Vec<Pair> = (0..64)
            .map(|i| {
                Pair::new(
                    Key::from_slice(format!("key{i}").as_bytes()),
                    Value::from_u64(i),
                )
            })
            .collect();
        Dataset::from_pairs(pairs, sample_spec())
    }

    #[test]
    fn bucketing_matches_engine_partitioning() {
        let ds = sample();
        assert_eq!(ds.len(), 64);
        assert!(ds.verify_placement());
        let h1 = HashFamily::new(7).fn_at(0);
        for p in 0..4 {
            for pair in ds.partition(p) {
                assert_eq!(bucket_of(h1.hash(pair.key.bytes()), 4), p);
            }
        }
    }

    #[test]
    fn framed_roundtrip_through_input() {
        let ds = sample();
        let input = ds.to_input();
        assert_eq!(input.len(), 64);
        assert_eq!(input.total_bytes(), ds.record_bytes());
        for rec in &input.records {
            let (k, _v) = opa_common::decode_kv(rec).expect("framed record");
            assert!(k.starts_with(b"key"));
        }
    }

    #[test]
    fn checkpoint_roundtrip() {
        let ds = sample();
        let dir = std::env::temp_dir().join(format!("opa-ds-{}", std::process::id()));
        let path = dir.join("ds.opadf");
        ds.write(&path).expect("write");
        let back = Dataset::read(&path).expect("read");
        assert_eq!(ds, back);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn union_requires_matching_spec() {
        let a = sample();
        let b = Dataset::from_pairs(
            vec![Pair::new(Key::from("x"), Value::from_u64(1))],
            PartitionSpec {
                hash_seed: 9,
                partitions: 4,
            },
        );
        assert!(Dataset::union(&a, &b).is_err());
        let c = Dataset::from_pairs(
            vec![Pair::new(Key::from("x"), Value::from_u64(1))],
            sample_spec(),
        );
        let u = Dataset::union(&a, &c).expect("co-partitioned union");
        assert_eq!(u.len(), 65);
        assert!(u.verify_placement());
    }
}
