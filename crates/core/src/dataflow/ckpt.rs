//! Chain-wide checkpoint / restore.
//!
//! With a checkpoint directory configured, a [`Dataflow`](super::Dataflow)
//! writes each stage's output dataset to `stage-<i>.opadf` as it
//! completes, and on a resumed run restores the *latest* stage file that
//! (a) decodes cleanly — the `OPAC` framing carries a CRC — and (b) was
//! written by the *same chain*, identified by a fingerprint over every
//! stage's job name, framework label and the chain's partition function.
//! Execution then resumes mid-pipeline at stage `i + 1`; a checkpoint
//! from a different or edited chain is ignored rather than trusted.

use super::dataset::Dataset;
use opa_common::{Error, Result};
use opa_simio::ckpt::{decode_sections, encode_sections, Section};
use std::path::{Path, PathBuf};

/// FNV-1a over the chain's identity strings: stage job names, framework
/// labels, and the partition-function parameters. Order-sensitive — the
/// same jobs chained differently fingerprint differently.
pub(crate) fn chain_fingerprint<'a>(parts: impl Iterator<Item = &'a str>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Separator so ["ab","c"] and ["a","bc"] differ.
        h ^= 0xff;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for part in parts {
        mix(part.as_bytes());
    }
    h
}

/// Path of stage `i`'s checkpoint file.
pub(crate) fn stage_path(dir: &Path, stage: usize) -> PathBuf {
    dir.join(format!("stage-{stage}.opadf"))
}

/// Writes stage `stage`'s output dataset, prefixed by the chain
/// fingerprint header.
pub(crate) fn write_stage(
    dir: &Path,
    chain_fp: u64,
    stage: usize,
    dataset: &Dataset,
) -> Result<()> {
    let mut sections = vec![Section::Nums(vec![chain_fp, stage as u64])];
    sections.extend(dataset.to_sections());
    let buf = encode_sections(&sections);
    std::fs::create_dir_all(dir)
        .map_err(|e| Error::storage(format!("mkdir {}: {e}", dir.display())))?;
    let path = stage_path(dir, stage);
    std::fs::write(&path, buf).map_err(|e| Error::storage(format!("write {}: {e}", path.display())))
}

/// Decodes one stage checkpoint, verifying the chain fingerprint and the
/// stage index stamped inside the file.
pub(crate) fn read_stage(path: &Path, chain_fp: u64, stage: usize) -> Result<Dataset> {
    let buf =
        std::fs::read(path).map_err(|e| Error::storage(format!("read {}: {e}", path.display())))?;
    let sections = decode_sections(&buf)?;
    let Some(Section::Nums(header)) = sections.first() else {
        return Err(Error::job("malformed dataflow checkpoint header"));
    };
    let [fp, idx] = header[..] else {
        return Err(Error::job("malformed dataflow checkpoint header"));
    };
    if fp != chain_fp {
        return Err(Error::job(format!(
            "dataflow checkpoint {} belongs to a different chain \
             (fingerprint {fp:#x}, expected {chain_fp:#x})",
            path.display()
        )));
    }
    if idx as usize != stage {
        return Err(Error::job(format!(
            "dataflow checkpoint {} is stamped for stage {idx}, not {stage}",
            path.display()
        )));
    }
    Dataset::from_sections(&sections[1..])
}

/// Scans `dir` for the highest-numbered stage checkpoint (`stage <
/// n_stages`) that decodes cleanly and matches this chain's fingerprint.
/// Returns `(stage index, restored dataset)`; corrupt, foreign or missing
/// files are skipped, not fatal — resume falls back to an earlier stage
/// or a cold start.
pub(crate) fn load_latest(dir: &Path, chain_fp: u64, n_stages: usize) -> Option<(usize, Dataset)> {
    for stage in (0..n_stages).rev() {
        let path = stage_path(dir, stage);
        if !path.is_file() {
            continue;
        }
        if let Ok(ds) = read_stage(&path, chain_fp, stage) {
            return Some((stage, ds));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::dataset::PartitionSpec;
    use opa_common::{Key, Pair, Value};

    fn ds(n: u64) -> Dataset {
        let pairs = (0..n)
            .map(|i| Pair::new(Key::from_u64(i), Value::from_u64(i * 2)))
            .collect();
        Dataset::from_pairs(
            pairs,
            PartitionSpec {
                hash_seed: 7,
                partitions: 4,
            },
        )
    }

    #[test]
    fn fingerprint_is_order_sensitive() {
        let a = chain_fingerprint(["pagerank", "SM"].into_iter());
        let b = chain_fingerprint(["SM", "pagerank"].into_iter());
        assert_ne!(a, b);
        assert_ne!(
            chain_fingerprint(["ab", "c"].into_iter()),
            chain_fingerprint(["a", "bc"].into_iter())
        );
    }

    #[test]
    fn latest_valid_stage_wins_and_foreign_files_are_skipped() {
        let dir = std::env::temp_dir().join(format!("opa-dfckpt-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let fp = chain_fingerprint(["job-a", "job-b", "job-c"].into_iter());
        write_stage(&dir, fp, 0, &ds(8)).unwrap();
        write_stage(&dir, fp, 1, &ds(16)).unwrap();
        // Stage 2 written by a *different* chain: must be ignored.
        write_stage(&dir, fp ^ 1, 2, &ds(32)).unwrap();
        let (stage, restored) = load_latest(&dir, fp, 3).expect("restorable");
        assert_eq!(stage, 1);
        assert_eq!(restored, ds(16));
        // Corrupt the stage-1 file: resume falls back to stage 0.
        std::fs::write(stage_path(&dir, 1), b"garbage").unwrap();
        let (stage, restored) = load_latest(&dir, fp, 3).expect("restorable");
        assert_eq!(stage, 0);
        assert_eq!(restored, ds(8));
        std::fs::remove_dir_all(&dir).ok();
    }
}
