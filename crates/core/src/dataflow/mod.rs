//! Multi-job in-memory dataflow: partition-stable chaining.
//!
//! The paper's engine runs one MapReduce job at a time; real analytics
//! pipelines (PageRank rounds, multi-step sessionization, join-then-rank
//! reports) chain several. Chaining through the distributed filesystem —
//! job N writes its reduce output, job N+1 re-reads, re-maps and
//! *re-shuffles* it — pays the full `U_1..U_5` I/O bill between every
//! pair of jobs. This module keeps the handoff in memory instead, in the
//! spirit of M3R (Shinnar et al., VLDB 2012): job N's reduce output stays
//! resident as a partition-bucketed [`Dataset`], and when the downstream
//! job's partitioning is *compatible*, the shuffle is skipped outright —
//! each partition is mapped and reduced in place by a colocated task
//! pair, contributing zero shuffle bytes.
//!
//! Compatibility is checked, never assumed, in three parts:
//!
//! 1. **Partition-function identity** — the dataset's [`PartitionSpec`]
//!    (hash-family seed + fan-out) must equal the downstream stage's.
//! 2. **Job declaration** — the job must declare
//!    [`Job::partition_preserving`]: its map emits every output pair
//!    under a key hashing to the same `h1` partition as the input key.
//! 3. **Runtime verification** — the dataset's carried `h1` fingerprints
//!    are re-checked against the partition function
//!    ([`Dataset::verify_placement`]), and after every chained map task
//!    the executor hard-errors if any payload targets a foreign
//!    partition.
//!
//! When any check fails, the chain falls back to a real shuffle
//! (re-running the stage through the ordinary engine), so a wrong
//! declaration costs performance, never correctness. The path taken is
//! recorded per stage in [`StageReport::handoff`] and, when tracing is
//! on, as `stage_start` / `stage_handoff` / `reshuffle_skipped` events
//! in the chain's [`TraceLog`].
//!
//! Determinism: chained stages compute map plans in parallel but replay
//! all shared-state effects sequentially in partition order, so a
//! [`DataflowOutcome`] is bit-identical at any thread count — the same
//! contract the single-job engine offers.
//!
//! # Example
//!
//! A two-stage chain where the second stage's map keeps keys unchanged
//! (and says so), letting the handoff skip the shuffle:
//!
//! ```
//! use opa_common::{Key, Value};
//! use opa_core::api::{Job, ReduceCtx};
//! use opa_core::cluster::{ClusterSpec, Framework};
//! use opa_core::dataflow::{Dataflow, Handoff};
//! use opa_core::job::JobInput;
//!
//! /// Counts each record's first byte.
//! struct Count;
//! impl Job for Count {
//!     fn name(&self) -> &str { "count" }
//!     fn map(&self, record: &[u8], emit: &mut dyn FnMut(&[u8], &[u8])) {
//!         emit(&record[..1], &1u64.to_be_bytes());
//!     }
//!     fn reduce(&self, key: &Key, values: Vec<Value>, ctx: &mut ReduceCtx) {
//!         let n: u64 = values.iter().filter_map(Value::as_u64).sum();
//!         ctx.emit(key.clone(), Value::from_u64(n));
//!     }
//! }
//!
//! /// Doubles each count, key unchanged — partition-preserving.
//! struct Double;
//! impl Job for Double {
//!     fn name(&self) -> &str { "double" }
//!     fn map(&self, record: &[u8], emit: &mut dyn FnMut(&[u8], &[u8])) {
//!         let (k, v) = opa_common::decode_kv(record).expect("framed");
//!         let n = u64::from_be_bytes(v.try_into().expect("u64 value"));
//!         emit(k, &(2 * n).to_be_bytes());
//!     }
//!     fn reduce(&self, key: &Key, values: Vec<Value>, ctx: &mut ReduceCtx) {
//!         for v in values { ctx.emit(key.clone(), v); }
//!     }
//!     fn partition_preserving(&self) -> bool { true }
//! }
//!
//! let input = JobInput::from_records(
//!     (0..200u8).map(|i| vec![i % 7, b'x']).collect(),
//! );
//! let outcome = Dataflow::new(ClusterSpec::tiny())
//!     .then(Count, Framework::MrHash)
//!     .then(Double, Framework::MrHash)
//!     .run(&input)
//!     .expect("chain runs");
//!
//! // The second stage skipped its shuffle entirely.
//! assert_eq!(outcome.stages[1].handoff, Handoff::InMemory);
//! assert_eq!(outcome.stages[1].metrics.map_output_bytes, 0);
//! assert!(outcome.stages[1].bytes_saved > 0);
//! assert_eq!(outcome.output.len(), 7);
//! ```

mod ckpt;
mod dataset;
mod stage;

pub use dataset::{Dataset, PartitionSpec};

use crate::api::Job;
use crate::cluster::{ClusterSpec, Framework};
use crate::job::{JobBuilder, JobInput, JobOutcome};
use crate::metrics::JobMetrics;
use opa_common::fault::FaultConfig;
use opa_common::{Error, ExecConfig, Key, Pair, Result, Value};
use opa_trace::{TraceEvent, TraceLog, Tracer};
use std::path::PathBuf;

/// How a [`Dataflow`] hands each stage's output to the next stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HandoffPolicy {
    /// Skip the shuffle whenever the compatibility checks pass; fall
    /// back to a real reshuffle otherwise. The default.
    #[default]
    Auto,
    /// Always reshuffle through the engine, even when the skip would be
    /// safe. The baseline the skip is measured against.
    Reshuffle,
    /// Materialize the handoff through a real file (write, read back,
    /// reshuffle) — the classic job-chaining-through-HDFS behaviour.
    Materialize,
}

/// The handoff a stage's *input* actually crossed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Handoff {
    /// First stage: raw job input records.
    Source,
    /// Partition-stable in-memory handoff — the shuffle was skipped.
    InMemory,
    /// The upstream dataset was re-shuffled through the engine.
    Reshuffled,
    /// The upstream dataset crossed a real file before reshuffling.
    Materialized,
}

impl Handoff {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Handoff::Source => "source",
            Handoff::InMemory => "in-memory",
            Handoff::Reshuffled => "reshuffled",
            Handoff::Materialized => "materialized",
        }
    }
}

/// One stage's summary within a [`DataflowOutcome`].
#[derive(Debug)]
pub struct StageReport {
    /// The stage's job name.
    pub name: String,
    /// Framework label the stage ran under.
    pub framework: String,
    /// How the stage's input arrived.
    pub handoff: Handoff,
    /// Records entering the stage.
    pub records_in: u64,
    /// Bytes entering the stage (framed dataflow records, or raw input
    /// bytes for the source stage).
    pub bytes_in: u64,
    /// Records the stage produced.
    pub records_out: u64,
    /// Bytes the stage produced (framed dataflow-record form).
    pub bytes_out: u64,
    /// Shuffle bytes the in-memory handoff avoided (0 unless
    /// [`Handoff::InMemory`]).
    pub bytes_saved: u64,
    /// The stage's full engine metrics.
    pub metrics: JobMetrics,
}

/// Everything a finished chain yields.
#[derive(Debug)]
pub struct DataflowOutcome {
    /// Per-stage reports, in execution order. Stages restored from a
    /// checkpoint (not re-executed) have no report.
    pub stages: Vec<StageReport>,
    /// The final stage's output, resident and partition-bucketed — ready
    /// to feed another chain.
    pub output: Dataset,
    /// Chain-level trace (`stage_start` / `stage_handoff` /
    /// `reshuffle_skipped`, ordinal-time), when tracing was enabled.
    /// Per-stage engine detail lives in each [`StageReport::metrics`].
    pub trace: Option<TraceLog>,
    /// `Some(k)` when the run restored stage `k`'s checkpointed output
    /// and resumed at stage `k + 1`.
    pub resumed_from: Option<usize>,
}

impl DataflowOutcome {
    /// The final output sorted by key then value — canonical form for
    /// correctness comparisons, matching [`JobOutcome::sorted_output`].
    pub fn sorted_output(&self) -> Vec<Pair> {
        self.output.sorted_pairs()
    }
}

/// One stage of a chain: a job plus the framework (and optionally a
/// cluster override) to run it under.
struct Stage {
    job: Box<dyn Job>,
    framework: Framework,
    cluster: Option<ClusterSpec>,
    km_hint: f64,
}

/// Borrowed view of a boxed stage job, so the ordinary [`JobBuilder`]
/// engine path can run it without taking ownership.
struct DynJob<'a>(&'a dyn Job);

impl Job for DynJob<'_> {
    fn name(&self) -> &str {
        self.0.name()
    }
    fn map(&self, record: &[u8], emit: &mut dyn FnMut(&[u8], &[u8])) {
        self.0.map(record, emit);
    }
    fn reduce(&self, key: &Key, values: Vec<Value>, ctx: &mut crate::api::ReduceCtx) {
        self.0.reduce(key, values, ctx);
    }
    fn combiner(&self) -> Option<&dyn crate::api::Combiner> {
        self.0.combiner()
    }
    fn incremental(&self) -> Option<&dyn crate::api::IncrementalReducer> {
        self.0.incremental()
    }
    fn expected_keys(&self) -> Option<u64> {
        self.0.expected_keys()
    }
    fn state_size_hint(&self) -> Option<u64> {
        self.0.state_size_hint()
    }
    fn partition_preserving(&self) -> bool {
        self.0.partition_preserving()
    }
}

/// A chain of jobs executed with in-memory handoffs where possible.
///
/// Build with [`Dataflow::new`], append stages with [`Dataflow::then`],
/// then [`Dataflow::run`] (from raw records) or [`Dataflow::run_from`]
/// (from a resident [`Dataset`], e.g. a previous chain's or stream
/// window's output).
pub struct Dataflow {
    cluster: ClusterSpec,
    stages: Vec<Stage>,
    exec: ExecConfig,
    policy: HandoffPolicy,
    trace: bool,
    faults: FaultConfig,
    checkpoint_dir: Option<PathBuf>,
    resume: bool,
}

impl Dataflow {
    /// Starts a chain on `cluster` (every stage's default).
    pub fn new(cluster: ClusterSpec) -> Self {
        Dataflow {
            cluster,
            stages: Vec::new(),
            exec: ExecConfig::sequential(),
            policy: HandoffPolicy::Auto,
            trace: false,
            faults: FaultConfig::disabled(),
            checkpoint_dir: None,
            resume: false,
        }
    }

    /// Appends a stage running `job` under `framework`.
    pub fn then(mut self, job: impl Job + 'static, framework: Framework) -> Self {
        self.stages.push(Stage {
            job: Box::new(job),
            framework,
            cluster: None,
            km_hint: 1.0,
        });
        self
    }

    /// Overrides the cluster of the most recently appended stage. Note a
    /// stage whose partition function differs from its input's can never
    /// skip its shuffle.
    pub fn stage_cluster(mut self, spec: ClusterSpec) -> Self {
        if let Some(stage) = self.stages.last_mut() {
            stage.cluster = Some(spec);
        }
        self
    }

    /// Sets the map output/input ratio hint `K_m` of the most recently
    /// appended stage (see [`JobBuilder::km_hint`]).
    pub fn stage_km_hint(mut self, km: f64) -> Self {
        if let Some(stage) = self.stages.last_mut() {
            stage.km_hint = km;
        }
        self
    }

    /// Selects the handoff policy (default [`HandoffPolicy::Auto`]).
    pub fn policy(mut self, policy: HandoffPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the execution-layer thread count (see [`JobBuilder::threads`]).
    pub fn threads(mut self, threads: usize) -> Self {
        self.exec = ExecConfig::with_threads(threads);
        self
    }

    /// Sets the full execution-layer configuration.
    pub fn exec(mut self, exec: ExecConfig) -> Self {
        self.exec = exec;
        self
    }

    /// Turns on chain-level tracing: the outcome then carries a
    /// [`TraceLog`] of `stage_*` events (ordinal time: `t` = stage
    /// index), and each engine-run stage records its own trace too.
    pub fn trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Enables deterministic fault injection for the *engine-run* stages
    /// (the source stage and any reshuffled/materialized handoff).
    /// Chained in-memory stages run fault-free: they model colocated
    /// tasks over resident data, which the engine's fault plan — keyed
    /// on chunk/reducer identities of a shuffled job — does not cover.
    pub fn faults(mut self, cfg: FaultConfig) -> Self {
        self.faults = cfg;
        self
    }

    /// Writes each stage's output dataset to `dir` as it completes
    /// (`stage-<i>.opadf`), enabling [`Dataflow::resume`].
    pub fn checkpoints(mut self, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// On the next run, restore the latest matching stage checkpoint
    /// from the configured directory and resume mid-pipeline after it.
    pub fn resume(mut self, on: bool) -> Self {
        self.resume = on;
        self
    }

    fn stage_spec(&self, stage: &Stage) -> ClusterSpec {
        stage.cluster.unwrap_or(self.cluster)
    }

    /// Fingerprint of the chain's identity: stage job names, frameworks
    /// and partition functions, in order. Checkpoints from a different
    /// chain (or an edited one) never restore.
    fn fingerprint(&self) -> u64 {
        let parts: Vec<String> = self
            .stages
            .iter()
            .flat_map(|s| {
                let spec = self.stage_spec(s);
                [
                    s.job.name().to_string(),
                    s.framework.label().to_string(),
                    format!("{}/{}", spec.hash_seed, spec.total_reducers()),
                ]
            })
            .collect();
        ckpt::chain_fingerprint(parts.iter().map(String::as_str))
    }

    /// Runs the chain from raw input records (the first stage reads them
    /// through the ordinary engine).
    pub fn run(&self, input: &JobInput) -> Result<DataflowOutcome> {
        self.execute(Some(input), None)
    }

    /// Runs the chain from a resident dataset — a previous chain's
    /// output, or a [`JobOutcome::dataset`] / stream-window result. The
    /// first stage is handoff-eligible like any later stage.
    pub fn run_from(&self, dataset: &Dataset) -> Result<DataflowOutcome> {
        self.execute(None, Some(dataset))
    }

    fn execute(
        &self,
        input: Option<&JobInput>,
        first_dataset: Option<&Dataset>,
    ) -> Result<DataflowOutcome> {
        if self.stages.is_empty() {
            return Err(Error::job("dataflow has no stages"));
        }
        let chain_fp = self.fingerprint();
        let mut tracer = self.trace.then(Tracer::new);
        let mut reports: Vec<StageReport> = Vec::with_capacity(self.stages.len());

        // Resume: restore the newest checkpoint this exact chain wrote.
        let mut resumed_from = None;
        let mut start = 0usize;
        let mut current: Option<Dataset> = first_dataset.cloned();
        if self.resume {
            if let Some(dir) = &self.checkpoint_dir {
                if let Some((k, ds)) = ckpt::load_latest(dir, chain_fp, self.stages.len()) {
                    resumed_from = Some(k);
                    start = k + 1;
                    current = Some(ds);
                }
            }
        }

        // `(stage index, records, bytes)` of the last executed stage,
        // whose stage_handoff event is emitted once the next stage's
        // handoff kind is known.
        let mut pending_handoff: Option<(usize, u64, u64)> = None;

        for (i, stage) in self.stages.iter().enumerate().skip(start) {
            let spec = self.stage_spec(stage);
            let target = PartitionSpec::of(&spec);

            // Decide how this stage's input arrives.
            let (handoff, records_in, bytes_in) = match (&current, input) {
                (Some(ds), _) => {
                    let kind = match self.policy {
                        HandoffPolicy::Reshuffle => Handoff::Reshuffled,
                        HandoffPolicy::Materialize => Handoff::Materialized,
                        HandoffPolicy::Auto => {
                            if stage.job.partition_preserving()
                                && ds.spec() == target
                                && ds.verify_placement()
                            {
                                Handoff::InMemory
                            } else {
                                Handoff::Reshuffled
                            }
                        }
                    };
                    (kind, ds.len() as u64, ds.record_bytes())
                }
                (None, Some(input)) => (Handoff::Source, input.len() as u64, input.total_bytes()),
                (None, None) => unreachable!("run/run_from always provide a first input"),
            };

            if let Some(tr) = tracer.as_mut() {
                if let Some((prev, records, bytes)) = pending_handoff.take() {
                    tr.push(TraceEvent::StageHandoff {
                        t: prev as u64,
                        stage: prev as u32,
                        records,
                        bytes,
                        reshuffled: matches!(handoff, Handoff::Reshuffled | Handoff::Materialized),
                    });
                }
                tr.push(TraceEvent::StageStart {
                    t: i as u64,
                    stage: i as u32,
                    records: records_in,
                    bytes: bytes_in,
                });
            }

            // Run the stage along its handoff path.
            let (outcome, bytes_saved) = match handoff {
                Handoff::InMemory => {
                    let ds = current.as_ref().expect("in-memory handoff has a dataset");
                    stage::run_chained_stage(
                        stage.job.as_ref(),
                        stage.framework,
                        &spec,
                        self.exec,
                        stage.km_hint,
                        ds,
                        self.trace,
                    )?
                }
                Handoff::Source => {
                    let input = input.expect("source stage has records");
                    (self.engine_run(stage, spec, input)?, 0)
                }
                Handoff::Reshuffled => {
                    let ds = current.as_ref().expect("reshuffle handoff has a dataset");
                    (self.engine_run(stage, spec, &ds.to_input())?, 0)
                }
                Handoff::Materialized => {
                    let ds = current.as_ref().expect("materialize handoff has a dataset");
                    let dir = self.checkpoint_dir.clone().unwrap_or_else(|| {
                        std::env::temp_dir().join(format!("opa-dataflow-{}", std::process::id()))
                    });
                    let path = dir.join(format!("handoff-{i}.opadf"));
                    ds.write(&path)?;
                    let back = Dataset::read(&path)?;
                    std::fs::remove_file(&path).ok();
                    (self.engine_run(stage, spec, &back.to_input())?, 0)
                }
            };

            if let (Some(tr), Handoff::InMemory) = (tracer.as_mut(), handoff) {
                tr.push(TraceEvent::ReshuffleSkipped {
                    t: i as u64,
                    stage: i as u32,
                    bytes_saved,
                });
            }

            // The stage's output becomes the next stage's resident input,
            // bucketed under *this* stage's partition function.
            let out = outcome.dataset(&spec);
            if let Some(dir) = &self.checkpoint_dir {
                ckpt::write_stage(dir, chain_fp, i, &out)?;
            }
            pending_handoff = Some((i, out.len() as u64, out.record_bytes()));
            reports.push(StageReport {
                name: stage.job.name().to_string(),
                framework: stage.framework.label().to_string(),
                handoff,
                records_in,
                bytes_in,
                records_out: out.len() as u64,
                bytes_out: out.record_bytes(),
                bytes_saved,
                metrics: outcome.metrics,
            });
            current = Some(out);
        }

        Ok(DataflowOutcome {
            stages: reports,
            output: current.expect("at least one stage ran or was restored"),
            trace: tracer.map(Tracer::into_log),
            resumed_from,
        })
    }

    /// Runs one stage through the ordinary engine (real shuffle), with
    /// fault injection if configured.
    fn engine_run(&self, stage: &Stage, spec: ClusterSpec, input: &JobInput) -> Result<JobOutcome> {
        JobBuilder::new(DynJob(stage.job.as_ref()))
            .framework(stage.framework)
            .cluster(spec)
            .exec(self.exec)
            .km_hint(stage.km_hint)
            .faults(self.faults)
            .trace(self.trace)
            .run(input)
    }
}
