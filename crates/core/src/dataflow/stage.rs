//! The shuffle-skip stage executor.
//!
//! When a chained stage's input [`Dataset`] is already bucketed by the
//! partition function the stage would shuffle to *and* the job declares
//! [`Job::partition_preserving`], the reshuffle is pure waste: every
//! record a colocated map task emits lands back on the partition it came
//! from. This executor runs that case M3R-style — one map task per
//! resident partition feeding that partition's reducer directly, with the
//! HDFS chunk read and the map-output materialization stripped from the
//! plans ([`MapTaskPlan::strip_materialization`]) and no network transfer
//! charged.
//!
//! The claim is *verified*, not trusted: after each map task finishes,
//! any payload bound for a foreign partition is a hard error. A job that
//! wrongly declares itself partition-preserving fails loudly instead of
//! silently splitting key groups.
//!
//! Determinism: plan computation is pure and runs on the worker pool;
//! everything that touches shared simulation state — replaying plans,
//! feeding reducers, replaying effect logs — happens on the calling
//! thread in strict partition order. A chained stage's `JobOutcome` is
//! therefore bit-identical at any thread count by construction.

use super::dataset::Dataset;
use crate::api::Job;
use crate::cluster::{ClusterSpec, Framework};
use crate::exec::{Gather, Pool};
use crate::job::JobOutcome;
use crate::map_phase::{compute_map_task, finish_map_task, MapTaskPlan};
use crate::metrics::JobMetrics;
use crate::progress::ProgressTracker;
use crate::reduce::{make_reducer, replay, ReduceEnv, ReducerSizing, ReplayTarget};
use crate::sim::Resources;
use opa_common::units::{SimDuration, SimTime};
use opa_common::{Error, ExecConfig, HashFamily, Pair, Result};
use opa_trace::TraceEvent;

/// Progress curves are resampled to this many points (matches the
/// engine's batch path).
const PROGRESS_POINTS: usize = 400;

/// Runs one partition-preserving stage over a resident dataset without a
/// shuffle. Returns the stage's outcome plus the map-output byte volume
/// the skipped materialization would have written (`bytes_saved`).
///
/// The caller is responsible for the *compatibility* decision (partition
/// spec equality, `partition_preserving`, fingerprint verification); this
/// function enforces the *safety* half — it errors if any map task emits
/// across partitions.
pub(crate) fn run_chained_stage(
    job: &(dyn Job + Send + Sync),
    framework: Framework,
    spec: &ClusterSpec,
    exec: ExecConfig,
    km_hint: f64,
    input: &Dataset,
    trace: bool,
) -> Result<(JobOutcome, u64)> {
    spec.validate()?;
    exec.validate()?;
    if input.is_empty() {
        return Err(Error::job("chained stage input dataset is empty"));
    }
    let n_partitions = input.spec().partitions;
    if n_partitions != spec.total_reducers() {
        return Err(Error::job(format!(
            "chained stage requires the dataset partition count ({}) to \
             match the cluster's total reducers ({})",
            n_partitions,
            spec.total_reducers()
        )));
    }
    let hw = &spec.hardware;
    let n_nodes = hw.nodes;
    let family = HashFamily::new(spec.hash_seed);
    let h1 = family.fn_at(0);
    let input_bytes = input.record_bytes();

    let workers = exec.effective_threads().saturating_sub(1);
    let live: Vec<usize> = (0..n_partitions)
        .filter(|&p| !input.partition(p).is_empty())
        .collect();

    // Phase A — pure plan computation, one map task per resident
    // partition, parallel on the pool. `strip_materialization` runs here
    // too (it is part of the pure plan transform): the HDFS chunk read
    // and map-output write vanish, and the forgone shuffle volume comes
    // back as this stage's savings.
    let plans: Vec<(MapTaskPlan, u64)> = std::thread::scope(|scope| {
        let pool = Pool::new(scope, workers);
        let gather = Gather::new(live.len());
        let mut batch: Vec<crate::exec::Task<'_>> = Vec::with_capacity(live.len());
        let mut last: Option<crate::exec::Task<'_>> = None;
        for (slot, &p) in live.iter().enumerate() {
            let records = input.partition_records(p);
            let chunk_bytes: u64 = records.iter().map(|r| r.len() as u64).sum();
            let g = gather.clone();
            let task: crate::exec::Task<'_> = Box::new(move || {
                let mut plan = compute_map_task(
                    job,
                    framework,
                    &records,
                    chunk_bytes,
                    spec,
                    h1,
                    opa_common::AdmissionPolicy::Off,
                    opa_common::CombineScope::Task,
                    None,
                );
                let saved = plan.strip_materialization();
                g.put(slot, (plan, saved));
            });
            if slot + 1 == live.len() {
                last = Some(task);
            } else {
                batch.push(task);
            }
        }
        pool.submit_batch(batch);
        if let Some(task) = last {
            task();
        }
        gather.wait(&pool)
    });

    // Phase B — sequential accounting and reduction, in partition order.
    let separate_spill = spec.cost.spill_disk != spec.cost.hdfs_disk;
    let mut res = Resources::new(n_nodes, hw.map_slots.max(hw.reduce_slots), separate_spill);
    if trace {
        res.enable_trace();
    }
    let mut progress = ProgressTracker::new(live.len() as u64);

    let expected_input = ((input_bytes as f64 * km_hint) / n_partitions as f64).ceil() as u64;
    let expected_keys = job
        .expected_keys()
        .map(|k| (k / n_partitions as u64).max(1))
        .unwrap_or(expected_input / 64);
    let sizing = ReducerSizing {
        expected_input,
        expected_keys,
        state_size: job.state_size_hint().unwrap_or(64),
        early_stop_coverage: None,
        monitor: crate::reduce::dinc_hash::MonitorKind::Frequent,
        admission: opa_common::AdmissionPolicy::Off,
    };

    let mut output: Vec<Pair> = Vec::new();
    let mut map_cpu = SimDuration::ZERO;
    let mut reduce_cpu_total = SimDuration::ZERO;
    let mut map_spill_bytes = 0u64;
    let mut reduce_spill_bytes = 0u64;
    let mut snapshot_bytes = 0u64;
    let mut bytes_saved = 0u64;
    let mut map_finish = SimTime::ZERO;
    let mut end = SimTime::ZERO;

    for (&p, (plan, saved)) in live.iter().zip(plans) {
        let node = p % n_nodes;
        bytes_saved += saved;
        res.emit(TraceEvent::MapStart {
            t: 0,
            chunk: p as u32,
            attempt: 0,
            node: node as u32,
        });
        let result = finish_map_task(plan, node, SimTime::ZERO, spec, &mut res);
        res.emit(TraceEvent::MapFinish {
            t0: 0,
            t: result.finish.0,
            chunk: p as u32,
            node: node as u32,
            cpu: result.cpu.0,
            output_bytes: result.output_bytes,
            spill_bytes: result.spill_bytes,
        });
        map_cpu += result.cpu;
        map_spill_bytes += result.spill_bytes;
        map_finish = map_finish.max(result.finish);
        progress.map_done(result.finish);
        if !result.early_output.is_empty() {
            let bytes: u64 = result.early_output.iter().map(Pair::size).sum();
            progress.emitted(result.finish, bytes);
            output.extend(result.early_output);
        }

        // Safety check: a partition-preserving map over partition `p`'s
        // records must emit only to partition `p`.
        let mut payloads = Vec::with_capacity(result.granules.len());
        for granule in result.granules {
            for (q, payload) in granule.partitions.into_iter().enumerate() {
                if payload.is_empty() {
                    continue;
                }
                if q != p {
                    return Err(Error::job(format!(
                        "job '{}' declared partition_preserving but its map \
                         emitted {} bytes from partition {p} to partition \
                         {q}; the shuffle-skip handoff would mis-group keys",
                        job.name(),
                        payload.bytes()
                    )));
                }
                payloads.push(payload);
            }
        }

        // The colocated reducer absorbs the task's payloads directly —
        // no network hop, no map-output disk round trip. The recording
        // env's clock estimate never influences data decisions, so
        // recording everything in one log and replaying from the map
        // finish time is exact.
        let mut reducer = make_reducer(framework, job, spec, sizing, &family)?;
        let mut env = ReduceEnv::new(spec);
        let mut te = result.finish;
        let mut shuffled = 0u64;
        for payload in payloads {
            shuffled += payload.bytes();
            te = reducer.on_delivery(te, payload, &mut env);
        }
        env.shuffled(te, shuffled);
        reducer.finish(te, &mut env);
        let mut reduce_cpu = SimDuration::ZERO;
        let done = replay(
            env.into_log(),
            result.finish,
            spec,
            ReplayTarget {
                node,
                res: &mut res,
                progress: &mut progress,
                output: &mut output,
                reduce_cpu: &mut reduce_cpu,
                spill_written: &mut reduce_spill_bytes,
                snapshot_bytes: &mut snapshot_bytes,
            },
        );
        reduce_cpu_total += reduce_cpu;
        res.emit(TraceEvent::ReduceFinish {
            t: done.0,
            reducer: p as u32,
            node: node as u32,
        });
        end = end.max(done);
    }

    let output_bytes: u64 = output.iter().map(Pair::size).sum();
    let metrics = JobMetrics {
        framework: framework.label().to_string(),
        job: job.name().to_string(),
        running_time: end,
        map_finish,
        input_bytes,
        // The defining property of the skip path: no map output was
        // materialized, so the stage contributes zero shuffle volume.
        map_output_bytes: 0,
        map_spill_bytes,
        reduce_spill_bytes,
        output_bytes,
        snapshot_bytes,
        output_records: output.len() as u64,
        map_cpu_per_node: SimDuration(map_cpu.0 / n_nodes as u64),
        reduce_cpu_per_node: SimDuration(reduce_cpu_total.0 / n_nodes as u64),
        io: res.io.clone(),
        io_recovery: res.io_recovery.clone(),
        dinc: None,
        admission: None,
        faults: None,
        // Shuffle-skip: nothing crossed the simulated network.
        shuffle_bytes: 0,
        node_combine: None,
    };
    let trace_log = res.take_trace();
    Ok((
        JobOutcome {
            metrics,
            progress: progress.finish(end, PROGRESS_POINTS),
            timeline: std::mem::take(&mut res.timeline),
            usage: res.usage,
            output,
            trace: trace_log,
            dlq: Vec::new(),
        },
        bytes_saved,
    ))
}
