//! # opa-core
//!
//! The One-Pass Analytics MapReduce engine — the paper's primary
//! contribution (§4–§5), plus the sort-merge and pipelined baselines it is
//! evaluated against (§2–§3).
//!
//! ## How execution works
//!
//! A job really runs: the user's `map`, `reduce`, `combine` and
//! `init/cb/fn` functions process every record, and the job output is
//! byte-for-byte verifiable. Time, however, is *virtual*: a deterministic
//! discrete-event simulation of an N-node cluster charges each task CPU
//! costs (per record, per comparison, per hash op…) and routes every spill,
//! merge and shuffle through per-node disk queues priced by
//! [`opa_simio::DiskProfile`]s. This is the substitution documented in
//! DESIGN.md — all of the paper's findings are about *relative* behaviour
//! (which framework blocks, where bytes go, whose reduce progress keeps up
//! with map progress), and those survive the change of substrate.
//!
//! ## The five reduce-side frameworks
//!
//! | [`Framework`] variant | Paper section | Character |
//! |---|---|---|
//! | `SortMerge` | §2.2, §3 | Hadoop baseline: map-side sort, reduce-side multi-pass merge (blocking) |
//! | `SortMergePipelined` | §2.2, §3.3 | MapReduce-Online-style eager push of sorted granules |
//! | `MrHash` | §4.1 | hybrid-hash group-by; bucket `D1` in memory |
//! | `IncHash` | §4.2 | incremental `init/cb/fn`, first-come keys stay in memory |
//! | `DincHash` | §4.3 | FREQUENT-monitored hot keys stay in memory; coverage-based early answers |
//!
//! ## Entry point
//!
//! Build a [`job::JobBuilder`] around a [`api::Job`] implementation, choose
//! a framework and a [`cluster::ClusterSpec`], and call `run` on a
//! [`job::JobInput`]. The returned [`job::JobOutcome`] carries the real
//! output, the five-category I/O statistics, Definition-1 progress curves
//! and the task timeline used to regenerate the paper's figures.
//!
//! Multi-job pipelines live in [`dataflow`]: a [`dataflow::Dataflow`]
//! chains jobs so each stage's reduce output feeds the next stage's map
//! through an in-memory, partition-bucketed [`dataflow::Dataset`] — and
//! when the downstream stage is partition-preserving under the same
//! partitioning, the intervening shuffle is skipped entirely
//! (M3R-style), with chain-wide checkpoint/restore at stage boundaries.
//!
//! ```
//! use opa_common::{Key, Value};
//! use opa_core::prelude::*;
//!
//! // The classic example: word count under the stock sort-merge baseline.
//! struct WordCount;
//!
//! impl Job for WordCount {
//!     fn name(&self) -> &str {
//!         "word-count"
//!     }
//!     fn map(&self, record: &[u8], emit: &mut dyn FnMut(&[u8], &[u8])) {
//!         for w in record.split(|&b| b == b' ').filter(|w| !w.is_empty()) {
//!             emit(w, &1u64.to_be_bytes());
//!         }
//!     }
//!     fn reduce(&self, key: &Key, values: Vec<Value>, ctx: &mut ReduceCtx) {
//!         let sum: u64 = values.iter().filter_map(Value::as_u64).sum();
//!         ctx.emit(key.clone(), Value::from_u64(sum));
//!     }
//! }
//!
//! let input = JobInput::from_text("to be or not\nto be\n");
//! let outcome = JobBuilder::new(WordCount)
//!     .framework(Framework::SortMerge)
//!     .cluster(ClusterSpec::tiny())
//!     .run(&input)
//!     .expect("job runs");
//!
//! let counts = outcome.sorted_output();
//! assert_eq!(counts.len(), 4); // "be", "not", "or", "to"
//! assert_eq!(counts[3].key.bytes(), b"to");
//! assert_eq!(counts[3].value.as_u64(), Some(2));
//! assert!(outcome.metrics.io.total_bytes() > 0); // the run was priced
//! ```
//!
//! Add `.trace(true)` to the builder and the outcome carries a
//! deterministic [`opa_trace::TraceLog`] of every scheduling decision —
//! see `OBSERVABILITY.md` at the repository root for the event glossary.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod api;
pub mod cluster;
pub mod cost;
pub mod dataflow;
pub mod exec;
pub mod fault;
pub mod job;
pub mod map_phase;
pub mod metrics;
pub mod progress;
pub mod reduce;
pub mod sim;

/// Convenient glob-import surface for applications and examples.
pub mod prelude {
    pub use crate::api::{Combiner, IncrementalReducer, Job, ReduceCtx};
    pub use crate::cluster::{ClusterSpec, Framework};
    pub use crate::cost::CostModel;
    pub use crate::dataflow::{Dataflow, DataflowOutcome, Dataset, Handoff, HandoffPolicy};
    pub use crate::job::{JobBuilder, JobInput, JobOutcome};
    pub use crate::metrics::JobMetrics;
    pub use crate::progress::ProgressCurve;
    pub use opa_common::fault::{FaultConfig, FaultReport};
    pub use opa_common::{Key, Pair, StatePair, Value};
}

pub use cluster::{ClusterSpec, Framework};
pub use dataflow::{Dataflow, DataflowOutcome, Dataset};
pub use job::{JobBuilder, JobInput, JobOutcome};
