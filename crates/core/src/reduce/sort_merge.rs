//! The sort-merge reducer (Hadoop baseline, §2.2 of the paper).
//!
//! Sorted segments accumulate in the shuffle buffer; when it exceeds `B_r`
//! they are merged (combiner applied if the job has one) and spilled as one
//! sorted run. A background merge collapses the smallest `F` on-disk files
//! whenever `2F − 1` accumulate — the exact policy analyzed by `λ_F`. Only
//! after the last delivery does the *final merge* stream every remaining
//! run through the user's reduce function: this is the blocking behaviour
//! that pins sort-merge reduce progress at 33% for non-combiner workloads.

use super::{OutputSink, ReduceEnv, ReduceSide, ReducerCkpt, WORK_BATCH};
use crate::api::{Job, ReduceCtx};
use crate::cluster::ClusterSpec;
use crate::map_phase::Payload;
use crate::sim::OpKind;
use opa_common::units::SimTime;
use opa_common::{Error, Pair, Result, Value};
use opa_simio::{IoOp, SpillStore};

/// [`ReducerCkpt::tag`] of the sort-merge framework (both variants).
pub(crate) const CKPT_TAG: u8 = 1;

/// One reduce task running the sort-merge framework.
pub struct SortMergeReducer<'j> {
    job: &'j dyn Job,
    merge_factor: usize,
    buffer_cap: u64,
    /// Sorted in-memory segments (one per delivery since the last spill).
    segments: Vec<Vec<Pair>>,
    buffered_bytes: u64,
    spills: SpillStore<Pair>,
    sink: OutputSink,
}

impl<'j> SortMergeReducer<'j> {
    /// Creates the reducer.
    pub fn new(job: &'j dyn Job, spec: &ClusterSpec) -> Self {
        SortMergeReducer {
            job,
            merge_factor: spec.system.merge_factor,
            buffer_cap: spec.hardware.reduce_buffer,
            segments: Vec::new(),
            buffered_bytes: 0,
            spills: SpillStore::new(),
            sink: OutputSink::new(),
        }
    }

    /// Merges the buffered segments into one sorted run (stable sort keeps
    /// within-segment order; segments are key-sorted already, so groups are
    /// exact).
    fn merge_segments(&mut self, t: SimTime, env: &mut ReduceEnv<'_>) -> (Vec<Pair>, SimTime) {
        let fan_in = self.segments.len();
        let mut run: Vec<Pair> = self.segments.drain(..).flatten().collect();
        run.sort_by(|a, b| a.key.cmp(&b.key));
        let dur = env.cost().merge_time(run.len() as u64, fan_in);
        let t = env.cpu(t, dur);
        self.buffered_bytes = 0;
        (run, t)
    }

    /// Buffer overflow: merge segments, apply the combiner, spill one run,
    /// then run the background-merge policy.
    fn spill_buffer(&mut self, t: SimTime, env: &mut ReduceEnv<'_>) -> SimTime {
        let (mut run, mut t) = self.merge_segments(t, env);
        if let Some(cb) = self.job.combiner() {
            let before = run.len() as u64;
            run = combine_run(cb, run);
            let dur = env.cost().cb_time(before);
            t = env.cpu(t, dur);
            // Combine calls are user work under Definition 1.
            env.worked(t, before);
        }
        let (_id, op) = self.spills.write_file(run);
        t = env.spill(t, op);
        self.background_merge(t, env)
    }

    /// While `2F − 1` files sit on disk, merge the smallest `F`.
    fn background_merge(&mut self, mut t: SimTime, env: &mut ReduceEnv<'_>) -> SimTime {
        let f = self.merge_factor;
        while self.spills.live_count() >= 2 * f - 1 {
            let mut live: Vec<(usize, u64)> = self.spills.live_files().collect();
            live.sort_by_key(|&(_, bytes)| bytes);
            env.span_open();
            let mut merged: Vec<Pair> = Vec::new();
            let mut read_op = IoOp::NONE;
            for &(id, _) in live.iter().take(f) {
                let (file, op) = self.spills.take_file(id).expect("live file");
                read_op += op;
                merged.extend(file.records);
            }
            t = env.spill(t, read_op);
            merged.sort_by(|a, b| a.key.cmp(&b.key));
            let dur = env.cost().merge_time(merged.len() as u64, f);
            t = env.cpu(t, dur);
            let (_id, wop) = self.spills.write_file(merged);
            t = env.spill(t, wop);
            env.span_close(OpKind::Merge);
        }
        t
    }
}

impl ReduceSide for SortMergeReducer<'_> {
    /// MapReduce Online's snapshot (§3.3): *repeat the merge* over
    /// everything received so far, run the reduce function, and write a
    /// snapshot output. None of the work is reusable — the inputs stay on
    /// disk for the real final merge — which is the paper's point about
    /// snapshots being expensive.
    fn snapshot(&mut self, mut t: SimTime, env: &mut ReduceEnv<'_>) -> SimTime {
        env.span_open();
        let ids: Vec<usize> = self.spills.live_files().map(|(id, _)| id).collect();
        let mut all: Vec<Pair> = Vec::new();
        let mut read_op = IoOp::NONE;
        for id in ids {
            let (records, op) = self.spills.read_file(id).expect("live file");
            read_op += op;
            all.extend(records);
        }
        t = env.spill(
            t,
            IoOp {
                read: read_op.read,
                written: 0,
                seeks: read_op.seeks,
            },
        );
        for seg in &self.segments {
            all.extend(seg.iter().cloned());
        }
        if all.is_empty() {
            return t;
        }
        all.sort_by(|a, b| a.key.cmp(&b.key));
        t = env.cpu(t, env.cost().merge_time(all.len() as u64, 8));
        let mut ctx = ReduceCtx::new();
        let mut i = 0usize;
        let mut reduced = 0u64;
        while i < all.len() {
            let mut j = i + 1;
            while j < all.len() && all[j].key == all[i].key {
                j += 1;
            }
            let values: Vec<Value> = all[i..j].iter().map(|p| p.value.clone()).collect();
            reduced += values.len() as u64;
            self.job.reduce(&all[i].key, values, &mut ctx);
            i = j;
        }
        t = env.cpu(t, env.cost().reduce_time(reduced));
        let out = ctx.drain();
        let bytes: u64 = out.iter().map(Pair::size).sum();
        t = env.snapshot_write(t, bytes);
        env.span_close(OpKind::Reduce);
        t
    }

    fn on_delivery(&mut self, t: SimTime, payload: Payload, env: &mut ReduceEnv<'_>) -> SimTime {
        let Payload::Pairs(batch) = payload else {
            unreachable!("sort-merge receives key-value pairs");
        };
        let bytes = batch.bytes();
        env.shuffled(t, bytes);
        self.buffered_bytes += bytes;
        if !batch.is_empty() {
            self.segments.push(batch.into_pairs());
        }
        if self.buffered_bytes >= self.buffer_cap {
            self.spill_buffer(t, env)
        } else {
            t
        }
    }

    fn finish(&mut self, t: SimTime, env: &mut ReduceEnv<'_>) -> SimTime {
        // Final merge: every on-disk run plus the in-memory tail, streamed
        // through the reduce function.
        env.span_open();
        let mut t = t;
        let disk_files: Vec<usize> = self.spills.live_files().map(|(id, _)| id).collect();
        let fan_in = disk_files.len() + self.segments.len();
        let mut all: Vec<Pair> = Vec::new();
        let mut read_op = IoOp::NONE;
        for id in disk_files {
            let (file, op) = self.spills.take_file(id).expect("live file");
            read_op += op;
            all.extend(file.records);
        }
        t = env.spill(t, read_op);
        all.extend(self.segments.drain(..).flatten());
        self.buffered_bytes = 0;
        all.sort_by(|a, b| a.key.cmp(&b.key));
        let dur = env.cost().merge_time(all.len() as u64, fan_in.max(2));
        t = env.cpu(t, dur);

        // Stream groups through reduce, advancing the clock in batches so
        // the post-map progress curve rises smoothly.
        let mut ctx = ReduceCtx::new();
        let mut batch_work = 0u64;
        let mut i = 0usize;
        while i < all.len() {
            let mut j = i + 1;
            while j < all.len() && all[j].key == all[i].key {
                j += 1;
            }
            // The group's key is borrowed straight from the run — no
            // per-group handle clone.
            let values: Vec<Value> = all[i..j].iter().map(|p| p.value.clone()).collect();
            let n = values.len() as u64;
            self.job.reduce(&all[i].key, values, &mut ctx);
            batch_work += n;
            if batch_work >= WORK_BATCH {
                t = env.cpu(t, env.cost().reduce_time(batch_work));
                env.worked(t, batch_work);
                batch_work = 0;
                t = self.sink.push(t, ctx.drain(), env);
            }
            i = j;
        }
        if batch_work > 0 {
            t = env.cpu(t, env.cost().reduce_time(batch_work));
            env.worked(t, batch_work);
        }
        t = self.sink.push(t, ctx.drain(), env);
        t = self.sink.flush(t, env);
        env.span_close(OpKind::Reduce);
        t
    }

    /// Sections: `nums[0] = [n_segments, n_spill_runs]`; `pairs` holds the
    /// in-memory segments, then the live spill runs (creation order), then
    /// the pending output buffer.
    fn export_state(&self) -> Result<ReducerCkpt> {
        let mut pairs: Vec<Vec<Pair>> = self.segments.clone();
        let runs = self.spills.export_runs();
        let counts = vec![self.segments.len() as u64, runs.len() as u64];
        pairs.extend(runs);
        pairs.push(self.sink.export_pending());
        Ok(ReducerCkpt {
            tag: CKPT_TAG,
            nums: vec![counts],
            pairs,
            ..ReducerCkpt::default()
        })
    }

    fn import_state(&mut self, ckpt: ReducerCkpt) -> Result<()> {
        if ckpt.tag != CKPT_TAG {
            return Err(Error::job(format!(
                "checkpoint tag {} is not sort-merge ({CKPT_TAG})",
                ckpt.tag
            )));
        }
        let counts = ckpt
            .nums
            .first()
            .filter(|c| c.len() == 2)
            .ok_or_else(|| Error::job("sort-merge checkpoint missing section counts"))?;
        let (n_seg, n_run) = (counts[0] as usize, counts[1] as usize);
        let mut sections = ckpt.pairs;
        if sections.len() != n_seg + n_run + 1 {
            return Err(Error::job("sort-merge checkpoint section count mismatch"));
        }
        let pending = sections.pop().expect("length checked");
        let runs = sections.split_off(n_seg);
        self.segments = sections;
        self.buffered_bytes = self.segments.iter().flatten().map(Pair::size).sum();
        self.spills = SpillStore::restore(runs);
        self.sink.restore_pending(pending);
        Ok(())
    }
}

/// Applies the combiner to consecutive same-key groups of a sorted run.
fn combine_run(cb: &dyn crate::api::Combiner, run: Vec<Pair>) -> Vec<Pair> {
    let mut out = Vec::new();
    let mut iter = run.into_iter().peekable();
    while let Some(first) = iter.next() {
        let key = first.key;
        let mut values = vec![first.value];
        while iter.peek().is_some_and(|p| p.key == key) {
            values.push(iter.next().expect("peeked").value);
        }
        for v in cb.combine(&key, values) {
            out.push(Pair::new(key.clone(), v));
        }
    }
    out
}
