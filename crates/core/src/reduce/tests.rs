//! Unit tests driving the reduce-side frameworks directly, without the
//! full job orchestrator: buffer spills, background merges, hybrid-hash
//! staging, incremental state flow and DINC eviction.

use super::*;
use crate::api::{Combiner, IncrementalReducer, Job, ReduceCtx};
use crate::cluster::ClusterSpec;
use crate::map_phase::Payload;
use crate::progress::ProgressTracker;
use crate::sim::Resources;
use opa_common::units::{SimDuration, SimTime};
use opa_common::{HashFamily, Key, Pair, RecordBatch, StateBatch, StatePair, Value};
use std::collections::BTreeMap;

/// Counting job used across these tests.
struct Count;

impl Job for Count {
    fn name(&self) -> &str {
        "count"
    }
    fn map(&self, _record: &[u8], _emit: &mut dyn FnMut(&[u8], &[u8])) {
        unreachable!("reduce-side tests never map");
    }
    fn reduce(&self, key: &Key, values: Vec<Value>, ctx: &mut ReduceCtx) {
        let sum: u64 = values.iter().filter_map(Value::as_u64).sum();
        ctx.emit(key.clone(), Value::from_u64(sum));
    }
    fn combiner(&self) -> Option<&dyn Combiner> {
        Some(self)
    }
    fn incremental(&self) -> Option<&dyn IncrementalReducer> {
        Some(self)
    }
}

impl Combiner for Count {
    fn combine(&self, _key: &Key, values: Vec<Value>) -> Vec<Value> {
        vec![Value::from_u64(
            values.iter().filter_map(Value::as_u64).sum(),
        )]
    }
}

impl IncrementalReducer for Count {
    fn init(&self, _key: &Key, value: Value) -> Value {
        value
    }
    fn cb(&self, _key: &Key, acc: &mut Value, other: Value, _ctx: &mut ReduceCtx) {
        *acc = Value::from_u64(acc.as_u64().unwrap_or(0) + other.as_u64().unwrap_or(0));
    }
    fn finalize(&self, key: &Key, state: Value, ctx: &mut ReduceCtx) {
        ctx.emit(key.clone(), state);
    }
}

struct Harness {
    spec: ClusterSpec,
    res: Resources,
    progress: ProgressTracker,
    output: Vec<Pair>,
    reduce_cpu: SimDuration,
    spill_written: u64,
    snapshot_bytes: u64,
}

impl Harness {
    fn new(spec: ClusterSpec) -> Self {
        Harness {
            spec,
            res: Resources::new(spec.hardware.nodes, 4, false),
            progress: ProgressTracker::new(1),
            output: Vec::new(),
            reduce_cpu: SimDuration::ZERO,
            spill_written: 0,
            snapshot_bytes: 0,
        }
    }

    /// Applies a recorded effect log to the harness state, as the engine's
    /// scheduling layer would.
    fn apply(&mut self, log: Vec<Effect>, t0: SimTime) -> SimTime {
        let spec = self.spec;
        replay(
            log,
            t0,
            &spec,
            ReplayTarget {
                node: 0,
                res: &mut self.res,
                progress: &mut self.progress,
                output: &mut self.output,
                reduce_cpu: &mut self.reduce_cpu,
                spill_written: &mut self.spill_written,
                snapshot_bytes: &mut self.snapshot_bytes,
            },
        )
    }

    /// Records one delivery and immediately replays it (sequential mode).
    fn deliver(&mut self, r: &mut dyn ReduceSide, t: SimTime, payload: Payload) -> SimTime {
        let spec = self.spec;
        let mut env = ReduceEnv::new(&spec);
        r.on_delivery(t, payload, &mut env);
        self.apply(env.into_log(), t)
    }

    /// Records the finish phase and immediately replays it.
    fn finish(&mut self, r: &mut dyn ReduceSide, t: SimTime) -> SimTime {
        let spec = self.spec;
        let mut env = ReduceEnv::new(&spec);
        r.finish(t, &mut env);
        self.apply(env.into_log(), t)
    }

    fn counts(&self) -> BTreeMap<u64, u64> {
        self.output
            .iter()
            .map(|p| (p.key.as_u64().unwrap(), p.value.as_u64().unwrap()))
            .collect()
    }
}

// Hash-free batches: the reducers must fall back to recomputing `h1`
// when the shuffle's cached fingerprints are absent (restore path).
fn sorted_pairs(keys: &[u64]) -> RecordBatch {
    let mut keys = keys.to_vec();
    keys.sort_unstable();
    RecordBatch::from_pairs(
        keys.into_iter()
            .map(|k| Pair::new(Key::from_u64(k), Value::from_u64(1)))
            .collect(),
    )
}

fn states(keys: &[u64]) -> StateBatch {
    StateBatch::from_states(
        keys.iter()
            .map(|&k| StatePair::new(Key::from_u64(k), Value::from_u64(1)))
            .collect(),
    )
}

fn sizing() -> ReducerSizing {
    ReducerSizing {
        expected_input: 1 << 20,
        expected_keys: 64,
        state_size: 16,
        early_stop_coverage: None,
        monitor: dinc_hash::MonitorKind::Frequent,
        admission: opa_common::AdmissionPolicy::Off,
    }
}

#[test]
fn sort_merge_counts_across_spills() {
    let mut spec = ClusterSpec::tiny();
    spec.hardware.reduce_buffer = 256; // force many buffer spills
    let mut h = Harness::new(spec);
    let job = Count;
    let mut r = sort_merge::SortMergeReducer::new(&job, &spec);
    let mut t = SimTime::ZERO;
    for batch in 0..20u64 {
        let keys: Vec<u64> = (0..5).map(|i| (batch + i) % 7).collect();
        t = h.deliver(&mut r, t, Payload::Pairs(sorted_pairs(&keys)));
    }
    let _ = h.finish(&mut r, t);
    // With a combiner, spilled runs are pre-aggregated but totals survive.
    let total: u64 = h.counts().values().sum();
    assert_eq!(total, 100);
    assert_eq!(h.counts().len(), 7);
    assert!(h.spill_written > 0, "tiny buffer must have spilled");
}

#[test]
fn sort_merge_background_merge_bounds_files() {
    let mut spec = ClusterSpec::tiny();
    spec.hardware.reduce_buffer = 128;
    spec.system.merge_factor = 2; // merge whenever 3 files exist
    let mut h = Harness::new(spec);
    let job = Count;
    let mut r = sort_merge::SortMergeReducer::new(&job, &spec);
    let mut t = SimTime::ZERO;
    for batch in 0..40u64 {
        t = h.deliver(
            &mut r,
            t,
            Payload::Pairs(sorted_pairs(&[batch % 11, (batch + 1) % 11])),
        );
    }
    let _ = h.finish(&mut r, t);
    assert_eq!(h.counts().values().sum::<u64>(), 80);
}

#[test]
fn mr_hash_stages_and_recovers_everything() {
    let mut spec = ClusterSpec::tiny();
    spec.hardware.reduce_buffer = 2048;
    spec.bucket_write_buffer = 256;
    let mut h = Harness::new(spec);
    let job = Count;
    let family = HashFamily::new(3);
    let big = ReducerSizing {
        expected_input: 1 << 16, // well over memory → several buckets
        ..sizing()
    };
    let mut r = mr_hash::MrHashReducer::new(&job, &spec, big, &family);
    let mut t = SimTime::ZERO;
    for batch in 0..50u64 {
        let keys: Vec<u64> = (0..8).map(|i| (batch * 3 + i) % 23).collect();
        t = h.deliver(&mut r, t, Payload::Pairs(sorted_pairs(&keys)));
    }
    let _ = h.finish(&mut r, t);
    assert_eq!(h.counts().values().sum::<u64>(), 400);
    assert_eq!(h.counts().len(), 23);
    assert!(h.spill_written > 0, "staged buckets must exist");
}

#[test]
fn inc_hash_zero_spill_when_memory_suffices() {
    let spec = ClusterSpec::tiny();
    let mut h = Harness::new(spec);
    let job = Count;
    let family = HashFamily::new(4);
    let mut r = inc_hash::IncHashReducer::new(&job, &spec, sizing(), &family);
    let mut t = SimTime::ZERO;
    for batch in 0..100u64 {
        t = h.deliver(&mut r, t, Payload::States(states(&[batch % 10])));
    }
    let _ = h.finish(&mut r, t);
    assert_eq!(h.spill_written, 0);
    assert_eq!(h.counts().values().sum::<u64>(), 100);
    assert_eq!(h.counts().len(), 10);
}

#[test]
fn inc_hash_bucket_path_is_exact() {
    let mut spec = ClusterSpec::tiny();
    spec.hardware.reduce_buffer = 600; // room for only a handful of states
    spec.bucket_write_buffer = 128;
    let mut h = Harness::new(spec);
    let job = Count;
    let family = HashFamily::new(5);
    let mut r = inc_hash::IncHashReducer::new(&job, &spec, sizing(), &family);
    let mut t = SimTime::ZERO;
    for round in 0..60u64 {
        let keys: Vec<u64> = (0..4).map(|i| (round + i * 17) % 50).collect();
        t = h.deliver(&mut r, t, Payload::States(states(&keys)));
    }
    let _ = h.finish(&mut r, t);
    assert!(h.spill_written > 0, "memory pressure must stage tuples");
    assert_eq!(h.counts().values().sum::<u64>(), 240);
    assert_eq!(h.counts().len(), 50);
}

#[test]
fn dinc_hash_counts_survive_eviction_churn() {
    let mut spec = ClusterSpec::tiny();
    spec.hardware.reduce_buffer = 512;
    spec.bucket_write_buffer = 128;
    let mut h = Harness::new(spec);
    let job = Count;
    let family = HashFamily::new(6);
    let mut r = dinc_hash::DincHashReducer::new(&job, &spec, sizing(), &family);
    assert!(r.slots() >= 1);
    let mut t = SimTime::ZERO;
    // A hot key interleaved with a churning cold tail.
    let mut expect: BTreeMap<u64, u64> = BTreeMap::new();
    for round in 0..300u64 {
        let keys = [7u64, 1000 + (round % 60)];
        for &k in &keys {
            *expect.entry(k).or_default() += 1;
        }
        t = h.deliver(&mut r, t, Payload::States(states(&keys)));
    }
    let _ = h.finish(&mut r, t);
    assert_eq!(h.counts(), expect, "eviction churn must not lose counts");
}

#[test]
fn dinc_early_stop_reports_only_covered_keys() {
    let mut spec = ClusterSpec::tiny();
    spec.hardware.reduce_buffer = 512;
    spec.bucket_write_buffer = 128;
    let mut h = Harness::new(spec);
    let job = Count;
    let family = HashFamily::new(8);
    let approx = ReducerSizing {
        early_stop_coverage: Some(0.5),
        ..sizing()
    };
    let mut r = dinc_hash::DincHashReducer::new(&job, &spec, approx, &family);
    let mut t = SimTime::ZERO;
    for round in 0..200u64 {
        let keys = [7u64, 2000 + (round % 80)];
        t = h.deliver(&mut r, t, Payload::States(states(&keys)));
    }
    let spilled_before = h.spill_written;
    let _ = h.finish(&mut r, t);
    // Early stop: no bucket is read back, so spill stays as-is and only
    // hot (covered) keys are reported.
    assert_eq!(h.spill_written, spilled_before);
    let counts = h.counts();
    assert!(counts.contains_key(&7), "the hot key must be reported");
    assert!(
        counts.len() < 81,
        "early stop must not report the whole key space"
    );
    // The reported hot-key count is a partial (≤ true) count.
    assert!(counts[&7] <= 200);
}
