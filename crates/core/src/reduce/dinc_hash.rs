//! DINC-hash: the dynamic incremental hash technique (§4.3).
//!
//! `s = (B − h)·n_p` monitor slots hold (counter, key, state, t) per the
//! FREQUENT algorithm: hot keys stay resident and keep combining in memory;
//! a tuple for an unmonitored key either takes over a zero-counter slot
//! (evicting its occupant through the workload's eviction hook — closed
//! sessions are *output directly*, other states spill to a bucket) or, when
//! every counter is positive, is itself staged to disk while all counters
//! decrement. The §6.2 refinement is honoured: the workload's `can_evict`
//! guard can veto displacing a state whose work is not finished (an active
//! session), in which case the tuple spills without the decrement.
//!
//! After the input ends, the monitored states are flushed through the same
//! eviction hook (complete states go straight to output, the rest join
//! their bucket) and the buckets are processed exactly like INC-hash, so
//! every key's partial states and stray tuples meet again and final answers
//! are exact.
//!
//! Coverage estimation (`γ = t/(t + M/(s+1))`) is exposed through
//! [`DincHashReducer`]'s underlying monitor for the approximate-answer
//! mode: with an `early_stop_coverage` threshold φ set on the builder, keys
//! whose γ ≥ φ are finalized from their partial in-memory state and their
//! buckets skipped (approximate answers, §4.3).

use super::{OutputSink, ReduceEnv, ReduceSide, ReducerCkpt, ReducerSizing, TopEntry, WORK_BATCH};
use crate::api::{IncrementalReducer, Job, ReduceCtx};
use crate::cluster::ClusterSpec;
use crate::map_phase::Payload;
use crate::metrics::AdmissionStats;
use crate::sim::OpKind;
use opa_common::units::SimTime;
use opa_common::{
    AdmissionPolicy, Error, FreqSketch, HashFamily, HashFn, Key, Result, ShardedGroupIndex,
    StatePair, Value,
};
use opa_freq::{MgEntry, MgOutcome, MisraGries, SpaceSavingMonitor};
use opa_simio::BucketManager;

/// [`ReducerCkpt::tag`] of the DINC-hash framework.
pub(crate) const CKPT_TAG: u8 = 4;

/// [`ReducerCkpt::flags`] bit: the monitor runs SpaceSaving (unset =
/// FREQUENT).
const FLAG_SPACE_SAVING: u64 = 1;

/// Monitor bookkeeping per slot (counter, t, indices) charged against the
/// memory budget in addition to the key-state bytes.
const SLOT_OVERHEAD: u64 = 32;

const MAX_DEPTH: usize = 6;

/// Which frequency algorithm drives the DINC monitor. The paper uses
/// FREQUENT; SpaceSaving is provided for the monitor-choice ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MonitorKind {
    /// Misra-Gries / FREQUENT (the paper's choice, §4.3).
    #[default]
    Frequent,
    /// SpaceSaving (Metwally et al. 2005): displace the minimum counter.
    SpaceSaving,
}

/// Either monitor behind one interface.
enum Monitor {
    Frequent(MisraGries<Key, Value>),
    SpaceSaving(SpaceSavingMonitor<Key, Value>),
}

impl Monitor {
    fn new(kind: MonitorKind, s: usize) -> Monitor {
        match kind {
            MonitorKind::Frequent => Monitor::Frequent(MisraGries::new(s)),
            MonitorKind::SpaceSaving => Monitor::SpaceSaving(SpaceSavingMonitor::new(s)),
        }
    }

    fn offer_guarded(
        &mut self,
        key: Key,
        state: Value,
        cb: impl FnOnce(&Key, &mut Value, Value),
        guard: impl FnMut(&Key, &Value) -> bool,
    ) -> MgOutcome<Key, Value> {
        match self {
            Monitor::Frequent(m) => m.offer_guarded(key, state, cb, guard),
            Monitor::SpaceSaving(m) => m.offer_guarded(key, state, cb, guard),
        }
    }

    fn capacity(&self) -> usize {
        match self {
            Monitor::Frequent(m) => m.capacity(),
            Monitor::SpaceSaving(m) => m.capacity(),
        }
    }

    fn offered(&self) -> u64 {
        match self {
            Monitor::Frequent(m) => m.offered(),
            Monitor::SpaceSaving(m) => m.offered(),
        }
    }

    fn drain(self) -> Vec<MgEntry<Key, Value>> {
        match self {
            Monitor::Frequent(m) => m.drain(),
            Monitor::SpaceSaving(m) => m.drain(),
        }
    }

    fn kind(&self) -> MonitorKind {
        match self {
            Monitor::Frequent(_) => MonitorKind::Frequent,
            Monitor::SpaceSaving(_) => MonitorKind::SpaceSaving,
        }
    }

    fn get(&self, key: &Key) -> Option<MgEntry<Key, Value>> {
        match self {
            Monitor::Frequent(m) => m.get(key),
            Monitor::SpaceSaving(m) => m.get(key),
        }
    }

    /// Non-consuming snapshot of every monitored entry, in slot order —
    /// restore must preserve this order for deterministic resumption.
    fn entries(&self) -> Vec<MgEntry<Key, Value>> {
        match self {
            Monitor::Frequent(m) => m.iter().collect(),
            Monitor::SpaceSaving(m) => m.iter().collect(),
        }
    }

    /// Second-chance LFU install after a [`MgOutcome::Rejected`]: evict
    /// the coldest guard-approved occupant in favour of `key`. Only the
    /// FREQUENT monitor supports this (SpaceSaving already displaces its
    /// minimum on every offer, so a rejection there was a guard veto and
    /// stands).
    fn replace_min_guarded(
        &mut self,
        key: Key,
        state: Value,
        guard: impl FnMut(&Key, &Value) -> bool,
    ) -> MgOutcome<Key, Value> {
        match self {
            Monitor::Frequent(m) => m.replace_min_guarded(key, state, guard),
            Monitor::SpaceSaving(_) => MgOutcome::Rejected { key, state },
        }
    }

    fn restore(
        kind: MonitorKind,
        capacity: usize,
        offered: u64,
        entries: Vec<MgEntry<Key, Value>>,
    ) -> Monitor {
        match kind {
            MonitorKind::Frequent => {
                Monitor::Frequent(MisraGries::restore(capacity, offered, entries))
            }
            MonitorKind::SpaceSaving => {
                Monitor::SpaceSaving(SpaceSavingMonitor::restore(capacity, offered, entries))
            }
        }
    }

    /// Per-key coverage slack `M/(s+1)` (FREQUENT) or `M/s` (SpaceSaving)
    /// — the denominator term of the γ lower bound.
    fn slack(&self) -> f64 {
        match self {
            Monitor::Frequent(m) => m.offered() as f64 / (m.capacity() as f64 + 1.0),
            Monitor::SpaceSaving(m) => m.offered() as f64 / (m.capacity() as f64).max(1.0),
        }
    }
}

/// One reduce task running the DINC-hash framework.
pub struct DincHashReducer<'j> {
    inc: &'j dyn IncrementalReducer,
    family: HashFamily,
    h3: HashFn,
    monitor: Monitor,
    mem_budget: u64,
    write_buffer: u64,
    buckets: BucketManager<StatePair>,
    ctx: ReduceCtx,
    sink: OutputSink,
    /// Coverage threshold φ for approximate early termination (None =
    /// exact processing).
    early_stop_coverage: Option<f64>,
    stats: crate::metrics::DincStats,
    admission: AdmissionPolicy,
    /// Frequency sketch gating second-chance installs (`Some` iff the LFU
    /// admission policy is on). Touched on *every* arrival so estimates —
    /// and therefore admission decisions — are pure functions of the
    /// delivered tuple order.
    sketch: Option<FreqSketch>,
    adm: AdmissionStats,
}

impl<'j> DincHashReducer<'j> {
    /// Creates the reducer: `h` buckets per the `K·n_p/B` rule, monitor
    /// capacity `s` from the remaining memory and the state-size hint.
    pub fn new(
        job: &'j dyn Job,
        spec: &ClusterSpec,
        sizing: ReducerSizing,
        family: &HashFamily,
    ) -> Self {
        let inc = job.incremental().expect("checked by make_reducer");
        let mem = spec.hardware.reduce_buffer;
        let write_buffer = spec.bucket_write_buffer;
        let h = sizing.bucket_count(mem, write_buffer);
        let monitor_mem = mem.saturating_sub(h as u64 * write_buffer).max(1);
        let entry = sizing.state_size.max(1) + SLOT_OVERHEAD;
        let s = ((monitor_mem / entry) as usize).max(1);
        let expected = (sizing.expected_keys as usize).clamp(64, 1 << 22);
        DincHashReducer {
            admission: sizing.admission,
            sketch: sizing
                .admission
                .is_on()
                .then(|| FreqSketch::with_capacity(expected)),
            adm: AdmissionStats::default(),
            inc,
            family: family.clone(),
            h3: family.fn_at(2),
            monitor: Monitor::new(sizing.monitor, s),
            mem_budget: monitor_mem,
            write_buffer,
            buckets: BucketManager::new(h, write_buffer),
            ctx: ReduceCtx::new(),
            sink: OutputSink::new(),
            early_stop_coverage: sizing.early_stop_coverage,
            stats: crate::metrics::DincStats {
                slots_per_reducer: s as u64,
                ..Default::default()
            },
        }
    }

    /// Enables approximate early termination at coverage threshold `phi`.
    pub fn set_early_stop(&mut self, phi: f64) {
        self.early_stop_coverage = Some(phi);
    }

    /// Monitor slot capacity `s`.
    pub fn slots(&self) -> usize {
        self.monitor.capacity()
    }

    fn stage(&mut self, t: SimTime, sp: StatePair, env: &mut ReduceEnv<'_>) -> SimTime {
        let b = self.h3.bucket(sp.key.bytes(), self.buckets.num_buckets());
        let op = self.buckets.push(b, sp);
        env.spill(t, op)
    }

    /// Runs the workload eviction hook on a displaced entry.
    fn handle_eviction(
        &mut self,
        mut t: SimTime,
        key: Key,
        state: Value,
        env: &mut ReduceEnv<'_>,
    ) -> SimTime {
        let wm = self.ctx.watermark;
        match self.inc.evict(&key, state, wm, &mut self.ctx) {
            None => {
                // Fully output — the 0.1 GB-vs-370 GB headline lives here.
                self.stats.evict_output += 1;
                let out = self.ctx.drain();
                t = self.sink.push(t, out, env);
            }
            Some(state) => {
                self.stats.evict_spilled += 1;
                t = self.stage(t, StatePair::new(key, state), env);
            }
        }
        t
    }

    /// Handles a [`MgOutcome::Rejected`] tuple. With the LFU admission
    /// policy on, the monitor gets a second chance: if the sketch says the
    /// newcomer is strictly hotter than the coldest evictable occupant,
    /// that occupant is displaced through the usual eviction hook and the
    /// newcomer takes its slot. Otherwise (and always when the policy is
    /// off) the tuple is staged to disk exactly as before.
    #[allow(clippy::too_many_arguments)]
    fn reject_or_admit(
        &mut self,
        mut t: SimTime,
        key: Key,
        state: Value,
        sp_size: u64,
        fp: u64,
        wm: Option<u64>,
        env: &mut ReduceEnv<'_>,
    ) -> SimTime {
        if self.admission.is_on() {
            let inc = self.inc;
            let sketch = self.sketch.as_ref().expect("sketch exists when policy on");
            let h3 = &self.h3;
            let est_new = sketch.estimate(fp);
            let outcome = self.monitor.replace_min_guarded(key, state, |k, s| {
                inc.can_evict(k, s, wm) && sketch.estimate(h3.hash(k.bytes())) < est_new
            });
            match outcome {
                MgOutcome::Combined => unreachable!("rejected key is not monitored"),
                MgOutcome::Installed { evicted } => {
                    self.adm.absorbed += 1;
                    self.adm.admitted_evictions += 1;
                    t = env.cpu(t, env.cost().hash_time(2));
                    env.worked(t, 1);
                    if let Some(e) = evicted {
                        let victim_size = e.key.len() as u64
                            + e.state.len() as u64
                            + opa_common::types::RECORD_OVERHEAD;
                        let spilled_before = self.stats.evict_spilled;
                        t = self.handle_eviction(t, e.key, e.state, env);
                        if self.stats.evict_spilled > spilled_before {
                            self.adm.spill.admitted_evict += victim_size;
                        }
                    }
                    return t;
                }
                MgOutcome::Rejected { key, state } => {
                    self.stats.rejected += 1;
                    self.adm.rejected += 1;
                    self.adm.spill.rejected_arrival += sp_size;
                    t = env.cpu(t, env.cost().hash_time(1));
                    return self.stage(t, StatePair::new(key, state), env);
                }
            }
        }
        // Tuple staged to disk; re-absorbed during bucket processing.
        self.stats.rejected += 1;
        self.adm.rejected += 1;
        self.adm.spill.rejected_arrival += sp_size;
        t = env.cpu(t, env.cost().hash_time(1));
        self.stage(t, StatePair::new(key, state), env)
    }
}

impl ReduceSide for DincHashReducer<'_> {
    fn on_delivery(
        &mut self,
        mut t: SimTime,
        payload: Payload,
        env: &mut ReduceEnv<'_>,
    ) -> SimTime {
        let Payload::States(batch) = payload else {
            unreachable!("DINC-hash receives key-state pairs");
        };
        env.shuffled(t, batch.bytes());
        for sp in batch {
            if let Some(ts) = self.inc.event_time(&sp.state) {
                self.ctx.advance_watermark(ts);
            }
            let wm = self.ctx.watermark;
            let sp_size = sp.size();
            let StatePair { key, state } = sp;
            self.adm.offered += 1;
            let fp = self.h3.hash(key.bytes());
            if let Some(sk) = self.sketch.as_mut() {
                sk.touch(fp);
            }
            let inc = self.inc;
            let ctx = &mut self.ctx;
            let outcome = self.monitor.offer_guarded(
                key,
                state,
                |k, acc, other| inc.cb(k, acc, other, ctx),
                |k, s| inc.can_evict(k, s, wm),
            );
            match outcome {
                MgOutcome::Combined => {
                    self.adm.absorbed += 1;
                    t = env.cpu(t, env.cost().cb_time(1) + env.cost().hash_time(1));
                    env.worked(t, 1);
                    if self.ctx.pending() > 0 {
                        let out = self.ctx.drain();
                        t = self.sink.push(t, out, env);
                    }
                }
                MgOutcome::Installed { evicted } => {
                    self.adm.absorbed += 1;
                    t = env.cpu(t, env.cost().hash_time(1));
                    env.worked(t, 1);
                    if let Some(e) = evicted {
                        t = self.handle_eviction(t, e.key, e.state, env);
                    }
                }
                MgOutcome::Rejected { key, state } => {
                    t = self.reject_or_admit(t, key, state, sp_size, fp, wm, env);
                }
            }
        }
        t
    }

    fn dinc_stats(&self) -> Option<crate::metrics::DincStats> {
        Some(self.stats)
    }

    fn admission_stats(&self) -> Option<AdmissionStats> {
        Some(self.adm)
    }

    fn finish(&mut self, mut t: SimTime, env: &mut ReduceEnv<'_>) -> SimTime {
        env.span_open();
        self.stats.offered = self.monitor.offered();
        let offered = self.monitor.offered();
        let capacity = self.monitor.capacity();
        let monitor = std::mem::replace(&mut self.monitor, Monitor::new(MonitorKind::Frequent, 1));
        let entries = monitor.drain();
        self.adm.resident_keys = entries.len() as u64;
        self.adm.resident_frequency = entries.iter().map(|e| e.t).sum();

        // Approximate early termination (§4.3): finalize monitored keys
        // whose coverage lower bound γ = t/(t + M/(s+1)) clears φ, skip
        // the disk-resident remainder entirely. φ = 1.0 demands full
        // coverage, which the bound can never certify while any slack
        // remains — that request is exact processing, handled below.
        if let Some(phi) = self.early_stop_coverage.filter(|&phi| phi < 1.0) {
            let slack = offered as f64 / (capacity as f64 + 1.0);
            let mut finalized = 0u64;
            for e in entries {
                let gamma = e.t as f64 / (e.t as f64 + slack);
                if gamma >= phi {
                    self.inc.finalize(&e.key, e.state, &mut self.ctx);
                    finalized += 1;
                }
            }
            t = env.cpu(t, env.cost().reduce_time(finalized));
            let out = self.ctx.drain();
            t = self.sink.push(t, out, env);
            t = self.sink.flush(t, env);
            env.span_close(OpKind::Reduce);
            return t;
        }

        // Exact completion: flush the monitor through the eviction hook.
        // The input is over, so every temporal construct (a session) is
        // closed by definition — advance the watermark past everything so
        // complete states go straight to output instead of disk.
        if self.ctx.watermark.is_some() {
            self.ctx.watermark = Some(u64::MAX);
        }
        for e in entries {
            t = self.handle_eviction(t, e.key, e.state, env);
        }

        // …then process staged buckets exactly like INC-hash.
        let op = self.buckets.seal();
        t = env.spill(t, op);
        for b in 0..self.buckets.num_buckets() {
            let (recs, op) = self.buckets.take_bucket(b);
            t = env.spill(t, op);
            if !recs.is_empty() {
                t = process_bucket_inc(
                    self.inc,
                    &self.family,
                    self.mem_budget,
                    self.write_buffer,
                    &mut self.ctx,
                    &mut self.sink,
                    t,
                    recs,
                    3,
                    env,
                );
            }
        }
        t = self.sink.flush(t, env);
        env.span_close(OpKind::Reduce);
        t
    }

    /// Sections: `states[0]` holds the monitor's (key, state) entries in
    /// slot order, `states[1..]` the staged buckets; `nums` holds
    /// `[offered]`, per-entry counts, per-entry true-frequencies `t`, the
    /// running [`crate::metrics::DincStats`], the running admission
    /// counters, and — when the LFU admission policy is on — the frequency
    /// sketch; `pairs` holds the pending output buffer, then pending
    /// context emissions. Monitor capacity is derived from the (identical)
    /// sizing on restore.
    fn export_state(&self) -> Result<ReducerCkpt> {
        let entries = self.monitor.entries();
        let mut states = vec![entries
            .iter()
            .map(|e| StatePair::new(e.key.clone(), e.state.clone()))
            .collect::<Vec<_>>()];
        states.extend(self.buckets.export_contents());
        let mut nums = vec![
            vec![self.monitor.offered()],
            entries.iter().map(|e| e.count).collect(),
            entries.iter().map(|e| e.t).collect(),
            vec![
                self.stats.slots_per_reducer,
                self.stats.offered,
                self.stats.rejected,
                self.stats.evict_output,
                self.stats.evict_spilled,
            ],
            vec![
                self.adm.offered,
                self.adm.absorbed,
                self.adm.admitted_evictions,
                self.adm.rejected,
                self.adm.spill.admitted_evict,
                self.adm.spill.rejected_arrival,
            ],
        ];
        if let Some(sk) = &self.sketch {
            nums.push(sk.to_nums());
        }
        Ok(ReducerCkpt {
            tag: CKPT_TAG,
            flags: match self.monitor.kind() {
                MonitorKind::Frequent => 0,
                MonitorKind::SpaceSaving => FLAG_SPACE_SAVING,
            },
            watermark: self.ctx.watermark,
            nums,
            pairs: vec![self.sink.export_pending(), self.ctx.export_pending()],
            states,
        })
    }

    fn import_state(&mut self, ckpt: ReducerCkpt) -> Result<()> {
        if ckpt.tag != CKPT_TAG {
            return Err(Error::job(format!(
                "checkpoint tag {} is not DINC-hash ({CKPT_TAG})",
                ckpt.tag
            )));
        }
        let mut states = ckpt.states;
        if states.len() != self.buckets.num_buckets() + 1 {
            return Err(Error::job(
                "DINC-hash checkpoint bucket count mismatch — restore requires \
                 the same cluster spec and sizing hints as the original run",
            ));
        }
        let monitor_entries = states.remove(0);
        let mut nums = ckpt.nums.into_iter();
        let mut section = |name: &str| {
            nums.next()
                .ok_or_else(|| Error::job(format!("DINC-hash checkpoint missing {name} section")))
        };
        let offered = section("offered")?;
        let counts = section("counts")?;
        let ts = section("frequencies")?;
        let stats = section("stats")?;
        let adm = section("admission counters")?;
        let sketch_nums = nums.next();
        if counts.len() != monitor_entries.len() || ts.len() != monitor_entries.len() {
            return Err(Error::job("DINC-hash checkpoint monitor sections disagree"));
        }
        let [slots, st_offered, rejected, evict_output, evict_spilled] =
            <[u64; 5]>::try_from(stats)
                .map_err(|_| Error::job("DINC-hash checkpoint stats section malformed"))?;
        let [adm_offered, adm_absorbed, adm_evictions, adm_rejected, adm_spill_evict, adm_spill_rej] =
            <[u64; 6]>::try_from(adm)
                .map_err(|_| Error::job("DINC-hash checkpoint admission section malformed"))?;
        self.sketch = match (self.admission.is_on(), sketch_nums) {
            (true, Some(nums)) => Some(FreqSketch::from_nums(&nums)?),
            (true, None) => {
                return Err(Error::job(
                    "DINC-hash checkpoint has no frequency sketch but the LFU \
                     admission policy is on — restore with the same --admission \
                     setting the checkpoint was written under",
                ));
            }
            (false, _) => None,
        };
        self.adm = AdmissionStats {
            offered: adm_offered,
            absorbed: adm_absorbed,
            admitted_evictions: adm_evictions,
            rejected: adm_rejected,
            spill: opa_simio::SpillSplit {
                admitted_evict: adm_spill_evict,
                rejected_arrival: adm_spill_rej,
            },
            resident_keys: 0,
            resident_frequency: 0,
        };
        let kind = if ckpt.flags & FLAG_SPACE_SAVING != 0 {
            MonitorKind::SpaceSaving
        } else {
            MonitorKind::Frequent
        };
        let capacity = self.monitor.capacity();
        if monitor_entries.len() > capacity {
            return Err(Error::job(format!(
                "DINC-hash checkpoint holds {} monitor entries but the \
                 restored reducer has only {capacity} slots — restore \
                 requires the same cluster spec and sizing hints",
                monitor_entries.len()
            )));
        }
        let entries = monitor_entries
            .into_iter()
            .zip(counts.iter().zip(&ts))
            .map(|(sp, (&count, &t))| MgEntry {
                key: sp.key,
                count,
                t,
                state: sp.state,
            })
            .collect();
        self.monitor = Monitor::restore(
            kind,
            capacity,
            offered.first().copied().unwrap_or(0),
            entries,
        );
        let [sink_pending, ctx_pending] = <[Vec<opa_common::Pair>; 2]>::try_from(ckpt.pairs)
            .map_err(|_| Error::job("DINC-hash checkpoint missing output sections"))?;
        self.buckets.restore_contents(states);
        self.sink.restore_pending(sink_pending);
        self.ctx.restore_pending(ctx_pending);
        self.ctx.watermark = ckpt.watermark;
        self.stats = crate::metrics::DincStats {
            slots_per_reducer: slots,
            offered: st_offered,
            rejected,
            evict_output,
            evict_spilled,
        };
        Ok(())
    }

    fn query(&self, key: &Key) -> Option<Value> {
        self.monitor.get(key).map(|e| e.state)
    }

    fn top_entries(&self, k: usize) -> Option<(Vec<TopEntry>, f64)> {
        let mut entries = self.monitor.entries();
        // Stable sort: ties keep slot order, so the answer is deterministic.
        entries.sort_by_key(|e| std::cmp::Reverse(e.count));
        entries.truncate(k);
        let slack = self.monitor.slack();
        let gamma = entries
            .iter()
            .map(|e| e.t as f64 / (e.t as f64 + slack))
            .fold(1.0f64, f64::min);
        Some((
            entries
                .into_iter()
                .map(|e| TopEntry {
                    key: e.key,
                    count: e.count,
                    state: e.state,
                })
                .collect(),
            gamma,
        ))
    }

    fn watermark(&self) -> Option<u64> {
        self.ctx.watermark
    }
}

/// Shared INC-style bucket processing (also used by DINC's completion
/// phase): build a fresh table, combine, finalize, recurse on overflow.
#[allow(clippy::too_many_arguments)]
pub(crate) fn process_bucket_inc(
    inc: &dyn IncrementalReducer,
    family: &HashFamily,
    mem_budget: u64,
    write_buffer: u64,
    ctx: &mut ReduceCtx,
    sink: &mut OutputSink,
    mut t: SimTime,
    tuples: Vec<StatePair>,
    depth: usize,
    env: &mut ReduceEnv<'_>,
) -> SimTime {
    // Same bucket-local watermark discipline as INC-hash: the replayed
    // file preserves arrival order, so the reorder buffering of
    // order-sensitive jobs keeps working during completion.
    let saved_watermark = ctx.watermark;
    ctx.watermark = None;
    let h1 = family.fn_at(0);
    let mut states: Vec<(Key, Value)> = Vec::new();
    let mut index = ShardedGroupIndex::with_capacity(tuples.len() / 4 + 1);
    let mut used = 0u64;
    let mut overflow: Vec<StatePair> = Vec::new();
    let mut overflow_started = false;
    let mut batch = 0u64;
    for sp in tuples {
        if let Some(ts) = inc.event_time(&sp.state) {
            ctx.advance_watermark(ts);
        }
        let h = h1.hash(sp.key.bytes());
        match index.get(h, |r| states[r].0 == sp.key) {
            Some(i) => {
                let (ref key, ref mut acc) = states[i];
                let before = inc.state_mem_size(acc);
                inc.cb(key, acc, sp.state, ctx);
                let after = inc.state_mem_size(acc);
                used = (used + after).saturating_sub(before);
                batch += 1;
            }
            None => {
                let sz = sp.key.len() as u64 + inc.state_mem_size(&sp.state) + 16;
                if (!overflow_started && used + sz <= mem_budget) || depth >= MAX_DEPTH {
                    used += sz;
                    index.insert(h, states.len());
                    states.push((sp.key, sp.state));
                    batch += 1;
                } else {
                    overflow_started = true;
                    overflow.push(sp);
                }
            }
        }
        if batch >= WORK_BATCH {
            t = env.cpu(
                t,
                env.cost().hash_time(batch) + env.cost().cb_time(batch / 2),
            );
            env.worked(t, batch);
            batch = 0;
            if ctx.pending() > 0 {
                let out = ctx.drain();
                t = sink.push(t, out, env);
            }
        }
    }
    if batch > 0 {
        t = env.cpu(
            t,
            env.cost().hash_time(batch) + env.cost().cb_time(batch / 2),
        );
        env.worked(t, batch);
    }
    let n = states.len() as u64;
    for (key, state) in states {
        inc.finalize(&key, state, ctx);
    }
    t = env.cpu(t, env.cost().reduce_time(n));
    let out = ctx.drain();
    t = sink.push(t, out, env);

    if !overflow.is_empty() {
        let h = family.fn_at(depth + 1);
        let bytes: u64 = overflow.iter().map(StatePair::size).sum();
        let fan = ((bytes as f64 / (mem_budget as f64 * 0.8)).ceil() as usize).max(2);
        let mut sub: BucketManager<StatePair> = BucketManager::new(fan, write_buffer);
        for sp in overflow {
            let b = h.bucket(sp.key.bytes(), fan);
            let op = sub.push(b, sp);
            t = env.spill(t, op);
        }
        let op = sub.seal();
        t = env.spill(t, op);
        for b in 0..fan {
            let (recs, op) = sub.take_bucket(b);
            t = env.spill(t, op);
            if !recs.is_empty() {
                t = process_bucket_inc(
                    inc,
                    family,
                    mem_budget,
                    write_buffer,
                    ctx,
                    sink,
                    t,
                    recs,
                    depth + 1,
                    env,
                );
            }
        }
    }
    ctx.watermark = match (saved_watermark, ctx.watermark) {
        (Some(a), Some(b)) => Some(a.max(b)),
        (a, b) => a.or(b),
    };
    t
}
